"""Unit tests for the unit-disk radio model."""

import math

import pytest

from repro.grid.geometry import Point
from repro.network.node import SensorNode
from repro.network.radio import UnitDiskRadio


def node_at(node_id: int, x: float, y: float) -> SensorNode:
    return SensorNode(node_id=node_id, position=Point(x, y))


class TestRange:
    def test_rejects_non_positive_range(self):
        with pytest.raises(ValueError):
            UnitDiskRadio(0.0)

    def test_in_range_is_inclusive(self):
        radio = UnitDiskRadio(5.0)
        assert radio.in_range(Point(0, 0), Point(5, 0))
        assert radio.in_range(Point(0, 0), Point(3, 4))
        assert not radio.in_range(Point(0, 0), Point(5.01, 0))

    def test_gaf_cell_size(self):
        radio = UnitDiskRadio(10.0)
        assert radio.gaf_cell_size == pytest.approx(10.0 / math.sqrt(5))
        assert radio.supports_cell_size(radio.gaf_cell_size)
        assert not radio.supports_cell_size(radio.gaf_cell_size * 1.01)

    def test_gaf_range_reaches_neighbouring_cells(self):
        """R = sqrt(5)*r reaches any point of a 4-neighbouring cell (the GAF claim)."""
        r = 4.4721
        radio = UnitDiskRadio(math.sqrt(5) * r)
        # Worst case: opposite corners of two cells sharing an edge span
        # sqrt((2r)^2 + r^2) = sqrt(5) r.
        assert radio.in_range(Point(0, 0), Point(2 * r, r))


class TestNeighbourhoods:
    def test_neighbours_of_excludes_self_and_disabled(self):
        radio = UnitDiskRadio(2.0)
        a = node_at(0, 0, 0)
        b = node_at(1, 1, 0)
        c = node_at(2, 1.5, 0)
        c.disable()
        d = node_at(3, 10, 10)
        neighbours = radio.neighbours_of(a, [a, b, c, d])
        assert [n.node_id for n in neighbours] == [1]

    def test_adjacency_is_symmetric(self):
        radio = UnitDiskRadio(3.0)
        nodes = [node_at(i, float(i), 0.0) for i in range(5)]
        adjacency = radio.adjacency(nodes)
        for node_id, neighbours in adjacency.items():
            for other in neighbours:
                assert node_id in adjacency[other]

    def test_adjacency_empty_input(self):
        assert UnitDiskRadio(1.0).adjacency([]) == {}

    def test_adjacency_ignores_disabled(self):
        radio = UnitDiskRadio(2.0)
        nodes = [node_at(0, 0, 0), node_at(1, 1, 0)]
        nodes[1].disable()
        adjacency = radio.adjacency(nodes)
        assert adjacency == {0: []}

    def test_link_pairs_unique_and_sorted(self):
        radio = UnitDiskRadio(1.5)
        nodes = [node_at(0, 0, 0), node_at(1, 1, 0), node_at(2, 2, 0)]
        pairs = radio.link_pairs(nodes)
        assert (0, 1) in pairs and (1, 2) in pairs
        assert (0, 2) not in pairs
        assert all(a < b for a, b in pairs)
        assert len(pairs) == len(set(pairs))

    def test_chain_topology_link_count(self):
        radio = UnitDiskRadio(1.0)
        nodes = [node_at(i, float(i), 0.0) for i in range(10)]
        assert len(radio.link_pairs(nodes)) == 9
