"""Unit tests for the SR scheme (Algorithm 1 / Algorithm 2 controller)."""

import random

import pytest

from repro.core.hamilton import DualPathHamiltonCycle, build_hamilton_cycle
from repro.core.protocol import ProcessStatus
from repro.core.replacement import HamiltonReplacementController
from repro.grid.virtual_grid import GridCoord, VirtualGrid
from repro.network.deployment import deploy_per_cell, deploy_per_cell_counts
from repro.network.state import WsnState
from repro.sim.engine import run_recovery

from helpers import make_hole


def controller_for(state, **kwargs):
    return HamiltonReplacementController(build_hamilton_cycle(state.grid), **kwargs)


class TestConstruction:
    def test_invalid_arguments(self, small_cycle):
        with pytest.raises(ValueError):
            HamiltonReplacementController(small_cycle, spare_selection="closest")
        with pytest.raises(ValueError):
            HamiltonReplacementController(small_cycle, max_hops=0)

    def test_default_hop_budget_is_path_length(self, small_cycle):
        controller = HamiltonReplacementController(small_cycle)
        assert controller.max_hops == small_cycle.replacement_path_length


class TestSingleHole:
    def test_spare_in_predecessor_fills_hole_in_one_round(self, dense_state, rng):
        controller = controller_for(dense_state)
        hole = GridCoord(2, 2)
        make_hole(dense_state, hole)
        outcome = controller.execute_round(dense_state, rng, round_index=0)
        assert not dense_state.is_vacant(hole)
        assert outcome.move_count == 1
        assert len(outcome.processes_started) == 1
        assert len(outcome.processes_converged) == 1
        process = controller.processes()[0]
        assert process.converged
        assert process.origin_cell == hole
        assert process.move_count == 1
        dense_state.check_invariants()

    def test_only_the_predecessor_initiates(self, dense_state, rng):
        """Synchronisation claim: one and only one process per hole."""
        controller = controller_for(dense_state)
        cycle = controller.cycle
        hole = GridCoord(1, 3)
        make_hole(dense_state, hole)
        controller.execute_round(dense_state, rng, 0)
        assert controller.total_processes == 1
        assert controller.processes()[0].initiator_cell == cycle.initiator_for(hole)

    def test_spare_moves_into_central_area(self, dense_state, rng):
        controller = controller_for(dense_state)
        hole = GridCoord(0, 2)
        make_hole(dense_state, hole)
        outcome = controller.execute_round(dense_state, rng, 0)
        move = outcome.moves[0]
        assert dense_state.grid.central_area(hole).contains(move.target_position)

    def test_cascading_when_predecessor_has_no_spare(self, sparse_state, rng):
        """Without a spare, the head itself moves, vacating its own cell (step 3)."""
        controller = controller_for(sparse_state)
        cycle = controller.cycle
        hole = GridCoord(2, 2)
        predecessor = cycle.initiator_for(hole)
        make_hole(sparse_state, hole)
        outcome = controller.execute_round(sparse_state, rng, 0)
        assert not sparse_state.is_vacant(hole)
        assert sparse_state.is_vacant(predecessor), "the cascade leaves the initiator cell vacant"
        assert outcome.messages_sent == 1
        process = controller.processes()[0]
        assert process.is_active
        assert process.move_count == 1

    def test_no_action_without_holes(self, dense_state, rng):
        controller = controller_for(dense_state)
        outcome = controller.execute_round(dense_state, rng, 0)
        assert not outcome.made_progress
        assert controller.total_processes == 0
        assert controller.is_quiescent(dense_state)


class TestCascadeConvergence:
    def test_cascade_walks_until_spare_found(self, rng):
        """One spare far upstream: the snake walks the Hamilton path to reach it."""
        grid = VirtualGrid(4, 4, cell_size=1.0)
        cycle = build_hamilton_cycle(grid)
        order = cycle.order()
        # One node per cell, plus one extra spare placed 5 hops upstream of the hole.
        hole = order[10]
        spare_cell = order[5]
        counts = {coord: 1 for coord in grid.all_coords()}
        counts[spare_cell] = 2
        state = WsnState(grid, deploy_per_cell_counts(grid, counts, rng))
        make_hole(state, hole)
        controller = HamiltonReplacementController(cycle)
        result = run_recovery(state, controller, rng)
        assert result.metrics.final_holes == 0
        assert result.metrics.processes_initiated == 1
        assert result.metrics.processes_converged == 1
        # The cascade needed exactly the number of hops between spare and hole.
        assert result.metrics.total_moves == 5
        state.check_invariants()

    def test_each_round_advances_one_hop(self, rng):
        grid = VirtualGrid(4, 4, cell_size=1.0)
        cycle = build_hamilton_cycle(grid)
        order = cycle.order()
        hole = order[8]
        spare_cell = order[4]
        counts = {coord: 1 for coord in grid.all_coords()}
        counts[spare_cell] = 2
        state = WsnState(grid, deploy_per_cell_counts(grid, counts, rng))
        make_hole(state, hole)
        controller = HamiltonReplacementController(cycle)
        for round_index in range(4):
            outcome = controller.execute_round(state, rng, round_index)
            assert outcome.move_count == 1
        assert state.hole_count == 0

    def test_no_spares_process_fails_within_hop_budget(self, sparse_state, rng):
        controller = controller_for(sparse_state)
        hole = GridCoord(3, 3)
        make_hole(sparse_state, hole)
        result = run_recovery(sparse_state, controller, rng)
        process = controller.processes()[0]
        assert process.failed
        assert process.move_count <= controller.max_hops
        # The hole was never truly repaired: it just moved along the cycle.
        assert sparse_state.hole_count == 1

    def test_custom_hop_budget(self, sparse_state, rng):
        controller = controller_for(sparse_state, max_hops=3)
        make_hole(sparse_state, GridCoord(1, 1))
        run_recovery(sparse_state, controller, rng)
        assert controller.processes()[0].move_count <= 3


class TestMultipleHoles:
    def test_one_process_per_hole(self, dense_state, rng):
        controller = controller_for(dense_state)
        holes = [GridCoord(0, 0), GridCoord(2, 3), GridCoord(3, 1)]
        for hole in holes:
            make_hole(dense_state, hole)
        result = run_recovery(dense_state, controller, rng)
        assert result.metrics.processes_initiated == len(holes)
        assert result.metrics.final_holes == 0
        assert result.metrics.success_rate == 1.0
        assert {p.origin_cell for p in controller.processes()} == set(holes)

    def test_adjacent_holes_are_conflict_free(self, dense_state, rng):
        """The directed cycle guarantees different initiators for adjacent holes."""
        controller = controller_for(dense_state)
        holes = [GridCoord(1, 1), GridCoord(1, 2), GridCoord(2, 1), GridCoord(2, 2)]
        for hole in holes:
            make_hole(dense_state, hole)
        result = run_recovery(dense_state, controller, rng)
        assert result.metrics.final_holes == 0
        assert result.metrics.processes_initiated == len(holes)
        dense_state.check_invariants()

    def test_theorem1_whenever_spares_exist(self, rng):
        """Theorem 1 / Corollary 1: holes are filled whenever spares exist."""
        grid = VirtualGrid(6, 6, cell_size=1.0)
        counts = {coord: 1 for coord in grid.all_coords()}
        # Exactly 4 spares, all piled up in one corner cell.
        counts[GridCoord(5, 5)] = 5
        state = WsnState(grid, deploy_per_cell_counts(grid, counts, rng))
        controller = HamiltonReplacementController(build_hamilton_cycle(grid))
        for hole in [GridCoord(0, 0), GridCoord(3, 2), GridCoord(1, 4), GridCoord(2, 2)]:
            make_hole(state, hole)
        result = run_recovery(state, controller, rng)
        assert result.metrics.final_holes == 0
        assert result.metrics.success_rate == 1.0


class TestDualPathAlgorithm2:
    @pytest.mark.parametrize(
        "hole",
        [GridCoord(0, 0), GridCoord(1, 1), GridCoord(1, 0), GridCoord(0, 1), GridCoord(4, 4)],
        ids=["A", "B", "D", "C", "far-chain-cell"],
    )
    def test_recovery_through_every_special_cell(self, hole, rng):
        grid = VirtualGrid(5, 5, cell_size=1.0)
        state = WsnState(grid, deploy_per_cell(grid, 2, rng))
        make_hole(state, hole)
        controller = HamiltonReplacementController(DualPathHamiltonCycle(grid))
        result = run_recovery(state, controller, rng)
        assert result.metrics.final_holes == 0
        assert result.metrics.processes_initiated == 1
        assert result.metrics.success_rate == 1.0

    def test_single_far_spare_reaches_cell_b(self, rng):
        """Corollary 1 on the dual-path cycle: one spare anywhere suffices."""
        grid = VirtualGrid(5, 5, cell_size=1.0)
        counts = {coord: 1 for coord in grid.all_coords()}
        counts[GridCoord(4, 4)] = 2
        state = WsnState(grid, deploy_per_cell_counts(grid, counts, rng))
        make_hole(state, GridCoord(1, 1))  # cell B
        controller = HamiltonReplacementController(DualPathHamiltonCycle(grid))
        result = run_recovery(state, controller, rng)
        assert result.metrics.final_holes == 0
        assert result.metrics.success_rate == 1.0


class TestSpareSelection:
    def test_nearest_spare_selected(self, dense_state, rng):
        controller = controller_for(dense_state, spare_selection="nearest")
        hole = GridCoord(2, 2)
        initiator = controller.cycle.initiator_for(hole)
        make_hole(dense_state, hole)
        spares_before = dense_state.spares_of(initiator)
        target_center = dense_state.grid.cell_center(hole)
        expected = min(
            spares_before,
            key=lambda node: (node.position.distance_to(target_center), node.node_id),
        )
        outcome = controller.execute_round(dense_state, rng, 0)
        assert outcome.moves[0].node_id == expected.node_id

    def test_random_selection_supported(self, dense_state, rng):
        controller = controller_for(dense_state, spare_selection="random")
        make_hole(dense_state, GridCoord(1, 1))
        outcome = controller.execute_round(dense_state, rng, 0)
        assert outcome.move_count == 1


class TestBookkeeping:
    def test_describe_and_aggregates(self, dense_state, rng):
        controller = controller_for(dense_state)
        make_hole(dense_state, GridCoord(0, 3))
        run_recovery(dense_state, controller, rng)
        text = controller.describe()
        assert "SR" in text and "processes=1" in text
        assert controller.total_moves >= 1
        assert controller.total_distance > 0
        assert controller.success_rate == 1.0

    def test_finalize_marks_active_processes_failed(self, sparse_state, rng):
        controller = controller_for(sparse_state)
        make_hole(sparse_state, GridCoord(0, 0))
        controller.execute_round(sparse_state, rng, 0)
        assert controller.active_processes()
        controller.finalize(sparse_state, round_index=1)
        assert not controller.active_processes()
        assert controller.processes()[0].status is ProcessStatus.FAILED

    def test_pending_vacancies_tracking(self, sparse_state, rng):
        controller = controller_for(sparse_state)
        make_hole(sparse_state, GridCoord(2, 2))
        controller.execute_round(sparse_state, rng, 0)
        pending = controller.pending_vacancies()
        assert len(pending) == 1
        assert sparse_state.is_vacant(pending[0])
