"""Figure 6: number of replacement processes initiated and success rate, AR vs SR.

Uses the shared Section-5 sweep (16x16 grid, 5000 deployed sensors, N from 10
to 1000) and checks the two claims the paper draws from this figure:

* SR needs fewer than half of AR's replacement processes (one per hole);
* SR's success rate is 100% across the whole range, while AR loses 10-20% of
  its processes at low densities.
"""

from __future__ import annotations

import pytest

from repro.core.hamilton import build_hamilton_cycle
from repro.core.replacement import HamiltonReplacementController
from repro.experiments.figures import figure6_processes_and_success
from repro.sim.engine import run_recovery
from repro.sim.rng import derive_rng
from repro.sim.scenario import ScenarioConfig, build_scenario_state

from figutils import emit


@pytest.mark.benchmark(group="fig6-processes")
def test_fig6_processes_and_success(benchmark, section5_experiment, results_dir):
    """Regenerate the Figure 6 series from the shared Section-5 sweep."""
    result = benchmark(figure6_processes_and_success, section5_experiment)

    emit(result, results_dir, "fig6_processes_success.csv")

    for row in result.rows:
        holes = float(row["holes"])
        if holes == 0:
            continue
        # SR: exactly one replacement process per hole, all of them succeed.
        assert float(row["SR_processes"]) == pytest.approx(holes, rel=0.01)
        assert float(row["SR_success_pct"]) == pytest.approx(100.0)
        # AR: redundant processes (the paper reports SR needing < 50% of AR's).
        assert float(row["AR_processes"]) >= 1.9 * float(row["SR_processes"])
    # AR shows failures at the low-density end of the sweep.
    low_density = min(result.rows, key=lambda r: float(r["N"]))
    assert float(low_density["AR_success_pct"]) < 100.0


@pytest.mark.benchmark(group="fig6-single-run")
def test_fig6_single_sr_run_cost(benchmark):
    """Benchmark one SR recovery on the paper-sized workload (N = 55)."""
    config = ScenarioConfig(
        columns=16, rows=16, deployed_count=5000, spare_surplus=55, seed=61
    )
    base_state = build_scenario_state(config)

    def run():
        state = base_state.clone()
        controller = HamiltonReplacementController(build_hamilton_cycle(state.grid))
        return run_recovery(state, controller, derive_rng(61, "bench")).metrics

    metrics = benchmark(run)
    assert metrics.final_holes == 0
    assert metrics.processes_initiated == metrics.initial_holes
