"""Declarative scenario files: one document that captures a whole experiment.

The paper's evaluation is a single hand-wired workload (Section 5: 5000
nodes, a 16x16 grid, random thinning), and until this module every other
workload — jamming attacks, lifetime runs, sparse deployments — was ad-hoc
Python.  A *scenario file* turns such a workload into data: a TOML (or JSON)
document holding a :class:`~repro.sim.scenario.ScenarioConfig`, a declarative
failure schedule (:class:`~repro.network.failures.FailureEvent` entries), an
optional :class:`~repro.network.energy.EnergyModel`, the schemes to run, and
the trial/round bookkeeping.  The document **compiles into ordinary**
:class:`~repro.experiments.orchestration.RunSpec` **cells**
(:meth:`Scenario.run_specs`), so scenario files are executable by any
executor, sweepable, and cacheable through
:class:`~repro.experiments.persistence.RunCache` — a scenario-file run and
the equivalent programmatic spec hit the same cache entries.

The document format (TOML form; JSON mirrors the same structure)::

    format = 1
    name = "region-jamming"
    description = "one line about the workload"
    stresses = "what this scenario stresses"
    expected = "expected qualitative outcome"

    [scenario]            # ScenarioConfig fields
    columns = 16
    rows = 12
    deployed_count = 1200
    spare_surplus = 160
    seed = 2024

    [energy]              # optional EnergyModel fields
    idle_cost_per_round = 0.25

    [channel]             # optional ChannelModel: control-message physics
    kind = "lossy"        # perfect (default) | lossy | delayed | jammed
    drop_probability = 0.2
    ack_timeout = 3       # optional reliability-layer knobs
    max_retries = 8

    [engine]              # optional execution options — never part of a
    shards = 4            # run's identity: sharded runs are byte-identical
    shard_mode = "fork"   # to unsharded ones and share their cache entries

    [run]
    schemes = ["SR", "AR"]
    trials = 1
    max_rounds = 400      # optional
    idle_round_limit = 3
    run_to_exhaustion = false

    [[failures]]          # optional, any number, applied at their round
    round = 0
    kind = "region_jamming"
    center = [35.8, 26.8]
    radius = 11.2

:func:`load_scenario` / :func:`dump_scenario` round-trip losslessly and
deterministically (``dump(load(dump(x))) == dump(x)`` byte-for-byte), and
:func:`scenario_from_dict` validates the whole document with actionable
errors (:class:`ScenarioValidationError`) that name the offending key.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.experiments.orchestration import RunExecutor, RunRecord, RunSpec, execute_many
from repro.experiments.persistence import RunCache
from repro.experiments.registry import available_schemes
from repro.experiments.results import ExperimentResult, average_dicts
from repro.network.channel import ChannelModel, channel_from_dict, channel_to_dict
from repro.network.energy import EnergyModel
from repro.network.failures import (
    FailureEvent,
    available_failure_kinds,
    freeze_params,
    thaw_params,
)
from repro.sim.engine import DEFAULT_IDLE_ROUND_LIMIT
from repro.sim.rng import spawn_seeds
from repro.sim.scenario import ScenarioConfig

__all__ = [
    "SCENARIO_FORMAT_VERSION",
    "Scenario",
    "ScenarioValidationError",
    "dump_scenario",
    "dumps_scenario",
    "load_scenario",
    "loads_scenario",
    "scenario_from_dict",
    "scenario_to_dict",
    "tabulate_records",
]

#: Version of the scenario-document schema; bump on incompatible changes.
SCENARIO_FORMAT_VERSION = 1

#: Round bound :meth:`Scenario.smoke_variant` caps runs at (extended just
#: enough when a failure schedule reaches further).
SMOKE_MAX_ROUNDS = 60


class ScenarioValidationError(ValueError):
    """A scenario document failed schema validation.

    The message always names the offending location (``run.schemes``,
    ``failures[2].kind``, ...) so a file author can fix the document without
    reading the loader source.
    """

    def __init__(self, where: str, message: str) -> None:
        self.where = where
        super().__init__(f"invalid scenario document at {where}: {message}")


@dataclass(frozen=True)
class Scenario:
    """A named, complete, declarative experiment.

    Attributes
    ----------
    name:
        Identifier used by the catalog, the CLI, and generated docs.
    scenario:
        The deployment to build (grid, node count, thinning, batteries).
    schemes:
        Recovery schemes to run on identical builds of the deployment.
    description, stresses, expected:
        Free-text documentation lines rendered by ``scenario docs``: what the
        workload is, what it stresses, and the expected qualitative outcome.
    failures:
        Declarative failure schedule applied by the engine mid-run.
    energy:
        Optional energy physics the engine applies every round.
    channel:
        Optional control-channel model (``None``: the paper's perfect
        one-round channel).  Lossy/jammed channels stress the schemes'
        message traffic the way failures stress their sensing.
    trials:
        Independent repetitions; each trial re-seeds the deployment and the
        controller stream together (one trial runs the scenario seed itself,
        several trials use seeds spawned from it).
    max_rounds:
        Optional hard bound on simulation rounds (``None``: engine default).
    idle_round_limit:
        Consecutive no-progress rounds before the engine declares a stall.
    run_to_exhaustion:
        Lifetime mode: keep draining until the network dies (requires an
        energy model with positive idle drain).
    shards:
        Column-band worker processes per run (``[engine] shards``).  Purely
        an execution option: results and cache entries are byte-identical at
        any value, and ineligible runs fall back to sequential execution.
    shard_mode:
        ``"fork"`` (worker processes) or ``"inline"`` (in-process tiles).
    """

    name: str
    scenario: ScenarioConfig = ScenarioConfig()
    schemes: Tuple[str, ...] = ("SR", "AR")
    description: str = ""
    stresses: str = ""
    expected: str = ""
    failures: Tuple[FailureEvent, ...] = ()
    energy: Optional[EnergyModel] = None
    channel: Optional[ChannelModel] = None
    trials: int = 1
    max_rounds: Optional[int] = None
    idle_round_limit: int = DEFAULT_IDLE_ROUND_LIMIT
    run_to_exhaustion: bool = False
    shards: int = 1
    shard_mode: str = "fork"

    def __post_init__(self) -> None:
        if not self.name or any(ch.isspace() for ch in self.name):
            raise ScenarioValidationError(
                "name", f"must be a non-empty token without whitespace, got {self.name!r}"
            )
        object.__setattr__(self, "schemes", tuple(self.schemes))
        object.__setattr__(self, "failures", tuple(self.failures))
        if not self.schemes:
            raise ScenarioValidationError("run.schemes", "must list at least one scheme")
        unknown = [s for s in self.schemes if s not in available_schemes()]
        if unknown:
            raise ScenarioValidationError(
                "run.schemes",
                f"unknown scheme(s) {unknown}; available: {list(available_schemes())}",
            )
        if self.trials < 1:
            raise ScenarioValidationError("run.trials", f"must be >= 1, got {self.trials}")
        if self.max_rounds is not None and self.max_rounds < 1:
            raise ScenarioValidationError(
                "run.max_rounds", f"must be >= 1 when given, got {self.max_rounds}"
            )
        if self.idle_round_limit < 1:
            raise ScenarioValidationError(
                "run.idle_round_limit", f"must be >= 1, got {self.idle_round_limit}"
            )
        if (
            not isinstance(self.shards, int)
            or isinstance(self.shards, bool)
            or self.shards < 1
        ):
            raise ScenarioValidationError(
                "engine.shards", f"must be an integer >= 1, got {self.shards!r}"
            )
        if self.shard_mode not in ("fork", "inline"):
            raise ScenarioValidationError(
                "engine.shard_mode",
                f"must be 'fork' or 'inline', got {self.shard_mode!r}",
            )
        if self.run_to_exhaustion and (
            self.energy is None or self.energy.idle_cost_per_round <= 0
        ):
            raise ScenarioValidationError(
                "run.run_to_exhaustion",
                "requires an [energy] table with a positive idle_cost_per_round "
                "(without idle drain the network never dies)",
            )
        # The engine's default bound (4 * cell_count, see RoundBasedEngine)
        # applies when max_rounds is omitted — an event past the *effective*
        # bound would silently never fire, so both cases are rejected.
        effective_bound = (
            self.max_rounds
            if self.max_rounds is not None
            else 4 * self.scenario.cell_count
        )
        bound_label = (
            f"run.max_rounds is {self.max_rounds}"
            if self.max_rounds is not None
            else f"the engine's default bound is {effective_bound} rounds"
        )
        for index, event in enumerate(self.failures):
            if event.round >= effective_bound:
                raise ScenarioValidationError(
                    f"failures[{index}].round",
                    f"round {event.round} never fires: {bound_label}",
                )
            if event.kind == "targeted_cells":
                self._validate_cells_in_grid(index, event)

    def _validate_cells_in_grid(self, index: int, event: FailureEvent) -> None:
        params = thaw_params(event.params)
        for cell in params.get("cells", ()):
            x, y = cell
            if not (0 <= x < self.scenario.columns and 0 <= y < self.scenario.rows):
                raise ScenarioValidationError(
                    f"failures[{index}].cells",
                    f"cell [{x}, {y}] is outside the "
                    f"{self.scenario.columns}x{self.scenario.rows} grid",
                )

    # -------------------------------------------------------------- execution
    def trial_seeds(self) -> List[int]:
        """Master seed per trial: the scenario seed itself for a single trial,
        independent spawned seeds otherwise."""
        if self.trials == 1:
            return [self.scenario.seed]
        return spawn_seeds(self.scenario.seed, self.trials, label="scenario")

    def run_specs(self) -> List[RunSpec]:
        """Compile into ordinary run specs, trials outermost, schemes innermost.

        The specs are plain :class:`~repro.experiments.orchestration.RunSpec`
        values — byte-identical to what a programmatic caller would build by
        hand — so records cached from a scenario-file run are hits for the
        equivalent programmatic sweep and vice versa.
        """
        specs: List[RunSpec] = []
        for trial_seed in self.trial_seeds():
            config = self.scenario.with_seed(trial_seed)
            for scheme in self.schemes:
                specs.append(
                    RunSpec(
                        scenario=config,
                        scheme=scheme,
                        seed=trial_seed,
                        max_rounds=self.max_rounds,
                        idle_round_limit=self.idle_round_limit,
                        energy=self.energy,
                        run_to_exhaustion=self.run_to_exhaustion,
                        failures=self.failures,
                        channel=self.channel,
                        shards=self.shards,
                        shard_mode=self.shard_mode,
                    )
                )
        return specs

    def execute(
        self,
        executor: Optional[RunExecutor] = None,
        cache: Optional[RunCache] = None,
        broker: Optional[object] = None,
    ) -> List[RunRecord]:
        """Run every spec of the scenario and return the records in spec order.

        ``broker`` routes the specs through a long-running
        :class:`~repro.experiments.broker.ExperimentBroker` (the serve layer
        uses this); otherwise the one-shot ``executor``/``cache`` pair applies.
        """
        return execute_many(
            self.run_specs(), executor=executor, cache=cache, broker=broker
        )

    # -------------------------------------------------------------- variants
    def with_spare_surplus(self, spare_surplus: int) -> "Scenario":
        """Copy with a different paper ``N`` (used by ``scenario sweep``)."""
        return dataclasses.replace(
            self, scenario=self.scenario.with_spare_surplus(spare_surplus)
        )

    def with_seed(self, seed: int) -> "Scenario":
        """Copy with a different master seed."""
        return dataclasses.replace(self, scenario=self.scenario.with_seed(seed))

    def smoke_variant(self) -> "Scenario":
        """A bounded variant for CI smoke gates: one trial, few rounds.

        The round cap is :data:`SMOKE_MAX_ROUNDS`, extended just past the last
        scheduled failure so every declared event still fires.
        """
        cap = max(SMOKE_MAX_ROUNDS, *(e.round + 10 for e in self.failures)) if (
            self.failures
        ) else SMOKE_MAX_ROUNDS
        bound = cap if self.max_rounds is None else min(self.max_rounds, cap)
        return dataclasses.replace(self, trials=1, max_rounds=bound)


# -------------------------------------------------------------- dict <-> data
def scenario_to_dict(scenario: Scenario) -> Dict[str, object]:
    """Canonical JSON/TOML-compatible form of a scenario (stable key order)."""
    payload: Dict[str, object] = {
        "format": SCENARIO_FORMAT_VERSION,
        "name": scenario.name,
    }
    for key in ("description", "stresses", "expected"):
        value = getattr(scenario, key)
        if value:
            payload[key] = value
    config = dataclasses.asdict(scenario.scenario)
    payload["scenario"] = {k: v for k, v in config.items() if v is not None}
    if scenario.energy is not None:
        payload["energy"] = dataclasses.asdict(scenario.energy)
    if scenario.channel is not None:
        payload["channel"] = channel_to_dict(scenario.channel)
    engine: Dict[str, object] = {}
    if scenario.shards != 1:
        engine["shards"] = scenario.shards
    if scenario.shard_mode != "fork":
        engine["shard_mode"] = scenario.shard_mode
    if engine:
        payload["engine"] = engine
    run: Dict[str, object] = {
        "schemes": list(scenario.schemes),
        "trials": scenario.trials,
    }
    if scenario.max_rounds is not None:
        run["max_rounds"] = scenario.max_rounds
    run["idle_round_limit"] = scenario.idle_round_limit
    run["run_to_exhaustion"] = scenario.run_to_exhaustion
    payload["run"] = run
    if scenario.failures:
        payload["failures"] = [
            {
                "round": event.round,
                "kind": event.kind,
                **{k: _plain_value(v) for k, v in thaw_params(event.params).items()},
            }
            for event in scenario.failures
        ]
    return payload


def _plain_value(value: object) -> object:
    if isinstance(value, tuple):
        return [_plain_value(item) for item in value]
    return value


_TOP_LEVEL_KEYS = (
    "format",
    "name",
    "description",
    "stresses",
    "expected",
    "scenario",
    "energy",
    "channel",
    "engine",
    "run",
    "failures",
)
_RUN_KEYS = ("schemes", "trials", "max_rounds", "idle_round_limit", "run_to_exhaustion")
_ENGINE_KEYS = ("shards", "shard_mode")


def scenario_from_dict(payload: Mapping[str, object]) -> Scenario:
    """Validate a scenario document and construct the :class:`Scenario`.

    Every schema violation raises :class:`ScenarioValidationError` naming the
    offending key; errors raised by the underlying config classes
    (:class:`~repro.sim.scenario.ScenarioConfig`,
    :class:`~repro.network.energy.EnergyModel`, failure builders) are wrapped
    with the same location context.
    """
    if not isinstance(payload, Mapping):
        raise ScenarioValidationError(
            "<document>", f"expected a table/object, got {type(payload).__name__}"
        )
    _reject_unknown_keys(payload, _TOP_LEVEL_KEYS, where="<document>")
    fmt = payload.get("format", SCENARIO_FORMAT_VERSION)
    if fmt != SCENARIO_FORMAT_VERSION:
        raise ScenarioValidationError(
            "format",
            f"unsupported scenario format {fmt!r}; this build reads "
            f"format = {SCENARIO_FORMAT_VERSION}",
        )
    name = payload.get("name")
    if not isinstance(name, str) or not name:
        raise ScenarioValidationError("name", f"must be a non-empty string, got {name!r}")

    config = _scenario_config_from(payload.get("scenario", {}))
    energy = _energy_from(payload.get("energy"))
    channel = _channel_from(payload.get("channel"))
    shards, shard_mode = _engine_from(payload.get("engine"))
    run = payload.get("run", {})
    if not isinstance(run, Mapping):
        raise ScenarioValidationError("run", f"must be a table, got {type(run).__name__}")
    _reject_unknown_keys(run, _RUN_KEYS, where="run")
    schemes = run.get("schemes", ["SR", "AR"])
    if not isinstance(schemes, Sequence) or isinstance(schemes, str) or not all(
        isinstance(s, str) for s in schemes
    ):
        raise ScenarioValidationError(
            "run.schemes", f"must be a list of scheme names, got {schemes!r}"
        )
    failures = _failures_from(payload.get("failures", ()))

    def _text(key: str) -> str:
        value = payload.get(key, "")
        if not isinstance(value, str):
            raise ScenarioValidationError(key, f"must be a string, got {value!r}")
        return value

    try:
        return Scenario(
            name=name,
            scenario=config,
            schemes=tuple(schemes),
            description=_text("description"),
            stresses=_text("stresses"),
            expected=_text("expected"),
            failures=failures,
            energy=energy,
            channel=channel,
            trials=_int_field(run, "trials", 1),
            max_rounds=_optional_int_field(run, "max_rounds"),
            idle_round_limit=_int_field(run, "idle_round_limit", DEFAULT_IDLE_ROUND_LIMIT),
            run_to_exhaustion=_bool_field(run, "run_to_exhaustion", False),
            shards=shards,
            shard_mode=shard_mode,
        )
    except ScenarioValidationError:
        raise
    except (TypeError, ValueError) as error:
        raise ScenarioValidationError("<document>", str(error)) from error


def _reject_unknown_keys(
    table: Mapping[str, object], allowed: Sequence[str], where: str
) -> None:
    unknown = sorted(set(table) - set(allowed))
    if unknown:
        raise ScenarioValidationError(
            where, f"unknown key(s) {unknown}; allowed: {sorted(allowed)}"
        )


def _int_field(table: Mapping[str, object], key: str, default: int) -> int:
    value = table.get(key, default)
    if not isinstance(value, int) or isinstance(value, bool):
        raise ScenarioValidationError(f"run.{key}", f"must be an integer, got {value!r}")
    return value


def _optional_int_field(table: Mapping[str, object], key: str) -> Optional[int]:
    value = table.get(key)
    if value is None:
        return None
    if not isinstance(value, int) or isinstance(value, bool):
        raise ScenarioValidationError(f"run.{key}", f"must be an integer, got {value!r}")
    return value


def _bool_field(table: Mapping[str, object], key: str, default: bool) -> bool:
    value = table.get(key, default)
    if not isinstance(value, bool):
        raise ScenarioValidationError(f"run.{key}", f"must be a boolean, got {value!r}")
    return value


def _scenario_config_from(table: object) -> ScenarioConfig:
    if not isinstance(table, Mapping):
        raise ScenarioValidationError(
            "scenario", f"must be a table, got {type(table).__name__}"
        )
    field_names = [f.name for f in dataclasses.fields(ScenarioConfig)]
    _reject_unknown_keys(table, field_names, where="scenario")
    try:
        return ScenarioConfig(**dict(table))
    except (TypeError, ValueError) as error:
        raise ScenarioValidationError("scenario", str(error)) from error


def _energy_from(table: object) -> Optional[EnergyModel]:
    if table is None:
        return None
    if not isinstance(table, Mapping):
        raise ScenarioValidationError(
            "energy", f"must be a table, got {type(table).__name__}"
        )
    field_names = [f.name for f in dataclasses.fields(EnergyModel)]
    _reject_unknown_keys(table, field_names, where="energy")
    try:
        return EnergyModel(**dict(table))
    except (TypeError, ValueError) as error:
        raise ScenarioValidationError("energy", str(error)) from error


def _channel_from(table: object) -> Optional[ChannelModel]:
    if table is None:
        return None
    if not isinstance(table, Mapping):
        raise ScenarioValidationError(
            "channel", f"must be a table, got {type(table).__name__}"
        )
    try:
        return channel_from_dict(table)
    except (TypeError, ValueError) as error:
        raise ScenarioValidationError("channel", str(error)) from error


def _engine_from(table: object) -> Tuple[int, str]:
    """Validate the optional ``[engine]`` table; returns (shards, shard_mode).

    Range checks (``shards >= 1``, mode in fork/inline) live in
    :meth:`Scenario.__post_init__` so programmatic construction is validated
    identically; this validator only guards the document-level types with
    per-key locations.
    """
    if table is None:
        return (1, "fork")
    if not isinstance(table, Mapping):
        raise ScenarioValidationError(
            "engine", f"must be a table, got {type(table).__name__}"
        )
    _reject_unknown_keys(table, _ENGINE_KEYS, where="engine")
    shards = table.get("shards", 1)
    if not isinstance(shards, int) or isinstance(shards, bool):
        raise ScenarioValidationError(
            "engine.shards", f"must be an integer, got {shards!r}"
        )
    shard_mode = table.get("shard_mode", "fork")
    if not isinstance(shard_mode, str):
        raise ScenarioValidationError(
            "engine.shard_mode", f"must be a string, got {shard_mode!r}"
        )
    return (shards, shard_mode)


def _failures_from(entries: object) -> Tuple[FailureEvent, ...]:
    if not isinstance(entries, Sequence) or isinstance(entries, (str, bytes)):
        raise ScenarioValidationError(
            "failures", f"must be an array of tables, got {type(entries).__name__}"
        )
    events: List[FailureEvent] = []
    for index, entry in enumerate(entries):
        where = f"failures[{index}]"
        if not isinstance(entry, Mapping):
            raise ScenarioValidationError(
                where, f"must be a table, got {type(entry).__name__}"
            )
        round_index = entry.get("round")
        if not isinstance(round_index, int) or isinstance(round_index, bool):
            raise ScenarioValidationError(
                f"{where}.round", f"must be a non-negative integer, got {round_index!r}"
            )
        kind = entry.get("kind")
        if not isinstance(kind, str) or not kind:
            raise ScenarioValidationError(
                f"{where}.kind",
                f"must be one of {list(available_failure_kinds())}, got {kind!r}",
            )
        params = {k: v for k, v in entry.items() if k not in ("round", "kind")}
        try:
            events.append(
                FailureEvent(round=round_index, kind=kind, params=freeze_params(params))
            )
        except ValueError as error:
            raise ScenarioValidationError(where, str(error)) from error
    return tuple(events)


# ------------------------------------------------------------------- file I/O
def loads_scenario(text: str, format: str = "toml") -> Scenario:
    """Parse a scenario document from a string (``format``: toml or json)."""
    if format == "toml":
        payload = _toml_loads(text)
    elif format == "json":
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as error:
            raise ScenarioValidationError("<document>", f"invalid JSON: {error}") from error
    else:
        raise ValueError(f"format must be 'toml' or 'json', got {format!r}")
    return scenario_from_dict(payload)


def load_scenario(path: Union[str, Path]) -> Scenario:
    """Load a scenario file; the format is chosen by suffix (.toml / .json)."""
    path = Path(path)
    format = _format_for(path)
    return loads_scenario(path.read_text(), format=format)


def dumps_scenario(scenario: Scenario, format: str = "toml") -> str:
    """Serialize a scenario deterministically (byte-stable across round trips)."""
    payload = scenario_to_dict(scenario)
    if format == "toml":
        return _toml_dumps(payload)
    if format == "json":
        return json.dumps(payload, indent=2, ensure_ascii=False) + "\n"
    raise ValueError(f"format must be 'toml' or 'json', got {format!r}")


def dump_scenario(scenario: Scenario, path: Union[str, Path]) -> Path:
    """Write a scenario file; the format is chosen by suffix (.toml / .json)."""
    path = Path(path)
    path.write_text(dumps_scenario(scenario, format=_format_for(path)))
    return path


def _format_for(path: Path) -> str:
    suffix = path.suffix.lower()
    if suffix == ".toml":
        return "toml"
    if suffix == ".json":
        return "json"
    raise ValueError(
        f"cannot infer scenario format from {path.name!r}; use a .toml or .json suffix"
    )


def _toml_loads(text: str) -> Dict[str, object]:
    try:
        import tomllib
    except ModuleNotFoundError:  # pragma: no cover - Python < 3.11 fallback
        try:
            import tomli as tomllib  # type: ignore[no-redef]
        except ModuleNotFoundError as error:
            raise ScenarioValidationError(
                "<document>",
                "reading TOML scenarios needs Python >= 3.11 (tomllib) or the "
                "'tomli' package; alternatively use a .json scenario file",
            ) from error
    try:
        return tomllib.loads(text)
    except tomllib.TOMLDecodeError as error:
        raise ScenarioValidationError("<document>", f"invalid TOML: {error}") from error


# -------------------------------------------------------- deterministic TOML
def _toml_dumps(payload: Mapping[str, object]) -> str:
    """Emit the restricted scenario-document schema as deterministic TOML.

    This is intentionally not a general TOML writer: it handles exactly the
    value shapes :func:`scenario_to_dict` produces (scalars, flat tables, one
    array of tables) with a fixed key order, which is what makes
    ``load -> dump -> load`` byte-stable.
    """
    lines: List[str] = []
    for key, value in payload.items():
        if isinstance(value, Mapping) or key == "failures":
            continue
        lines.append(f"{key} = {_toml_value(value)}")
    for key in ("scenario", "energy", "channel", "engine", "run"):
        table = payload.get(key)
        if not isinstance(table, Mapping):
            continue
        lines.append("")
        lines.append(f"[{key}]")
        for sub_key, sub_value in table.items():
            lines.append(f"{sub_key} = {_toml_value(sub_value)}")
    for entry in payload.get("failures", ()):
        lines.append("")
        lines.append("[[failures]]")
        ordered = ["round", "kind"] + sorted(set(entry) - {"round", "kind"})
        for sub_key in ordered:
            lines.append(f"{sub_key} = {_toml_value(entry[sub_key])}")
    return "\n".join(lines) + "\n"


def _toml_value(value: object) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float):
        text = repr(value)
        return text if ("." in text or "e" in text or "E" in text) else text + ".0"
    if isinstance(value, str):
        return json.dumps(value, ensure_ascii=False)
    if isinstance(value, (list, tuple)):
        return "[" + ", ".join(_toml_value(item) for item in value) + "]"
    raise TypeError(f"cannot serialize {value!r} ({type(value).__name__}) to TOML")


# ------------------------------------------------------------------ reporting
def tabulate_records(
    scenario: Scenario, records: Sequence[RunRecord]
) -> ExperimentResult:
    """One row per scheme (averaged over trials) for a scenario's records.

    The records must be in :meth:`Scenario.run_specs` order (trials
    outermost, schemes innermost), which is what :meth:`Scenario.execute`
    returns.
    """
    columns = [
        "scheme",
        "rounds",
        "converged",
        "stalled",
        "processes",
        "success_rate",
        "moves",
        "distance_m",
        "holes_left",
    ]
    if scenario.energy is not None:
        columns += ["depleted_nodes", "energy_consumed"]
    if scenario.channel is not None:
        columns += ["messages", "dropped", "delivery_latency"]
    result = ExperimentResult(
        name=f"scenario {scenario.name}",
        columns=columns,
        description=scenario.description,
    )
    per_scheme: Dict[str, List[Dict[str, object]]] = {s: [] for s in scenario.schemes}
    record_iter = iter(records)
    for _ in range(scenario.trials):
        for scheme in scenario.schemes:
            record = next(record_iter)
            metrics = record.metrics
            row: Dict[str, object] = {
                "scheme": scheme,
                "rounds": metrics.rounds,
                "converged": 1.0 if record.converged else 0.0,
                "stalled": 1.0 if record.stalled else 0.0,
                "processes": metrics.processes_initiated,
                "success_rate": metrics.success_rate,
                "moves": metrics.total_moves,
                "distance_m": metrics.total_distance,
                "holes_left": metrics.final_holes,
            }
            if scenario.energy is not None:
                summary = metrics.energy
                row["depleted_nodes"] = summary.depleted_nodes if summary else 0
                row["energy_consumed"] = summary.total_consumed if summary else 0.0
            if scenario.channel is not None:
                row["messages"] = metrics.messages_sent
                row["dropped"] = metrics.messages_dropped
                row["delivery_latency"] = metrics.mean_delivery_latency
            per_scheme[scheme].append(row)
    for scheme in scenario.schemes:
        result.add_row(**average_dicts(per_scheme[scheme]))
    return result
