"""Unit tests for the energy accounting helpers."""

import pytest

from repro.core.hamilton import build_hamilton_cycle
from repro.core.replacement import HamiltonReplacementController
from repro.grid.virtual_grid import GridCoord
from repro.network.energy import (
    EnergySummary,
    energy_summary,
    per_scheme_energy_costs,
    recovery_energy_cost,
)
from repro.network.node import DEFAULT_BATTERY_CAPACITY, MESSAGE_COST, MOVE_COST_PER_METER
from repro.sim.engine import run_recovery

from helpers import make_hole


class TestEnergySummary:
    def test_fresh_network_is_fully_charged(self, dense_state):
        summary = energy_summary(dense_state)
        assert summary.enabled_nodes == dense_state.enabled_count
        assert summary.mean_energy == pytest.approx(DEFAULT_BATTERY_CAPACITY)
        assert summary.total_consumed == pytest.approx(0.0)
        assert summary.depleted_nodes == 0
        assert summary.imbalance == pytest.approx(0.0)
        assert summary.head_mean_energy == pytest.approx(DEFAULT_BATTERY_CAPACITY)
        assert summary.spare_mean_energy == pytest.approx(DEFAULT_BATTERY_CAPACITY)

    def test_empty_network(self, dense_state, rng):
        for node in dense_state.enabled_nodes():
            dense_state.disable_node(node.node_id)
        summary = energy_summary(dense_state)
        assert summary.enabled_nodes == 0
        assert summary.total_energy == 0.0

    def test_recovery_drains_energy(self, dense_state, rng):
        make_hole(dense_state, GridCoord(2, 2))
        controller = HamiltonReplacementController(build_hamilton_cycle(dense_state.grid))
        result = run_recovery(dense_state, controller, rng)
        summary = energy_summary(dense_state)
        assert summary.total_consumed > 0.0
        assert summary.imbalance > 0.0
        # Consumed energy matches the cost model applied to the run metrics.
        expected = recovery_energy_cost(
            result.metrics.total_distance, result.metrics.messages_sent
        )
        assert summary.total_consumed == pytest.approx(expected, rel=1e-6)


class TestCostModel:
    def test_recovery_energy_cost_formula(self):
        cost = recovery_energy_cost(total_distance=25.0, messages_sent=4)
        assert cost == pytest.approx(25.0 * MOVE_COST_PER_METER + 4 * MESSAGE_COST)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            recovery_energy_cost(-1.0)
        with pytest.raises(ValueError):
            recovery_energy_cost(1.0, messages_sent=-1)

    def test_per_scheme_costs_follow_distance_ordering(self, dense_state, rng):
        from repro.core.baseline_ar import LocalizedReplacementController

        holes = [GridCoord(1, 1), GridCoord(3, 3)]
        sr_state, ar_state = dense_state.clone(), dense_state.clone()
        for hole in holes:
            make_hole(sr_state, hole)
            make_hole(ar_state, hole)
        sr = HamiltonReplacementController(build_hamilton_cycle(sr_state.grid))
        ar = LocalizedReplacementController(ar_state.grid)
        metrics = {
            "SR": run_recovery(sr_state, sr, rng).metrics,
            "AR": run_recovery(ar_state, ar, rng).metrics,
        }
        costs = per_scheme_energy_costs(metrics)
        assert set(costs) == {"SR", "AR"}
        # In this dense scenario SR moves less, hence consumes less energy.
        assert costs["SR"] <= costs["AR"]
