"""Sensor node model.

A node is a small battery-powered device with a position, a radio, and a
working status.  Following the paper, nodes that have failed or misbehave are
*disabled* and excluded from the collaboration; the remaining *enabled* nodes
constitute the WSN.  Within each virtual-grid cell one enabled node is
elected *grid head* and the others are *spare* nodes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional

from repro.grid.geometry import Point


class NodeState(enum.Enum):
    """Working status of a sensor node."""

    ENABLED = "enabled"
    FAILED = "failed"
    MISBEHAVING = "misbehaving"

    @property
    def is_enabled(self) -> bool:
        return self is NodeState.ENABLED


class NodeRole(enum.Enum):
    """Role of an enabled node inside its virtual-grid cell."""

    HEAD = "head"
    SPARE = "spare"
    UNASSIGNED = "unassigned"


#: Default battery capacity in joules.  The exact value is irrelevant to the
#: paper's experiments; it only matters for the battery-depletion failure
#: model and the energy accounting extension.
DEFAULT_BATTERY_CAPACITY = 100.0

#: Energy cost per metre moved (joules/metre).  Movement dominates the energy
#: budget of mobile sensors, so message costs are comparatively tiny.
MOVE_COST_PER_METER = 1.0

#: Energy cost of transmitting one control message (joules).
MESSAGE_COST = 0.01


@dataclass
class SensorNode:
    """A single sensor device.

    Attributes
    ----------
    node_id:
        Unique integer identifier.
    position:
        Current location in the surveillance plane (metres).
    state:
        Whether the node is enabled or disabled (failed / misbehaving).
    role:
        Head / spare role within its current cell.
    energy:
        Remaining battery energy in joules.
    moved_distance:
        Total distance moved so far, in metres.
    move_count:
        Number of relocation moves performed so far.
    """

    node_id: int
    position: Point
    state: NodeState = NodeState.ENABLED
    role: NodeRole = NodeRole.UNASSIGNED
    energy: float = DEFAULT_BATTERY_CAPACITY
    moved_distance: float = 0.0
    move_count: int = 0
    position_history: List[Point] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.node_id < 0:
            raise ValueError(f"node_id must be non-negative, got {self.node_id}")
        if self.energy < 0:
            raise ValueError(f"energy must be non-negative, got {self.energy}")

    # ------------------------------------------------------------------ state
    @property
    def is_enabled(self) -> bool:
        """Whether the node participates in the collaboration."""
        return self.state.is_enabled

    @property
    def is_head(self) -> bool:
        return self.is_enabled and self.role is NodeRole.HEAD

    @property
    def is_spare(self) -> bool:
        return self.is_enabled and self.role is NodeRole.SPARE

    def disable(self, reason: NodeState = NodeState.FAILED) -> None:
        """Remove the node from the collaboration (failure or misbehaviour)."""
        if reason is NodeState.ENABLED:
            raise ValueError("disable() requires a non-enabled reason state")
        self.state = reason
        self.role = NodeRole.UNASSIGNED

    def enable(self) -> None:
        """Re-admit the node to the collaboration (e.g. after re-attestation)."""
        self.state = NodeState.ENABLED
        self.role = NodeRole.UNASSIGNED

    # ------------------------------------------------------------------- move
    def relocate(self, target: Point, record_history: bool = False) -> float:
        """Move the node to ``target`` and account for distance and energy.

        Returns the distance travelled.  Raises :class:`RuntimeError` when the
        node is disabled — disabled nodes cannot take part in replacement.
        """
        if not self.is_enabled:
            raise RuntimeError(f"node {self.node_id} is disabled and cannot move")
        distance = self.position.distance_to(target)
        if record_history:
            self.position_history.append(self.position)
        self.position = target
        self.moved_distance += distance
        self.move_count += 1
        self.consume_energy(distance * MOVE_COST_PER_METER)
        return distance

    # ----------------------------------------------------------------- energy
    def consume_energy(self, amount: float) -> None:
        """Subtract ``amount`` joules, clamping at zero."""
        if amount < 0:
            raise ValueError(f"energy amount must be non-negative, got {amount}")
        self.energy = max(0.0, self.energy - amount)

    @property
    def is_battery_depleted(self) -> bool:
        return self.energy <= 0.0

    def charge_message_cost(self, messages: int = 1) -> None:
        """Account for the transmission cost of ``messages`` control messages."""
        self.consume_energy(MESSAGE_COST * messages)

    # ------------------------------------------------------------------ copy
    def copy(self) -> "SensorNode":
        """Independent copy of the node (positions are immutable and shared)."""
        return SensorNode(
            node_id=self.node_id,
            position=self.position,
            state=self.state,
            role=self.role,
            energy=self.energy,
            moved_distance=self.moved_distance,
            move_count=self.move_count,
            position_history=list(self.position_history),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"SensorNode(id={self.node_id}, pos=({self.position.x:.2f}, "
            f"{self.position.y:.2f}), state={self.state.value}, role={self.role.value})"
        )


def enabled_only(nodes) -> List[SensorNode]:
    """Filter an iterable of nodes down to the enabled ones."""
    return [node for node in nodes if node.is_enabled]


def find_node(nodes, node_id: int) -> Optional[SensorNode]:
    """Linear search for a node by id (convenience for small collections)."""
    for node in nodes:
        if node.node_id == node_id:
            return node
    return None
