"""Extension baselines from the related work discussed in Section 1.

These schemes are *not* part of the paper's own evaluation (it compares SR
only against AR), but the introduction motivates SR by contrasting it with
two families of movement-assisted deployment methods:

* virtual-force methods [Wang/Cao/La Porta 2006, Zou/Chakrabarty 2003] —
  :class:`repro.baselines.virtual_force.VirtualForceController`;
* scan-based balancing (SMART) [Wu/Yang 2005] —
  :class:`repro.baselines.smart_scan.SmartScanController`.

Implementing them lets the extended benchmarks quantify the paper's
qualitative claims (slow convergence and many unnecessary movements) on the
same scenarios used for Figures 6-8.
"""

from repro.baselines.virtual_force import VirtualForceController
from repro.baselines.smart_scan import SmartScanController

__all__ = ["VirtualForceController", "SmartScanController"]
