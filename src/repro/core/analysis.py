"""Analytical cost model of a single replacement (Theorem 2 and Corollary 2).

Theorem 2 of the paper gives the expected number of node movements ``M`` of a
converged replacement process when ``N`` spare nodes are uniformly
distributed over the ``L`` cells of the Hamilton path deduced from the
directed Hamilton cycle:

.. math::

    M = \\sum_{i=1}^{L} i \\cdot P(i)

where ``P(i)`` (Equation 1) is the probability that the nearest spare along
the path is exactly ``i`` hops upstream of the hole.  The equation simplifies
to ``P(i) = ((L-i+1)/L)^N - ((L-i)/L)^N``, which telescopes to the convenient
closed form ``M = sum_{j=1..L} (j/L)^N`` used by :func:`expected_movements`.

Corollary 2 states that the same expression with ``L = m*n - 2`` applies to
the dual-path construction for odd-by-odd grids.

Section 4 further estimates the *distance* of each hop as ``1.08 * r`` on
average (a move targets the central ``r/2 x r/2`` area of the destination
cell, so a hop covers between ``r/4`` and ``sqrt(58)/4 * r``), which yields
the total-moving-distance estimates of Figure 5.
"""

from __future__ import annotations

import math
from typing import Iterable, List, Sequence, Tuple

import numpy as np

from repro.grid.virtual_grid import AVERAGE_MOVE_FACTOR, move_distance_bounds


def _validate(spares: int, path_length: int) -> None:
    if path_length < 1:
        raise ValueError(f"path_length must be >= 1, got {path_length}")
    if spares < 0:
        raise ValueError(f"spares must be >= 0, got {spares}")


def movement_distribution(spares: int, path_length: int) -> np.ndarray:
    """``P(i)`` for ``i = 1 .. L`` (Equation 1 of the paper).

    ``P(i)`` is the probability that the nearest spare node along the
    Hamilton path is exactly ``i`` hops away from the vacant cell, assuming
    the ``spares`` nodes are placed in the ``path_length`` cells uniformly and
    independently.  The returned array has ``path_length`` entries and sums to
    1 whenever ``spares >= 1``; with no spares the whole mass sits on ``i=L``
    (the cascade walks the entire path without converging).
    """
    _validate(spares, path_length)
    length = path_length
    i = np.arange(1, length + 1, dtype=float)
    upper = ((length - i + 1.0) / length) ** spares
    lower = ((length - i) / length) ** spares
    distribution = upper - lower
    # The paper's Equation (1) defines P(L) as the bare prefix product (the
    # probability that no spare sits in the first L-1 cells): with N = 0 the
    # whole mass therefore lands on i = L — the cascade walks the entire path.
    distribution[-1] = upper[-1]
    return distribution


def expected_movements(spares: int, path_length: int) -> float:
    """``M`` — expected node movements of a single replacement (Theorem 2).

    Uses the telescoped closed form ``M = sum_{j=1..L} (j/L)^N`` which is
    algebraically identical to ``sum i * P(i)`` but numerically more robust
    for large grids.
    """
    _validate(spares, path_length)
    j = np.arange(1, path_length + 1, dtype=float)
    return float(np.sum((j / path_length) ** spares))


def expected_movements_dual_path(spares: int, columns: int, rows: int) -> float:
    """Corollary 2: expected movements in an odd-by-odd grid with the dual-path cycle."""
    if columns < 3 or rows < 3 or columns % 2 == 0 or rows % 2 == 0:
        raise ValueError(
            f"dual-path analysis applies to odd-by-odd grids of at least 3x3, got {columns}x{rows}"
        )
    return expected_movements(spares, columns * rows - 2)


def expected_total_distance(
    spares: int, path_length: int, cell_size: float
) -> float:
    """Expected total moving distance of one replacement (the Figure 5 estimate).

    The paper multiplies the expected number of hops by the average per-hop
    distance ``1.08 * r``.
    """
    if cell_size <= 0:
        raise ValueError(f"cell_size must be positive, got {cell_size}")
    return AVERAGE_MOVE_FACTOR * cell_size * expected_movements(spares, path_length)


def hop_distance_statistics(cell_size: float) -> Tuple[float, float, float]:
    """(min, average, max) per-hop distance for a given cell size (Section 4)."""
    low, high = move_distance_bounds(cell_size)
    return low, AVERAGE_MOVE_FACTOR * cell_size, high


def movements_series(
    spare_values: Iterable[int], path_length: int
) -> List[Tuple[int, float]]:
    """``(N, M)`` pairs for a sweep over spare counts — the data behind Figure 3."""
    return [(n, expected_movements(n, path_length)) for n in spare_values]


def distance_series(
    spare_values: Iterable[int], path_length: int, cell_size: float
) -> List[Tuple[int, float]]:
    """``(N, distance)`` pairs for a sweep over spare counts — the data behind Figure 5."""
    return [
        (n, expected_total_distance(n, path_length, cell_size)) for n in spare_values
    ]


def expected_network_movements(
    holes: int, spares: int, path_length: int
) -> float:
    """Expected total movements to repair ``holes`` simultaneous holes.

    The paper's Figure 7(b) multiplies the single-replacement expectation by
    the number of holes; interactions between concurrent cascades are ignored
    (they are second-order for the uniform workload of Section 5).
    """
    if holes < 0:
        raise ValueError(f"holes must be >= 0, got {holes}")
    return holes * expected_movements(spares, path_length)


def expected_network_distance(
    holes: int, spares: int, path_length: int, cell_size: float
) -> float:
    """Expected total moving distance to repair ``holes`` holes (Figure 8(b))."""
    if holes < 0:
        raise ValueError(f"holes must be >= 0, got {holes}")
    return holes * expected_total_distance(spares, path_length, cell_size)


def spares_for_expected_movements(
    path_length: int, target_movements: float = 2.0
) -> int:
    """Smallest spare count whose expected movements do not exceed ``target_movements``.

    Dividing the result by the number of grid cells gives the minimum enabled
    density the paper quotes ("when the density of enabled nodes is kept above
    1.68 per grid, the number of node movements can still be controlled to 2
    in the 16x16 grid system"), to be compared against the density of 4 per
    grid required by the balancing baselines.
    """
    if target_movements < 1.0:
        raise ValueError("target_movements below 1 is unattainable: every replacement moves at least once")
    low, high = 0, 1
    while expected_movements(high, path_length) > target_movements:
        high *= 2
        if high > 10**9:  # pragma: no cover - defensive guard
            raise RuntimeError("failed to bracket the spare count")
    while low < high:
        mid = (low + high) // 2
        if expected_movements(mid, path_length) <= target_movements:
            high = mid
        else:
            low = mid + 1
    return low


def minimum_density_for_expected_movements(
    columns: int, rows: int, target_movements: float = 2.0
) -> float:
    """Minimum enabled-node density (nodes per cell) for the target expected movements.

    Density is ``(cells + spares) / cells`` — one head per cell plus the
    spares required by :func:`spares_for_expected_movements`.
    """
    cells = columns * rows
    if cells < 2:
        raise ValueError("the grid must have at least 2 cells")
    path_length = cells - 1 if (cells % 2 == 0) else cells - 2
    spares = spares_for_expected_movements(path_length, target_movements)
    return (cells + spares) / cells


def convergence_probability_within(
    spares: int, path_length: int, hops: int
) -> float:
    """Probability that a replacement converges within ``hops`` movements.

    ``sum_{i<=hops} P(i)`` — useful for tail analyses and the property-based
    tests of the analytical model.
    """
    _validate(spares, path_length)
    if hops < 0:
        raise ValueError(f"hops must be >= 0, got {hops}")
    hops = min(hops, path_length)
    if hops == 0:
        return 0.0
    distribution = movement_distribution(spares, path_length)
    return float(np.sum(distribution[:hops]))
