"""Shared fixtures for the figure-regeneration benchmarks.

The experimental figures (6, 7, 8) are all views of the same SR-versus-AR
sweep, so that sweep runs once per pytest session and is shared by the three
benchmark modules.  Every benchmark writes the series it regenerates to
``benchmarks/results/*.csv`` so the numbers can be compared against the
paper's figures (see EXPERIMENTS.md) without re-running anything.

The sweep goes through the orchestration layer
(:mod:`repro.experiments.orchestration`):

* ``REPRO_BENCH_JOBS=<n>`` runs the sweep cells on ``n`` worker processes
  (identical results, shorter session start-up);
* ``REPRO_BENCH_CACHE_DIR=<dir>`` persists the run records so repeated
  benchmark sessions skip the simulations entirely.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.experiments.figures import run_section5_experiment
from repro.experiments.orchestration import make_executor
from repro.experiments.persistence import RunCache
from repro.experiments.results import ExperimentResult
from repro.sim.scenario import ScenarioConfig

#: Spare-surplus sweep used by the benchmark suite.  It brackets the paper's
#: interesting region: below / at / above the N = 55 crossover, up to the
#: N = 1000 right edge of the figures.
BENCH_SPARE_VALUES = [10, 25, 55, 100, 200, 400, 600, 1000]

#: Where benchmarks drop their regenerated data series.
RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def section5_experiment() -> ExperimentResult:
    """One SR-vs-AR sweep over the paper's Section-5 workload (shared by Figs 6-8)."""
    config = ScenarioConfig(
        columns=16,
        rows=16,
        communication_range=10.0,
        deployed_count=5000,
        seed=2008,
    )
    executor = make_executor(int(os.environ.get("REPRO_BENCH_JOBS", "1")))
    cache_dir = os.environ.get("REPRO_BENCH_CACHE_DIR")
    cache = RunCache(cache_dir) if cache_dir else None
    return run_section5_experiment(
        spare_values=BENCH_SPARE_VALUES,
        config=config,
        trials=1,
        executor=executor,
        cache=cache,
    )


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    return RESULTS_DIR
