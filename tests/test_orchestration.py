"""Tests for the run-orchestration layer: registry, executors, persistence.

The contracts exercised here are the ones the sweep stack depends on:

* the scheme registry resolves names, rejects duplicates and unknowns;
* ``execute_run`` is a pure function of its (picklable) ``RunSpec``;
* serial and parallel executors produce identical records in spec order;
* the run cache round-trips records, treats damage as a miss, and lets a
  repeated sweep finish with zero re-executions.
"""

import dataclasses
import json
import pickle

import pytest

from repro.experiments.orchestration import (
    ParallelExecutor,
    RunSpec,
    SerialExecutor,
    execute_many,
    execute_run,
    make_executor,
)
from repro.experiments.persistence import (
    CACHE_FORMAT_VERSION,
    RunCache,
    record_from_dict,
    record_to_dict,
    run_key,
    spec_from_dict,
    spec_to_dict,
)
from repro.experiments.registry import (
    available_schemes,
    get_scheme,
    make_controller,
    register_scheme,
    unregister_scheme,
)
from repro.experiments.sweep import build_comparison_specs, run_comparison
from repro.sim.scenario import ScenarioConfig, build_scenario_state

QUICK_CONFIG = ScenarioConfig(columns=6, rows=6, deployed_count=200, seed=7)


def _module_level_sr_factory(state):
    """Picklable factory for the worker-propagation test (must be top-level)."""
    from repro.core.hamilton import build_hamilton_cycle
    from repro.core.replacement import HamiltonReplacementController

    return HamiltonReplacementController(build_hamilton_cycle(state.grid))


def quick_spec(scheme: str = "SR", seed: int = 7, spare_surplus: int = 15, **kwargs) -> RunSpec:
    return RunSpec(
        scenario=QUICK_CONFIG.with_spare_surplus(spare_surplus),
        scheme=scheme,
        seed=seed,
        **kwargs,
    )


class TestRegistry:
    def test_builtin_schemes_are_registered(self):
        assert set(available_schemes()) >= {"SR", "SR-shortcut", "AR", "VF", "SMART"}
        assert available_schemes() == tuple(sorted(available_schemes()))

    def test_get_scheme_unknown_lists_available(self):
        with pytest.raises(KeyError, match="SR"):
            get_scheme("NOPE")

    def test_make_controller_unknown_scheme(self):
        state = build_scenario_state(QUICK_CONFIG.with_spare_surplus(10))
        with pytest.raises(KeyError):
            make_controller("NOPE", state)

    def test_register_and_unregister_round_trip(self):
        from repro.core.baseline_ar import LocalizedReplacementController

        factory = lambda state: LocalizedReplacementController(state.grid)  # noqa: E731
        register_scheme("AR-test-alias", factory)
        try:
            assert "AR-test-alias" in available_schemes()
            assert get_scheme("AR-test-alias") is factory
            state = build_scenario_state(QUICK_CONFIG.with_spare_surplus(10))
            assert make_controller("AR-test-alias", state).name == "AR"
        finally:
            unregister_scheme("AR-test-alias")
        assert "AR-test-alias" not in available_schemes()

    def test_duplicate_registration_requires_replace(self):
        register_scheme("dup-test", lambda state: None)
        try:
            with pytest.raises(ValueError, match="already registered"):
                register_scheme("dup-test", lambda state: None)
            register_scheme("dup-test", lambda state: None, replace=True)
        finally:
            unregister_scheme("dup-test")

    def test_unregister_unknown_raises(self):
        with pytest.raises(KeyError):
            unregister_scheme("never-registered")

    def test_shadowed_scheme_changes_cache_key(self):
        from repro.experiments.registry import BUILTIN_FACTORIES

        spec = quick_spec()
        key_before = run_key(spec)
        register_scheme("SR", _module_level_sr_factory, replace=True)
        try:
            assert run_key(spec) != key_before
        finally:
            register_scheme("SR", BUILTIN_FACTORIES["SR"], replace=True)
        assert run_key(spec) == key_before

    def test_distinct_lambdas_get_distinct_cache_keys(self):
        from repro.experiments.registry import BUILTIN_FACTORIES

        spec = quick_spec()
        keys = []
        try:
            for factory in (lambda s: ("variant", "A"), lambda s: ("variant", "B")):
                register_scheme("SR", factory, replace=True)
                keys.append(run_key(spec))
        finally:
            register_scheme("SR", BUILTIN_FACTORIES["SR"], replace=True)
        assert len(set(keys)) == 2

    def test_dynamically_registered_scheme_runs_in_parallel(self):
        register_scheme("SR-par-test", _module_level_sr_factory)
        try:
            specs = [
                RunSpec(
                    scenario=QUICK_CONFIG.with_spare_surplus(surplus),
                    scheme="SR-par-test",
                    seed=7,
                )
                for surplus in (5, 15)
            ]
            records = ParallelExecutor(2).run_all(specs)
        finally:
            unregister_scheme("SR-par-test")
        assert [r.spec for r in records] == specs
        assert all(r.metrics.scheme == "SR" for r in records)

    def test_registered_scheme_is_sweepable(self):
        from repro.core.hamilton import build_hamilton_cycle
        from repro.core.replacement import HamiltonReplacementController

        register_scheme(
            "SR-test-alias",
            lambda state: HamiltonReplacementController(build_hamilton_cycle(state.grid)),
        )
        try:
            result = run_comparison(QUICK_CONFIG, [15], schemes=("SR-test-alias",))
        finally:
            unregister_scheme("SR-test-alias")
        assert result.rows[0]["SR-test-alias_success_rate"] == pytest.approx(1.0)


class TestRunSpec:
    def test_spec_is_frozen_and_hashable(self):
        spec = quick_spec()
        with pytest.raises(dataclasses.FrozenInstanceError):
            spec.seed = 99
        assert spec == quick_spec()
        assert hash(spec) == hash(quick_spec())
        assert spec != quick_spec(seed=8)

    def test_spec_pickles(self):
        spec = quick_spec(max_rounds=50)
        assert pickle.loads(pickle.dumps(spec)) == spec

    def test_execute_run_is_deterministic(self):
        first = execute_run(quick_spec())
        second = execute_run(quick_spec())
        assert first == second
        assert first.metrics.scheme == "SR"
        assert first.converged == first.metrics.coverage_restored

    def test_record_pickles(self):
        record = execute_run(quick_spec())
        assert pickle.loads(pickle.dumps(record)) == record


class TestExecutors:
    def test_make_executor_selects_strategy(self):
        assert isinstance(make_executor(None), SerialExecutor)
        assert isinstance(make_executor(1), SerialExecutor)
        assert isinstance(make_executor(3), ParallelExecutor)
        with pytest.raises(ValueError):
            ParallelExecutor(0)

    def test_parallel_matches_serial(self):
        specs = build_comparison_specs(
            QUICK_CONFIG, [5, 15], schemes=("SR", "AR"), trials=2
        )
        serial = SerialExecutor()
        parallel = ParallelExecutor(2)
        serial_records = serial.run_all(specs)
        parallel_records = parallel.run_all(specs)
        assert serial.runs_executed == parallel.runs_executed == len(specs)
        assert [r.spec for r in serial_records] == specs
        assert serial_records == parallel_records

    def test_run_comparison_parallel_parity(self):
        serial = run_comparison(QUICK_CONFIG, [5, 15], trials=2)
        parallel = run_comparison(
            QUICK_CONFIG, [5, 15], trials=2, executor=ParallelExecutor(4)
        )
        assert serial.columns == parallel.columns
        assert serial.rows == parallel.rows

    def test_empty_batch(self):
        assert ParallelExecutor(2).run_all([]) == []
        assert execute_many([]) == []


class TestPersistence:
    def test_spec_dict_round_trip(self):
        spec = quick_spec(max_rounds=77)
        assert spec_from_dict(json.loads(json.dumps(spec_to_dict(spec)))) == spec

    def test_record_dict_round_trip(self):
        record = execute_run(quick_spec())
        assert record_from_dict(json.loads(json.dumps(record_to_dict(record)))) == record

    def test_run_key_covers_every_spec_field(self):
        base = quick_spec()
        variants = [
            quick_spec(seed=8),
            quick_spec(scheme="AR"),
            quick_spec(max_rounds=10),
            quick_spec(idle_round_limit=5),
            quick_spec(spare_surplus=20),
            dataclasses.replace(base, scenario=base.scenario.with_seed(123)),
        ]
        keys = {run_key(base)} | {run_key(v) for v in variants}
        assert len(keys) == len(variants) + 1

    def test_cache_round_trip(self, tmp_path):
        cache = RunCache(tmp_path)
        spec = quick_spec()
        assert cache.get(spec) is None
        record = execute_run(spec)
        path = cache.put(record)
        assert path.exists()
        assert spec in cache
        assert cache.get(spec) == record
        assert len(cache) == 1
        assert cache.clear() == 1
        assert cache.get(spec) is None

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = RunCache(tmp_path)
        record = execute_run(quick_spec())
        path = cache.put(record)
        path.write_text("{not json")
        assert cache.get(quick_spec()) is None

    @pytest.mark.parametrize("content", ["[1, 2]", '"text"', "1", "null"])
    def test_non_object_json_entry_is_a_miss(self, tmp_path, content):
        cache = RunCache(tmp_path)
        record = execute_run(quick_spec())
        path = cache.put(record)
        path.write_text(content)
        assert cache.get(quick_spec()) is None

    def test_put_leaves_no_temp_files(self, tmp_path):
        cache = RunCache(tmp_path)
        cache.put(execute_run(quick_spec()))
        assert [p.suffix for p in tmp_path.iterdir()] == [".json"]

    def test_format_version_mismatch_is_a_miss(self, tmp_path):
        cache = RunCache(tmp_path)
        record = execute_run(quick_spec())
        path = cache.put(record)
        payload = json.loads(path.read_text())
        payload["format_version"] = CACHE_FORMAT_VERSION + 1
        path.write_text(json.dumps(payload))
        assert cache.get(quick_spec()) is None


class TestCachedSweeps:
    def test_second_pass_executes_nothing(self, tmp_path):
        cache = RunCache(tmp_path)
        first_executor = SerialExecutor()
        first = run_comparison(
            QUICK_CONFIG, [5, 15], trials=2, executor=first_executor, cache=cache
        )
        assert first_executor.runs_executed == 8  # 2 N-values x 2 trials x 2 schemes

        second_executor = SerialExecutor()
        second = run_comparison(
            QUICK_CONFIG, [5, 15], trials=2, executor=second_executor, cache=cache
        )
        assert second_executor.runs_executed == 0
        assert second.rows == first.rows

    def test_cache_is_shared_across_overlapping_sweeps(self, tmp_path):
        cache = RunCache(tmp_path)
        run_comparison(QUICK_CONFIG, [5], executor=SerialExecutor(), cache=cache)
        # The [5, 15] sweep shares the N=5 cells with the sweep above.
        executor = SerialExecutor()
        run_comparison(QUICK_CONFIG, [5, 15], executor=executor, cache=cache)
        assert executor.runs_executed == 2  # only the N=15 SR and AR cells

    def test_changed_config_invalidates(self, tmp_path):
        cache = RunCache(tmp_path)
        run_comparison(QUICK_CONFIG, [5], executor=SerialExecutor(), cache=cache)
        executor = SerialExecutor()
        run_comparison(
            QUICK_CONFIG.with_seed(99), [5], executor=executor, cache=cache
        )
        assert executor.runs_executed == 2  # nothing reusable under the new seed

    def test_execute_many_marks_cache_hits(self, tmp_path):
        cache = RunCache(tmp_path)
        specs = [quick_spec(scheme="SR"), quick_spec(scheme="AR")]
        cache.put(execute_run(specs[0]))
        executor = SerialExecutor()
        records = execute_many(specs, executor=executor, cache=cache)
        assert [r.spec for r in records] == specs
        assert records[0].cached and not records[1].cached
        assert executor.runs_executed == 1
        assert cache.hits == 1 and cache.misses == 1


class TestStateCacheOrchestration:
    """The cold-path machinery: scenario grouping, warm pools, shared memory."""

    def test_group_by_scenario_groups_consecutive_runs(self):
        from repro.experiments.orchestration import _group_by_scenario

        a = QUICK_CONFIG.with_spare_surplus(5)
        b = QUICK_CONFIG.with_spare_surplus(15)
        specs = [
            RunSpec(scenario=a, scheme="SR", seed=1),
            RunSpec(scenario=a, scheme="AR", seed=1),
            RunSpec(scenario=b, scheme="SR", seed=1),
            RunSpec(scenario=a, scheme="SR", seed=2),  # a again: new group
        ]
        groups = _group_by_scenario(specs)
        assert [len(group) for group in groups] == [2, 1, 1]
        assert [spec for group in groups for spec in group] == specs
        assert _group_by_scenario([]) == []

    def test_build_initial_state_consults_the_cache(self):
        from repro.experiments.orchestration import build_initial_state
        from repro.experiments.state_cache import StateCache

        cache = StateCache()
        spec = quick_spec()
        build_initial_state(spec, state_cache=cache)
        build_initial_state(spec, state_cache=cache)
        stats = cache.stats()
        assert (stats.misses, stats.hits) == (1, 1)

    def test_serial_executor_builds_each_scenario_once(self, monkeypatch):
        from repro.experiments import state_cache as state_cache_module
        from repro.experiments.state_cache import StateCache

        builds = []
        real_build = state_cache_module.build_scenario_state

        def counting_build(config):
            builds.append(config.spare_surplus)
            return real_build(config)

        monkeypatch.setattr(
            state_cache_module, "build_scenario_state", counting_build
        )
        specs = [
            quick_spec(scheme=scheme, seed=seed, spare_surplus=surplus)
            for surplus in (5, 15)
            for seed in (1, 2)
            for scheme in ("SR", "AR")
        ]
        executor = SerialExecutor(state_cache=StateCache())
        records = executor.run_all(specs)
        assert len(records) == len(specs)
        # 8 specs over 2 distinct scenarios per surplus... scenario ==
        # (surplus) here because the seed lives in the spec, not the config.
        assert sorted(builds) == [5, 15]

    def test_serial_executor_without_cache_matches_cached_records(self):
        from repro.experiments.state_cache import StateCache

        specs = [
            quick_spec(scheme=scheme, seed=seed)
            for seed in (1, 2)
            for scheme in ("SR", "AR")
        ]
        plain = SerialExecutor(state_cache=None).run_all(specs)
        cached = SerialExecutor(state_cache=StateCache(mode="bytes")).run_all(specs)
        assert [record_to_dict(a) for a in plain] == [
            record_to_dict(b) for b in cached
        ]

    def test_parallel_pool_persists_across_run_all_calls(self):
        specs = [
            quick_spec(scheme=scheme, seed=seed)
            for seed in (1, 2)
            for scheme in ("SR", "AR")
        ]
        with ParallelExecutor(2) as executor:
            first = executor.run_all(specs)
            pool = executor._pool
            assert pool is not None
            second = executor.run_all(specs)
            assert executor._pool is pool  # same workers, not a fresh pool
        assert executor._pool is None  # context exit reaped it
        assert [record_to_dict(a) for a in first] == [
            record_to_dict(b) for b in second
        ]

    def test_parallel_pool_rebuilds_when_registry_changes(self):
        from repro.experiments.registry import register_scheme, unregister_scheme

        specs = [quick_spec(scheme=scheme, seed=1) for scheme in ("SR", "AR")]
        with ParallelExecutor(2) as executor:
            executor.run_all(specs)
            pool = executor._pool
            register_scheme("SR-pool-test", _module_level_sr_factory)
            try:
                executor.run_all(specs + [quick_spec(scheme="SR-pool-test", seed=1)])
                assert executor._pool is not pool  # overrides changed -> new pool
            finally:
                unregister_scheme("SR-pool-test")

    def test_parallel_shared_memory_handoff_matches_serial(self):
        """Parent-warm scenarios ship over shm and stay byte-identical."""
        from repro.experiments.state_cache import StateCache

        specs = [
            quick_spec(scheme=scheme, seed=seed)
            for seed in (1, 2)
            for scheme in ("SR", "AR")
        ]
        baseline = SerialExecutor(state_cache=None).run_all(specs)
        cache = StateCache()
        cache.state_for(specs[0].scenario)  # pre-warm: forces the shm path
        with ParallelExecutor(2, state_cache=cache) as executor:
            parallel = executor.run_all(specs)
        assert [record_to_dict(a) for a in baseline] == [
            record_to_dict(b) for b in parallel
        ]

    def test_export_shared_states_ships_only_warm_scenarios(self):
        from repro.experiments.orchestration import _group_by_scenario
        from repro.experiments.state_cache import StateCache, scenario_key

        warm = quick_spec(spare_surplus=5)
        cold = quick_spec(spare_surplus=15)
        cache = StateCache()
        cache.state_for(warm.scenario)
        executor = ParallelExecutor(2, state_cache=cache)
        groups = _group_by_scenario([warm, cold])
        transports, segments = executor._export_shared_states(groups)
        try:
            assert set(transports) == {scenario_key(warm.scenario)}
            assert len(segments) == 1
            segment_name, inline = transports[scenario_key(warm.scenario)]
            assert segment_name is not None and inline is None
        finally:
            executor._release_segments(segments)

    def test_worker_group_execution_restores_from_inline_snapshot(self):
        """The pickle fallback path: no shm segment, snapshot ships inline."""
        from repro.experiments.orchestration import _execute_spec_group
        from repro.sim.scenario import build_scenario_state

        spec = quick_spec()
        snapshot = build_scenario_state(spec.scenario).to_bytes()
        records = _execute_spec_group(((spec,), None, snapshot, False))
        assert record_to_dict(records[0]) == record_to_dict(
            execute_run(spec, state_cache=None)
        )
