"""Grid-head election policies.

In every cell with at least one enabled node, exactly one node is elected
*grid head*; the rest are spares (Section 2).  The paper notes that the head
role can be rotated within the cell, so the election policy is pluggable.
Policies are plain callables taking the candidate nodes and the cell centre,
so that they work both on live :class:`~repro.network.node.SensorNode`
objects and on lightweight test doubles.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional, Sequence

from repro.grid.geometry import Point

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.network.node import SensorNode

#: A head-election policy: given the enabled candidates of a cell and the
#: cell centre, return the node that becomes head.  Candidates is never empty.
HeadElectionPolicy = Callable[[Sequence["SensorNode"], Point], "SensorNode"]


def lowest_id_policy(candidates: Sequence["SensorNode"], cell_center: Point) -> "SensorNode":
    """Deterministic election: the enabled node with the smallest id wins.

    This is the default policy because it makes simulations reproducible for
    a fixed deployment, independent of dict/set iteration order.
    """
    return min(candidates, key=lambda node: node.node_id)


def highest_energy_policy(candidates: Sequence["SensorNode"], cell_center: Point) -> "SensorNode":
    """Energy-aware election: the node with the most remaining energy wins.

    Ties are broken by node id so the policy stays deterministic.  Using this
    policy implements the head-rotation idea mentioned in Section 2 (rotate
    the role to balance energy drain).
    """
    return max(candidates, key=lambda node: (node.energy, -node.node_id))


def nearest_to_center_policy(
    candidates: Sequence["SensorNode"], cell_center: Point
) -> "SensorNode":
    """Geometric election: the node closest to the cell centre wins.

    Minimises the coverage overlap between neighbouring heads, matching the
    paper's goal of not needing the larger ``2*sqrt(2)*r`` range.
    """
    return min(
        candidates,
        key=lambda node: (node.position.distance_to(cell_center), node.node_id),
    )


def make_round_robin_policy(period: int = 1) -> HeadElectionPolicy:
    """Return a stateful policy that rotates the head among candidates.

    Every ``period`` elections the policy advances to the next candidate (by
    id order).  This models the "role of each head can be rotated within the
    grid" remark of Section 2 and is useful for energy-balance extensions.
    """
    if period < 1:
        raise ValueError(f"period must be >= 1, got {period}")
    counter = {"elections": 0}

    def policy(candidates: Sequence["SensorNode"], cell_center: Point) -> "SensorNode":
        """Pick the rotation's current candidate, cycling through ids over time."""
        ordered = sorted(candidates, key=lambda node: node.node_id)
        index = (counter["elections"] // period) % len(ordered)
        counter["elections"] += 1
        return ordered[index]

    return policy


def elect_head(
    candidates: Sequence["SensorNode"],
    cell_center: Point,
    policy: Optional[HeadElectionPolicy] = None,
) -> Optional["SensorNode"]:
    """Elect a head among ``candidates`` (returns ``None`` for an empty cell)."""
    enabled = [node for node in candidates if node.is_enabled]
    if not enabled:
        return None
    chosen_policy = policy or lowest_id_policy
    return chosen_policy(enabled, cell_center)
