"""Deployment generators.

The paper's experiments deploy a large number of sensors uniformly at random
over the surveillance area (Section 5: 5000 sensors over a 16x16 grid of
4.4721 m cells).  Besides the uniform deployment this module offers a few
other generators that are useful for unit tests, examples, and the extension
baselines: exact per-cell deployment, head-only deployment, and clustered
(hot-spot) deployment.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Tuple

from repro.grid.geometry import BoundingBox, Point
from repro.grid.virtual_grid import GridCoord, VirtualGrid, random_point_in_box
from repro.network.node import SensorNode


def _next_id(start_id: int, offset: int) -> int:
    return start_id + offset


def deploy_uniform(
    grid: VirtualGrid,
    count: int,
    rng: random.Random,
    start_id: int = 0,
) -> List[SensorNode]:
    """Deploy ``count`` nodes uniformly at random over the surveillance area.

    This is the workload of Section 5 of the paper.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    bounds = grid.bounds
    return [
        SensorNode(
            node_id=_next_id(start_id, i),
            position=random_point_in_box(bounds, rng),
        )
        for i in range(count)
    ]


def deploy_per_cell(
    grid: VirtualGrid,
    nodes_per_cell: int,
    rng: random.Random,
    start_id: int = 0,
) -> List[SensorNode]:
    """Deploy exactly ``nodes_per_cell`` nodes uniformly inside every cell.

    Useful for tests that need a deterministic occupancy pattern, and for the
    comparison with the grid-balancing baselines which assume a minimum
    density per cell.
    """
    if nodes_per_cell < 0:
        raise ValueError(f"nodes_per_cell must be non-negative, got {nodes_per_cell}")
    nodes: List[SensorNode] = []
    next_id = start_id
    for coord in grid.all_coords():
        cell_bounds = grid.cell_bounds(coord)
        for _ in range(nodes_per_cell):
            nodes.append(
                SensorNode(node_id=next_id, position=random_point_in_box(cell_bounds, rng))
            )
            next_id += 1
    return nodes


def deploy_grid_heads(
    grid: VirtualGrid,
    rng: Optional[random.Random] = None,
    start_id: int = 0,
    jitter: bool = False,
) -> List[SensorNode]:
    """Deploy exactly one node per cell, at the centre (or jittered around it).

    Produces a fully covered network with zero spares — the minimal
    configuration in which every cell has a head.
    """
    nodes: List[SensorNode] = []
    for offset, coord in enumerate(grid.all_coords()):
        position = grid.cell_center(coord)
        if jitter:
            if rng is None:
                raise ValueError("jitter=True requires an rng")
            position = random_point_in_box(grid.central_area(coord), rng)
        nodes.append(SensorNode(node_id=_next_id(start_id, offset), position=position))
    return nodes


def deploy_per_cell_counts(
    grid: VirtualGrid,
    counts: Dict[GridCoord, int],
    rng: random.Random,
    start_id: int = 0,
) -> List[SensorNode]:
    """Deploy an explicit number of nodes in each listed cell.

    Cells not present in ``counts`` receive no node, which makes it easy to
    construct scenarios with a prescribed pattern of holes and spares.
    """
    nodes: List[SensorNode] = []
    next_id = start_id
    for coord, count in sorted(counts.items(), key=lambda item: item[0].as_tuple()):
        grid.validate_coord(coord)
        if count < 0:
            raise ValueError(f"count for cell {coord.as_tuple()} must be non-negative")
        cell_bounds = grid.cell_bounds(coord)
        for _ in range(count):
            nodes.append(
                SensorNode(node_id=next_id, position=random_point_in_box(cell_bounds, rng))
            )
            next_id += 1
    return nodes


def deploy_clustered(
    grid: VirtualGrid,
    count: int,
    cluster_centers: Sequence[Point],
    spread: float,
    rng: random.Random,
    start_id: int = 0,
) -> List[SensorNode]:
    """Deploy nodes around hot-spot cluster centres (Gaussian spread).

    Models the non-uniform densities produced by air-dropped deployments or
    by attacks that herd nodes together; positions are clamped to the
    surveillance area.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    if not cluster_centers:
        raise ValueError("deploy_clustered requires at least one cluster centre")
    if spread < 0:
        raise ValueError(f"spread must be non-negative, got {spread}")
    bounds = grid.bounds
    nodes: List[SensorNode] = []
    for i in range(count):
        center = cluster_centers[rng.randrange(len(cluster_centers))]
        raw = Point(rng.gauss(center.x, spread), rng.gauss(center.y, spread))
        nodes.append(SensorNode(node_id=_next_id(start_id, i), position=bounds.clamp(raw)))
    return nodes


def occupancy_by_cell(
    grid: VirtualGrid, nodes: Sequence[SensorNode], enabled_only: bool = True
) -> Dict[GridCoord, int]:
    """Count nodes per cell (all cells present, zero-filled)."""
    counts: Dict[GridCoord, int] = {coord: 0 for coord in grid.all_coords()}
    for node in nodes:
        if enabled_only and not node.is_enabled:
            continue
        counts[grid.cell_of(node.position)] += 1
    return counts
