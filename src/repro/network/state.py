"""Mutable network state: which node is where, and who is head.

:class:`WsnState` is the single source of truth the mobility-control
algorithms operate on.  It keeps the per-cell membership index and the grid
head assignment consistent across node failures and replacement moves, and it
enforces the virtual-grid invariants of Section 2:

* every cell with at least one enabled node has exactly one head,
* a vacant cell (no enabled node) has no head,
* the head of a cell is always one of the enabled nodes located in that cell.

Node storage is struct-of-arrays: every per-node field lives in a
:class:`~repro.network.node_arrays.NodeArrays` column (``self.arrays``), and
:class:`~repro.network.node.SensorNode` objects handed out by :meth:`node`,
:meth:`members_of`, etc. are cached *handles* bound to array rows.  The
vectorized hot paths — adjacency construction, deployment, the per-round
energy sweep, coverage — read the arrays directly and stay bit-for-bit
equivalent to the former array-of-objects implementation (see the golden
seed-identity test).

The per-round queries every controller depends on — holes, spares,
occupancy — are served from *incremental indices* maintained by the three
mutation paths (:meth:`WsnState.disable_node`, :meth:`WsnState.enable_node`,
:meth:`WsnState.move_node`):

* ``_cell_members`` — per-cell **sorted** lists of enabled node ids, so
  :meth:`members_of` iterates deterministically without re-sorting;
* ``_occupancy`` — per-cell enabled-node counters;
* ``_vacant`` — the live set of vacant cells, making :attr:`hole_count`
  O(1) and :meth:`vacant_cells` O(holes);
* ``_spare_total`` — the running network-wide spare count, making
  :attr:`spare_count` O(1);
* ``arrays.cell`` — the flat cell index of every node, kept in lock-step
  with the node's position by :meth:`move_node`.

An optional :class:`~repro.network.adjacency.NeighborIndex` can be attached
with :meth:`attach_neighbor_index`; the mutation paths then update radio
neighbourhoods incrementally instead of forcing per-query rebuilds.

Round cost therefore scales with the number of holes and moves, not with the
``m*n`` grid size.  :meth:`check_invariants` is the oracle for this contract:
it rebuilds every index from scratch from the arrays and asserts the
incremental copies (including the cell column and any attached neighbour
index) agree (see DESIGN.md, "The state-index contract").
"""

from __future__ import annotations

import random
import struct
from bisect import bisect_left, insort
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Set, Union

import numpy as np

from repro.grid.geometry import Point
from repro.grid.head_election import HeadElectionPolicy, elect_head, lowest_id_policy
from repro.grid.virtual_grid import GridCoord, VirtualGrid
from repro.network.adjacency import NeighborIndex
from repro.network.mobility import MovementModel, MoveRecord
from repro.network.node import NodeRole, NodeState, SensorNode
from repro.network.node_arrays import (
    ENABLED_CODE,
    HEAD_CODE,
    SPARE_CODE,
    NodeArrays,
)

#: State code of a node row that exists in a tile replica but lies outside the
#: tile's column coverage.  Masked rows are invisible to every enabled-row scan
#: (the code collides with no :data:`~repro.network.node.STATE_CODES` value)
#: and are re-admitted by :meth:`WsnState.admit_node` when a barrier commit
#: moves the node into coverage.  Only tile replicas built by
#: :meth:`WsnState.extract_column_band` contain masked rows.
MASKED_CODE = np.int8(-1)

#: Version of the :meth:`WsnState.to_bytes` snapshot layout (grid header +
#: :meth:`NodeArrays.to_bytes` buffer).  Bump on any header change.
STATE_SNAPSHOT_VERSION = 1

#: ``struct`` format of the state snapshot header: layout version, grid
#: columns/rows, cell side, and the grid origin coordinates.
_SNAPSHOT_HEADER_FORMAT = "<IIIddd"
_SNAPSHOT_HEADER_SIZE = struct.calcsize(_SNAPSHOT_HEADER_FORMAT)


def _validate_population(grid: VirtualGrid, arrays: NodeArrays) -> None:
    """Reject duplicate ids and out-of-bounds positions.

    Mirrors the per-node validation loop of the array-of-objects
    implementation: whichever offence appears first in deployment order is
    reported (duplicate-id checks ran before bounds checks for each node).
    """
    node_ids = arrays.node_ids
    order = np.argsort(node_ids, kind="stable")
    sorted_ids = node_ids[order]
    duplicate_rows = order[1:][sorted_ids[1:] == sorted_ids[:-1]]
    first_duplicate = int(duplicate_rows.min()) if len(duplicate_rows) else None

    bounds = grid.bounds
    xs = arrays.positions[:, 0]
    ys = arrays.positions[:, 1]
    tolerance = 1e-9
    outside = (
        (xs < bounds.min_x - tolerance)
        | (xs > bounds.max_x + tolerance)
        | (ys < bounds.min_y - tolerance)
        | (ys > bounds.max_y + tolerance)
    )
    first_outside = int(np.argmax(outside)) if outside.any() else None

    if first_duplicate is not None and (
        first_outside is None or first_duplicate <= first_outside
    ):
        raise ValueError(f"duplicate node id {int(node_ids[first_duplicate])}")
    if first_outside is not None:
        raise ValueError(
            f"node {int(node_ids[first_outside])} at "
            f"({float(xs[first_outside])}, {float(ys[first_outside])}) lies outside "
            "the surveillance area"
        )


class WsnState:
    """The deployed network projected onto the virtual grid.

    Parameters
    ----------
    grid:
        The virtual grid partition of the surveillance area.
    nodes:
        All deployed nodes (enabled and disabled) — either an iterable of
        :class:`SensorNode` objects (which become bound handles onto the
        state's arrays) or a ready-made :class:`NodeArrays` store.  Node ids
        must be unique.
    head_policy:
        Election policy used whenever a cell needs a (new) head.
    movement_model:
        Movement model used by :meth:`move_node`; defaults to central-area
        targeting on the same grid.
    """

    def __init__(
        self,
        grid: VirtualGrid,
        nodes: Union[NodeArrays, Iterable[SensorNode]],
        head_policy: Optional[HeadElectionPolicy] = None,
        movement_model: Optional[MovementModel] = None,
    ) -> None:
        self.grid = grid
        self._head_policy = head_policy or lowest_id_policy
        self.movement_model = movement_model or MovementModel(grid)
        self._handles: Dict[int, SensorNode] = {}
        if isinstance(nodes, NodeArrays):
            arrays = nodes
        else:
            node_list = list(nodes)
            arrays = NodeArrays.from_nodes(node_list)
        _validate_population(grid, arrays)
        self.arrays = arrays
        if not isinstance(nodes, NodeArrays):
            # Existing node objects become bound handles so caller-held
            # references keep observing (and mutating) the live state.
            for row, node in enumerate(node_list):
                node._bind(arrays, row)
                self._handles[node.node_id] = node
        arrays.cell[:] = grid.cell_indices(
            arrays.positions[:, 0], arrays.positions[:, 1]
        )
        self._neighbor_index: Optional[NeighborIndex] = None
        self._rebuild_indices_from_arrays()
        self.elect_all_heads()

    # ---------------------------------------------------- vectorized index init
    def _rebuild_indices_from_arrays(self) -> None:
        """Build membership/occupancy/vacancy indices in a few array passes."""
        arrays = self.arrays
        coords = self.grid.coord_list()
        cell_count = len(coords)
        mask = arrays.enabled_mask()
        enabled_cells = arrays.cell[mask]
        enabled_ids = arrays.node_ids[mask]
        counts = np.bincount(enabled_cells, minlength=cell_count)
        # Build the counters in one pass instead of via _index_add so the
        # vacant set is allocated at its true size: a set pre-seeded with all
        # m*n cells and then discarded down never shrinks its hash table, and
        # every later iteration of it (vacant_cells is a per-round query)
        # would silently stay O(m*n).
        self._occupancy: Dict[GridCoord, int] = dict(zip(coords, counts.tolist()))
        self._vacant: Set[GridCoord] = {
            coords[flat] for flat in np.flatnonzero(counts == 0).tolist()
        }
        self._enabled_total = int(mask.sum())
        occupied_cells = cell_count - len(self._vacant)
        self._spare_total = self._enabled_total - occupied_cells
        self._cell_members: Dict[GridCoord, List[int]] = {
            coord: [] for coord in coords
        }
        if len(enabled_ids):
            grouping = np.lexsort((enabled_ids, enabled_cells))
            sorted_cells = enabled_cells[grouping]
            sorted_ids = enabled_ids[grouping].tolist()
            boundaries = np.flatnonzero(sorted_cells[1:] != sorted_cells[:-1]) + 1
            starts = np.concatenate(([0], boundaries)).tolist()
            ends = np.concatenate((boundaries, [len(sorted_cells)])).tolist()
            group_cells = sorted_cells[np.array(starts, dtype=np.int64)].tolist()
            cell_members = self._cell_members
            for flat, start, end in zip(group_cells, starts, ends):
                cell_members[coords[flat]] = sorted_ids[start:end]

    # ----------------------------------------------------- index maintenance
    def _index_add(self, coord: GridCoord, node_id: int) -> None:
        """Register an enabled node in ``coord``, updating every index."""
        insort(self._cell_members[coord], node_id)
        count = self._occupancy[coord] + 1
        self._occupancy[coord] = count
        self._enabled_total += 1
        if count == 1:
            self._vacant.discard(coord)
        else:
            self._spare_total += 1

    def _index_remove(self, coord: GridCoord, node_id: int) -> None:
        """Unregister an enabled node from ``coord``, updating every index."""
        members = self._cell_members[coord]
        position = bisect_left(members, node_id)
        if position >= len(members) or members[position] != node_id:
            raise KeyError(
                f"node {node_id} is not indexed in cell {coord.as_tuple()}"
            )
        members.pop(position)
        count = self._occupancy[coord] - 1
        self._occupancy[coord] = count
        self._enabled_total -= 1
        if count == 0:
            self._vacant.add(coord)
        else:
            self._spare_total -= 1

    # ------------------------------------------------------------------ nodes
    def node(self, node_id: int) -> SensorNode:
        """Handle for a node by id (:class:`KeyError` if unknown).

        Handles are created lazily and cached, so repeated lookups return the
        identical object (callers may compare by identity, as before).
        """
        handle = self._handles.get(node_id)
        if handle is None:
            row = self.arrays.row_of(node_id)
            handle = SensorNode._bound(self.arrays, row)
            self._handles[node_id] = handle
        return handle

    def nodes(self) -> Iterator[SensorNode]:
        """All deployed nodes, enabled or not, in deployment order."""
        return (self.node(node_id) for node_id in self.arrays.node_ids.tolist())

    def enabled_node_ids(self) -> List[int]:
        """Ids of all enabled nodes, in deployment order (no handle creation)."""
        return self.arrays.node_ids[self.arrays.enabled_mask()].tolist()

    def enabled_nodes(self) -> List[SensorNode]:
        """All nodes currently participating in the collaboration."""
        return [self.node(node_id) for node_id in self.enabled_node_ids()]

    def disabled_nodes(self) -> List[SensorNode]:
        """All nodes that are not enabled (failed, misbehaving, or depleted)."""
        disabled = self.arrays.node_ids[~self.arrays.enabled_mask()]
        return [self.node(node_id) for node_id in disabled.tolist()]

    @property
    def node_count(self) -> int:
        """Total number of deployed nodes."""
        return len(self.arrays)

    @property
    def enabled_count(self) -> int:
        """Number of enabled nodes (an O(1) read of the incremental index)."""
        return self._enabled_total

    # ------------------------------------------------------------------ cells
    def cell_of_node(self, node_id: int) -> GridCoord:
        """Cell currently containing the node (an O(1) read of the cell column)."""
        return self.grid.coord_at(int(self.arrays.cell[self.arrays.row_of(node_id)]))

    def members_of(self, coord: GridCoord) -> List[SensorNode]:
        """Enabled nodes currently located in cell ``coord``, in id order.

        The per-cell index is kept sorted by the mutation paths, so this is a
        plain lookup — no per-call re-sort.
        """
        self.grid.validate_coord(coord)
        return [self.node(node_id) for node_id in self._cell_members[coord]]

    def member_count(self, coord: GridCoord) -> int:
        """Number of enabled nodes in ``coord`` (an O(1) read of the occupancy index)."""
        self.grid.validate_coord(coord)
        return self._occupancy[coord]

    def head_of(self, coord: GridCoord) -> Optional[SensorNode]:
        """The grid head of ``coord``, or ``None`` when the cell is vacant."""
        self.grid.validate_coord(coord)
        head_id = self._heads[coord]
        return None if head_id is None else self.node(head_id)

    def spares_of(self, coord: GridCoord) -> List[SensorNode]:
        """Enabled non-head nodes in ``coord`` (the cell's spare nodes), in id order."""
        head_id = self._heads[self.grid.validate_coord(coord)]
        return [
            self.node(node_id)
            for node_id in self._cell_members[coord]
            if node_id != head_id
        ]

    def has_spare(self, coord: GridCoord) -> bool:
        """Whether ``coord`` holds at least one spare beyond its head (O(1))."""
        return self.member_count(coord) > 1

    def is_vacant(self, coord: GridCoord) -> bool:
        """Whether ``coord`` has no enabled node (a hole in the coverage)."""
        self.grid.validate_coord(coord)
        return coord in self._vacant

    def vacant_cells(self) -> List[GridCoord]:
        """All holes, in row-major order.  Costs O(holes log holes), not O(m*n)."""
        return sorted(self._vacant, key=lambda coord: (coord.y, coord.x))

    def vacant_cell_set(self) -> FrozenSet[GridCoord]:
        """The current holes as an (unordered) frozen set — an O(holes) snapshot."""
        return frozenset(self._vacant)

    def occupied_cells(self) -> List[GridCoord]:
        """Cells with at least one enabled node, in grid enumeration order."""
        return [coord for coord in self.grid.all_coords() if coord not in self._vacant]

    @property
    def hole_count(self) -> int:
        """Number of vacant cells (an O(1) read of the incremental index)."""
        return len(self._vacant)

    @property
    def spare_count(self) -> int:
        """Total number of spare nodes in the network."""
        return self._spare_total

    @property
    def spare_surplus(self) -> int:
        """Spares minus holes.

        Equals the paper's ``N`` (enabled nodes minus number of cells) whenever
        the network was thinned to ``N + m*n`` enabled nodes.
        """
        return self.spare_count - self.hole_count

    def occupancy(self) -> Dict[GridCoord, int]:
        """Enabled-node count for every cell."""
        return dict(self._occupancy)

    def spare_counts(self) -> Dict[GridCoord, int]:
        """Spare-node count for every cell."""
        return {coord: max(0, count - 1) for coord, count in self._occupancy.items()}

    # ------------------------------------------------------- adjacency index
    @property
    def neighbor_index(self) -> Optional[NeighborIndex]:
        """The attached incremental radio-neighbourhood index, if any."""
        return self._neighbor_index

    def attach_neighbor_index(self, radio) -> NeighborIndex:
        """Build and attach a :class:`NeighborIndex` for ``radio``.

        The mutation paths keep it up to date incrementally; detach with
        :meth:`detach_neighbor_index` when radio parameters change.
        """
        self._neighbor_index = NeighborIndex(self, radio)
        return self._neighbor_index

    def detach_neighbor_index(self) -> None:
        """Drop the attached neighbour index (if any)."""
        self._neighbor_index = None

    # ---------------------------------------------------------------- changes
    def disable_node(self, node_id: int, reason: NodeState = NodeState.FAILED) -> None:
        """Disable a node and repair the head assignment of its cell."""
        node = self.node(node_id)
        if not node.is_enabled:
            return
        row = self.arrays.row_of(node_id)
        coord = self.grid.coord_at(int(self.arrays.cell[row]))
        node.disable(reason)
        self._index_remove(coord, node_id)
        if self._heads[coord] == node_id:
            self._heads[coord] = None
            self._elect_cell_head(coord)
        if self._neighbor_index is not None:
            self._neighbor_index.on_disable(row)

    def enable_node(self, node_id: int) -> None:
        """Re-admit a previously disabled node (extension; not used by the paper)."""
        node = self.node(node_id)
        if node.is_enabled:
            return
        node.enable()
        row = self.arrays.row_of(node_id)
        coord = self.grid.coord_at(int(self.arrays.cell[row]))
        self._index_add(coord, node_id)
        self._elect_cell_head(coord)
        if self._neighbor_index is not None:
            self._neighbor_index.on_enable(row)

    def move_node(
        self,
        node_id: int,
        target_cell: GridCoord,
        rng: random.Random,
        round_index: int = 0,
        process_id: Optional[int] = None,
        target_position: Optional[Point] = None,
        enforce_adjacent: bool = True,
    ) -> MoveRecord:
        """Relocate an enabled node into ``target_cell`` and repair head roles.

        Replacement moves in the paper always go to a neighbouring cell; pass
        ``enforce_adjacent=False`` for extension algorithms (e.g. virtual
        force) that relocate nodes over longer distances.
        """
        node = self.node(node_id)
        if not node.is_enabled:
            raise RuntimeError(f"cannot move disabled node {node_id}")
        row = self.arrays.row_of(node_id)
        source_cell = self.grid.coord_at(int(self.arrays.cell[row]))
        self.grid.validate_coord(target_cell)
        if enforce_adjacent and not source_cell.is_neighbour_of(target_cell):
            raise ValueError(
                f"move from {source_cell.as_tuple()} to {target_cell.as_tuple()} is not "
                "a neighbouring-cell move"
            )
        record = self.movement_model.execute_move(
            node,
            source_cell,
            target_cell,
            rng,
            round_index=round_index,
            process_id=process_id,
            target_position=target_position,
        )
        self.arrays.cell[row] = self.grid.flat_index(target_cell)
        self._index_remove(source_cell, node_id)
        self._index_add(target_cell, node_id)
        if self._heads[source_cell] == node_id:
            self._heads[source_cell] = None
            self._elect_cell_head(source_cell)
        node.role = NodeRole.UNASSIGNED
        self._elect_cell_head(target_cell)
        if self._neighbor_index is not None:
            self._neighbor_index.on_move(row)
        return record

    # ----------------------------------------------------------------- heads
    def _elect_cell_head(self, coord: GridCoord) -> Optional[SensorNode]:
        members = self.members_of(coord)
        current_head_id = self._heads[coord]
        if current_head_id is not None and any(
            node.node_id == current_head_id for node in members
        ):
            head = self.node(current_head_id)
        else:
            head = elect_head(members, self.grid.cell_center(coord), self._head_policy)
            self._heads[coord] = None if head is None else head.node_id
        for node in members:
            node.role = NodeRole.SPARE
        if head is not None:
            head.role = NodeRole.HEAD
        return head

    def _elect_all_heads_lowest_id(self) -> None:
        """Vectorized fresh election under the default lowest-id policy.

        Equivalent to running :meth:`_elect_cell_head` over every cell with
        empty ``_heads``: every member becomes a spare, the smallest member id
        of each occupied cell becomes head, and disabled nodes keep their
        roles (they are never members).
        """
        arrays = self.arrays
        arrays.role[arrays.enabled_mask()] = SPARE_CODE
        heads = self._heads
        head_ids: List[int] = []
        for coord, members in self._cell_members.items():
            if members:
                head_id = members[0]
                heads[coord] = head_id
                head_ids.append(head_id)
        if head_ids:
            rows = arrays.rows_of(np.asarray(head_ids, dtype=np.int64))
            arrays.role[rows] = HEAD_CODE

    def elect_all_heads(self) -> None:
        """(Re-)elect the head of every cell from scratch-consistent membership."""
        self._heads: Dict[GridCoord, Optional[int]] = dict.fromkeys(
            self.grid.coord_list()
        )
        if self._head_policy is lowest_id_policy:
            self._elect_all_heads_lowest_id()
        else:
            for coord in self.grid.all_coords():
                self._elect_cell_head(coord)

    def rotate_head(self, coord: GridCoord) -> Optional[SensorNode]:
        """Force a fresh election in ``coord`` (head-rotation extension)."""
        self.grid.validate_coord(coord)
        self._heads[coord] = None
        return self._elect_cell_head(coord)

    def heads(self) -> Dict[GridCoord, Optional[int]]:
        """Copy of the head assignment (cell -> head node id or ``None``)."""
        return dict(self._heads)

    def head_nodes(self) -> List[SensorNode]:
        """All current grid heads."""
        return [self.node(h) for h in self._heads.values() if h is not None]

    # -------------------------------------------------------------- accounting
    @property
    def total_moved_distance(self) -> float:
        """Total distance moved by all nodes since deployment (metres).

        Summed left-to-right (``cumsum``) so the float result is identical to
        the sequential ``sum()`` over nodes in deployment order.
        """
        moved = self.arrays.moved_distance
        return float(np.cumsum(moved)[-1]) if len(moved) else 0.0

    @property
    def total_move_count(self) -> int:
        """Total number of relocation moves since deployment."""
        return int(self.arrays.move_count.sum())

    # ------------------------------------------------------------------ misc
    def clone(self) -> "WsnState":
        """Independent copy of the state, for running several schemes on one scenario.

        This is an explicit structural copy, not ``copy.deepcopy``: the grid,
        head policy, and movement model are immutable and shared, the node
        arrays are copied column-by-column, and the incremental indices are
        copied container-by-container.  Handles are re-created lazily on the
        clone (position histories, a debug aid, are not carried over), and an
        attached neighbour index is not cloned — attach a fresh one if the
        clone needs it.  Sweep fan-out over one scenario therefore pays
        O(nodes + cells) per clone instead of a full recursive deepcopy.
        """
        twin = WsnState.__new__(WsnState)
        twin.grid = self.grid
        twin._head_policy = self._head_policy
        twin.movement_model = self.movement_model
        twin.arrays = self.arrays.copy()
        twin._handles = {}
        twin._cell_members = {
            coord: list(members) for coord, members in self._cell_members.items()
        }
        twin._heads = dict(self._heads)
        twin._occupancy = dict(self._occupancy)
        twin._vacant = set(self._vacant)
        twin._spare_total = self._spare_total
        twin._enabled_total = self._enabled_total
        twin._neighbor_index = None
        return twin

    # -------------------------------------------------------------- snapshots
    def to_bytes(self) -> bytes:
        """Compact binary snapshot of the state: grid header + raw node columns.

        Only the *data* travels — the grid geometry and the
        :meth:`NodeArrays.to_bytes` buffer.  Behaviour objects (head policy,
        movement model) are plain functions, not data; :meth:`from_bytes`
        re-installs them from its arguments.  The incremental indices and the
        head table are redundant with the arrays (membership/occupancy follow
        from state+cell, heads from the role column) and are rebuilt on
        restore, so a snapshot costs exactly one buffer concatenation.
        """
        grid = self.grid
        origin = grid.origin
        header = struct.pack(
            _SNAPSHOT_HEADER_FORMAT,
            STATE_SNAPSHOT_VERSION,
            grid.columns,
            grid.rows,
            grid.cell_size,
            origin.x,
            origin.y,
        )
        return header + self.arrays.to_bytes()

    @classmethod
    def from_bytes(
        cls,
        buffer: Union[bytes, memoryview],
        head_policy: Optional[HeadElectionPolicy] = None,
        movement_model: Optional[MovementModel] = None,
    ) -> "WsnState":
        """Rebuild a state from a :meth:`to_bytes` snapshot.

        The restored state is equivalent to a :meth:`clone` of the snapshotted
        one: arrays are copied out of the buffer, the incremental indices are
        rebuilt from the arrays, and the head table is restored from the
        persisted role column — *not* by a fresh election, which under a
        non-default policy (e.g. ``highest_energy``) could pick different
        heads than the snapshotted state held.  Handles are re-created lazily
        and a neighbour index is not carried over, exactly like ``clone``.
        ``buffer`` may be longer than the snapshot (shared-memory segments
        round up); trailing bytes are ignored.
        """
        if len(buffer) < _SNAPSHOT_HEADER_SIZE:
            raise ValueError("state snapshot buffer is too short for a header")
        version, columns, rows, cell_size, origin_x, origin_y = struct.unpack_from(
            _SNAPSHOT_HEADER_FORMAT, buffer, 0
        )
        if version != STATE_SNAPSHOT_VERSION:
            raise ValueError(
                f"state snapshot has version {version}, "
                f"this build expects {STATE_SNAPSHOT_VERSION}"
            )
        grid = VirtualGrid(columns, rows, cell_size, origin=Point(origin_x, origin_y))
        arrays = NodeArrays.from_bytes(memoryview(buffer)[_SNAPSHOT_HEADER_SIZE:])
        twin = cls.__new__(cls)
        twin.grid = grid
        twin._head_policy = head_policy or lowest_id_policy
        twin.movement_model = movement_model or MovementModel(grid)
        twin.arrays = arrays
        twin._handles = {}
        twin._neighbor_index = None
        twin._rebuild_indices_from_arrays()
        twin._restore_heads_from_roles()
        return twin

    def _restore_heads_from_roles(self) -> None:
        """Rebuild the head table from the persisted role column.

        Every occupied cell of a consistent state holds exactly one enabled
        node with the ``HEAD`` role (disabled nodes may keep a stale head
        role; they are ignored), so the role column *is* the head assignment.
        """
        arrays = self.arrays
        heads: Dict[GridCoord, Optional[int]] = dict.fromkeys(self.grid.coord_list())
        head_rows = np.flatnonzero(
            (arrays.state == ENABLED_CODE) & (arrays.role == HEAD_CODE)
        )
        coord_at = self.grid.coord_at
        for flat, node_id in zip(
            arrays.cell[head_rows].tolist(), arrays.node_ids[head_rows].tolist()
        ):
            heads[coord_at(flat)] = node_id
        self._heads = heads

    # ------------------------------------------------------------ tile views
    #
    # The sharded engine (:mod:`repro.sim.sharded`) gives every worker a
    # full-size replica of the state in which rows outside the worker's
    # column coverage are *masked* — present (row indices and node ids line
    # up across all replicas and the authoritative state) but invisible to
    # every enabled-row scan.  These helpers build such replicas, maintain
    # them across round barriers, and merge the owned bands back together.

    def extract_column_band(self, halo_start: int, halo_stop: int) -> "WsnState":
        """Tile replica covering grid columns ``[halo_start, halo_stop)``.

        The replica is a full :meth:`clone` in which every enabled node whose
        cell column lies outside the coverage is masked (state code
        :data:`MASKED_CODE`).  Disabled rows are kept as-is — they never act,
        and keeping them makes the replica's row data identical to the
        source wherever it is visible.  Head assignment is inherited from
        the source for covered cells and cleared elsewhere.
        """
        if not 0 <= halo_start < halo_stop <= self.grid.columns:
            raise ValueError(
                f"column band [{halo_start}, {halo_stop}) is not inside the "
                f"{self.grid.columns}-column grid"
            )
        twin = self.clone()
        arrays = twin.arrays
        x = arrays.cell % self.grid.columns
        outside = (x < halo_start) | (x >= halo_stop)
        arrays.state[arrays.enabled_mask() & outside] = MASKED_CODE
        twin._rebuild_indices_from_arrays()
        twin._heads = {
            coord: (head_id if halo_start <= coord.x < halo_stop else None)
            for coord, head_id in self._heads.items()
        }
        return twin

    def is_masked(self, node_id: int) -> bool:
        """Whether the node's row is masked out of this (tile) replica."""
        return self.arrays.state[self.arrays.row_of(node_id)] == MASKED_CODE

    def admit_node(
        self,
        node_id: int,
        cell: GridCoord,
        position: Point,
        energy: float,
        moved_distance: float,
        move_count: int,
    ) -> None:
        """Unmask a row whose node just moved into this replica's coverage.

        The caller (the tile's barrier-apply step) supplies the node's exact
        authoritative fields; the row becomes enabled in ``cell`` and the
        cell's membership/head bookkeeping is repaired.
        """
        arrays = self.arrays
        row = arrays.row_of(node_id)
        if arrays.state[row] != MASKED_CODE:
            raise RuntimeError(f"node {node_id} is not masked in this replica")
        arrays.positions[row, 0] = position.x
        arrays.positions[row, 1] = position.y
        arrays.energy[row] = energy
        arrays.moved_distance[row] = moved_distance
        arrays.move_count[row] = move_count
        arrays.state[row] = ENABLED_CODE
        arrays.cell[row] = self.grid.flat_index(cell)
        self._index_add(cell, node_id)
        self._elect_cell_head(cell)

    def set_node_floats(
        self,
        node_id: int,
        position: Point,
        energy: float,
        moved_distance: float,
    ) -> None:
        """Overwrite a row's float fields with their authoritative values.

        Barrier fix-up: a tile commits its own serves with placeholder
        movement draws (the decision logic never reads the floats it
        commits), then replaces them with the driver's exact values so the
        replica's floats stay bit-identical to the sequential run.  The
        position must lie in the cell the row is already indexed under.
        """
        arrays = self.arrays
        row = arrays.row_of(node_id)
        arrays.positions[row, 0] = position.x
        arrays.positions[row, 1] = position.y
        arrays.energy[row] = energy
        arrays.moved_distance[row] = moved_distance

    def band_hole_count(self, x_start: int, x_stop: int) -> int:
        """Vacant cells whose column lies in ``[x_start, x_stop)`` (O(holes))."""
        return sum(1 for coord in self._vacant if x_start <= coord.x < x_stop)

    def band_enabled_count(self, x_start: int, x_stop: int) -> int:
        """Enabled nodes currently located in the column band ``[x_start, x_stop)``."""
        arrays = self.arrays
        x = arrays.cell % self.grid.columns
        in_band = arrays.enabled_mask() & (x >= x_start) & (x < x_stop)
        return int(np.count_nonzero(in_band))

    def band_spare_count(self, x_start: int, x_stop: int) -> int:
        """Spare nodes currently located in the column band ``[x_start, x_stop)``."""
        band_cells = (x_stop - x_start) * self.grid.rows
        occupied_in_band = band_cells - self.band_hole_count(x_start, x_stop)
        return self.band_enabled_count(x_start, x_stop) - occupied_in_band

    def apply_authoritative_move(
        self,
        node_id: int,
        target_cell: GridCoord,
        position: Point,
        energy: float,
        moved_distance: float,
        move_count: int,
    ) -> GridCoord:
        """Relocate a node into a *vacant* cell with its exact authoritative fields.

        The lean counterpart of :meth:`move_node` for tile replicas replaying
        barrier commits: no movement draw, no :class:`MoveRecord`, the float
        columns are written verbatim, and — because the target is required to
        be vacant — the arriving node becomes the cell's head directly, which
        is exactly what a fresh election yields for a sole member.  Returns
        the source cell so the caller can update its own band accounting.
        """
        arrays = self.arrays
        row = arrays.row_of(node_id)
        source_cell = self.grid.coord_at(int(arrays.cell[row]))
        if self._occupancy[target_cell] != 0:
            raise RuntimeError(
                f"authoritative move of node {node_id} targets occupied cell "
                f"{target_cell.as_tuple()}"
            )
        arrays.positions[row, 0] = position.x
        arrays.positions[row, 1] = position.y
        arrays.energy[row] = energy
        arrays.moved_distance[row] = moved_distance
        arrays.move_count[row] = move_count
        arrays.cell[row] = self.grid.flat_index(target_cell)
        self._index_remove(source_cell, node_id)
        self._index_add(target_cell, node_id)
        if self._heads[source_cell] == node_id:
            self._heads[source_cell] = None
            self._elect_cell_head(source_cell)
        self._heads[target_cell] = node_id
        arrays.role[row] = HEAD_CODE
        return source_cell

    def evict_node(self, node_id: int) -> GridCoord:
        """Mask out a tracked row whose node just moved beyond this replica's coverage.

        The inverse of :meth:`admit_node`: the row keeps its (now stale) data
        but leaves every index, so the replica's invariant — unmasked exactly
        when the current cell is covered — survives moves that exit the halo.
        Returns the cell the node vacated.
        """
        arrays = self.arrays
        row = arrays.row_of(node_id)
        if arrays.state[row] != ENABLED_CODE:
            raise RuntimeError(f"node {node_id} is not enabled in this replica")
        coord = self.grid.coord_at(int(arrays.cell[row]))
        arrays.state[row] = MASKED_CODE
        self._index_remove(coord, node_id)
        if self._heads[coord] == node_id:
            self._heads[coord] = None
            self._elect_cell_head(coord)
        return coord

    def export_band_rows(self, x_start: int, x_stop: int) -> Dict[str, np.ndarray]:
        """Row data of every non-masked node whose cell column is in the band.

        Each grid column is owned by exactly one tile, and a tile tracks
        (non-masked) every node whose current cell it owns — nodes start
        inside the coverage or are admitted when a barrier commit moves them
        in — so exporting each tile's owned band partitions the rows exactly.
        The payload is a picklable dict of ndarray slices consumed by
        :meth:`apply_row_export` on the authoritative state.
        """
        arrays = self.arrays
        x = arrays.cell % self.grid.columns
        mask = (arrays.state != MASKED_CODE) & (x >= x_start) & (x < x_stop)
        rows = np.flatnonzero(mask)
        return {
            "rows": rows,
            "positions": arrays.positions[rows],
            "energy": arrays.energy[rows],
            "state": arrays.state[rows],
            "role": arrays.role[rows],
            "cell": arrays.cell[rows],
            "moved_distance": arrays.moved_distance[rows],
            "move_count": arrays.move_count[rows],
        }

    def apply_row_export(self, payload: Dict[str, np.ndarray]) -> None:
        """Adopt a tile's :meth:`export_band_rows` payload into this state.

        Only the array columns are written; the caller rebuilds the
        incremental indices (:meth:`_rebuild_indices_from_arrays` +
        :meth:`elect_all_heads`) once after adopting every tile.
        """
        arrays = self.arrays
        rows = payload["rows"]
        arrays.positions[rows] = payload["positions"]
        arrays.energy[rows] = payload["energy"]
        arrays.state[rows] = payload["state"]
        arrays.role[rows] = payload["role"]
        arrays.cell[rows] = payload["cell"]
        arrays.moved_distance[rows] = payload["moved_distance"]
        arrays.move_count[rows] = payload["move_count"]

    def check_invariants(self) -> None:
        """Raise :class:`AssertionError` if any index or grid-overlay invariant is violated.

        This is the oracle of the state-index contract: every incremental
        index (membership lists, occupancy counters, vacant set, spare and
        enabled totals, the per-node cell column, and any attached neighbour
        index) is compared against a from-scratch rebuild derived from the
        node arrays, and the head invariants of Section 2 are checked on top.
        """
        arrays = self.arrays
        rebuilt: Dict[GridCoord, List[int]] = {
            coord: [] for coord in self.grid.all_coords()
        }
        enabled_total = 0
        node_ids = arrays.node_ids.tolist()
        xs = arrays.positions[:, 0].tolist()
        ys = arrays.positions[:, 1].tolist()
        states = arrays.state.tolist()
        cells = arrays.cell.tolist()
        for row, node_id in enumerate(node_ids):
            coord = self.grid.cell_of(Point(xs[row], ys[row]))
            assert cells[row] == self.grid.flat_index(coord), (
                f"cell column of node {node_id} is {cells[row]}, position "
                f"says {self.grid.flat_index(coord)}"
            )
            if states[row] == ENABLED_CODE:
                rebuilt[coord].append(node_id)
                enabled_total += 1
        assert self._enabled_total == enabled_total, (
            f"enabled total {self._enabled_total} != rebuilt {enabled_total}"
        )
        spare_total = 0
        vacant = set()
        for coord, expected in rebuilt.items():
            expected.sort()
            members = self._cell_members[coord]
            assert members == expected, (
                f"membership index of {coord.as_tuple()} is {members}, "
                f"rebuild says {expected}"
            )
            assert self._occupancy[coord] == len(expected), (
                f"occupancy counter of {coord.as_tuple()} is "
                f"{self._occupancy[coord]}, rebuild says {len(expected)}"
            )
            if expected:
                spare_total += len(expected) - 1
            else:
                vacant.add(coord)
            head_id = self._heads[coord]
            if expected:
                assert head_id is not None, f"occupied cell {coord.as_tuple()} has no head"
                assert head_id in expected, (
                    f"head {head_id} of cell {coord.as_tuple()} is not one of its members"
                )
            else:
                assert head_id is None, f"vacant cell {coord.as_tuple()} has a head"
        assert self._vacant == vacant, (
            f"vacant-cell index has {sorted(c.as_tuple() for c in self._vacant)}, "
            f"rebuild says {sorted(c.as_tuple() for c in vacant)}"
        )
        assert self._spare_total == spare_total, (
            f"spare total {self._spare_total} != rebuilt {spare_total}"
        )
        if self._neighbor_index is not None:
            self._neighbor_index.check_consistency()

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"WsnState(grid={self.grid.columns}x{self.grid.rows}, "
            f"nodes={self.node_count}, enabled={self.enabled_count}, "
            f"holes={self.hole_count}, spares={self.spare_count})"
        )
