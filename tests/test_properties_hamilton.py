"""Property-based tests for the Hamilton cycle constructions.

These are the structural guarantees the whole SR scheme rests on: for *every*
grid shape the construction must visit each cell exactly once, only step
between neighbouring cells, and designate exactly one initiator per vacancy.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.hamilton import (
    DualPathHamiltonCycle,
    SerpentineHamiltonCycle,
    build_hamilton_cycle,
)
from repro.grid.virtual_grid import VirtualGrid

dims = st.integers(min_value=2, max_value=24)
odd_dims = st.integers(min_value=1, max_value=11).map(lambda k: 2 * k + 1)


@given(dims, dims)
@settings(max_examples=80)
def test_factory_always_produces_a_valid_structure(columns, rows):
    cycle = build_hamilton_cycle(VirtualGrid(columns, rows, 1.0))
    cycle.validate()
    assert cycle.replacement_path_length >= columns * rows - 2


@given(dims, dims)
@settings(max_examples=60)
def test_every_vacancy_has_exactly_one_initiator(columns, rows):
    grid = VirtualGrid(columns, rows, 1.0)
    cycle = build_hamilton_cycle(grid)
    for vacant in grid.all_coords():
        initiator = cycle.initiator_for(vacant, has_spare=lambda _c: False, origin=vacant)
        assert initiator is not None
        assert initiator != vacant
        assert grid.contains_coord(initiator)
        assert initiator.is_neighbour_of(vacant)


@given(dims, dims)
@settings(max_examples=60)
def test_serpentine_successor_is_a_permutation(columns, rows):
    if (columns * rows) % 2 != 0:
        columns += 1  # make the cell count even so the serpentine cycle exists
    grid = VirtualGrid(columns, rows, 1.0)
    cycle = SerpentineHamiltonCycle(grid)
    successors = [cycle.successor(coord) for coord in grid.all_coords()]
    assert len(set(successors)) == grid.cell_count
    # Following successors from any start visits every cell (single cycle).
    current = next(grid.all_coords().__iter__())
    seen = set()
    for _ in range(grid.cell_count):
        seen.add(current)
        current = cycle.successor(current)
    assert len(seen) == grid.cell_count


@given(odd_dims, odd_dims)
@settings(max_examples=40)
def test_dual_path_structure_properties(columns, rows):
    grid = VirtualGrid(columns, rows, 1.0)
    cycle = DualPathHamiltonCycle(grid)
    cycle.validate()
    chain = cycle.shared_chain()
    all_cells = set(grid.all_coords())
    assert len(chain) == columns * rows - 2
    assert set(chain) == all_cells - {cycle.cell_a, cycle.cell_b}
    # Both paths are Hamilton paths and share the whole chain.
    for path in (cycle.path_one(), cycle.path_two()):
        assert set(path) == all_cells
        for a, b in zip(path, path[1:]):
            assert a.is_neighbour_of(b)
    assert cycle.path_one()[1:-1] == cycle.path_two()[1:-1]
    # Junction cells are mutual neighbours of A and B as Section 4 requires.
    for junction in (cycle.cell_c, cycle.cell_d):
        assert junction.is_neighbour_of(cycle.cell_a)
        assert junction.is_neighbour_of(cycle.cell_b)


@given(dims, dims, st.integers(min_value=0, max_value=400))
@settings(max_examples=40)
def test_upstream_distance_is_bounded_by_cycle_length(columns, rows, salt):
    if (columns * rows) % 2 != 0:
        rows += 1
    grid = VirtualGrid(columns, rows, 1.0)
    cycle = SerpentineHamiltonCycle(grid)
    cells = list(grid.all_coords())
    vacant = cells[salt % len(cells)]
    supplier = cells[(salt * 7 + 3) % len(cells)]
    distance = cycle.upstream_distance(vacant, supplier)
    assert 0 <= distance < cycle.cycle_length
    if supplier == vacant:
        assert distance == 0
