"""Tests for the pluggable control-channel subsystem.

Covers the declarative :class:`~repro.network.channel.ChannelModel` layer,
the runtime delivery semantics (loss, delay, jamming, conservation), the
protocol-level ack/retry reliability layer, and — most importantly — the
seed-identity contract: running under the default perfect channel must
reproduce the pre-channel codebase bit for bit.
"""

from __future__ import annotations

import dataclasses
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.catalog import load_catalog_scenario
from repro.experiments.orchestration import RunSpec, execute_many, execute_run
from repro.experiments.persistence import run_key, spec_from_dict, spec_to_dict
from repro.experiments.registry import make_controller
from repro.experiments.scenario_files import (
    ScenarioValidationError,
    dumps_scenario,
    loads_scenario,
)
from repro.grid.virtual_grid import GridCoord
from repro.network.channel import (
    DEFAULT_CHANNEL,
    ChannelModel,
    build_channel,
    channel_from_dict,
    channel_to_dict,
    parse_channel_spec,
)
from repro.network.energy import energy_summary, recovery_energy_cost
from repro.network.messages import MessageKind
from repro.sim.engine import RoundBasedEngine, run_recovery
from repro.sim.rng import derive_rng
from repro.sim.scenario import ScenarioConfig, build_scenario_state

from helpers import make_hole

#: Golden pre-refactor results of the paper-baseline catalog scenario
#: (captured on the PR-4 codebase).  The default perfect channel must keep
#: reproducing them exactly — converged state, moves, distance, messages,
#: rounds — or the refactor changed the physics.
GOLDEN_PAPER_BASELINE = {
    "SR": dict(
        converged=True,
        moves=364,
        distance=1706.3136828503393,
        messages=292,
        rounds=60,
        processes=72,
    ),
    "AR": dict(
        converged=False,
        moves=296,
        distance=1399.2055902132383,
        messages=169,
        rounds=20,
        processes=206,
    ),
}


def lossy(probability: float, **kwargs) -> ChannelModel:
    return ChannelModel.with_params("lossy", drop_probability=probability, **kwargs)


# --------------------------------------------------------------------- models
class TestChannelModel:
    def test_default_is_perfect(self):
        assert DEFAULT_CHANNEL.kind == "perfect"
        assert DEFAULT_CHANNEL.reliable

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown channel kind"):
            ChannelModel(kind="carrier-pigeon")

    def test_unknown_parameter_rejected(self):
        with pytest.raises(ValueError, match="unknown parameter"):
            ChannelModel.with_params("perfect", frequency=2.4)

    def test_lossy_probability_validated(self):
        with pytest.raises(ValueError, match="drop_probability"):
            lossy(1.5)
        with pytest.raises(ValueError, match="drop_probability"):
            ChannelModel.with_params("lossy")

    def test_delayed_latency_validated(self):
        with pytest.raises(ValueError, match="latency"):
            ChannelModel.with_params("delayed", latency=0)

    def test_jammed_region_validated(self):
        with pytest.raises(ValueError, match="region"):
            ChannelModel.with_params("jammed", region=[1, 2, 3], from_round=0, until_round=5)
        with pytest.raises(ValueError, match="from_round"):
            ChannelModel.with_params(
                "jammed", region=[0, 0, 3, 3], from_round=5, until_round=5
            )

    def test_retry_knobs_validated(self):
        with pytest.raises(ValueError, match="ack_timeout"):
            lossy(0.1, ack_timeout=0)
        with pytest.raises(ValueError, match="max_retries"):
            lossy(0.1, max_retries=-1)

    def test_reliability_classification(self):
        assert ChannelModel.with_params("delayed", latency=4).reliable
        assert not lossy(0.1).reliable
        assert not ChannelModel.with_params(
            "jammed", region=[0, 0, 1, 1], from_round=0, until_round=5
        ).reliable

    def test_dict_round_trip(self):
        model = ChannelModel.with_params(
            "jammed", region=[1, 1, 4, 4], from_round=2, until_round=9, max_retries=5
        )
        assert channel_from_dict(channel_to_dict(model)) == model
        assert channel_to_dict(None) is None
        assert channel_from_dict(None) is None

    def test_parse_channel_spec(self):
        assert parse_channel_spec("perfect") == DEFAULT_CHANNEL
        assert parse_channel_spec("lossy:0.25") == lossy(0.25)
        assert parse_channel_spec("delayed:4") == ChannelModel.with_params(
            "delayed", latency=4
        )
        for bad in ("jammed", "lossy", "delayed:fast", "perfect:1"):
            with pytest.raises(ValueError):
                parse_channel_spec(bad)


# ------------------------------------------------------------------- runtime
class TestChannelRuntime:
    def _send(self, channel, round_index, source=(0, 0), target=(0, 1)):
        return channel.send(
            MessageKind.REPLACEMENT_REQUEST,
            GridCoord(*source),
            GridCoord(*target),
            round_index,
            sender_id=7,
        )

    def test_perfect_channel_one_round_latency(self):
        channel = build_channel(DEFAULT_CHANNEL, random.Random(0))
        self._send(channel, round_index=3)
        assert channel.deliver(3) == {}
        inbox = channel.deliver(4)
        assert len(inbox[GridCoord(0, 1)]) == 1
        assert channel.stats().mean_delivery_latency == 1.0

    def test_jammed_window_and_region(self):
        model = ChannelModel.with_params(
            "jammed", region=[0, 0, 1, 1], from_round=2, until_round=4
        )
        channel = build_channel(model, random.Random(0))
        self._send(channel, round_index=1)            # before the window
        self._send(channel, round_index=2)            # jammed (source inside)
        self._send(channel, round_index=2, source=(3, 3), target=(0, 1))  # target inside
        self._send(channel, round_index=2, source=(3, 3), target=(3, 2))  # outside region
        self._send(channel, round_index=4)            # after the window
        assert channel.dropped_count == 2
        assert channel.sent_count == 5

    def test_transmissions_are_debited_even_when_dropped(self):
        channel = build_channel(lossy(1.0 - 1e-12), random.Random(0))
        charged = []
        channel.debit_hook = charged.append
        self._send(channel, 0)
        self._send(channel, 0)
        assert channel.dropped_count == 2
        assert charged == [7, 7], "the radio fired either way; both sends cost energy"

    @settings(max_examples=30, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10**6),
        probability=st.floats(min_value=0.0, max_value=0.9),
        sends=st.lists(st.integers(min_value=0, max_value=20), max_size=40),
    )
    def test_conservation_no_loss_no_duplication(self, seed, probability, sends):
        """sent == delivered + dropped + in_flight, and no message is duplicated."""
        channel = build_channel(lossy(probability), random.Random(seed))
        seen_ids = set()
        for round_index, burst in enumerate(sends):
            for _ in range(burst):
                self._send(channel, round_index)
            inbox = channel.deliver(round_index)
            for messages in inbox.values():
                for message in messages:
                    assert message.message_id not in seen_ids, "duplicated delivery"
                    seen_ids.add(message.message_id)
        assert channel.sent_count == (
            channel.delivered_count + channel.dropped_count + channel.pending_count
        )
        # Drain the tail: everything still in flight is delivered exactly once.
        inbox = channel.deliver(len(sends) + 10)
        for messages in inbox.values():
            for message in messages:
                assert message.message_id not in seen_ids
                seen_ids.add(message.message_id)
        assert channel.pending_count == 0
        assert len(seen_ids) == channel.delivered_count
        assert channel.sent_count == channel.delivered_count + channel.dropped_count


# ------------------------------------------------------- seed identity (tent)
class TestSeedIdentity:
    def test_paper_baseline_matches_pre_refactor_golden_results(self):
        scenario = load_catalog_scenario("paper-16x16")
        records = scenario.execute()
        by_scheme = {record.spec.scheme: record for record in records}
        for scheme, golden in GOLDEN_PAPER_BASELINE.items():
            metrics = by_scheme[scheme].metrics
            assert by_scheme[scheme].converged == golden["converged"]
            assert metrics.total_moves == golden["moves"]
            assert metrics.total_distance == pytest.approx(golden["distance"], rel=1e-12)
            assert metrics.messages_sent == golden["messages"]
            assert metrics.rounds == golden["rounds"]
            assert metrics.processes_initiated == golden["processes"]
            assert metrics.messages_dropped == 0

    @pytest.mark.parametrize("scheme", ["SR", "AR", "SR-shortcut"])
    def test_perfect_channel_equals_legacy_no_channel_path(self, scheme):
        """The messaging subsystem is a provable no-op on the perfect channel.

        The same scenario is run twice: once through the channel stack
        (engine default) and once with the messaging subsystem disabled
        (``channel=None``, the pre-channel observation-driven path).  Every
        reported quantity — including per-node energy — must coincide.
        """
        config = ScenarioConfig(
            columns=8,
            rows=8,
            communication_range=6.0,
            deployed_count=80,
            deployment="uniform",
            seed=99,
        )
        results = {}
        for label, channel in (("perfect", DEFAULT_CHANNEL), ("legacy", None)):
            state = build_scenario_state(config)
            controller = make_controller(scheme, state)
            result = run_recovery(
                state, controller, derive_rng(7, "equivalence"), channel=channel
            )
            results[label] = (result, energy_summary(state))
        perfect, perfect_energy = results["perfect"]
        legacy, legacy_energy = results["legacy"]
        assert perfect.converged == legacy.converged
        assert perfect.rounds_executed == legacy.rounds_executed
        assert perfect.metrics.total_moves == legacy.metrics.total_moves
        assert perfect.metrics.total_distance == legacy.metrics.total_distance
        assert perfect.metrics.messages_sent == legacy.metrics.messages_sent
        assert perfect.metrics.processes_initiated == legacy.metrics.processes_initiated
        assert perfect_energy.total_consumed == legacy_energy.total_consumed
        assert perfect.channel_stats is not None and legacy.channel_stats is None


# ------------------------------------------------------------ degraded links
class TestDegradedChannels:
    def _sr_baseline_spec(self, channel):
        scenario = load_catalog_scenario("paper-16x16")
        (spec,) = [s for s in scenario.run_specs() if s.scheme == "SR"]
        return dataclasses.replace(spec, channel=channel)

    def test_lossy_sr_still_converges_on_paper_baseline(self):
        record = execute_run(self._sr_baseline_spec(lossy(0.2)))
        assert record.converged
        assert record.metrics.messages_dropped > 0
        assert record.metrics.messages_sent > GOLDEN_PAPER_BASELINE["SR"]["messages"]
        # The repair work is identical — loss costs time (retries), not moves.
        assert record.metrics.total_moves == GOLDEN_PAPER_BASELINE["SR"]["moves"]
        assert record.rounds_executed > GOLDEN_PAPER_BASELINE["SR"]["rounds"]

    def test_delayed_channel_stretches_rounds_not_moves(self):
        record = execute_run(
            self._sr_baseline_spec(ChannelModel.with_params("delayed", latency=3))
        )
        assert record.converged
        assert record.metrics.total_moves == GOLDEN_PAPER_BASELINE["SR"]["moves"]
        assert record.metrics.messages_sent == GOLDEN_PAPER_BASELINE["SR"]["messages"]
        assert record.metrics.mean_delivery_latency == pytest.approx(3.0)
        assert record.rounds_executed > GOLDEN_PAPER_BASELINE["SR"]["rounds"]

    def test_lossy_trials_vary_loss_by_seed_not_movement(self):
        base = self._sr_baseline_spec(lossy(0.2))
        other = dataclasses.replace(
            base, scenario=base.scenario.with_seed(77), seed=77
        )
        first, second = execute_many([base, other])
        assert first.metrics.messages_dropped != second.metrics.messages_dropped

    def test_total_blackout_abandons_cascades_instead_of_spinning(self, rng):
        """A never-ending jam over the whole grid exhausts the retry budget."""
        from repro.network.deployment import deploy_per_cell
        from repro.network.state import WsnState
        from repro.grid.virtual_grid import VirtualGrid

        grid = VirtualGrid(4, 4, cell_size=1.0)
        state = WsnState(grid, deploy_per_cell(grid, 1, rng))  # no spares at all
        make_hole(state, GridCoord(2, 2))
        controller = make_controller("SR", state)
        blackout = ChannelModel.with_params(
            "jammed",
            region=[0, 0, 3, 3],
            from_round=0,
            until_round=10_000,
            ack_timeout=2,
            max_retries=2,
        )
        result = run_recovery(
            state, controller, rng, max_rounds=200, channel=blackout
        )
        assert not result.converged
        assert not result.exhausted, "the run must give up, not burn max_rounds"
        assert result.metrics.messages_dropped > 0
        assert controller.failed_processes >= 1
        assert controller.pending_acknowledgements == 0

    def test_energy_reconciles_with_real_sends_under_loss(self):
        """Every transmission (request, retry, ack) debits the message cost."""
        config = ScenarioConfig(
            columns=6,
            rows=6,
            communication_range=6.0,
            deployed_count=36,
            deployment="per_cell",
            seed=5,
        )
        state = build_scenario_state(config)
        make_hole(state, GridCoord(3, 3))
        controller = make_controller("SR", state)
        result = run_recovery(
            state, controller, derive_rng(5, "lossy-energy"), channel=lossy(0.3)
        )
        summary = energy_summary(state)
        expected = recovery_energy_cost(
            result.metrics.total_distance, result.metrics.messages_sent
        )
        assert summary.total_consumed == pytest.approx(expected, rel=1e-9, abs=1e-9)
        assert result.metrics.messages_sent == result.channel_stats.sent


# ------------------------------------------------------------ review fixes
class TestMessagingStateHygiene:
    def test_rebinding_a_channel_clears_stale_delivery_gates(self, rng):
        """A gate waiting on a message that only exists in a previous
        channel's mailbox must not survive into the next binding.

        (Engine runs close every process via ``finalize`` on shutdown, so the
        dangerous path is a driver calling ``execute_round`` directly — e.g.
        a visualisation stepping rounds by hand — that swaps channels
        mid-cascade.)
        """
        from repro.core.replacement import HamiltonReplacementController
        from repro.core.hamilton import build_hamilton_cycle
        from repro.network.deployment import deploy_per_cell_counts
        from repro.network.state import WsnState
        from repro.grid.virtual_grid import VirtualGrid

        grid = VirtualGrid(4, 4, cell_size=1.0)
        cycle = build_hamilton_cycle(grid)
        order = cycle.order()
        counts = {coord: 1 for coord in grid.all_coords()}
        counts[order[4]] = 2  # one spare, five hops upstream of the hole
        state = WsnState(grid, deploy_per_cell_counts(grid, counts, rng))
        make_hole(state, order[9])
        controller = HamiltonReplacementController(cycle)
        controller.bind_channel(build_channel(lossy(0.999), random.Random(0)))
        controller.execute_round(state, rng, 0)  # hop sent; request lost
        assert controller._undelivered, "the cascade vacancy must be gated"
        assert controller.pending_acknowledgements == 1
        fresh = build_channel(DEFAULT_CHANNEL, random.Random(0))
        controller.bind_channel(fresh)
        assert not controller._undelivered
        assert controller.pending_acknowledgements == 0
        # The cascade resumes by observation under the fresh channel and the
        # remaining hops converge the process.
        for round_index in range(1, 10):
            controller.handle_messages(state, fresh.deliver(round_index), round_index)
            controller.execute_round(state, rng, round_index)
        assert state.hole_count == 0
        assert controller.converged_processes == 1

    def test_sr_gate_only_opens_for_the_owning_process(self, rng):
        from repro.core.replacement import HamiltonReplacementController
        from repro.core.hamilton import build_hamilton_cycle
        from repro.network.deployment import deploy_per_cell
        from repro.network.state import WsnState
        from repro.grid.virtual_grid import VirtualGrid
        from repro.network.messages import Message

        grid = VirtualGrid(4, 4, cell_size=1.0)
        state = WsnState(grid, deploy_per_cell(grid, 1, rng))
        controller = HamiltonReplacementController(build_hamilton_cycle(grid))
        controller.bind_channel(build_channel(lossy(0.5), random.Random(0)))
        owner = controller._start_process(GridCoord(1, 1), GridCoord(1, 0), 0)
        controller._vacancy_process[GridCoord(1, 1)] = owner.process_id
        controller._undelivered.add(GridCoord(1, 1))

        def request(process_id):
            return Message(
                kind=MessageKind.REPLACEMENT_REQUEST,
                source_cell=GridCoord(1, 2),
                target_cell=GridCoord(1, 0),
                sent_round=0,
                process_id=process_id,
                payload={"vacancy": (1, 1)},
            )

        # A stale retransmission from a process that served this cell in an
        # earlier life must not unlock the current owner's gate.
        controller._on_request_delivered(state, request(owner.process_id + 7), 1)
        assert GridCoord(1, 1) in controller._undelivered
        controller._on_request_delivered(state, request(owner.process_id), 1)
        assert GridCoord(1, 1) not in controller._undelivered

    def test_ar_ignores_stale_duplicate_request_for_an_earlier_hop(self, rng):
        from repro.core.baseline_ar import LocalizedReplacementController, _CascadeState
        from repro.network.deployment import deploy_per_cell
        from repro.network.state import WsnState
        from repro.grid.virtual_grid import VirtualGrid
        from repro.network.messages import Message

        grid = VirtualGrid(4, 4, cell_size=1.0)
        state = WsnState(grid, deploy_per_cell(grid, 1, rng))
        controller = LocalizedReplacementController(grid)
        controller.bind_channel(build_channel(lossy(0.5), random.Random(0)))
        process = controller._start_process(GridCoord(2, 2), GridCoord(2, 1), 0)
        cascade = _CascadeState(
            target=GridCoord(2, 1), supplier=GridCoord(2, 0), awaiting_delivery=True
        )
        controller._cascades[process.process_id] = cascade

        def request(vacancy):
            return Message(
                kind=MessageKind.REPLACEMENT_REQUEST,
                source_cell=GridCoord(2, 2),
                target_cell=GridCoord(2, 0),
                sent_round=0,
                process_id=process.process_id,
                payload={"vacancy": vacancy},
            )

        # A retransmitted copy of the *previous* hop's request must not open
        # the gate the current hop's (possibly lost) request guards.
        controller._on_request_delivered(state, request((2, 2)), 1)
        assert cascade.awaiting_delivery
        controller._on_request_delivered(state, request((2, 1)), 1)
        assert not cascade.awaiting_delivery

    def test_ar_abandonment_of_an_earlier_hops_request_spares_the_process(self, rng):
        """Only the request gating the current hop can doom the cascade."""
        from repro.core.baseline_ar import LocalizedReplacementController, _CascadeState
        from repro.core.protocol import RoundOutcome
        from repro.network.deployment import deploy_per_cell
        from repro.network.state import WsnState
        from repro.grid.virtual_grid import VirtualGrid

        grid = VirtualGrid(4, 4, cell_size=1.0)
        state = WsnState(grid, deploy_per_cell(grid, 1, rng))
        controller = LocalizedReplacementController(grid)
        controller.bind_channel(build_channel(lossy(0.5), random.Random(0)))
        process = controller._start_process(GridCoord(3, 3), GridCoord(3, 2), 0)
        cascade = _CascadeState(
            target=GridCoord(2, 2), supplier=GridCoord(2, 1), awaiting_delivery=True
        )
        controller._cascades[process.process_id] = cascade
        outcome = RoundOutcome(round_index=5)
        # Hop-1's request (vacancy (3, 3)) exhausted its retries long after it
        # was delivered; the cascade has moved on to gate vacancy (2, 2).
        controller._on_request_abandoned(
            state, (process.process_id, (3, 3)), 5, outcome
        )
        assert process.is_active, "a stale hop's exhaustion must not fail the process"
        assert cascade.awaiting_delivery
        controller._on_request_abandoned(
            state, (process.process_id, (2, 2)), 5, outcome
        )
        assert process.failed

    def test_late_ack_for_an_older_request_does_not_settle_a_newer_one(self, rng):
        """(process_id, vacancy) keys can recur; the nonce keeps acks honest."""
        from repro.core.replacement import HamiltonReplacementController
        from repro.core.hamilton import build_hamilton_cycle
        from repro.network.deployment import deploy_per_cell
        from repro.network.state import WsnState
        from repro.network.messages import Message
        from repro.grid.virtual_grid import VirtualGrid

        grid = VirtualGrid(4, 4, cell_size=1.0)
        state = WsnState(grid, deploy_per_cell(grid, 1, rng))
        controller = HamiltonReplacementController(build_hamilton_cycle(grid))
        controller.bind_channel(build_channel(lossy(0.0 + 1e-9), random.Random(0)))
        head = state.head_of(GridCoord(1, 1))
        for _ in range(2):  # same (process, vacancy) tracked twice: nonces 0, 1
            controller._post_replacement_request(
                sender=head,
                source_cell=GridCoord(1, 1),
                target_cell=GridCoord(1, 0),
                vacancy=GridCoord(2, 2),
                process_id=9,
                round_index=0,
            )
        (pending,) = controller._awaiting_ack.values()
        assert pending.nonce == 1, "the newer request owns the slot"
        stale_ack = Message(
            kind=MessageKind.REPLACEMENT_ACK,
            source_cell=GridCoord(1, 0),
            target_cell=GridCoord(1, 1),
            sent_round=0,
            process_id=9,
            payload={"vacancy": (2, 2), "req": 0},
        )
        controller.handle_messages(state, {GridCoord(1, 1): [stale_ack]}, 1)
        assert controller.pending_acknowledgements == 1, "stale ack must not settle it"
        fresh_ack = Message(
            kind=MessageKind.REPLACEMENT_ACK,
            source_cell=GridCoord(1, 0),
            target_cell=GridCoord(1, 1),
            sent_round=0,
            process_id=9,
            payload={"vacancy": (2, 2), "req": 1},
        )
        controller.handle_messages(state, {GridCoord(1, 1): [fresh_ack]}, 1)
        assert controller.pending_acknowledgements == 0

    def test_explicit_perfect_channel_normalises_to_the_default_spec(self):
        base = RunSpec(
            scenario=ScenarioConfig(columns=4, rows=4, deployed_count=32),
            scheme="SR",
            seed=3,
        )
        explicit = dataclasses.replace(base, channel=DEFAULT_CHANNEL)
        assert explicit == base
        assert explicit.channel is None
        assert run_key(explicit) == run_key(base)

    def test_legacy_path_rejects_a_custom_message_cost(self, dense_state, rng):
        from repro.network.energy import EnergyModel

        with pytest.raises(ValueError, match="legacy no-messaging path"):
            RoundBasedEngine(
                dense_state,
                make_controller("SR", dense_state),
                rng,
                energy_model=EnergyModel(message_cost=5.0),
                channel=None,
            )


# --------------------------------------------------------------- spec/threading
class TestSpecThreading:
    def test_spec_round_trips_with_channel(self):
        spec = RunSpec(
            scenario=ScenarioConfig(columns=4, rows=4, deployed_count=32),
            scheme="SR",
            seed=3,
            channel=lossy(0.1, ack_timeout=5),
        )
        assert spec_from_dict(spec_to_dict(spec)) == spec

    def test_channel_is_part_of_the_cache_key(self):
        base = RunSpec(
            scenario=ScenarioConfig(columns=4, rows=4, deployed_count=32),
            scheme="SR",
            seed=3,
        )
        assert run_key(base) != run_key(dataclasses.replace(base, channel=lossy(0.1)))
        assert run_key(dataclasses.replace(base, channel=lossy(0.1))) == run_key(
            dataclasses.replace(base, channel=lossy(0.1))
        )

    def test_scenario_file_channel_table_round_trips(self):
        scenario = load_catalog_scenario("paper-16x16")
        variant = dataclasses.replace(scenario, channel=lossy(0.2))
        text = dumps_scenario(variant)
        assert "[channel]" in text
        again = loads_scenario(text)
        assert again == variant
        assert dumps_scenario(again) == text
        assert all(spec.channel == variant.channel for spec in again.run_specs())

    def test_scenario_file_channel_validation_names_the_table(self):
        scenario = load_catalog_scenario("paper-16x16")
        text = dumps_scenario(scenario) + (
            "\n[channel]\nkind = \"lossy\"\ndrop_probability = 7.0\n"
        )
        with pytest.raises(ScenarioValidationError, match="channel"):
            loads_scenario(text)
        bad_kind = dumps_scenario(scenario) + "\n[channel]\nkind = \"psychic\"\n"
        with pytest.raises(ScenarioValidationError, match="unknown channel kind"):
            loads_scenario(bad_kind)
