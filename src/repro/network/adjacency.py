"""Vectorized radio-neighbourhood construction and incremental maintenance.

Two layers live here:

* :func:`build_edges` — the batch path.  Nodes are hashed into square
  buckets of side ``R`` (two in-range nodes always land in the same or an
  adjacent bucket), every unordered bucket pair is expanded into its
  candidate node pairs **fully vectorized** (no per-node Python loop), and a
  single distance computation filters them down to real links.  Memory is
  bounded by processing candidate pairs in chunks.  The edge list is
  assembled into per-node neighbourhoods by :func:`adjacency_offsets`
  (CSR-shaped, pure array work) with :func:`adjacency_lists` as the
  dict-of-lists view on top.
* :class:`NeighborIndex` — the incremental path.  It stores the per-node
  neighbour sets (as small sorted numpy row arrays) plus the bucket
  membership, and updates only the edges incident to a touched node's 3x3
  bucket neighbourhood on ``move_node`` / ``disable_node`` / ``enable_node``.
  :meth:`NeighborIndex.check_consistency` is the oracle: a from-scratch
  :func:`build_edges` rebuild must agree exactly.

Both layers use the same in-range predicate as the historical per-node code
(``dx*dx + dy*dy <= R*R + 1e-9``), so results are identical to the old
``UnitDiskRadio.adjacency`` output.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

import numpy as np

#: Same slack the historical per-node implementation applied to ``R**2``.
RANGE_SLACK_SQ = 1e-9

#: Upper bound on candidate pairs materialised at once by :func:`build_edges`.
DEFAULT_CHUNK_PAIRS = 4_000_000

#: Forward bucket offsets: each unordered bucket pair is visited once — the
#: bucket itself plus four "forward" neighbours; the remaining directions are
#: covered when the neighbouring bucket takes its turn.
_FORWARD_OFFSETS = ((0, 0), (1, 0), (0, 1), (1, 1), (1, -1))


def _expand_block_pairs(
    starts_a: np.ndarray,
    counts_a: np.ndarray,
    starts_b: np.ndarray,
    counts_b: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray]:
    """Cartesian products of variable-size index blocks, concatenated.

    For each block pair ``p`` the output contains every combination of
    ``starts_a[p] + i`` (``i < counts_a[p]``) with ``starts_b[p] + j``
    (``j < counts_b[p]``), flattened over all pairs.
    """
    totals = counts_a * counts_b
    grand_total = int(totals.sum())
    if grand_total == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    pair_of = np.repeat(np.arange(len(totals)), totals)
    offsets = np.arange(grand_total, dtype=np.int64) - np.repeat(
        np.cumsum(totals) - totals, totals
    )
    quotient, remainder = np.divmod(offsets, counts_b[pair_of])
    left = starts_a[pair_of] + quotient
    right = starts_b[pair_of] + remainder
    return left, right


def build_edges(
    xs: np.ndarray,
    ys: np.ndarray,
    communication_range: float,
    chunk_pairs: int = DEFAULT_CHUNK_PAIRS,
) -> Tuple[np.ndarray, np.ndarray]:
    """All in-range unordered index pairs over positions ``(xs, ys)``.

    Returns ``(left, right)`` arrays of indices into ``xs``/``ys`` with one
    entry per link (each unordered pair appears exactly once).  Candidate
    pairs are produced per bucket-pair block and filtered in chunks of at
    most ``chunk_pairs`` so peak memory stays bounded on huge deployments.
    """
    count = len(xs)
    if count == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    inverse = 1.0 / communication_range
    bucket_x = np.floor(xs * inverse).astype(np.int64)
    bucket_y = np.floor(ys * inverse).astype(np.int64)
    bucket_x -= bucket_x.min()
    bucket_y -= bucket_y.min()
    # Unique scalar key per bucket; width leaves room for the +1 x-offsets so
    # neighbouring keys never collide across rows.
    width = int(bucket_x.max()) + 3
    keys = bucket_y * width + bucket_x

    order = np.argsort(keys, kind="stable")
    sorted_keys = keys[order]
    unique_keys, starts = np.unique(sorted_keys, return_index=True)
    counts = np.diff(np.append(starts, count))
    # Work in bucket-sorted coordinate space: candidate indices then gather
    # from contiguous arrays, and only the (much smaller) filtered result is
    # mapped back through ``order``.
    xs_sorted = np.ascontiguousarray(xs[order])
    ys_sorted = np.ascontiguousarray(ys[order])

    limit_sq = communication_range * communication_range + RANGE_SLACK_SQ
    left_parts: List[np.ndarray] = []
    right_parts: List[np.ndarray] = []

    for offset_x, offset_y in _FORWARD_OFFSETS:
        self_pair = offset_x == 0 and offset_y == 0
        if self_pair:
            bucket_a = np.flatnonzero(counts > 1)
            bucket_b = bucket_a
        else:
            delta = offset_y * width + offset_x
            targets = unique_keys + delta
            positions = np.searchsorted(unique_keys, targets)
            positions_clipped = np.minimum(positions, len(unique_keys) - 1)
            found = unique_keys[positions_clipped] == targets
            bucket_a = np.flatnonzero(found)
            bucket_b = positions_clipped[found]
        if len(bucket_a) == 0:
            continue
        # Chunk over bucket-pair blocks so candidate pairs stay bounded.
        block_totals = counts[bucket_a] * counts[bucket_b]
        block_cum = np.cumsum(block_totals)
        chunk_start = 0
        while chunk_start < len(bucket_a):
            consumed = block_cum[chunk_start - 1] if chunk_start else 0
            chunk_end = int(
                np.searchsorted(block_cum, consumed + chunk_pairs, side="left") + 1
            )
            chunk_end = min(chunk_end, len(bucket_a))
            a_slice = bucket_a[chunk_start:chunk_end]
            b_slice = bucket_b[chunk_start:chunk_end]
            cand_left, cand_right = _expand_block_pairs(
                starts[a_slice], counts[a_slice], starts[b_slice], counts[b_slice]
            )
            if self_pair:
                keep = cand_left < cand_right
                cand_left = cand_left[keep]
                cand_right = cand_right[keep]
            dx = xs_sorted[cand_left] - xs_sorted[cand_right]
            dy = ys_sorted[cand_left] - ys_sorted[cand_right]
            close = dx * dx + dy * dy <= limit_sq
            left_parts.append(order[cand_left[close]])
            right_parts.append(order[cand_right[close]])
            chunk_start = chunk_end

    if not left_parts:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    return np.concatenate(left_parts), np.concatenate(right_parts)


def adjacency_offsets(
    ids: np.ndarray, left: np.ndarray, right: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """CSR-shaped adjacency ``(offsets, neighbour_ids)`` from an edge list.

    Entry ``i`` of ``ids`` owns ``neighbour_ids[offsets[i]:offsets[i + 1]]``
    — its neighbours' ids in ascending order.  The assembly is pure array
    work (one composite-key sort plus gathers), so this is the form to use
    when the consumer can index instead of needing Python lists; the
    dict-of-lists view of :func:`adjacency_lists` costs 3-5x more purely in
    materialising two Python ints per link.
    """
    count = len(ids)
    ids64 = np.asarray(ids, dtype=np.int64)
    sources = np.concatenate((left, right))
    targets = np.concatenate((right, left))
    if np.all(np.diff(ids64) > 0):
        # Ids already ascending: index order is id order, no rank indirection.
        secondary = targets
    else:
        # Rank of each index when ordered by id, so one composite sort key
        # yields neighbour runs already sorted by neighbour id.
        rank = np.empty(count, dtype=np.int64)
        rank[np.argsort(ids64)] = np.arange(count)
        secondary = rank[targets]
    keys = sources * count + secondary
    if count * count <= np.iinfo(np.int32).max:
        # Sorting the narrower key is measurably faster on the big tiers.
        keys = keys.astype(np.int32)
    order = np.argsort(keys)
    offsets = np.zeros(count + 1, dtype=np.int64)
    np.cumsum(np.bincount(sources, minlength=count), out=offsets[1:])
    return offsets, ids64[targets[order]]


def adjacency_lists(
    ids: np.ndarray, left: np.ndarray, right: np.ndarray
) -> Dict[int, List[int]]:
    """Adjacency dict ``{id: sorted neighbour ids}`` from an edge list.

    ``left``/``right`` index into ``ids``; every id in ``ids`` gets an entry
    (possibly empty), matching the historical ``UnitDiskRadio.adjacency``
    output shape.  The array assembly is :func:`adjacency_offsets`; what
    remains here is only the conversion to Python ints and lists, kept at
    C level (one bulk ``tolist`` plus ``map``-driven slicing — measured
    against a ``np.split``/per-chunk-``tolist`` variant, which loses 2x on
    its per-chunk view and conversion overhead).
    """
    offsets, flat = adjacency_offsets(ids, left, right)
    neighbour_ids = flat.tolist()
    bounds = offsets.tolist()
    return dict(
        zip(
            np.asarray(ids, dtype=np.int64).tolist(),
            map(neighbour_ids.__getitem__, map(slice, bounds, bounds[1:])),
        )
    )


class NeighborIndex:
    """Incrementally maintained radio neighbourhoods over a ``WsnState``.

    The index holds, for every **enabled** node row, a sorted numpy array of
    neighbouring rows, plus the bucket membership used to localise updates.
    :class:`~repro.network.state.WsnState` calls :meth:`on_move` /
    :meth:`on_disable` / :meth:`on_enable` from its mutation paths, so a
    query (:meth:`neighbours_of`, :meth:`as_dict`) never triggers a rebuild;
    per-update cost is O(degree) small-array operations confined to the 3x3
    bucket neighbourhood of the touched node.
    """

    def __init__(self, state, radio) -> None:
        self._state = state
        self._radio = radio
        self._range = float(radio.communication_range)
        self._limit_sq = self._range * self._range + RANGE_SLACK_SQ
        arrays = state.arrays
        count = len(arrays)
        self._neighbours: List[Optional[np.ndarray]] = [None] * count
        self._bucket_x = np.zeros(count, dtype=np.int64)
        self._bucket_y = np.zeros(count, dtype=np.int64)
        self._buckets: Dict[Tuple[int, int], Set[int]] = {}
        self._rebuild()

    # ------------------------------------------------------------------ build
    def _bucket_key_of(self, row: int) -> Tuple[int, int]:
        positions = self._state.arrays.positions
        inverse = 1.0 / self._range
        return (
            int(np.floor(positions[row, 0] * inverse)),
            int(np.floor(positions[row, 1] * inverse)),
        )

    def _rebuild(self) -> None:
        """Populate neighbour arrays and buckets from scratch (vectorized)."""
        arrays = self._state.arrays
        mask = arrays.enabled_mask()
        rows = np.flatnonzero(mask)
        empty = np.empty(0, dtype=np.int64)
        self._neighbours = [None] * len(arrays)
        for row in rows.tolist():
            self._neighbours[row] = empty
        self._buckets = {}
        if len(rows) == 0:
            return
        xs = arrays.positions[rows, 0]
        ys = arrays.positions[rows, 1]
        inverse = 1.0 / self._range
        bucket_x = np.floor(xs * inverse).astype(np.int64)
        bucket_y = np.floor(ys * inverse).astype(np.int64)
        self._bucket_x[rows] = bucket_x
        self._bucket_y[rows] = bucket_y
        rows_list = rows.tolist()
        for index, key in enumerate(zip(bucket_x.tolist(), bucket_y.tolist())):
            self._buckets.setdefault(key, set()).add(rows_list[index])
        left_local, right_local = build_edges(xs, ys, self._range)
        left = rows[left_local]
        right = rows[right_local]
        sources = np.concatenate((left, right))
        targets = np.concatenate((right, left))
        order = np.argsort(sources * np.int64(len(arrays)) + targets)
        sorted_targets = targets[order]
        degrees = np.bincount(sources, minlength=len(arrays))
        boundaries = np.cumsum(degrees)
        cursor = 0
        for row in rows.tolist():
            end = int(boundaries[row])
            if end > cursor:
                self._neighbours[row] = sorted_targets[cursor:end]
            cursor = end

    # ---------------------------------------------------------------- queries
    @property
    def radio(self):
        """The radio model this index was built for."""
        return self._radio

    def degree(self, node_id: int) -> int:
        """Number of enabled nodes in range of ``node_id``."""
        row = self._state.arrays.row_of(node_id)
        neighbours = self._neighbours[row]
        return 0 if neighbours is None else len(neighbours)

    def neighbours_of(self, node_id: int) -> List[int]:
        """Sorted ids of the enabled nodes in range of ``node_id``."""
        arrays = self._state.arrays
        row = arrays.row_of(node_id)
        neighbours = self._neighbours[row]
        if neighbours is None or len(neighbours) == 0:
            return []
        ids = arrays.node_ids[neighbours]
        ids.sort()
        return ids.tolist()

    def edge_count(self) -> int:
        """Number of undirected links currently indexed."""
        total = sum(
            len(neighbours)
            for neighbours in self._neighbours
            if neighbours is not None
        )
        return total // 2

    def as_dict(self) -> Dict[int, List[int]]:
        """Snapshot ``{id: sorted neighbour ids}`` over the enabled nodes."""
        arrays = self._state.arrays
        node_ids = arrays.node_ids
        result: Dict[int, List[int]] = {}
        for row in np.flatnonzero(arrays.enabled_mask()).tolist():
            neighbours = self._neighbours[row]
            if neighbours is None or len(neighbours) == 0:
                result[int(node_ids[row])] = []
            else:
                ids = node_ids[neighbours]
                ids.sort()
                result[int(node_ids[row])] = ids.tolist()
        return result

    # ---------------------------------------------------------------- updates
    def _drop_edges_of(self, row: int) -> None:
        neighbours = self._neighbours[row]
        if neighbours is None:
            return
        for other in neighbours.tolist():
            arr = self._neighbours[other]
            position = int(np.searchsorted(arr, row))
            self._neighbours[other] = np.delete(arr, position)

    def _find_neighbours(self, row: int, key: Tuple[int, int]) -> np.ndarray:
        """In-range enabled rows around bucket ``key``, excluding ``row``."""
        candidates: List[int] = []
        buckets = self._buckets
        key_x, key_y = key
        for dx in (-1, 0, 1):
            for dy in (-1, 0, 1):
                members = buckets.get((key_x + dx, key_y + dy))
                if members:
                    candidates.extend(members)
        if not candidates:
            return np.empty(0, dtype=np.int64)
        cand = np.array(candidates, dtype=np.int64)
        cand = cand[cand != row]
        if len(cand) == 0:
            return cand
        positions = self._state.arrays.positions
        dx = positions[cand, 0] - positions[row, 0]
        dy = positions[cand, 1] - positions[row, 1]
        close = cand[dx * dx + dy * dy <= self._limit_sq]
        close.sort()
        return close

    def _add_edges_of(self, row: int, neighbours: np.ndarray) -> None:
        self._neighbours[row] = neighbours
        for other in neighbours.tolist():
            arr = self._neighbours[other]
            position = int(np.searchsorted(arr, row))
            self._neighbours[other] = np.insert(arr, position, row)

    def on_move(self, row: int) -> None:
        """Re-link ``row`` after its position changed (state calls this)."""
        self._drop_edges_of(row)
        old_key = (int(self._bucket_x[row]), int(self._bucket_y[row]))
        new_key = self._bucket_key_of(row)
        if new_key != old_key:
            members = self._buckets.get(old_key)
            if members is not None:
                members.discard(row)
                if not members:
                    del self._buckets[old_key]
            self._buckets.setdefault(new_key, set()).add(row)
            self._bucket_x[row], self._bucket_y[row] = new_key
        self._add_edges_of(row, self._find_neighbours(row, new_key))

    def on_disable(self, row: int) -> None:
        """Remove ``row`` from the index after it was disabled."""
        self._drop_edges_of(row)
        self._neighbours[row] = None
        key = (int(self._bucket_x[row]), int(self._bucket_y[row]))
        members = self._buckets.get(key)
        if members is not None:
            members.discard(row)
            if not members:
                del self._buckets[key]

    def on_enable(self, row: int) -> None:
        """Insert ``row`` into the index after it was re-enabled."""
        key = self._bucket_key_of(row)
        self._buckets.setdefault(key, set()).add(row)
        self._bucket_x[row], self._bucket_y[row] = key
        self._add_edges_of(row, self._find_neighbours(row, key))

    # ----------------------------------------------------------------- oracle
    def check_consistency(self) -> None:
        """Raise :class:`AssertionError` if the index differs from a full rebuild.

        This is the incremental-adjacency oracle: neighbourhoods and bucket
        membership are recomputed from scratch from the current arrays and
        compared entry-by-entry.
        """
        arrays = self._state.arrays
        mask = arrays.enabled_mask()
        rows = np.flatnonzero(mask)
        expected: Dict[int, Set[int]] = {row: set() for row in rows.tolist()}
        if len(rows):
            left_local, right_local = build_edges(
                arrays.positions[rows, 0], arrays.positions[rows, 1], self._range
            )
            for a, b in zip(rows[left_local].tolist(), rows[right_local].tolist()):
                expected[a].add(b)
                expected[b].add(a)
        for row in range(len(arrays)):
            neighbours = self._neighbours[row]
            if row not in expected:
                assert neighbours is None, (
                    f"disabled row {row} still has indexed neighbours"
                )
                continue
            actual = set() if neighbours is None else set(neighbours.tolist())
            assert actual == expected[row], (
                f"neighbour set of row {row} is {sorted(actual)}, "
                f"rebuild says {sorted(expected[row])}"
            )
            assert neighbours is None or np.all(np.diff(neighbours) > 0), (
                f"neighbour array of row {row} is not strictly sorted"
            )
        indexed_rows = {
            row for members in self._buckets.values() for row in members
        }
        assert indexed_rows == set(expected), (
            "bucket membership disagrees with the enabled rows: "
            f"{sorted(indexed_rows)} vs {sorted(expected)}"
        )
        for key, members in self._buckets.items():
            assert members, f"bucket {key} is empty but still present"
            for row in members:
                assert self._bucket_key_of(row) == key, (
                    f"row {row} indexed under bucket {key} but its position "
                    f"hashes to {self._bucket_key_of(row)}"
                )
