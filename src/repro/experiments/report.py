"""Shape analysis and report generation for reproduced figures.

Reproducing a paper on different hardware, seeds, and a reconstructed
baseline means absolute numbers never match exactly; what must match is the
*shape* of each curve: who wins, by roughly what factor, and where crossovers
fall.  This module turns those informal statements into small, testable
checks and can render a Markdown summary of a comparison sweep — the same
kind of table EXPERIMENTS.md contains, generated straight from a fresh run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.experiments.results import ExperimentResult


@dataclass(frozen=True)
class ShapeCheck:
    """Outcome of one qualitative claim checked against measured data."""

    claim: str
    holds: bool
    details: str

    def __str__(self) -> str:
        status = "OK " if self.holds else "FAIL"
        return f"[{status}] {claim_ellipsis(self.claim)} — {self.details}"


def claim_ellipsis(text: str, limit: int = 72) -> str:
    """Shorten a claim string for single-line rendering."""
    return text if len(text) <= limit else text[: limit - 3] + "..."


def series_ratio(
    result: ExperimentResult, x: str, numerator: str, denominator: str
) -> List[Tuple[float, float]]:
    """Pointwise ratio ``numerator / denominator`` along ``x`` (skipping zero denominators)."""
    num = dict(result.series(x, numerator))
    den = dict(result.series(x, denominator))
    ratios = []
    for key in sorted(num):
        if key in den and den[key] != 0:
            ratios.append((key, num[key] / den[key]))
    return ratios


def find_crossover(
    result: ExperimentResult, x: str, first: str, second: str
) -> Optional[float]:
    """Smallest ``x`` from which ``first`` stays at or below ``second``.

    Returns ``None`` when ``first`` never drops below ``second`` within the
    sweep.  Points where both series are zero (no holes to repair) are
    ignored because neither scheme does any work there.
    """
    a = dict(result.series(x, first))
    b = dict(result.series(x, second))
    xs = sorted(set(a) & set(b))
    candidate = None
    for key in reversed(xs):
        if a[key] == 0 and b[key] == 0:
            continue
        if a[key] <= b[key]:
            candidate = key
        else:
            break
    return candidate


def check_monotone_decreasing(
    result: ExperimentResult, x: str, y: str, tolerance: float = 0.15
) -> ShapeCheck:
    """Check that ``y`` broadly decreases along ``x`` (allowing small noise)."""
    series = result.series(x, y)
    violations = [
        (x0, x1)
        for (x0, y0), (x1, y1) in zip(series, series[1:])
        if y1 > y0 * (1 + tolerance) and y1 - y0 > 1.0
    ]
    return ShapeCheck(
        claim=f"{y} decreases as {x} grows",
        holds=not violations,
        details="monotone within tolerance" if not violations else f"violations at {violations}",
    )


def check_dominates(
    result: ExperimentResult, x: str, smaller: str, larger: str, factor: float = 1.0
) -> ShapeCheck:
    """Check ``smaller * factor <= larger`` at every point of the sweep."""
    small = dict(result.series(x, smaller))
    large = dict(result.series(x, larger))
    bad = [
        key
        for key in sorted(set(small) & set(large))
        if small[key] * factor > large[key] and (small[key] or large[key])
    ]
    return ShapeCheck(
        claim=f"{smaller} stays below {larger} (factor {factor:g})",
        holds=not bad,
        details="holds at every point" if not bad else f"violated at {x} = {bad}",
    )


def check_tracks(
    result: ExperimentResult,
    x: str,
    measured: str,
    predicted: str,
    rel_band: float = 1.0,
) -> ShapeCheck:
    """Check the measured series stays within ``(1 ± rel_band)`` of the prediction."""
    ratios = series_ratio(result, x, measured, predicted)
    bad = [
        (key, round(ratio, 2))
        for key, ratio in ratios
        if not (1.0 / (1.0 + rel_band) <= ratio <= 1.0 + rel_band)
    ]
    return ShapeCheck(
        claim=f"{measured} tracks {predicted} within a factor of {1 + rel_band:g}",
        holds=not bad,
        details="within band everywhere" if not bad else f"outside band at {bad}",
    )


def section5_shape_checks(experiment: ExperimentResult) -> List[ShapeCheck]:
    """The paper's Section-5 claims, evaluated against a comparison sweep.

    The input is the table produced by
    :func:`repro.experiments.figures.run_section5_experiment`.
    """
    checks = [
        check_dominates(experiment, "N", "SR_processes", "AR_processes", factor=1.9),
        ShapeCheck(
            claim="SR success rate is 100% for every N",
            holds=all(
                float(row["SR_success_rate"]) == 1.0
                for row in experiment.rows
                if float(row["holes"]) > 0
            ),
            details="success_rate == 1.0 wherever holes existed",
        ),
        check_monotone_decreasing(experiment, "N", "SR_moves"),
        check_monotone_decreasing(experiment, "N", "SR_distance"),
        check_tracks(experiment, "N", "SR_moves", "SR_moves_analytic", rel_band=1.5),
    ]
    crossover = find_crossover(experiment, "N", "SR_moves", "AR_moves")
    checks.append(
        ShapeCheck(
            claim="SR becomes cheaper than AR past a moderate spare surplus",
            holds=crossover is not None,
            details=f"crossover at N ≈ {crossover}" if crossover is not None else "no crossover found",
        )
    )
    return checks


def render_markdown_report(
    experiment: ExperimentResult,
    title: str = "Section 5 reproduction report",
    checks: Optional[Sequence[ShapeCheck]] = None,
) -> str:
    """Render a Markdown report: the measured table plus the shape-check outcomes."""
    checks = list(checks) if checks is not None else section5_shape_checks(experiment)
    lines = [f"# {title}", ""]
    lines.append(f"*{experiment.name}* — {experiment.description}")
    lines.append("")
    lines.append("## Measured series")
    lines.append("")
    header_columns = [
        "N",
        "holes",
        "SR_processes",
        "AR_processes",
        "SR_moves",
        "AR_moves",
        "SR_distance",
        "AR_distance",
    ]
    available = [column for column in header_columns if column in experiment.columns]
    lines.append("| " + " | ".join(available) + " |")
    lines.append("|" + "---|" * len(available))
    for row in experiment.rows:
        cells = []
        for column in available:
            value = row.get(column, "")
            cells.append(f"{value:.1f}" if isinstance(value, float) else str(value))
        lines.append("| " + " | ".join(cells) + " |")
    lines.append("")
    lines.append("## Shape checks (the paper's qualitative claims)")
    lines.append("")
    for check in checks:
        status = "✅" if check.holds else "❌"
        lines.append(f"- {status} {check.claim} — {check.details}")
    lines.append("")
    passed = sum(1 for check in checks if check.holds)
    lines.append(f"**{passed} / {len(checks)} shape checks hold.**")
    return "\n".join(lines)
