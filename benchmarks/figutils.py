"""Small helpers shared by the figure benchmarks."""

from __future__ import annotations

from pathlib import Path

from repro.experiments.results import ExperimentResult


def emit(result: ExperimentResult, results_dir: Path, filename: str) -> None:
    """Print a regenerated figure table and persist it as CSV.

    The printed table is visible with ``pytest -s``; the CSV always lands in
    ``benchmarks/results/`` so EXPERIMENTS.md can reference stable artefacts.
    """
    result.to_csv(results_dir / filename)
    print()
    print(result.format())
    print(f"[saved to {results_dir / filename}]")
