"""AR: the localized, unsynchronised cascading-replacement baseline.

The paper compares SR against the scheme of [3] (Jiang, Wu, Agah, Lu,
"Topology control for secured coverage in wireless sensor networks",
WSNS'07), which it calls AR and describes as "the best result known to date":
a localized control method based only on the 1-hop neighbourhood in which a
snake-like cascading replacement is initiated *whenever a vacant area is
detected*.  Because there is no synchronisation, **every** head adjacent to a
hole starts its own replacement process, so a single hole incurs multiple —
partly redundant — processes and extra node movements, and competing
processes can strand each other (the 10-20% failure rate in Figure 6(b)).

The original AR implementation is not publicly available, so this module is
a faithful reconstruction of the behaviour the paper relies on:

* every occupied 4-neighbour of a newly detected hole initiates a process;
* a process first tries to send a spare from its initiator cell; with no
  spare the head itself moves in, vacating its own cell, and the cascade
  continues from a neighbouring cell chosen with only 1-hop knowledge
  (preferring to keep moving in a straight line, never backtracking);
* processes acting in the same round cannot see each other's moves, so a
  hole may receive several replacement nodes at once (redundant moves);
* a process fails when its cascade dead-ends on vacant cells or the grid
  boundary, when it is starved by competing processes for too many rounds,
  or when it exceeds its hop budget.

See DESIGN.md ("AR reconstruction") for the mapping between these rules and
the claims made in Section 5 of the paper.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.core.protocol import MobilityController, ReplacementProcess, RoundOutcome
from repro.grid.virtual_grid import GridCoord, VirtualGrid
from repro.network.node import SensorNode
from repro.network.state import WsnState


@dataclass
class _CascadeState:
    """Controller-private bookkeeping for one AR process."""

    target: GridCoord
    supplier: GridCoord
    #: Unit direction (dx, dy) of the last hop, used to prefer straight cascades.
    direction: Optional[Tuple[int, int]] = None
    stalls: int = 0
    #: Whether the request asking ``supplier`` to continue the cascade is
    #: still in the channel.  The process may not advance (and does not count
    #: stalls) until the request is delivered; on the default perfect channel
    #: delivery happens exactly one round after the hop, which is when the
    #: process would advance anyway.
    awaiting_delivery: bool = False


class LocalizedReplacementController(MobilityController):
    """The AR baseline: 1-hop, unsynchronised cascading replacement.

    Parameters
    ----------
    grid:
        The virtual grid the network lives on.
    max_hops:
        Hop budget per process; exceeding it marks the process failed.
        Defaults to the number of grid cells.
    stall_limit:
        Number of rounds a process may be starved (its supplier head busy
        serving another process) before it gives up.
    spare_selection:
        ``"nearest"`` (default) sends the spare closest to the target cell's
        centre; ``"max_energy"`` sends the fullest-battery spare (ties broken
        by distance, then id) — the energy-aware policy of the lifetime
        workloads.
    """

    name = "AR"

    def __init__(
        self,
        grid: VirtualGrid,
        max_hops: Optional[int] = None,
        stall_limit: int = 8,
        spare_selection: str = "nearest",
    ) -> None:
        super().__init__()
        self.grid = grid
        self.max_hops = max_hops if max_hops is not None else grid.cell_count
        if self.max_hops < 1:
            raise ValueError(f"max_hops must be >= 1, got {self.max_hops}")
        if stall_limit < 1:
            raise ValueError(f"stall_limit must be >= 1, got {stall_limit}")
        self.stall_limit = stall_limit
        if spare_selection not in ("nearest", "max_energy"):
            raise ValueError(
                f"spare_selection must be 'nearest' or 'max_energy', got {spare_selection!r}"
            )
        self.spare_selection = spare_selection
        self._cascades: Dict[int, _CascadeState] = {}
        #: Original holes that already triggered their burst of processes.
        self._announced_holes: Set[GridCoord] = set()
        #: Vacancies created by cascading moves (owned by exactly one process).
        self._cascade_vacancies: Set[GridCoord] = set()
        #: Vacancies left behind by failed processes; never re-announced.
        self._abandoned: Set[GridCoord] = set()

    # ------------------------------------------------------------------ round
    def execute_round(
        self, state: WsnState, rng: random.Random, round_index: int
    ) -> RoundOutcome:
        """Run one AR round: heads detect adjacent holes and cascade 1-hop replacements."""
        outcome = RoundOutcome(round_index=round_index)
        self._service_retries(state, round_index, outcome)
        # O(holes) snapshot from the live vacancy index; no grid scan.
        vacant_snapshot = state.vacant_cell_set()

        self._announce_new_holes(state, vacant_snapshot, round_index, outcome)

        acted_heads: Set[GridCoord] = set()
        active_ids = [pid for pid in sorted(self._cascades) if self._processes[pid].is_active]
        rng.shuffle(active_ids)
        for process_id in active_ids:
            self._advance_process(
                state,
                rng,
                round_index,
                process_id,
                vacant_snapshot,
                acted_heads,
                outcome,
            )
        return outcome

    # ------------------------------------------------------------- initiation
    def _announce_new_holes(
        self,
        state: WsnState,
        vacant_snapshot: FrozenSet[GridCoord],
        round_index: int,
        outcome: RoundOutcome,
    ) -> None:
        """Every occupied neighbour of a fresh hole starts its own process."""
        for hole in sorted(vacant_snapshot, key=lambda c: c.as_tuple()):
            if (
                hole in self._announced_holes
                or hole in self._cascade_vacancies
                or hole in self._abandoned
            ):
                continue
            occupied_neighbours = [
                neighbour
                for neighbour in self.grid.neighbours(hole)
                if not state.is_vacant(neighbour)
            ]
            if not occupied_neighbours:
                # Nobody can see the hole yet; it may be announced later once
                # a neighbouring cell gains a head again.
                continue
            self._announced_holes.add(hole)
            for neighbour in occupied_neighbours:
                process = self._start_process(
                    origin_cell=hole, initiator_cell=neighbour, round_index=round_index
                )
                self._cascades[process.process_id] = _CascadeState(
                    target=hole, supplier=neighbour
                )
                outcome.processes_started.append(process.process_id)

    # -------------------------------------------------------------- cascading
    def _advance_process(
        self,
        state: WsnState,
        rng: random.Random,
        round_index: int,
        process_id: int,
        vacant_snapshot: FrozenSet[GridCoord],
        acted_heads: Set[GridCoord],
        outcome: RoundOutcome,
    ) -> None:
        process = self._processes[process_id]
        cascade = self._cascades[process_id]
        target = cascade.target

        if cascade.awaiting_delivery:
            # The request asking the next supplier to continue the cascade is
            # still in the channel; the process cannot advance (and is not
            # starving — no stall is counted) until it is delivered.
            return

        if target not in vacant_snapshot and not state.is_vacant(target):
            # Another process filled the target in a *previous* round; this
            # process aborts.  It is redundant work typical of AR, but it did
            # not fail to find a spare, so it does not count against the
            # success rate.
            process.mark_converged(round_index)
            outcome.processes_converged.append(process_id)
            return

        supplier = cascade.supplier
        if state.is_vacant(supplier):
            # The supplier lost its nodes (e.g. another cascade pulled them
            # away): with only 1-hop knowledge the process cannot recover.
            self._fail(process, cascade, round_index, outcome)
            return
        if supplier in acted_heads:
            cascade.stalls += 1
            if cascade.stalls > self.stall_limit:
                self._fail(process, cascade, round_index, outcome)
            return

        head = state.head_of(supplier)
        assert head is not None
        if head.is_battery_depleted:
            # A dead-battery head can neither move nor message; with 1-hop
            # knowledge the process can only wait (and eventually starve) —
            # under the energy model the head is disabled next round and a
            # charged successor takes over.
            cascade.stalls += 1
            if cascade.stalls > self.stall_limit:
                self._fail(process, cascade, round_index, outcome)
            return
        acted_heads.add(supplier)
        spare = self._select_spare(state, supplier, target)
        if spare is not None:
            record = state.move_node(
                spare.node_id, target, rng, round_index, process_id=process_id
            )
            process.record_move(record)
            outcome.moves.append(record)
            self._cascade_vacancies.discard(target)
            process.mark_converged(round_index)
            outcome.processes_converged.append(process_id)
            return

        # No spare: the head itself moves into the target, vacating its cell.
        # The notification is sent after the move so a transmission charge
        # that empties the battery cannot abort the move the head committed
        # to this round.
        process.notifications_sent += 1
        outcome.messages_sent += 1
        record = state.move_node(
            head.node_id, target, rng, round_index, process_id=process_id
        )
        process.record_move(record)
        outcome.moves.append(record)
        self._cascade_vacancies.discard(target)

        if process.move_count >= self.max_hops:
            cascade.target = supplier
            # The hop budget is blown: the head still announces the vacancy
            # it left behind, but the process is over, so the notification is
            # advisory (never retried, delivery gates nothing).
            self._post_replacement_request(
                sender=head,
                source_cell=target,
                target_cell=supplier,
                vacancy=supplier,
                process_id=process_id,
                round_index=round_index,
                reliable=False,
            )
            self._fail(process, cascade, round_index, outcome)
            return

        next_supplier, direction = self._choose_next_supplier(
            state, supplier, came_from=target, direction=cascade.direction, rng=rng
        )
        cascade.target = supplier
        self._cascade_vacancies.add(supplier)
        if next_supplier is None:
            # Dead end: every usable neighbour is vacant or would backtrack.
            self._post_replacement_request(
                sender=head,
                source_cell=target,
                target_cell=supplier,
                vacancy=supplier,
                process_id=process_id,
                round_index=round_index,
                reliable=False,
            )
            self._fail(process, cascade, round_index, outcome)
            return
        cascade.supplier = next_supplier
        cascade.direction = direction
        cascade.stalls = 0
        if self._post_replacement_request(
            sender=head,
            source_cell=target,
            target_cell=next_supplier,
            vacancy=supplier,
            process_id=process_id,
            round_index=round_index,
        ):
            cascade.awaiting_delivery = True

    def _choose_next_supplier(
        self,
        state: WsnState,
        vacated: GridCoord,
        came_from: GridCoord,
        direction: Optional[Tuple[int, int]],
        rng: random.Random,
    ) -> Tuple[Optional[GridCoord], Optional[Tuple[int, int]]]:
        """Pick the neighbouring cell the cascade pulls from next.

        Prefers continuing in a straight line (the snake keeps its heading),
        never backtracks into the cell it just filled, and only considers
        occupied cells because a vacant cell has no head to ask.
        """
        incoming = (came_from.x - vacated.x, came_from.y - vacated.y)
        straight = GridCoord(vacated.x - incoming[0], vacated.y - incoming[1])
        candidates = [
            neighbour
            for neighbour in self.grid.neighbours(vacated)
            if neighbour != came_from and not state.is_vacant(neighbour)
        ]
        if not candidates:
            return None, None
        if straight in candidates:
            chosen = straight
        else:
            chosen = candidates[rng.randrange(len(candidates))]
        new_direction = (vacated.x - chosen.x, vacated.y - chosen.y)
        return chosen, new_direction

    def _select_spare(
        self, state: WsnState, cell: GridCoord, target: GridCoord
    ) -> Optional[SensorNode]:
        spares = [
            node for node in state.spares_of(cell) if not node.is_battery_depleted
        ]
        if not spares:
            return None
        target_center = state.grid.cell_center(target)
        if self.spare_selection == "max_energy":
            return max(
                spares,
                key=lambda node: (
                    node.energy,
                    -node.position.distance_to(target_center),
                    -node.node_id,
                ),
            )
        return min(
            spares,
            key=lambda node: (node.position.distance_to(target_center), node.node_id),
        )

    # -------------------------------------------------------------- messaging
    def _reset_messaging_state(self) -> None:
        """Drop delivery gates from a previous run's channel (rebind hook)."""
        for cascade in self._cascades.values():
            cascade.awaiting_delivery = False

    def _on_request_delivered(
        self, state: WsnState, message, round_index: int
    ) -> None:
        """The next supplier heard about the cascade: the process may advance."""
        if message.process_id is None:
            return
        cascade = self._cascades.get(message.process_id)
        if cascade is None or not cascade.awaiting_delivery:
            return
        vacancy = (message.payload or {}).get("vacancy")
        if vacancy is not None and tuple(vacancy) != cascade.target.as_tuple():
            # A late duplicate (retransmission) of an *earlier* hop's request:
            # it must not open the gate for the current hop, whose own
            # notification may still be in flight or lost.
            return
        cascade.awaiting_delivery = False

    def _on_request_abandoned(
        self, state: WsnState, key, round_index: int, outcome: RoundOutcome
    ) -> None:
        """Retry budget exhausted: with 1-hop knowledge the process cannot recover.

        Only the request gating the *current* hop can doom the process: an
        exhausted entry for an earlier hop (delivered long ago, but its
        acknowledgements kept getting lost) says nothing about the cascade's
        viability.
        """
        process = self._processes.get(key[0])
        cascade = self._cascades.get(key[0])
        if process is None or cascade is None or not process.is_active:
            return
        if cascade.awaiting_delivery and key[1] == cascade.target.as_tuple():
            cascade.awaiting_delivery = False
            self._fail(process, cascade, round_index, outcome)

    def _fail(
        self,
        process: ReplacementProcess,
        cascade: _CascadeState,
        round_index: int,
        outcome: RoundOutcome,
    ) -> None:
        process.mark_failed(round_index)
        outcome.processes_failed.append(process.process_id)
        self._cascade_vacancies.discard(cascade.target)
        self._abandoned.add(cascade.target)

    # -------------------------------------------------------------- lifecycle
    def finalize(self, state: WsnState, round_index: int) -> None:
        """Mark still-active processes as failed when the engine stops."""
        for process in self._processes.values():
            if process.is_active:
                process.mark_failed(round_index)

    @property
    def redundant_processes(self) -> int:
        """Processes that converged without moving anything (aborted as redundant)."""
        return sum(
            1 for p in self._processes.values() if p.converged and p.move_count == 0
        )
