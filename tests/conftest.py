"""Shared fixtures for the unit, integration, and property-based tests."""

from __future__ import annotations

import random

import pytest

from repro.core.hamilton import build_hamilton_cycle
from repro.grid.virtual_grid import GridCoord, VirtualGrid
from repro.network.deployment import deploy_per_cell, deploy_uniform
from repro.network.state import WsnState


@pytest.fixture
def rng() -> random.Random:
    """A deterministic random stream for tests."""
    return random.Random(1234)


@pytest.fixture
def small_grid() -> VirtualGrid:
    """A 4x5 grid with unit cells (the paper's small example)."""
    return VirtualGrid(columns=4, rows=5, cell_size=1.0)


@pytest.fixture
def paper_grid() -> VirtualGrid:
    """The paper's evaluation grid: 16x16 cells of 4.4721 m (R = 10 m)."""
    return VirtualGrid(columns=16, rows=16, cell_size=4.4721)


@pytest.fixture
def odd_grid() -> VirtualGrid:
    """A 5x5 grid, which requires the dual-path Hamilton construction."""
    return VirtualGrid(columns=5, rows=5, cell_size=1.0)


@pytest.fixture
def dense_state(small_grid, rng) -> WsnState:
    """A fully covered 4x5 network with 3 nodes in every cell (2 spares each)."""
    nodes = deploy_per_cell(small_grid, 3, rng)
    return WsnState(small_grid, nodes)


@pytest.fixture
def sparse_state(small_grid, rng) -> WsnState:
    """A 4x5 network with exactly one node per cell (no spares anywhere)."""
    nodes = deploy_per_cell(small_grid, 1, rng)
    return WsnState(small_grid, nodes)


@pytest.fixture
def uniform_state(small_grid, rng) -> WsnState:
    """A 4x5 network with 60 uniformly deployed nodes (some cells may be empty)."""
    nodes = deploy_uniform(small_grid, 60, rng)
    return WsnState(small_grid, nodes)


@pytest.fixture
def small_cycle(small_grid):
    """The serpentine Hamilton cycle over the 4x5 grid."""
    return build_hamilton_cycle(small_grid)


def make_hole(state: WsnState, coord: GridCoord) -> None:
    """Disable every enabled node currently inside ``coord`` (test helper)."""
    for node in list(state.members_of(coord)):
        state.disable_node(node.node_id)
    assert state.is_vacant(coord)
