"""Shared helper functions for the test suite."""

from __future__ import annotations

from repro.grid.virtual_grid import GridCoord
from repro.network.state import WsnState


def make_hole(state: WsnState, coord: GridCoord) -> None:
    """Disable every enabled node currently inside ``coord``, creating a hole."""
    for node in list(state.members_of(coord)):
        state.disable_node(node.node_id)
    assert state.is_vacant(coord)
