"""Unit tests for the analytical model (Theorem 2, Corollary 2, Section 4 estimates)."""

import math

import numpy as np
import pytest

from repro.core import analysis


class TestMovementDistribution:
    def test_distribution_sums_to_one_with_spares(self):
        for spares, path_length in [(1, 5), (12, 19), (100, 255)]:
            distribution = analysis.movement_distribution(spares, path_length)
            assert distribution.sum() == pytest.approx(1.0)
            assert len(distribution) == path_length
            assert (distribution >= -1e-12).all()

    def test_matches_paper_equation_form(self):
        """The telescoped form equals Equation (1) evaluated term by term."""
        spares, path_length = 7, 19
        distribution = analysis.movement_distribution(spares, path_length)
        for i in range(1, path_length + 1):
            prefix = math.prod(
                ((path_length - k) / (path_length - k + 1)) ** spares
                for k in range(1, i)
            )
            if i == path_length:
                expected = prefix
            else:
                expected = (1 - ((path_length - i) / (path_length - i + 1)) ** spares) * prefix
            assert distribution[i - 1] == pytest.approx(expected, rel=1e-9)

    def test_zero_spares_puts_all_mass_on_full_walk(self):
        distribution = analysis.movement_distribution(0, 10)
        assert distribution[-1] == pytest.approx(1.0)
        assert distribution[:-1].sum() == pytest.approx(0.0)

    def test_more_spares_shift_mass_towards_one_hop(self):
        few = analysis.movement_distribution(2, 50)
        many = analysis.movement_distribution(80, 50)
        assert many[0] > few[0]
        assert many[-1] < few[-1]

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            analysis.movement_distribution(-1, 10)
        with pytest.raises(ValueError):
            analysis.movement_distribution(3, 0)


class TestExpectedMovements:
    def test_paper_reference_value(self):
        """Section 3's example: 12 spares in the 4x5 grid -> 2.0139 movements."""
        assert analysis.expected_movements(12, 19) == pytest.approx(2.0139, abs=1e-4)

    def test_equals_weighted_sum_of_distribution(self):
        spares, path_length = 9, 30
        distribution = analysis.movement_distribution(spares, path_length)
        weighted = float(np.sum(np.arange(1, path_length + 1) * distribution))
        assert analysis.expected_movements(spares, path_length) == pytest.approx(weighted)

    def test_limits(self):
        assert analysis.expected_movements(0, 19) == pytest.approx(19.0)
        assert analysis.expected_movements(10**6, 19) == pytest.approx(1.0)

    def test_monotone_decreasing_in_spares(self):
        values = [analysis.expected_movements(n, 255) for n in range(0, 500, 25)]
        assert all(a >= b for a, b in zip(values, values[1:]))

    def test_monotone_increasing_in_path_length(self):
        values = [analysis.expected_movements(20, length) for length in (10, 50, 100, 255)]
        assert all(a <= b for a, b in zip(values, values[1:]))

    def test_16x16_density_claim(self):
        """Enabled density of 1.68 per cell keeps the expectation at about 2 moves."""
        spares = int(round((1.68 - 1.0) * 256))
        assert analysis.expected_movements(spares, 255) <= 2.05

    def test_dual_path_corollary(self):
        assert analysis.expected_movements_dual_path(10, 5, 5) == pytest.approx(
            analysis.expected_movements(10, 23)
        )
        with pytest.raises(ValueError):
            analysis.expected_movements_dual_path(10, 4, 5)


class TestDistanceEstimates:
    def test_distance_is_movements_times_hop_estimate(self):
        spares, path_length, cell = 12, 19, 10.0
        expected = 1.08 * cell * analysis.expected_movements(spares, path_length)
        assert analysis.expected_total_distance(spares, path_length, cell) == pytest.approx(expected)

    def test_invalid_cell_size(self):
        with pytest.raises(ValueError):
            analysis.expected_total_distance(5, 19, 0.0)

    def test_hop_distance_statistics(self):
        low, average, high = analysis.hop_distance_statistics(10.0)
        assert low == pytest.approx(2.5)
        assert average == pytest.approx(10.8)
        assert high == pytest.approx(math.sqrt(58) / 4 * 10)
        assert low < average < high


class TestSeries:
    def test_movements_series(self):
        series = analysis.movements_series([0, 10, 100], 19)
        assert [n for n, _ in series] == [0, 10, 100]
        assert series[0][1] == pytest.approx(19.0)
        assert series[-1][1] < series[1][1]

    def test_distance_series(self):
        series = analysis.distance_series([0, 10], 19, 10.0)
        assert series[0][1] == pytest.approx(1.08 * 10 * 19)

    def test_network_level_estimates(self):
        moves = analysis.expected_network_movements(holes=5, spares=12, path_length=19)
        assert moves == pytest.approx(5 * analysis.expected_movements(12, 19))
        distance = analysis.expected_network_distance(5, 12, 19, 10.0)
        assert distance == pytest.approx(5 * analysis.expected_total_distance(12, 19, 10.0))
        assert analysis.expected_network_movements(0, 12, 19) == 0.0
        with pytest.raises(ValueError):
            analysis.expected_network_movements(-1, 12, 19)


class TestDensityHelpers:
    def test_spares_for_expected_movements(self):
        spares = analysis.spares_for_expected_movements(255, target_movements=2.0)
        assert analysis.expected_movements(spares, 255) <= 2.0
        if spares > 0:
            assert analysis.expected_movements(spares - 1, 255) > 2.0

    def test_minimum_density_matches_paper(self):
        """The paper quotes ~1.68 enabled nodes per cell for the 16x16 grid."""
        density = analysis.minimum_density_for_expected_movements(16, 16, 2.0)
        assert density == pytest.approx(1.68, abs=0.03)

    def test_minimum_density_more_generous_than_baselines(self):
        """The balancing baselines need 4 nodes per cell; SR needs far less."""
        assert analysis.minimum_density_for_expected_movements(16, 16, 2.0) < 4.0

    def test_invalid_target(self):
        with pytest.raises(ValueError):
            analysis.spares_for_expected_movements(19, target_movements=0.5)


class TestConvergenceProbability:
    def test_within_full_path_is_one(self):
        assert analysis.convergence_probability_within(10, 19, 19) == pytest.approx(1.0)
        assert analysis.convergence_probability_within(10, 19, 50) == pytest.approx(1.0)

    def test_zero_hops_is_zero(self):
        assert analysis.convergence_probability_within(10, 19, 0) == 0.0

    def test_monotone_in_hops(self):
        values = [analysis.convergence_probability_within(5, 40, h) for h in range(0, 41, 5)]
        assert all(a <= b + 1e-12 for a, b in zip(values, values[1:]))

    def test_first_hop_probability(self):
        """P(converge in 1 hop) = 1 - ((L-1)/L)^N, the paper's P(1)."""
        spares, path_length = 8, 25
        expected = 1 - ((path_length - 1) / path_length) ** spares
        assert analysis.convergence_probability_within(spares, path_length, 1) == pytest.approx(expected)

    def test_invalid_hops(self):
        with pytest.raises(ValueError):
            analysis.convergence_probability_within(5, 10, -1)
