"""Unit tests for the extension baselines (virtual force, SMART scan)."""

import pytest

from repro.baselines.smart_scan import SmartScanController
from repro.baselines.virtual_force import VirtualForceController
from repro.grid.virtual_grid import GridCoord, VirtualGrid
from repro.network.deployment import deploy_per_cell, deploy_per_cell_counts
from repro.network.state import WsnState
from repro.sim.engine import run_recovery

from helpers import make_hole


class TestVirtualForce:
    def test_repairs_single_hole_near_dense_region(self, dense_state, rng):
        make_hole(dense_state, GridCoord(1, 1))
        controller = VirtualForceController()
        result = run_recovery(dense_state, controller, rng, max_rounds=200)
        assert result.metrics.final_holes == 0
        dense_state.check_invariants()

    def test_needs_many_small_moves(self, dense_state, rng):
        """The paper's criticism: virtual force pays many movements per hole."""
        make_hole(dense_state, GridCoord(2, 2))
        controller = VirtualForceController()
        result = run_recovery(dense_state, controller, rng, max_rounds=200)
        assert controller.total_moves > 5
        # Individual steps are bounded by max_step (half a cell by default).
        for record in controller.movement_records():
            assert record.distance <= dense_state.grid.cell_size / 2.0 + 1e-9

    def test_heads_do_not_move(self, dense_state, rng):
        heads_before = set(dense_state.heads().values())
        controller = VirtualForceController()
        controller.execute_round(dense_state, rng, 0)
        moved = {record.node_id for record in controller.movement_records()}
        assert heads_before.isdisjoint(moved)

    def test_idle_when_balanced_and_covered(self, sparse_state, rng):
        """With one node per cell and no holes there is nothing to push anywhere."""
        controller = VirtualForceController()
        outcome = controller.execute_round(sparse_state, rng, 0)
        assert outcome.move_count == 0

    def test_processes_track_holes(self, dense_state, rng):
        holes = [GridCoord(0, 0), GridCoord(3, 4)]
        for hole in holes:
            make_hole(dense_state, hole)
        controller = VirtualForceController()
        run_recovery(dense_state, controller, rng, max_rounds=200)
        assert controller.total_processes == len(holes)
        assert controller.converged_processes == len(holes)


class TestSmartScan:
    def test_balances_uneven_rows(self, rng):
        grid = VirtualGrid(4, 1, cell_size=1.0)
        counts = {GridCoord(0, 0): 4, GridCoord(1, 0): 0, GridCoord(2, 0): 0, GridCoord(3, 0): 0}
        state = WsnState(grid, deploy_per_cell_counts(grid, counts, rng))
        controller = SmartScanController()
        result = run_recovery(state, controller, rng, max_rounds=50)
        assert result.metrics.final_holes == 0
        assert all(count == 1 for count in state.occupancy().values())

    def test_covers_holes_with_enough_nodes(self, dense_state, rng):
        for hole in [GridCoord(0, 0), GridCoord(1, 2), GridCoord(3, 4)]:
            make_hole(dense_state, hole)
        controller = SmartScanController()
        result = run_recovery(dense_state, controller, rng, max_rounds=200)
        assert result.metrics.final_holes == 0
        dense_state.check_invariants()

    def test_rebalances_entire_grid(self, rng):
        """SMART's cost: it moves nodes even in rows that contain no hole."""
        grid = VirtualGrid(4, 4, cell_size=1.0)
        counts = {coord: 2 for coord in grid.all_coords()}
        # Pile extra nodes on one side so balancing has real work to do.
        counts[GridCoord(0, 0)] = 6
        counts[GridCoord(0, 3)] = 6
        state = WsnState(grid, deploy_per_cell_counts(grid, counts, rng))
        make_hole(state, GridCoord(3, 1))
        controller = SmartScanController()
        result = run_recovery(state, controller, rng, max_rounds=200)
        assert result.metrics.final_holes == 0
        assert controller.total_moves >= 4

    def test_quiescent_after_both_phases(self, sparse_state, rng):
        controller = SmartScanController()
        run_recovery(sparse_state, controller, rng, max_rounds=50)
        assert controller.is_quiescent(sparse_state)

    def test_even_distribution_after_balancing(self, rng):
        grid = VirtualGrid(3, 3, cell_size=1.0)
        counts = {coord: 0 for coord in grid.all_coords()}
        counts[GridCoord(0, 0)] = 9
        state = WsnState(grid, deploy_per_cell_counts(grid, counts, rng))
        controller = SmartScanController()
        result = run_recovery(state, controller, rng, max_rounds=100)
        occupancy = state.occupancy()
        assert result.metrics.final_holes == 0
        assert max(occupancy.values()) - min(occupancy.values()) <= 1
