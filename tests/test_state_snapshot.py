"""Property tests for the binary state snapshots (``to_bytes``/``from_bytes``).

The snapshot is the storage format of the bytes-mode initial-state cache and
the payload the parallel executor ships to workers over shared memory, so
its round-trip must be *exact*: every :class:`NodeArrays` column (values and
dtypes), the grid geometry, the head table, and the incremental indices of
the restored state must match the snapshotted one.  These tests drive the
round-trip over seeded random scenarios and mutation histories — including
states with disabled nodes, stale head roles on disabled rows, energy
jitter, and non-default head policies — and hold the restored state to
``check_invariants()`` (the index oracle) plus a re-attached
:class:`~repro.network.adjacency.NeighborIndex` checked for consistency.
"""

from __future__ import annotations

import random
import struct

import numpy as np
import pytest

from repro.network.node_arrays import (
    BUFFER_FORMAT_VERSION,
    NodeArrays,
    snapshot_nbytes,
)
from repro.network.radio import UnitDiskRadio
from repro.network.state import STATE_SNAPSHOT_VERSION, WsnState
from repro.sim.scenario import HEAD_POLICIES, ScenarioConfig, build_scenario_state

COLUMNS = (
    "node_ids",
    "positions",
    "energy",
    "initial_energy",
    "state",
    "role",
    "cell",
    "moved_distance",
    "move_count",
)

#: Seeded round-trip scenarios (kept moderate: each builds a full state).
SEED_COUNT = 25


def assert_arrays_identical(left: NodeArrays, right: NodeArrays) -> None:
    assert len(left) == len(right)
    for column in COLUMNS:
        a = getattr(left, column)
        b = getattr(right, column)
        assert a.dtype == b.dtype, column
        assert np.array_equal(a, b), column


def random_config(rng: random.Random) -> ScenarioConfig:
    """A randomized scenario: size, policy, deployment, and optional energy."""
    columns = rng.randint(3, 7)
    rows = rng.randint(3, 7)
    jittered = rng.random() < 0.5
    return ScenarioConfig(
        columns=columns,
        rows=rows,
        deployed_count=(
            columns * rows * rng.randint(2, 4)
        ),
        spare_surplus=rng.randint(0, 20),
        seed=rng.randint(0, 2**31),
        head_policy=rng.choice(sorted(HEAD_POLICIES)),
        deployment=rng.choice(("uniform", "per_cell")),
        initial_energy=rng.uniform(0.5, 2.0) if jittered else None,
        initial_energy_jitter=rng.uniform(0.0, 0.3) if jittered else 0.0,
    )


def mutate(state: WsnState, rng: random.Random, operations: int) -> None:
    """A random mutation history so snapshots cover non-pristine states."""
    for _ in range(operations):
        roll = rng.random()
        enabled = state.enabled_nodes()
        if roll < 0.4:
            if enabled:
                state.disable_node(rng.choice(enabled).node_id)
        elif roll < 0.6:
            disabled = state.disabled_nodes()
            if disabled:
                state.enable_node(rng.choice(disabled).node_id)
        elif enabled:
            node = rng.choice(enabled)
            source = state.cell_of_node(node.node_id)
            neighbours = state.grid.neighbours(source)
            if neighbours:
                try:
                    state.move_node(node.node_id, rng.choice(neighbours), rng)
                except RuntimeError:
                    pass  # depleted batteries cannot move; skip the operation


@pytest.mark.parametrize("seed", range(SEED_COUNT))
def test_state_round_trip_over_random_scenarios(seed):
    """Snapshot -> restore is exact for random scenarios and histories."""
    rng = random.Random(seed)
    config = random_config(rng)
    state = build_scenario_state(config)
    if seed % 2:  # half the seeds snapshot a mutated, mid-simulation state
        mutate(state, rng, operations=rng.randint(1, 25))
    restored = WsnState.from_bytes(
        state.to_bytes(), head_policy=config.head_policy_fn
    )
    assert_arrays_identical(state.arrays, restored.arrays)
    assert restored.grid.columns == state.grid.columns
    assert restored.grid.rows == state.grid.rows
    assert restored.grid.cell_size == state.grid.cell_size
    assert restored.heads() == state.heads()
    assert restored.hole_count == state.hole_count
    assert restored.spare_count == state.spare_count
    assert restored.vacant_cells() == state.vacant_cells()
    restored.check_invariants()


@pytest.mark.parametrize("seed", range(0, SEED_COUNT, 5))
def test_restored_state_reattaches_a_consistent_neighbor_index(seed):
    rng = random.Random(seed)
    config = random_config(rng)
    state = build_scenario_state(config)
    mutate(state, rng, operations=10)
    restored = WsnState.from_bytes(
        state.to_bytes(), head_policy=config.head_policy_fn
    )
    radio = UnitDiskRadio(config.communication_range)
    index = restored.attach_neighbor_index(radio)
    index.check_consistency()
    reference = state.attach_neighbor_index(radio)
    assert index.as_dict() == reference.as_dict()


def test_restored_heads_are_not_re_elected():
    """Jittered energy + highest_energy policy: restore must keep the roles.

    Energy jitter installs *after* head election, so a fresh election on the
    jittered energies could crown different heads than the built state
    holds.  The snapshot restores heads from the persisted role column,
    which sidesteps the trap entirely.
    """
    config = ScenarioConfig(
        columns=5,
        rows=5,
        deployed_count=150,
        seed=11,
        head_policy="highest_energy",
        initial_energy=1.0,
        initial_energy_jitter=0.5,
    )
    state = build_scenario_state(config)
    restored = WsnState.from_bytes(
        state.to_bytes(), head_policy=config.head_policy_fn
    )
    assert restored.heads() == state.heads()


def test_snapshot_tolerates_trailing_bytes():
    """Shared-memory segments round up; trailing bytes must be ignored."""
    state = build_scenario_state(
        ScenarioConfig(columns=4, rows=4, deployed_count=48, seed=3)
    )
    padded = state.to_bytes() + b"\x00" * 4096
    restored = WsnState.from_bytes(padded)
    assert_arrays_identical(state.arrays, restored.arrays)


def test_state_snapshot_rejects_foreign_versions():
    state = build_scenario_state(
        ScenarioConfig(columns=4, rows=4, deployed_count=48, seed=3)
    )
    snapshot = bytearray(state.to_bytes())
    struct.pack_into("<I", snapshot, 0, STATE_SNAPSHOT_VERSION + 1)
    with pytest.raises(ValueError, match="version"):
        WsnState.from_bytes(bytes(snapshot))
    with pytest.raises(ValueError, match="too short"):
        WsnState.from_bytes(b"\x01")


# ------------------------------------------------------------- NodeArrays
@pytest.mark.parametrize("seed", range(0, SEED_COUNT, 5))
def test_node_arrays_round_trip(seed):
    rng = random.Random(seed)
    state = build_scenario_state(random_config(rng))
    mutate(state, rng, operations=8)
    arrays = state.arrays
    buffer = arrays.to_bytes()
    assert len(buffer) == snapshot_nbytes(len(arrays))
    assert_arrays_identical(arrays, NodeArrays.from_bytes(buffer))


def test_node_arrays_restore_is_an_independent_copy():
    state = build_scenario_state(
        ScenarioConfig(columns=4, rows=4, deployed_count=48, seed=3)
    )
    arrays = state.arrays
    restored = NodeArrays.from_bytes(arrays.to_bytes())
    restored.energy[:] = -1.0
    assert not np.any(arrays.energy == -1.0)


def test_node_arrays_rejects_foreign_versions_and_short_buffers():
    state = build_scenario_state(
        ScenarioConfig(columns=4, rows=4, deployed_count=48, seed=3)
    )
    buffer = bytearray(state.arrays.to_bytes())
    struct.pack_into("<I", buffer, 0, BUFFER_FORMAT_VERSION + 1)
    with pytest.raises(ValueError, match="version"):
        NodeArrays.from_bytes(bytes(buffer))
    with pytest.raises(ValueError, match="too short"):
        NodeArrays.from_bytes(b"")
    truncated = state.arrays.to_bytes()[:-8]
    with pytest.raises(ValueError):
        NodeArrays.from_bytes(truncated)
