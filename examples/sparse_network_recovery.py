#!/usr/bin/env python3
"""Scenario: recovering coverage in a very sparse network (odd-by-odd grid).

The paper highlights that SR "will favor the networks with sparse deployment"
because the Hamilton cycle lets a replacement stretch across the whole
network: a vacant cell can be filled *whenever at least one spare node exists
anywhere* (Theorem 1 / Corollary 1), whereas the balancing baselines need at
least four nodes per cell.  This example builds a 7x7 grid (odd-by-odd, so
the dual-path construction of Section 4 is used), leaves exactly one spare
node in a far corner, knocks out a cell at the opposite corner, and watches
the snake-like cascade carry the spare across the network.

Run with ``python examples/sparse_network_recovery.py``.
"""

from __future__ import annotations

from repro import (
    GridCoord,
    HamiltonReplacementController,
    LocalizedReplacementController,
    TargetedCellFailure,
    VirtualGrid,
    WsnState,
    derive_rng,
    run_recovery,
)
from repro.core.hamilton import DualPathHamiltonCycle
from repro.core import analysis
from repro.network.deployment import deploy_per_cell_counts
from repro.viz.ascii_grid import render_dual_paths, render_occupancy


def build_sparse_network(seed: int) -> WsnState:
    """One node per cell everywhere, plus a single spare in the far corner."""
    grid = VirtualGrid(columns=7, rows=7, cell_size=4.4721)
    rng = derive_rng(seed, "deployment")
    counts = {coord: 1 for coord in grid.all_coords()}
    counts[GridCoord(6, 6)] = 2  # the only spare node in the whole network
    nodes = deploy_per_cell_counts(grid, counts, rng)
    return WsnState(grid, nodes)


def main() -> None:
    seed = 7
    state = build_sparse_network(seed)
    cycle = DualPathHamiltonCycle(state.grid)
    cycle.validate()

    print("=== dual-path Hamilton construction (7x7 grid) ===")
    print(render_dual_paths(cycle))
    print()

    # Disable the whole cell (1, 1): that is cell B of the construction, the
    # most interesting special case of Algorithm 2.
    hole = GridCoord(1, 1)
    TargetedCellFailure(cells=[hole]).apply(state, derive_rng(seed, "failure"))
    print(f"hole created at {hole.as_tuple()}; spares in network: {state.spare_count}")
    print(render_occupancy(state))

    sr_state = state.clone()
    sr = HamiltonReplacementController(cycle)
    result = run_recovery(sr_state, sr, derive_rng(seed, "sr"))
    metrics = result.metrics
    print("=== SR (dual-path Algorithm 2) ===")
    print(f"holes remaining       : {metrics.final_holes}")
    print(f"processes initiated   : {metrics.processes_initiated}")
    print(f"node movements        : {metrics.total_moves}")
    print(f"moving distance       : {metrics.total_distance:.1f} m")
    print(f"rounds to converge    : {metrics.rounds}")
    expected = analysis.expected_movements(
        spares=1, path_length=cycle.replacement_path_length
    )
    print(f"Theorem-2 expectation with a single spare: {expected:.1f} movements")
    print(render_occupancy(sr_state))
    print()

    ar_state = state.clone()
    ar = LocalizedReplacementController(ar_state.grid)
    ar_result = run_recovery(ar_state, ar, derive_rng(seed, "ar"))
    print("=== AR (localized 1-hop baseline) ===")
    print(f"holes remaining       : {ar_result.metrics.final_holes}")
    print(f"processes initiated   : {ar_result.metrics.processes_initiated}")
    print(f"success rate          : {ar_result.metrics.success_rate:.1%}")
    print(f"node movements        : {ar_result.metrics.total_moves}")
    print()
    print(
        "With a single spare in the opposite corner, SR's directed cascade walks\n"
        "the Hamilton path until it reaches that spare and always repairs the\n"
        "hole; AR's localized processes have no global direction to follow, so\n"
        "whether they reach the spare depends on luck — exactly the robustness\n"
        "gap the paper reports for low-density networks."
    )


if __name__ == "__main__":
    main()
