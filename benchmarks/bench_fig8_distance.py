"""Figure 8: total moving distance (metres) — experimental AR/SR and analytical SR.

The distance curves mirror the movement curves of Figure 7 scaled by the
per-hop distance (about ``1.08 * r``): SR pays more distance than AR only in
the very sparse regime and tracks the Section-4 estimate everywhere.
"""

from __future__ import annotations

import pytest

from repro.experiments.figures import figure8_total_distance
from repro.grid.virtual_grid import AVERAGE_MOVE_FACTOR, cell_side_for_range

from figutils import emit


@pytest.mark.benchmark(group="fig8-distance")
def test_fig8_total_distance(benchmark, section5_experiment, results_dir):
    """Regenerate the Figure 8 series and verify its qualitative shape."""
    result = benchmark(figure8_total_distance, section5_experiment)

    emit(result, results_dir, "fig8_total_distance.csv")

    rows = {int(row["N"]): row for row in result.rows}
    sparse = rows[min(rows)]
    dense = rows[max(rows)]
    assert float(sparse["SR_distance"]) > float(sparse["AR_distance"])
    assert float(dense["SR_distance"]) <= float(dense["AR_distance"])
    # Distance per movement stays inside the paper's per-hop band around 1.08*r.
    cell_size = cell_side_for_range(10.0)
    for row in result.rows:
        moves_row = float(row["SR_distance"])
        if moves_row == 0:
            continue
        # The analytical curve is the movement expectation scaled by 1.08 * r.
        analytic = float(row["SR_distance_analytic"])
        measured = float(row["SR_distance"])
        assert 0.4 <= measured / analytic <= 2.5
    assert float(dense["SR_distance"]) < float(sparse["SR_distance"])


@pytest.mark.benchmark(group="fig8-distance")
def test_fig8_distance_consistent_with_fig7(benchmark, section5_experiment):
    """Distance ≈ movements x (average hop length) for the SR measurements."""
    cell_size = cell_side_for_range(10.0)

    def ratio_band():
        ratios = []
        for row in section5_experiment.rows:
            moves = float(row["SR_moves"])
            distance = float(row["SR_distance"])
            if moves > 0:
                ratios.append(distance / moves / cell_size)
        return ratios

    ratios = benchmark(ratio_band)
    for ratio in ratios:
        # Per-hop distance in units of r must stay within the Section-4 bounds.
        assert 0.25 <= ratio <= 1.91
        # ... and close to the 1.08 average the estimates use.
        assert abs(ratio - AVERAGE_MOVE_FACTOR) < 0.35
