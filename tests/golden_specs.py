"""The pinned run specs of the seed-identity golden test.

These specs cover every code path the struct-of-arrays refactor touches:
uniform and per-cell deployments, thinning, scheduled failures, energy
physics with jittered batteries (run-to-exhaustion), a lossy channel, and
both paper schemes.  ``record_to_dict`` flattens a
:class:`~repro.experiments.orchestration.RunRecord` into plain JSON types
with full float precision, so the fixture comparison is bit-for-bit.

Regenerate the fixture (only when the simulation *semantics* intentionally
change) with::

    PYTHONPATH=src:tests python -m golden_specs

which rewrites ``tests/data/golden_seed_identity.json``.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.experiments.orchestration import RunRecord, RunSpec, execute_run
from repro.network.channel import ChannelModel
from repro.network.energy import EnergyModel
from repro.network.failures import FailureEvent
from repro.sim.scenario import ScenarioConfig

FIXTURE_PATH = Path(__file__).resolve().parent / "data" / "golden_seed_identity.json"

#: The paper-baseline deployment of Section 5 (5000 sensors, 16x16 grid).
_PAPER = ScenarioConfig(
    columns=16, rows=16, deployed_count=5000, spare_surplus=20, seed=2008
)

GOLDEN_SPECS = {
    "paper-sr": RunSpec(scenario=_PAPER, scheme="SR", seed=11),
    "paper-ar": RunSpec(scenario=_PAPER, scheme="AR", seed=11),
    "paper-sr-sparse": RunSpec(
        scenario=_PAPER.with_spare_surplus(2), scheme="SR", seed=13
    ),
    "per-cell-dynamic-failures": RunSpec(
        scenario=ScenarioConfig(
            columns=12,
            rows=12,
            deployed_count=12 * 12 * 3,
            deployment="per_cell",
            seed=77,
        ),
        scheme="SR",
        seed=5,
        failures=(
            FailureEvent.with_params(1, "targeted_cells", cells=[[2, 2], [9, 4]]),
            FailureEvent.with_params(3, "random", count=6),
            FailureEvent.with_params(
                5, "region_jamming", box=[10.0, 10.0, 25.0, 25.0]
            ),
        ),
    ),
    "lifetime-energy": RunSpec(
        scenario=ScenarioConfig(
            columns=8,
            rows=8,
            deployed_count=8 * 8 * 3,
            deployment="per_cell",
            seed=42,
            initial_energy=60.0,
            initial_energy_jitter=0.3,
        ),
        scheme="SR-energy",
        seed=9,
        max_rounds=400,
        energy=EnergyModel(idle_cost_per_round=0.75, depletion_threshold=0.5),
        run_to_exhaustion=True,
    ),
    "lossy-channel": RunSpec(
        scenario=ScenarioConfig(
            columns=10, rows=10, deployed_count=700, spare_surplus=8, seed=31
        ),
        scheme="SR",
        seed=17,
        channel=ChannelModel.with_params("lossy", drop_probability=0.2),
    ),
}


def record_to_dict(record: RunRecord) -> dict:
    """Flatten a run record to plain JSON types, keeping full float precision."""
    payload = dict(record.metrics.as_dict())
    summary = record.metrics.energy
    if summary is not None:
        payload.update(
            {
                "energy_enabled_nodes": summary.enabled_nodes,
                "energy_total": summary.total_energy,
                "energy_mean": summary.mean_energy,
                "energy_min": summary.min_energy,
                "energy_max": summary.max_energy,
                "energy_head_mean": summary.head_mean_energy,
                "energy_spare_mean": summary.spare_mean_energy,
                "energy_initial_total": summary.initial_energy_total,
            }
        )
    payload.update(
        {
            "rounds_executed": record.rounds_executed,
            "stalled": record.stalled,
            "exhausted": record.exhausted,
            "energy_series": list(record.energy_series),
        }
    )
    return payload


def generate() -> dict:
    """Execute every golden spec and return ``{name: flattened record}``."""
    return {name: record_to_dict(execute_run(spec)) for name, spec in GOLDEN_SPECS.items()}


if __name__ == "__main__":
    FIXTURE_PATH.parent.mkdir(parents=True, exist_ok=True)
    FIXTURE_PATH.write_text(json.dumps(generate(), indent=2, sort_keys=True) + "\n")
    print(f"wrote {FIXTURE_PATH}")
