"""Aggregated run metrics.

These are exactly the quantities the paper's Section 5 reports for each
scheme: the number of replacement processes initiated, the success rate of
hole recovery, the total number of node movements, and the total moving
distance — plus a few bookkeeping fields (holes before/after, rounds, spare
counts) that make results self-describing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.protocol import MobilityController
from repro.network.energy import EnergySummary, energy_summary


@dataclass(frozen=True)
class RunMetrics:
    """Summary of one recovery run of one scheme on one scenario."""

    scheme: str
    rounds: int
    processes_initiated: int
    processes_converged: int
    processes_failed: int
    redundant_processes: int
    success_rate: float
    total_moves: int
    total_distance: float
    messages_sent: int
    initial_holes: int
    final_holes: int
    initial_spares: int
    final_spares: int
    initial_enabled: int
    cell_coverage_before: float
    cell_coverage_after: float
    energy: Optional[EnergySummary] = None
    #: Control messages the channel lost in transit (0 on reliable channels
    #: and on pre-channel legacy runs).
    messages_dropped: int = 0
    #: Mean rounds between send and delivery over the delivered messages
    #: (0.0 when nothing was delivered; 1.0 on the paper's perfect channel).
    mean_delivery_latency: float = 0.0
    #: Control messages delivered to their destination cell.  Together with
    #: :attr:`messages_dropped` and :attr:`messages_in_flight` this makes the
    #: channel ledger auditable from the record alone: every channel-backed
    #: run satisfies ``sent == delivered + dropped + in_flight`` (the
    #: message-conservation oracle of :mod:`repro.experiments.differential`).
    #: 0 on pre-channel legacy runs, where only ``messages_sent`` is counted.
    messages_delivered: int = 0
    #: Control messages still in flight (queued in the mailbox) when the run
    #: ended.  0 on pre-channel legacy runs.
    messages_in_flight: int = 0

    @property
    def message_delivery_rate(self) -> float:
        """Fraction of sent messages not lost in transit (1.0 with no traffic)."""
        if not self.messages_sent:
            return 1.0
        return 1.0 - self.messages_dropped / self.messages_sent

    @property
    def repaired_holes(self) -> int:
        """Holes repaired during the run: initial minus final hole count."""
        return self.initial_holes - self.final_holes

    @property
    def coverage_restored(self) -> bool:
        """Whether the run ended with complete cell coverage (no holes left)."""
        return self.final_holes == 0

    @property
    def moves_per_repaired_hole(self) -> float:
        """Average movements spent per repaired hole (0 when nothing was repaired)."""
        repaired = self.repaired_holes
        return self.total_moves / repaired if repaired > 0 else 0.0

    @property
    def distance_per_repaired_hole(self) -> float:
        """Average moving distance per repaired hole (0 when nothing was repaired)."""
        repaired = self.repaired_holes
        return self.total_distance / repaired if repaired > 0 else 0.0

    def as_dict(self) -> Dict[str, object]:
        """Flat dictionary representation (used by the CSV exporters).

        This is the *stable* export schema: fields added after the seed-
        identity golden fixture was frozen (``messages_delivered``,
        ``messages_in_flight``) are intentionally not part of it — the full
        field set is available through
        :func:`~repro.experiments.persistence.record_to_dict`.
        """
        return {
            "scheme": self.scheme,
            "rounds": self.rounds,
            "processes_initiated": self.processes_initiated,
            "processes_converged": self.processes_converged,
            "processes_failed": self.processes_failed,
            "redundant_processes": self.redundant_processes,
            "success_rate": self.success_rate,
            "total_moves": self.total_moves,
            "total_distance": self.total_distance,
            "messages_sent": self.messages_sent,
            "messages_dropped": self.messages_dropped,
            "mean_delivery_latency": self.mean_delivery_latency,
            "initial_holes": self.initial_holes,
            "final_holes": self.final_holes,
            "repaired_holes": self.repaired_holes,
            "initial_spares": self.initial_spares,
            "final_spares": self.final_spares,
            "initial_enabled": self.initial_enabled,
            "cell_coverage_before": self.cell_coverage_before,
            "cell_coverage_after": self.cell_coverage_after,
            "energy_consumed": self.energy.total_consumed if self.energy else None,
            "depleted_nodes": self.energy.depleted_nodes if self.energy else None,
        }


@dataclass
class InitialSnapshot:
    """State statistics captured by the engine before the first round."""

    holes: int
    spares: int
    enabled: int
    cell_coverage: float


def snapshot_state(state) -> InitialSnapshot:
    """Capture the pre-recovery statistics of a network state.

    All four statistics are O(1) reads of the state's incremental indices,
    so snapshots may be taken every round without a grid scan.
    """
    total_cells = state.grid.cell_count
    holes = state.hole_count
    return InitialSnapshot(
        holes=holes,
        spares=state.spare_count,
        enabled=state.enabled_count,
        cell_coverage=(total_cells - holes) / total_cells if total_cells else 1.0,
    )


def collect_metrics(
    controller: MobilityController,
    state,
    initial: InitialSnapshot,
    rounds: int,
    messages_sent: int,
    energy: Optional[EnergySummary] = None,
    messages_dropped: int = 0,
    mean_delivery_latency: float = 0.0,
    messages_delivered: int = 0,
    messages_in_flight: int = 0,
) -> RunMetrics:
    """Combine controller bookkeeping and final state into a :class:`RunMetrics`.

    ``energy`` is the battery snapshot of the final state; the engine supplies
    one (:func:`~repro.network.energy.energy_summary`) only when the run had
    an energy model — summarising every battery is an O(all nodes) sweep, far
    more expensive than the rounds themselves on large grids, so runs without
    energy physics skip it and report ``energy=None``.
    """
    total_cells = state.grid.cell_count
    final_holes = state.hole_count
    redundant = getattr(controller, "redundant_processes", 0)
    return RunMetrics(
        scheme=controller.name,
        rounds=rounds,
        processes_initiated=controller.total_processes,
        processes_converged=controller.converged_processes,
        processes_failed=controller.failed_processes,
        redundant_processes=redundant,
        success_rate=controller.success_rate,
        total_moves=controller.total_moves,
        total_distance=controller.total_distance,
        messages_sent=messages_sent,
        initial_holes=initial.holes,
        final_holes=final_holes,
        initial_spares=initial.spares,
        final_spares=state.spare_count,
        initial_enabled=initial.enabled,
        cell_coverage_before=initial.cell_coverage,
        cell_coverage_after=(total_cells - final_holes) / total_cells
        if total_cells
        else 1.0,
        energy=energy,
        messages_dropped=messages_dropped,
        mean_delivery_latency=mean_delivery_latency,
        messages_delivered=messages_delivered,
        messages_in_flight=messages_in_flight,
    )


@dataclass
class RoundSeries:
    """Per-round time series collected by the engine (for plots and debugging).

    The ``spares`` series is recorded when the caller supplies it; with the
    incremental state indices both the hole count and the spare count are
    O(1) queries, so the engine can afford to sample them every round even on
    large grids.
    """

    holes: List[int] = field(default_factory=list)
    moves: List[int] = field(default_factory=list)
    distance: List[float] = field(default_factory=list)
    spares: List[int] = field(default_factory=list)
    #: Total remaining energy of the enabled nodes at the end of each round
    #: (recorded only when the engine runs with an energy model).
    energy: List[float] = field(default_factory=list)
    #: Number of nodes the engine disabled as battery-depleted in each round.
    depletions: List[int] = field(default_factory=list)
    #: Control messages transmitted in each round (requests, retries, acks).
    messages: List[int] = field(default_factory=list)
    #: Control messages the channel lost in transit in each round.
    drops: List[int] = field(default_factory=list)

    def record(
        self,
        holes: int,
        moves: int,
        distance: float,
        spares: Optional[int] = None,
        energy: Optional[float] = None,
        depletions: Optional[int] = None,
        messages: Optional[int] = None,
        drops: Optional[int] = None,
    ) -> None:
        """Append one round's samples to the series."""
        self.holes.append(holes)
        self.moves.append(moves)
        self.distance.append(distance)
        if spares is not None:
            self.spares.append(spares)
        if energy is not None:
            self.energy.append(energy)
        if depletions is not None:
            self.depletions.append(depletions)
        if messages is not None:
            self.messages.append(messages)
        if drops is not None:
            self.drops.append(drops)

    @property
    def rounds(self) -> int:
        """Number of rounds recorded so far."""
        return len(self.holes)

    @property
    def cumulative_moves(self) -> List[int]:
        """Running total of movements after each round."""
        total = 0
        series = []
        for value in self.moves:
            total += value
            series.append(total)
        return series
