"""Virtual-force hole repair (extension baseline).

The virtual-force approach treats sensors as particles: nearby sensors repel
each other, and uncovered regions attract them.  Nodes in dense regions
therefore drift towards sparse regions and, eventually, into the holes.  The
paper's introduction summarises the known drawback: "without global
information, these methods may take a long time to converge and are not
practical … due to the cost in total moving distance, total number of
movements, and communication/computation".  This controller implements a
standard discretised virtual-force iteration so the extended benchmarks can
measure exactly that cost on the paper's scenarios.

Movement here is continuous (not cell-hop based), so the controller keeps its
own movement accounting instead of the per-process bookkeeping used by SR and
AR: one pseudo-process is opened per initial hole and marked converged when
that cell gains an enabled node, which makes the success-rate metric
comparable across schemes.
"""

from __future__ import annotations

import math
import random
from typing import Dict, List, Optional

from repro.core.protocol import MobilityController, RoundOutcome
from repro.grid.geometry import Point
from repro.grid.virtual_grid import GridCoord
from repro.network.mobility import MoveRecord
from repro.network.state import WsnState


class VirtualForceController(MobilityController):
    """Distributed virtual-force iteration.

    Parameters
    ----------
    repulsion_range:
        Distance (metres) below which two enabled nodes repel each other.
        Defaults to the grid cell size at bind time.
    attraction_range:
        Radius within which a vacant cell attracts spare nodes.  Defaults to
        three cell sides.
    max_step:
        Maximum distance a node moves per round.
    repulsion_gain / attraction_gain:
        Force coefficients; the defaults give a stable, slowly converging
        iteration, which is the behaviour the paper criticises.
    """

    name = "VF"

    def __init__(
        self,
        repulsion_range: Optional[float] = None,
        attraction_range: Optional[float] = None,
        max_step: Optional[float] = None,
        repulsion_gain: float = 1.0,
        attraction_gain: float = 2.0,
        minimum_step: float = 1e-3,
    ) -> None:
        super().__init__()
        self.repulsion_range = repulsion_range
        self.attraction_range = attraction_range
        self.max_step = max_step
        self.repulsion_gain = repulsion_gain
        self.attraction_gain = attraction_gain
        self.minimum_step = minimum_step
        self._moves: List[MoveRecord] = []
        self._hole_process: Dict[GridCoord, int] = {}

    # --------------------------------------------------------------- plumbing
    def _parameters_for(self, state: WsnState) -> tuple:
        cell = state.grid.cell_size
        repulsion = self.repulsion_range if self.repulsion_range is not None else cell
        attraction = (
            self.attraction_range if self.attraction_range is not None else 3.0 * cell
        )
        step = self.max_step if self.max_step is not None else cell / 2.0
        return repulsion, attraction, step

    # ------------------------------------------------------------------ round
    def execute_round(
        self, state: WsnState, rng: random.Random, round_index: int
    ) -> RoundOutcome:
        """Run one force round: every spare moves one step along its net virtual force."""
        outcome = RoundOutcome(round_index=round_index)
        repulsion_range, attraction_range, max_step = self._parameters_for(state)

        self._open_processes(state, round_index, outcome)

        vacant_centers = [
            state.grid.cell_center(coord) for coord in state.vacant_cells()
        ]
        enabled = state.enabled_nodes()
        # Bucket the enabled nodes by repulsion range once per round so each
        # node only inspects its 3x3 bucket neighbourhood instead of every
        # other node (O(N * density) instead of O(N^2)).
        buckets = self._repulsion_buckets(enabled, repulsion_range)
        planned: List[tuple] = []
        for node in enabled:
            # Heads stay put: removing a head would create a new hole, which
            # no virtual-force formulation intends.  Depleted nodes have no
            # motor power left and stay where they are.
            if node.is_head or node.is_battery_depleted:
                continue
            force = self._force_on(node, buckets, vacant_centers, repulsion_range, attraction_range)
            magnitude = math.hypot(force[0], force[1])
            if magnitude < self.minimum_step:
                continue
            scale = min(max_step, magnitude) / magnitude
            target = Point(
                node.position.x + force[0] * scale, node.position.y + force[1] * scale
            )
            target = state.grid.bounds.clamp(target)
            if target.distance_to(node.position) < self.minimum_step:
                continue
            planned.append((node.node_id, target))

        for node_id, target in planned:
            source_cell = state.cell_of_node(node_id)
            target_cell = state.grid.cell_of(target)
            record = state.move_node(
                node_id,
                target_cell,
                rng,
                round_index=round_index,
                target_position=target,
                enforce_adjacent=False,
            )
            self._moves.append(record)
            outcome.moves.append(record)

        self._close_processes(state, round_index, outcome)
        return outcome

    # ------------------------------------------------------------------ forces
    @staticmethod
    def _repulsion_buckets(enabled, repulsion_range: float) -> Dict[tuple, list]:
        """Spatial hash of the enabled nodes with bucket side ``repulsion_range``.

        Any pair closer than the repulsion range lives in the same or an
        adjacent bucket, so the force computation only needs the 3x3 bucket
        neighbourhood of each node.  A non-positive range disables repulsion
        entirely (no pair can be closer than 0), so no buckets are needed.
        """
        buckets: Dict[tuple, list] = {}
        if repulsion_range <= 0:
            return buckets
        inverse = 1.0 / repulsion_range
        for node in enabled:
            key = (
                math.floor(node.position.x * inverse),
                math.floor(node.position.y * inverse),
            )
            buckets.setdefault(key, []).append(node)
        return buckets

    def _force_on(
        self,
        node,
        buckets: Dict[tuple, list],
        vacant_centers,
        repulsion_range: float,
        attraction_range: float,
    ) -> tuple:
        fx = fy = 0.0
        if not buckets:
            bucket_x = bucket_y = 0
        else:
            inverse = 1.0 / repulsion_range
            bucket_x = math.floor(node.position.x * inverse)
            bucket_y = math.floor(node.position.y * inverse)
        for offset_x in (-1, 0, 1):
            for offset_y in (-1, 0, 1):
                for other in buckets.get((bucket_x + offset_x, bucket_y + offset_y), ()):
                    if other.node_id == node.node_id:
                        continue
                    dx = node.position.x - other.position.x
                    dy = node.position.y - other.position.y
                    distance = math.hypot(dx, dy)
                    if distance < 1e-9 or distance >= repulsion_range:
                        continue
                    strength = (
                        self.repulsion_gain * (repulsion_range - distance) / repulsion_range
                    )
                    fx += strength * dx / distance
                    fy += strength * dy / distance
        for center in vacant_centers:
            dx = center.x - node.position.x
            dy = center.y - node.position.y
            distance = math.hypot(dx, dy)
            if distance < 1e-9 or distance > attraction_range:
                continue
            strength = self.attraction_gain * (attraction_range - distance) / attraction_range
            fx += strength * dx / distance
            fy += strength * dy / distance
        return fx, fy

    # -------------------------------------------------------------- processes
    def _open_processes(
        self, state: WsnState, round_index: int, outcome: RoundOutcome
    ) -> None:
        for hole in state.vacant_cells():
            if hole in self._hole_process:
                continue
            process = self._start_process(
                origin_cell=hole, initiator_cell=hole, round_index=round_index
            )
            self._hole_process[hole] = process.process_id
            outcome.processes_started.append(process.process_id)

    def _close_processes(
        self, state: WsnState, round_index: int, outcome: RoundOutcome
    ) -> None:
        for hole, process_id in list(self._hole_process.items()):
            process = self._processes[process_id]
            if process.is_active and not state.is_vacant(hole):
                process.mark_converged(round_index)
                outcome.processes_converged.append(process_id)
                del self._hole_process[hole]

    def finalize(self, state: WsnState, round_index: int) -> None:
        """Mark any still-active processes as failed at the end of the run."""
        for process in self._processes.values():
            if process.is_active:
                process.mark_failed(round_index)

    # ------------------------------------------------------------- accounting
    @property
    def total_moves(self) -> int:
        """Total number of force-step movements performed."""
        return len(self._moves)

    @property
    def total_distance(self) -> float:
        """Total distance (metres) moved across all force steps."""
        return sum(record.distance for record in self._moves)

    def movement_records(self) -> List[MoveRecord]:
        """All individual node movements performed by the iteration."""
        return list(self._moves)
