"""Experiment drivers that regenerate the paper's evaluation figures.

Each public function corresponds to one figure of the paper (see DESIGN.md
for the experiment index).  The analytical figures (3 and 5) are pure
computations; the experimental figures (6, 7, 8) run the SR and AR schemes on
the Section-5 workload and report the same series the paper plots.
"""

from repro.experiments.results import ExperimentResult, average_dicts
from repro.experiments.plotting import ascii_chart, format_table
from repro.experiments.registry import (
    available_schemes,
    get_scheme,
    register_scheme,
    unregister_scheme,
)
from repro.experiments.orchestration import (
    ParallelExecutor,
    RunExecutor,
    RunRecord,
    RunSpec,
    SerialExecutor,
    execute_many,
    execute_run,
    make_executor,
)
from repro.experiments.persistence import RunCache, run_key
from repro.experiments.report import (
    ShapeCheck,
    find_crossover,
    render_markdown_report,
    section5_shape_checks,
)
from repro.experiments.sweep import (
    SCHEME_FACTORIES,
    build_comparison_specs,
    make_controller,
    run_comparison,
    run_single,
)
from repro.experiments.lifetime import (
    DEFAULT_LIFETIME_SCHEMES,
    LIFETIME_CONFIG,
    LIFETIME_ENERGY,
    build_lifetime_specs,
    run_lifetime_experiment,
    run_lifetime_smoke,
)
from repro.experiments.scenario_files import (
    Scenario,
    ScenarioValidationError,
    dump_scenario,
    dumps_scenario,
    load_scenario,
    loads_scenario,
    scenario_from_dict,
    scenario_to_dict,
    tabulate_records,
)
from repro.experiments.catalog import (
    CATALOG_NAMES,
    catalog_names,
    catalog_scenarios,
    load_catalog_scenario,
    render_catalog_docs,
    resolve_scenario,
)
from repro.experiments.figures import (
    PAPER_SPARE_VALUES,
    QUICK_SPARE_VALUES,
    figure1_hamilton_layout,
    figure3_expected_movements,
    figure4_dual_path_layout,
    figure5_distance_estimates,
    figure6_processes_and_success,
    figure7_node_movements,
    figure8_total_distance,
    run_section5_experiment,
)

__all__ = [
    "ExperimentResult",
    "average_dicts",
    "ascii_chart",
    "format_table",
    "ShapeCheck",
    "find_crossover",
    "section5_shape_checks",
    "render_markdown_report",
    "available_schemes",
    "get_scheme",
    "register_scheme",
    "unregister_scheme",
    "RunSpec",
    "RunRecord",
    "RunExecutor",
    "SerialExecutor",
    "ParallelExecutor",
    "execute_run",
    "execute_many",
    "make_executor",
    "RunCache",
    "run_key",
    "SCHEME_FACTORIES",
    "build_comparison_specs",
    "make_controller",
    "run_comparison",
    "run_single",
    "PAPER_SPARE_VALUES",
    "QUICK_SPARE_VALUES",
    "figure1_hamilton_layout",
    "figure3_expected_movements",
    "figure4_dual_path_layout",
    "figure5_distance_estimates",
    "figure6_processes_and_success",
    "figure7_node_movements",
    "figure8_total_distance",
    "run_section5_experiment",
    "DEFAULT_LIFETIME_SCHEMES",
    "LIFETIME_CONFIG",
    "LIFETIME_ENERGY",
    "build_lifetime_specs",
    "run_lifetime_experiment",
    "run_lifetime_smoke",
    "Scenario",
    "ScenarioValidationError",
    "load_scenario",
    "loads_scenario",
    "dump_scenario",
    "dumps_scenario",
    "scenario_from_dict",
    "scenario_to_dict",
    "tabulate_records",
    "CATALOG_NAMES",
    "catalog_names",
    "catalog_scenarios",
    "load_catalog_scenario",
    "render_catalog_docs",
    "resolve_scenario",
]
