"""Unit tests for the coverage evaluation."""

import pytest

from repro.grid.coverage import (
    cell_coverage_fraction,
    coverage_report,
    covered_cells,
    hole_cells_adjacency,
    sampled_area_coverage,
)
from repro.grid.geometry import Point
from repro.grid.virtual_grid import GridCoord, VirtualGrid

from helpers import make_hole


class TestCellCoverage:
    def test_fully_covered_network(self, dense_state):
        assert cell_coverage_fraction(dense_state) == 1.0
        report = coverage_report(dense_state)
        assert report.is_complete
        assert report.vacant_cells == 0
        assert report.covered_cells == dense_state.grid.cell_count

    def test_coverage_drops_with_holes(self, dense_state):
        make_hole(dense_state, GridCoord(0, 0))
        make_hole(dense_state, GridCoord(3, 4))
        fraction = cell_coverage_fraction(dense_state)
        assert fraction == pytest.approx(18 / 20)
        report = coverage_report(dense_state)
        assert not report.is_complete
        assert report.vacant_cells == 2

    def test_covered_cells_listing(self, sparse_state):
        make_hole(sparse_state, GridCoord(1, 1))
        cells = covered_cells(sparse_state)
        assert GridCoord(1, 1) not in cells
        assert len(cells) == sparse_state.grid.cell_count - 1


class TestAreaCoverage:
    def test_no_sensors_covers_nothing(self):
        grid = VirtualGrid(4, 4, 1.0)
        assert sampled_area_coverage([], grid, sensing_range=1.0) == 0.0

    def test_single_central_sensor_partial_coverage(self):
        grid = VirtualGrid(4, 4, 1.0)
        coverage = sampled_area_coverage([Point(2, 2)], grid, sensing_range=1.0)
        assert 0.0 < coverage < 0.5

    def test_large_range_covers_everything(self):
        grid = VirtualGrid(4, 4, 1.0)
        coverage = sampled_area_coverage([Point(2, 2)], grid, sensing_range=10.0)
        assert coverage == 1.0

    def test_coverage_monotone_in_range(self):
        grid = VirtualGrid(6, 6, 1.0)
        positions = [Point(1, 1), Point(4, 4)]
        small = sampled_area_coverage(positions, grid, sensing_range=0.8)
        large = sampled_area_coverage(positions, grid, sensing_range=2.0)
        assert large > small

    def test_invalid_arguments(self):
        grid = VirtualGrid(2, 2, 1.0)
        with pytest.raises(ValueError):
            sampled_area_coverage([], grid, sensing_range=-1)
        with pytest.raises(ValueError):
            sampled_area_coverage([], grid, sensing_range=1.0, samples_per_cell_side=0)

    def test_report_includes_area_coverage_when_requested(self, dense_state):
        report = coverage_report(dense_state, sensing_range=2.0)
        assert report.area_coverage is not None
        assert 0.0 < report.area_coverage <= 1.0
        plain = coverage_report(dense_state)
        assert plain.area_coverage is None


class TestHoleAdjacency:
    def test_isolated_holes_have_no_vacant_neighbours(self, dense_state):
        make_hole(dense_state, GridCoord(0, 0))
        make_hole(dense_state, GridCoord(3, 4))
        adjacency = hole_cells_adjacency(dense_state)
        assert adjacency[GridCoord(0, 0)] == []
        assert adjacency[GridCoord(3, 4)] == []

    def test_clustered_holes_are_linked(self, dense_state):
        make_hole(dense_state, GridCoord(1, 1))
        make_hole(dense_state, GridCoord(1, 2))
        adjacency = hole_cells_adjacency(dense_state)
        assert GridCoord(1, 2) in adjacency[GridCoord(1, 1)]
        assert GridCoord(1, 1) in adjacency[GridCoord(1, 2)]
