"""Deployment generators.

The paper's experiments deploy a large number of sensors uniformly at random
over the surveillance area (Section 5: 5000 sensors over a 16x16 grid of
4.4721 m cells).  Besides the uniform deployment this module offers a few
other generators that are useful for unit tests, examples, and the extension
baselines: exact per-cell deployment, head-only deployment, and clustered
(hot-spot) deployment.

The two hot generators (:func:`deploy_uniform`, :func:`deploy_per_cell`) are
batched: the RNG draws happen in one tight loop (in exactly the historical
per-node order, so seeds reproduce bit-for-bit) and the affine transform to
world coordinates is a vectorized numpy expression.  Pass ``as_arrays=True``
to get a :class:`~repro.network.node_arrays.NodeArrays` store directly —
the path large benchmarks and scenarios use to skip per-node object
construction entirely.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from repro.grid.geometry import BoundingBox, Point
from repro.grid.virtual_grid import GridCoord, VirtualGrid, random_point_in_box
from repro.network.node import SensorNode
from repro.network.node_arrays import NodeArrays


def _next_id(start_id: int, offset: int) -> int:
    return start_id + offset


def _draw_unit_pairs(count: int, rng: random.Random) -> np.ndarray:
    """``count`` (x, y) unit draws, in the historical per-node draw order."""
    draws = [rng.random() for _ in range(2 * count)]
    return np.asarray(draws, dtype=np.float64).reshape(-1, 2)


def _materialize(
    node_ids: np.ndarray,
    xs: np.ndarray,
    ys: np.ndarray,
    as_arrays: bool,
) -> Union[NodeArrays, List[SensorNode]]:
    """Wrap computed positions as a ``NodeArrays`` store or a node list."""
    if as_arrays:
        return NodeArrays.from_positions(node_ids, xs, ys)
    return [
        SensorNode(node_id=node_id, position=Point(x, y))
        for node_id, x, y in zip(node_ids.tolist(), xs.tolist(), ys.tolist())
    ]


def deploy_uniform(
    grid: VirtualGrid,
    count: int,
    rng: random.Random,
    start_id: int = 0,
    as_arrays: bool = False,
) -> Union[NodeArrays, List[SensorNode]]:
    """Deploy ``count`` nodes uniformly at random over the surveillance area.

    This is the workload of Section 5 of the paper.  With ``as_arrays=True``
    the result is a :class:`NodeArrays` store (identical ids and positions,
    no per-node objects).
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    bounds = grid.bounds
    draws = _draw_unit_pairs(count, rng)
    xs = bounds.min_x + draws[:, 0] * bounds.width
    ys = bounds.min_y + draws[:, 1] * bounds.height
    node_ids = np.arange(start_id, start_id + count, dtype=np.int64)
    return _materialize(node_ids, xs, ys, as_arrays)


def deploy_per_cell(
    grid: VirtualGrid,
    nodes_per_cell: int,
    rng: random.Random,
    start_id: int = 0,
    as_arrays: bool = False,
) -> Union[NodeArrays, List[SensorNode]]:
    """Deploy exactly ``nodes_per_cell`` nodes uniformly inside every cell.

    Useful for tests that need a deterministic occupancy pattern, and for the
    comparison with the grid-balancing baselines which assume a minimum
    density per cell.  With ``as_arrays=True`` the result is a
    :class:`NodeArrays` store.
    """
    if nodes_per_cell < 0:
        raise ValueError(f"nodes_per_cell must be non-negative, got {nodes_per_cell}")
    count = grid.cell_count * nodes_per_cell
    draws = _draw_unit_pairs(count, rng)
    # Per-node cell corners, in the same row-major cell enumeration order as
    # the historical per-cell loop.  The min/width expressions reproduce
    # ``grid.cell_bounds(coord)`` exactly (min + size, then max - min), so the
    # resulting float64 coordinates are bit-identical to the object path.
    coords = grid.coord_list()
    cell_x = np.repeat(
        np.fromiter((c.x for c in coords), dtype=np.float64, count=len(coords)),
        nodes_per_cell,
    )
    cell_y = np.repeat(
        np.fromiter((c.y for c in coords), dtype=np.float64, count=len(coords)),
        nodes_per_cell,
    )
    size = grid.cell_size
    min_x = grid.origin.x + cell_x * size
    min_y = grid.origin.y + cell_y * size
    width = (min_x + size) - min_x
    height = (min_y + size) - min_y
    xs = min_x + draws[:, 0] * width
    ys = min_y + draws[:, 1] * height
    node_ids = np.arange(start_id, start_id + count, dtype=np.int64)
    return _materialize(node_ids, xs, ys, as_arrays)


def deploy_grid_heads(
    grid: VirtualGrid,
    rng: Optional[random.Random] = None,
    start_id: int = 0,
    jitter: bool = False,
) -> List[SensorNode]:
    """Deploy exactly one node per cell, at the centre (or jittered around it).

    Produces a fully covered network with zero spares — the minimal
    configuration in which every cell has a head.
    """
    nodes: List[SensorNode] = []
    for offset, coord in enumerate(grid.all_coords()):
        position = grid.cell_center(coord)
        if jitter:
            if rng is None:
                raise ValueError("jitter=True requires an rng")
            position = random_point_in_box(grid.central_area(coord), rng)
        nodes.append(SensorNode(node_id=_next_id(start_id, offset), position=position))
    return nodes


def deploy_per_cell_counts(
    grid: VirtualGrid,
    counts: Dict[GridCoord, int],
    rng: random.Random,
    start_id: int = 0,
) -> List[SensorNode]:
    """Deploy an explicit number of nodes in each listed cell.

    Cells not present in ``counts`` receive no node, which makes it easy to
    construct scenarios with a prescribed pattern of holes and spares.
    """
    nodes: List[SensorNode] = []
    next_id = start_id
    for coord, count in sorted(counts.items(), key=lambda item: item[0].as_tuple()):
        grid.validate_coord(coord)
        if count < 0:
            raise ValueError(f"count for cell {coord.as_tuple()} must be non-negative")
        cell_bounds = grid.cell_bounds(coord)
        for _ in range(count):
            nodes.append(
                SensorNode(node_id=next_id, position=random_point_in_box(cell_bounds, rng))
            )
            next_id += 1
    return nodes


def deploy_clustered(
    grid: VirtualGrid,
    count: int,
    cluster_centers: Sequence[Point],
    spread: float,
    rng: random.Random,
    start_id: int = 0,
) -> List[SensorNode]:
    """Deploy nodes around hot-spot cluster centres (Gaussian spread).

    Models the non-uniform densities produced by air-dropped deployments or
    by attacks that herd nodes together; positions are clamped to the
    surveillance area.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    if not cluster_centers:
        raise ValueError("deploy_clustered requires at least one cluster centre")
    if spread < 0:
        raise ValueError(f"spread must be non-negative, got {spread}")
    bounds = grid.bounds
    nodes: List[SensorNode] = []
    for i in range(count):
        center = cluster_centers[rng.randrange(len(cluster_centers))]
        raw = Point(rng.gauss(center.x, spread), rng.gauss(center.y, spread))
        nodes.append(SensorNode(node_id=_next_id(start_id, i), position=bounds.clamp(raw)))
    return nodes


def occupancy_by_cell(
    grid: VirtualGrid, nodes: Sequence[SensorNode], enabled_only: bool = True
) -> Dict[GridCoord, int]:
    """Count nodes per cell (all cells present, zero-filled)."""
    counts: Dict[GridCoord, int] = {coord: 0 for coord in grid.all_coords()}
    for node in nodes:
        if enabled_only and not node.is_enabled:
            continue
        counts[grid.cell_of(node.position)] += 1
    return counts
