"""Controller interface and replacement-process bookkeeping.

Both the paper's SR scheme and the AR baseline repair holes through
*replacement processes*: a process starts when some head decides to fill a
vacant cell, every cascading move belongs to the process that caused it, and
the process ends either by *converging* (a spare node was found, so the last
move did not create a new vacancy) or by *failing* (the cascade dead-ended or
exceeded its hop budget).  The per-process records defined here are what the
experiments of Section 5 aggregate: number of processes initiated, number of
node movements, total moving distance, and success rate.
"""

from __future__ import annotations

import abc
import enum
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.grid.virtual_grid import GridCoord
from repro.network.channel import ChannelState
from repro.network.messages import Message, MessageKind
from repro.network.mobility import MoveRecord
from repro.network.node import SensorNode
from repro.network.state import WsnState


class ProcessStatus(enum.Enum):
    """Lifecycle of a replacement process."""

    ACTIVE = "active"
    CONVERGED = "converged"
    FAILED = "failed"


@dataclass
class ReplacementProcess:
    """One replacement process serving one detected hole."""

    process_id: int
    origin_cell: GridCoord
    initiator_cell: GridCoord
    started_round: int
    status: ProcessStatus = ProcessStatus.ACTIVE
    finished_round: Optional[int] = None
    moves: List[MoveRecord] = field(default_factory=list)
    notifications_sent: int = 0

    @property
    def move_count(self) -> int:
        """Number of node movements performed by this process so far."""
        return len(self.moves)

    @property
    def total_distance(self) -> float:
        """Total moving distance (metres) of this process so far."""
        return sum(move.distance for move in self.moves)

    @property
    def is_active(self) -> bool:
        """Whether the process is still running."""
        return self.status is ProcessStatus.ACTIVE

    @property
    def converged(self) -> bool:
        """Whether the process finished successfully (its hole was repaired)."""
        return self.status is ProcessStatus.CONVERGED

    @property
    def failed(self) -> bool:
        """Whether the process failed (its cascade dead-ended)."""
        return self.status is ProcessStatus.FAILED

    def record_move(self, move: MoveRecord) -> None:
        """Append one movement to the process's move list."""
        self.moves.append(move)

    def mark_converged(self, round_index: int) -> None:
        """Mark the process successfully finished in ``round_index``."""
        self.status = ProcessStatus.CONVERGED
        self.finished_round = round_index

    def mark_failed(self, round_index: int) -> None:
        """Mark the process failed in ``round_index``."""
        self.status = ProcessStatus.FAILED
        self.finished_round = round_index


@dataclass
class _PendingRequest:
    """Sender-side bookkeeping for one unacknowledged replacement request.

    Unreliable channels engage this reliability layer: the sender keeps the
    request's addressing, and resends it when no
    :attr:`~repro.network.messages.MessageKind.REPLACEMENT_ACK` for its key
    arrives within the channel's ack timeout.  ``key`` is
    ``(process_id, vacancy)`` — the protocol-level identity of the request,
    stable across retransmissions.
    """

    key: Tuple[int, Tuple[int, int]]
    target_cell: GridCoord
    sender_id: int
    last_sent_round: int
    #: Controller-wide serial of the request, echoed in every retransmission
    #: and acknowledgement.  A cascade may revisit the same cell within one
    #: process, reusing the ``(process_id, vacancy)`` key; the nonce stops a
    #: late acknowledgement of the *older* request from settling the newer
    #: request's entry.
    nonce: int = 0
    retries: int = 0


@dataclass
class RoundOutcome:
    """What happened during one synchronous round."""

    round_index: int
    moves: List[MoveRecord] = field(default_factory=list)
    processes_started: List[int] = field(default_factory=list)
    processes_converged: List[int] = field(default_factory=list)
    processes_failed: List[int] = field(default_factory=list)
    messages_sent: int = 0

    @property
    def move_count(self) -> int:
        """Number of movements performed this round."""
        return len(self.moves)

    @property
    def total_distance(self) -> float:
        """Total distance (metres) moved this round."""
        return sum(move.distance for move in self.moves)

    @property
    def made_progress(self) -> bool:
        """Whether anything at all happened in the round."""
        return bool(
            self.moves
            or self.processes_started
            or self.processes_converged
            or self.processes_failed
            or self.messages_sent
        )


class MobilityController(abc.ABC):
    """A distributed hole-recovery scheme driven by the round-based engine.

    A controller is bound to one :class:`~repro.network.state.WsnState` and
    mutates it (through :meth:`WsnState.move_node`) as its heads act.  The
    engine calls :meth:`execute_round` once per synchronous round.
    """

    #: Human-readable scheme name used in metric records and plots.
    name: str = "controller"

    def __init__(self) -> None:
        self._processes: Dict[int, ReplacementProcess] = {}
        self._next_process_id = 0
        #: The run's control channel.  ``None`` (standalone use, outside an
        #: engine) falls back to the pre-channel semantics: notifications are
        #: counted and charged at the node default but not materialised.
        self.channel: Optional[ChannelState] = None
        #: Requests awaiting acknowledgement, keyed by ``(process_id, vacancy)``.
        self._awaiting_ack: Dict[Tuple[int, Tuple[int, int]], _PendingRequest] = {}
        #: Serial stamped into each tracked request (see ``_PendingRequest.nonce``).
        self._request_nonce = 0

    # -------------------------------------------------------------- messaging
    def bind_channel(self, channel: Optional[ChannelState]) -> None:
        """Attach the run's control channel (called by the engine).

        Binding clears the messaging state (pending acknowledgements and the
        subclass delivery gates): a controller may be reused across engine
        runs, and a gate waiting on a message that only exists in a previous
        run's mailbox would otherwise block its cascade forever.
        """
        self.channel = channel
        self._awaiting_ack.clear()
        self._reset_messaging_state()

    def _reset_messaging_state(self) -> None:
        """Hook: clear subclass delivery-gating state (default: no-op)."""

    def handle_messages(
        self,
        state: WsnState,
        inbox: Dict[GridCoord, List[Message]],
        round_index: int,
    ) -> None:
        """Process this round's channel deliveries (called by the engine).

        Requests are dispatched to :meth:`_on_request_delivered` and — on
        unreliable channels — acknowledged by the destination cell's head;
        acknowledgements settle the sender-side retry entries.  A request
        addressed to a cell that currently has no head is not acknowledged,
        so the sender's retry keeps the cascade alive until a head exists.
        """
        for cell, messages in inbox.items():
            for message in messages:
                if message.kind is MessageKind.REPLACEMENT_ACK:
                    pending = self._awaiting_ack.get(self._message_key(message))
                    if pending is not None and (
                        (message.payload or {}).get("req") == pending.nonce
                    ):
                        del self._awaiting_ack[pending.key]
                    continue
                self._on_request_delivered(state, message, round_index)
                if (
                    self.channel is not None
                    and self.channel.requires_ack
                    and (message.payload or {}).get("ack", True)
                ):
                    head = state.head_of(cell) if not state.is_vacant(cell) else None
                    if head is not None and not head.is_battery_depleted:
                        self.channel.send(
                            MessageKind.REPLACEMENT_ACK,
                            source_cell=cell,
                            target_cell=message.source_cell,
                            round_index=round_index,
                            sender_id=head.node_id,
                            process_id=message.process_id,
                            payload=dict(message.payload or {}),
                        )

    @property
    def pending_acknowledgements(self) -> int:
        """Requests still awaiting an acknowledgement (unreliable channels only)."""
        return len(self._awaiting_ack)

    @staticmethod
    def _message_key(message: Message) -> Tuple[int, Tuple[int, int]]:
        """The ``(process_id, vacancy)`` identity of a request/ack pair."""
        vacancy = tuple((message.payload or {}).get("vacancy", (-1, -1)))
        return (message.process_id if message.process_id is not None else -1, vacancy)

    def _on_request_delivered(
        self, state: WsnState, message: Message, round_index: int
    ) -> None:
        """Hook: a replacement request reached its destination (default: no-op)."""

    def _on_request_abandoned(
        self,
        state: WsnState,
        key: Tuple[int, Tuple[int, int]],
        round_index: int,
        outcome: "RoundOutcome",
    ) -> None:
        """Hook: a request exhausted its retry budget (default: no-op)."""

    def _post_replacement_request(
        self,
        sender: SensorNode,
        source_cell: GridCoord,
        target_cell: GridCoord,
        vacancy: GridCoord,
        process_id: int,
        round_index: int,
        reliable: bool = True,
    ) -> bool:
        """Send one replacement request through the channel.

        Returns ``True`` when the request was routed through a real channel
        (so the caller must gate the cascade on its delivery).  Without a
        channel the pre-channel fallback applies: the sender is charged the
        node-level default message cost and no gating happens.  With
        ``reliable=False`` the message is advisory (fire-and-forget): it is
        neither acknowledged nor retried, and delivery gates nothing.
        """
        if self.channel is None:
            sender.charge_message_cost()
            return False
        payload = {"vacancy": vacancy.as_tuple()}
        if not reliable:
            payload["ack"] = False
        track = reliable and self.channel.requires_ack
        if track:
            payload["req"] = self._request_nonce
        self.channel.send(
            MessageKind.REPLACEMENT_REQUEST,
            source_cell=source_cell,
            target_cell=target_cell,
            round_index=round_index,
            sender_id=sender.node_id,
            process_id=process_id,
            payload=payload,
        )
        if track:
            key = (process_id, vacancy.as_tuple())
            self._awaiting_ack[key] = _PendingRequest(
                key=key,
                target_cell=target_cell,
                sender_id=sender.node_id,
                last_sent_round=round_index,
                nonce=self._request_nonce,
            )
            self._request_nonce += 1
        return reliable

    def _service_retries(
        self, state: WsnState, round_index: int, outcome: "RoundOutcome"
    ) -> None:
        """Resend timed-out requests; abandon those out of budget.

        Controllers that send gated requests call this at the top of every
        round.  Only unreliable channels ever populate the pending table, so
        this is a no-op on perfect/delayed channels.
        """
        if self.channel is None or not self.channel.requires_ack:
            return
        for key in sorted(self._awaiting_ack):
            pending = self._awaiting_ack[key]
            process = self._processes.get(key[0])
            if process is None or not process.is_active:
                del self._awaiting_ack[key]
                continue
            if round_index - pending.last_sent_round < self.channel.model.ack_timeout:
                continue
            sender = state.node(pending.sender_id)
            exhausted = pending.retries >= self.channel.model.max_retries
            if exhausted or not sender.is_enabled or sender.is_battery_depleted:
                del self._awaiting_ack[key]
                self._on_request_abandoned(state, key, round_index, outcome)
                continue
            self.channel.send(
                MessageKind.REPLACEMENT_REQUEST,
                source_cell=state.grid.cell_of(sender.position),
                target_cell=pending.target_cell,
                round_index=round_index,
                sender_id=sender.node_id,
                process_id=key[0],
                payload={"vacancy": key[1], "req": pending.nonce},
            )
            pending.retries += 1
            pending.last_sent_round = round_index
            outcome.messages_sent += 1

    # ----------------------------------------------------------------- rounds
    @abc.abstractmethod
    def execute_round(
        self, state: WsnState, rng: random.Random, round_index: int
    ) -> RoundOutcome:
        """Run one synchronous round of the scheme on ``state``."""

    def is_quiescent(self, state: WsnState) -> bool:
        """Whether the controller has no pending work of its own.

        The engine combines this with the hole count and the per-round
        progress flag to decide when to stop.
        """
        return not any(process.is_active for process in self._processes.values())

    # -------------------------------------------------------------- processes
    def processes(self) -> List[ReplacementProcess]:
        """All replacement processes ever started, in creation order."""
        return [self._processes[pid] for pid in sorted(self._processes)]

    def active_processes(self) -> List[ReplacementProcess]:
        """The processes still running, in creation order."""
        return [p for p in self.processes() if p.is_active]

    def process(self, process_id: int) -> ReplacementProcess:
        """The process with id ``process_id`` (KeyError when unknown)."""
        return self._processes[process_id]

    def _start_process(
        self, origin_cell: GridCoord, initiator_cell: GridCoord, round_index: int
    ) -> ReplacementProcess:
        process = ReplacementProcess(
            process_id=self._next_process_id,
            origin_cell=origin_cell,
            initiator_cell=initiator_cell,
            started_round=round_index,
        )
        self._processes[process.process_id] = process
        self._next_process_id += 1
        return process

    # ------------------------------------------------------------- aggregates
    @property
    def total_processes(self) -> int:
        """Number of replacement processes ever started."""
        return len(self._processes)

    @property
    def total_moves(self) -> int:
        """Total node movements across all processes."""
        return sum(p.move_count for p in self._processes.values())

    @property
    def total_distance(self) -> float:
        """Total moving distance (metres) across all processes."""
        return sum(p.total_distance for p in self._processes.values())

    @property
    def converged_processes(self) -> int:
        """Number of processes that finished successfully."""
        return sum(1 for p in self._processes.values() if p.converged)

    @property
    def failed_processes(self) -> int:
        """Number of processes that failed."""
        return sum(1 for p in self._processes.values() if p.failed)

    @property
    def success_rate(self) -> float:
        """Fraction of finished-or-active processes that converged (0..1).

        Matches the paper's Figure 6(b): the percentage of initiated
        replacement processes that approach a spare node and converge.
        Processes still active when the simulation stops count as failures,
        because they did not converge within the allotted rounds.
        """
        if not self._processes:
            return 1.0
        return self.converged_processes / len(self._processes)

    def describe(self) -> str:
        """One-line summary used by examples and debug output."""
        return (
            f"{self.name}: processes={self.total_processes} "
            f"(converged={self.converged_processes}, failed={self.failed_processes}), "
            f"moves={self.total_moves}, distance={self.total_distance:.1f} m"
        )
