"""Sensor node model.

A node is a small battery-powered device with a position, a radio, and a
working status.  Following the paper, nodes that have failed or misbehave are
*disabled* and excluded from the collaboration; the remaining *enabled* nodes
constitute the WSN.  Within each virtual-grid cell one enabled node is
elected *grid head* and the others are *spare* nodes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional

from repro.grid.geometry import Point


class NodeState(enum.Enum):
    """Working status of a sensor node."""

    ENABLED = "enabled"
    FAILED = "failed"
    MISBEHAVING = "misbehaving"
    DEPLETED = "depleted"

    @property
    def is_enabled(self) -> bool:
        """Whether this state means the node is operational."""
        return self is NodeState.ENABLED


class NodeRole(enum.Enum):
    """Role of an enabled node inside its virtual-grid cell."""

    HEAD = "head"
    SPARE = "spare"
    UNASSIGNED = "unassigned"


#: Default battery capacity in joules.  The exact value is irrelevant to the
#: paper's experiments; it only matters for the battery-depletion failure
#: model and the energy accounting extension.
DEFAULT_BATTERY_CAPACITY = 100.0

#: Energy cost per metre moved (joules/metre).  Movement dominates the energy
#: budget of mobile sensors, so message costs are comparatively tiny.
MOVE_COST_PER_METER = 1.0

#: Energy cost of transmitting one control message (joules).
MESSAGE_COST = 0.01


@dataclass
class SensorNode:
    """A single sensor device.

    Attributes
    ----------
    node_id:
        Unique integer identifier.
    position:
        Current location in the surveillance plane (metres).
    state:
        Whether the node is enabled or disabled (failed / misbehaving).
    role:
        Head / spare role within its current cell.
    energy:
        Remaining battery energy in joules.
    initial_energy:
        Battery capacity the node started with (defaults to ``energy``).
        Energy accounting sums ``initial_energy - energy`` per node, so
        heterogeneous capacities and disabled nodes are both handled.
    moved_distance:
        Total distance moved so far, in metres.
    move_count:
        Number of relocation moves performed so far.
    """

    node_id: int
    position: Point
    state: NodeState = NodeState.ENABLED
    role: NodeRole = NodeRole.UNASSIGNED
    energy: float = DEFAULT_BATTERY_CAPACITY
    initial_energy: Optional[float] = None
    moved_distance: float = 0.0
    move_count: int = 0
    position_history: List[Point] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.node_id < 0:
            raise ValueError(f"node_id must be non-negative, got {self.node_id}")
        if self.energy < 0:
            raise ValueError(f"energy must be non-negative, got {self.energy}")
        if self.initial_energy is None:
            self.initial_energy = self.energy
        elif self.initial_energy < 0:
            raise ValueError(
                f"initial_energy must be non-negative, got {self.initial_energy}"
            )

    # ------------------------------------------------------------------ state
    @property
    def is_enabled(self) -> bool:
        """Whether the node participates in the collaboration."""
        return self.state.is_enabled

    @property
    def is_head(self) -> bool:
        """Whether the node currently holds the grid-head role."""
        return self.is_enabled and self.role is NodeRole.HEAD

    @property
    def is_spare(self) -> bool:
        """Whether the node currently holds the spare role."""
        return self.is_enabled and self.role is NodeRole.SPARE

    def disable(self, reason: NodeState = NodeState.FAILED) -> None:
        """Remove the node from the collaboration (failure or misbehaviour)."""
        if reason is NodeState.ENABLED:
            raise ValueError("disable() requires a non-enabled reason state")
        self.state = reason
        self.role = NodeRole.UNASSIGNED

    def enable(self) -> None:
        """Re-admit the node to the collaboration (e.g. after re-attestation)."""
        self.state = NodeState.ENABLED
        self.role = NodeRole.UNASSIGNED

    # ------------------------------------------------------------------- move
    def relocate(
        self,
        target: Point,
        record_history: bool = False,
        cost_per_meter: float = MOVE_COST_PER_METER,
    ) -> float:
        """Move the node to ``target`` and account for distance and energy.

        Returns the distance travelled.  Raises :class:`RuntimeError` when the
        node is disabled — disabled nodes cannot take part in replacement —
        or when its battery is depleted: a node with an empty battery has no
        motor power left, consistent with the engine-level depletion
        semantics that disable such nodes outright.
        """
        if not self.is_enabled:
            raise RuntimeError(f"node {self.node_id} is disabled and cannot move")
        if self.is_battery_depleted:
            raise RuntimeError(
                f"node {self.node_id} has a depleted battery and cannot move"
            )
        distance = self.position.distance_to(target)
        if record_history:
            self.position_history.append(self.position)
        self.position = target
        self.moved_distance += distance
        self.move_count += 1
        self.consume_energy(distance * cost_per_meter)
        return distance

    # ----------------------------------------------------------------- energy
    def consume_energy(self, amount: float) -> None:
        """Subtract ``amount`` joules, clamping at zero."""
        if amount < 0:
            raise ValueError(f"energy amount must be non-negative, got {amount}")
        self.energy = max(0.0, self.energy - amount)

    @property
    def is_battery_depleted(self) -> bool:
        """Whether the battery is empty (remaining energy at or below zero)."""
        return self.energy <= 0.0

    def charge_message_cost(self, messages: int = 1, cost: float = MESSAGE_COST) -> None:
        """Account for the transmission cost of ``messages`` control messages."""
        self.consume_energy(cost * messages)

    def reset_energy(self, capacity: float) -> None:
        """Install a fresh battery of ``capacity`` joules (scenario setup hook)."""
        if capacity < 0:
            raise ValueError(f"capacity must be non-negative, got {capacity}")
        self.energy = capacity
        self.initial_energy = capacity

    @property
    def consumed_energy(self) -> float:
        """Energy spent since deployment (joules); clamping never goes negative."""
        return max(0.0, (self.initial_energy or 0.0) - self.energy)

    # ------------------------------------------------------------------ copy
    def copy(self) -> "SensorNode":
        """Independent copy of the node (positions are immutable and shared)."""
        return SensorNode(
            node_id=self.node_id,
            position=self.position,
            state=self.state,
            role=self.role,
            energy=self.energy,
            initial_energy=self.initial_energy,
            moved_distance=self.moved_distance,
            move_count=self.move_count,
            position_history=list(self.position_history),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"SensorNode(id={self.node_id}, pos=({self.position.x:.2f}, "
            f"{self.position.y:.2f}), state={self.state.value}, role={self.role.value})"
        )


def enabled_only(nodes) -> List[SensorNode]:
    """Filter an iterable of nodes down to the enabled ones."""
    return [node for node in nodes if node.is_enabled]


def find_node(nodes, node_id: int) -> Optional[SensorNode]:
    """Linear search for a node by id (convenience for small collections)."""
    for node in nodes:
        if node.node_id == node_id:
            return node
    return None
