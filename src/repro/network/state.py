"""Mutable network state: which node is where, and who is head.

:class:`WsnState` is the single source of truth the mobility-control
algorithms operate on.  It keeps the per-cell membership index and the grid
head assignment consistent across node failures and replacement moves, and it
enforces the virtual-grid invariants of Section 2:

* every cell with at least one enabled node has exactly one head,
* a vacant cell (no enabled node) has no head,
* the head of a cell is always one of the enabled nodes located in that cell.
"""

from __future__ import annotations

import copy
import random
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set

from repro.grid.geometry import Point
from repro.grid.head_election import HeadElectionPolicy, elect_head, lowest_id_policy
from repro.grid.virtual_grid import GridCoord, VirtualGrid
from repro.network.mobility import MovementModel, MoveRecord
from repro.network.node import NodeRole, NodeState, SensorNode


class WsnState:
    """The deployed network projected onto the virtual grid.

    Parameters
    ----------
    grid:
        The virtual grid partition of the surveillance area.
    nodes:
        All deployed nodes (enabled and disabled).  Node ids must be unique.
    head_policy:
        Election policy used whenever a cell needs a (new) head.
    movement_model:
        Movement model used by :meth:`move_node`; defaults to central-area
        targeting on the same grid.
    """

    def __init__(
        self,
        grid: VirtualGrid,
        nodes: Iterable[SensorNode],
        head_policy: Optional[HeadElectionPolicy] = None,
        movement_model: Optional[MovementModel] = None,
    ) -> None:
        self.grid = grid
        self._head_policy = head_policy or lowest_id_policy
        self.movement_model = movement_model or MovementModel(grid)
        self._nodes: Dict[int, SensorNode] = {}
        for node in nodes:
            if node.node_id in self._nodes:
                raise ValueError(f"duplicate node id {node.node_id}")
            if not grid.bounds.contains(node.position, tolerance=1e-9):
                raise ValueError(
                    f"node {node.node_id} at {node.position.as_tuple()} lies outside "
                    "the surveillance area"
                )
            self._nodes[node.node_id] = node
        self._cell_members: Dict[GridCoord, Set[int]] = {
            coord: set() for coord in grid.all_coords()
        }
        self._heads: Dict[GridCoord, Optional[int]] = {
            coord: None for coord in grid.all_coords()
        }
        for node in self._nodes.values():
            if node.is_enabled:
                self._cell_members[self.grid.cell_of(node.position)].add(node.node_id)
        self.elect_all_heads()

    # ------------------------------------------------------------------ nodes
    def node(self, node_id: int) -> SensorNode:
        """Look up a node by id (:class:`KeyError` if unknown)."""
        return self._nodes[node_id]

    def nodes(self) -> Iterator[SensorNode]:
        """All deployed nodes, enabled or not."""
        return iter(self._nodes.values())

    def enabled_nodes(self) -> List[SensorNode]:
        """All nodes currently participating in the collaboration."""
        return [node for node in self._nodes.values() if node.is_enabled]

    def disabled_nodes(self) -> List[SensorNode]:
        return [node for node in self._nodes.values() if not node.is_enabled]

    @property
    def node_count(self) -> int:
        """Total number of deployed nodes."""
        return len(self._nodes)

    @property
    def enabled_count(self) -> int:
        return sum(1 for node in self._nodes.values() if node.is_enabled)

    # ------------------------------------------------------------------ cells
    def cell_of_node(self, node_id: int) -> GridCoord:
        """Cell currently containing the node (by its position)."""
        return self.grid.cell_of(self.node(node_id).position)

    def members_of(self, coord: GridCoord) -> List[SensorNode]:
        """Enabled nodes currently located in cell ``coord``."""
        self.grid.validate_coord(coord)
        return [self._nodes[node_id] for node_id in sorted(self._cell_members[coord])]

    def member_count(self, coord: GridCoord) -> int:
        self.grid.validate_coord(coord)
        return len(self._cell_members[coord])

    def head_of(self, coord: GridCoord) -> Optional[SensorNode]:
        """The grid head of ``coord``, or ``None`` when the cell is vacant."""
        self.grid.validate_coord(coord)
        head_id = self._heads[coord]
        return None if head_id is None else self._nodes[head_id]

    def spares_of(self, coord: GridCoord) -> List[SensorNode]:
        """Enabled non-head nodes in ``coord`` (the cell's spare nodes)."""
        head_id = self._heads[self.grid.validate_coord(coord)]
        return [
            node for node in self.members_of(coord) if node.node_id != head_id
        ]

    def has_spare(self, coord: GridCoord) -> bool:
        return self.member_count(coord) > 1

    def is_vacant(self, coord: GridCoord) -> bool:
        """Whether ``coord`` has no enabled node (a hole in the coverage)."""
        return self.member_count(coord) == 0

    def vacant_cells(self) -> List[GridCoord]:
        """All holes, in row-major order."""
        return [coord for coord in self.grid.all_coords() if self.is_vacant(coord)]

    def occupied_cells(self) -> List[GridCoord]:
        return [coord for coord in self.grid.all_coords() if not self.is_vacant(coord)]

    @property
    def hole_count(self) -> int:
        return sum(1 for coord in self.grid.all_coords() if self.is_vacant(coord))

    @property
    def spare_count(self) -> int:
        """Total number of spare nodes in the network."""
        return sum(max(0, len(members) - 1) for members in self._cell_members.values())

    @property
    def spare_surplus(self) -> int:
        """Spares minus holes.

        Equals the paper's ``N`` (enabled nodes minus number of cells) whenever
        the network was thinned to ``N + m*n`` enabled nodes.
        """
        return self.spare_count - self.hole_count

    def occupancy(self) -> Dict[GridCoord, int]:
        """Enabled-node count for every cell."""
        return {coord: len(members) for coord, members in self._cell_members.items()}

    def spare_counts(self) -> Dict[GridCoord, int]:
        """Spare-node count for every cell."""
        return {
            coord: max(0, len(members) - 1)
            for coord, members in self._cell_members.items()
        }

    # ---------------------------------------------------------------- changes
    def disable_node(self, node_id: int, reason: NodeState = NodeState.FAILED) -> None:
        """Disable a node and repair the head assignment of its cell."""
        node = self.node(node_id)
        if not node.is_enabled:
            return
        coord = self.grid.cell_of(node.position)
        node.disable(reason)
        self._cell_members[coord].discard(node_id)
        if self._heads[coord] == node_id:
            self._heads[coord] = None
            self._elect_cell_head(coord)

    def enable_node(self, node_id: int) -> None:
        """Re-admit a previously disabled node (extension; not used by the paper)."""
        node = self.node(node_id)
        if node.is_enabled:
            return
        node.enable()
        coord = self.grid.cell_of(node.position)
        self._cell_members[coord].add(node_id)
        self._elect_cell_head(coord)

    def move_node(
        self,
        node_id: int,
        target_cell: GridCoord,
        rng: random.Random,
        round_index: int = 0,
        process_id: Optional[int] = None,
        target_position: Optional[Point] = None,
        enforce_adjacent: bool = True,
    ) -> MoveRecord:
        """Relocate an enabled node into ``target_cell`` and repair head roles.

        Replacement moves in the paper always go to a neighbouring cell; pass
        ``enforce_adjacent=False`` for extension algorithms (e.g. virtual
        force) that relocate nodes over longer distances.
        """
        node = self.node(node_id)
        if not node.is_enabled:
            raise RuntimeError(f"cannot move disabled node {node_id}")
        source_cell = self.grid.cell_of(node.position)
        self.grid.validate_coord(target_cell)
        if enforce_adjacent and not source_cell.is_neighbour_of(target_cell):
            raise ValueError(
                f"move from {source_cell.as_tuple()} to {target_cell.as_tuple()} is not "
                "a neighbouring-cell move"
            )
        record = self.movement_model.execute_move(
            node,
            source_cell,
            target_cell,
            rng,
            round_index=round_index,
            process_id=process_id,
            target_position=target_position,
        )
        self._cell_members[source_cell].discard(node_id)
        self._cell_members[target_cell].add(node_id)
        if self._heads[source_cell] == node_id:
            self._heads[source_cell] = None
            self._elect_cell_head(source_cell)
        node.role = NodeRole.UNASSIGNED
        self._elect_cell_head(target_cell)
        return record

    # ----------------------------------------------------------------- heads
    def _elect_cell_head(self, coord: GridCoord) -> Optional[SensorNode]:
        members = self.members_of(coord)
        current_head_id = self._heads[coord]
        if current_head_id is not None and any(
            node.node_id == current_head_id for node in members
        ):
            head = self._nodes[current_head_id]
        else:
            head = elect_head(members, self.grid.cell_center(coord), self._head_policy)
            self._heads[coord] = None if head is None else head.node_id
        for node in members:
            node.role = NodeRole.SPARE
        if head is not None:
            head.role = NodeRole.HEAD
        return head

    def elect_all_heads(self) -> None:
        """(Re-)elect the head of every cell from scratch-consistent membership."""
        for coord in self.grid.all_coords():
            self._elect_cell_head(coord)

    def rotate_head(self, coord: GridCoord) -> Optional[SensorNode]:
        """Force a fresh election in ``coord`` (head-rotation extension)."""
        self.grid.validate_coord(coord)
        self._heads[coord] = None
        return self._elect_cell_head(coord)

    def heads(self) -> Dict[GridCoord, Optional[int]]:
        """Copy of the head assignment (cell -> head node id or ``None``)."""
        return dict(self._heads)

    def head_nodes(self) -> List[SensorNode]:
        """All current grid heads."""
        return [self._nodes[h] for h in self._heads.values() if h is not None]

    # -------------------------------------------------------------- accounting
    @property
    def total_moved_distance(self) -> float:
        """Total distance moved by all nodes since deployment (metres)."""
        return sum(node.moved_distance for node in self._nodes.values())

    @property
    def total_move_count(self) -> int:
        """Total number of relocation moves since deployment."""
        return sum(node.move_count for node in self._nodes.values())

    # ------------------------------------------------------------------ misc
    def clone(self) -> "WsnState":
        """Deep copy of the state, useful for running several schemes on one scenario."""
        return copy.deepcopy(self)

    def check_invariants(self) -> None:
        """Raise :class:`AssertionError` if any grid-overlay invariant is violated."""
        for coord in self.grid.all_coords():
            members = self._cell_members[coord]
            for node_id in members:
                node = self._nodes[node_id]
                assert node.is_enabled, f"disabled node {node_id} indexed in {coord}"
                assert self.grid.cell_of(node.position) == coord, (
                    f"node {node_id} indexed in {coord.as_tuple()} but located in "
                    f"{self.grid.cell_of(node.position).as_tuple()}"
                )
            head_id = self._heads[coord]
            if members:
                assert head_id is not None, f"occupied cell {coord.as_tuple()} has no head"
                assert head_id in members, (
                    f"head {head_id} of cell {coord.as_tuple()} is not one of its members"
                )
            else:
                assert head_id is None, f"vacant cell {coord.as_tuple()} has a head"

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"WsnState(grid={self.grid.columns}x{self.grid.rows}, "
            f"nodes={self.node_count}, enabled={self.enabled_count}, "
            f"holes={self.hole_count}, spares={self.spare_count})"
        )
