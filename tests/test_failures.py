"""Unit tests for the failure / attack injection models."""

import random

import pytest

from repro.grid.geometry import BoundingBox, Point
from repro.grid.virtual_grid import GridCoord, VirtualGrid
from repro.network.deployment import deploy_per_cell
from repro.network.failures import (
    BatteryDepletionFailure,
    CompositeFailure,
    RandomFailure,
    RegionJammingFailure,
    TargetedCellFailure,
    ThinningToEnabledCount,
)
from repro.network.node import NodeState
from repro.network.state import WsnState


@pytest.fixture
def state(rng):
    grid = VirtualGrid(5, 4, cell_size=2.0)
    return WsnState(grid, deploy_per_cell(grid, 3, rng))


class TestRandomFailure:
    def test_requires_exactly_one_mode(self):
        with pytest.raises(ValueError):
            RandomFailure()
        with pytest.raises(ValueError):
            RandomFailure(probability=0.5, count=3)
        with pytest.raises(ValueError):
            RandomFailure(probability=1.5)
        with pytest.raises(ValueError):
            RandomFailure(count=-1)

    def test_count_mode_disables_exactly_n(self, state, rng):
        before = state.enabled_count
        victims = RandomFailure(count=7).apply(state, rng)
        assert len(victims) == 7
        assert state.enabled_count == before - 7
        for node_id in victims:
            assert not state.node(node_id).is_enabled

    def test_count_larger_than_network(self, state, rng):
        victims = RandomFailure(count=10_000).apply(state, rng)
        assert state.enabled_count == 0
        assert len(victims) == len(set(victims))

    def test_probability_mode_statistics(self, state):
        victims = RandomFailure(probability=0.5).apply(state, random.Random(0))
        assert 0.25 * state.node_count < len(victims) < 0.75 * state.node_count

    def test_probability_zero_and_one(self, state, rng):
        assert RandomFailure(probability=0.0).apply(state, rng) == []
        RandomFailure(probability=1.0).apply(state, rng)
        assert state.enabled_count == 0

    def test_custom_reason(self, state, rng):
        victims = RandomFailure(count=1, reason=NodeState.MISBEHAVING).apply(state, rng)
        assert state.node(victims[0]).state is NodeState.MISBEHAVING


class TestThinning:
    def test_thins_to_exact_enabled_count(self, state, rng):
        ThinningToEnabledCount(target_enabled=25).apply(state, rng)
        assert state.enabled_count == 25

    def test_noop_when_already_below_target(self, state, rng):
        victims = ThinningToEnabledCount(target_enabled=10_000).apply(state, rng)
        assert victims == []
        assert state.enabled_count == state.node_count

    def test_rejects_negative_target(self):
        with pytest.raises(ValueError):
            ThinningToEnabledCount(target_enabled=-1)

    def test_paper_workload_relation(self, rng):
        """After thinning to m*n + N enabled nodes, spares - holes == N."""
        grid = VirtualGrid(8, 8, cell_size=4.4721)
        state = WsnState(grid, deploy_per_cell(grid, 6, rng))
        spare_surplus = 17
        ThinningToEnabledCount(grid.cell_count + spare_surplus).apply(state, rng)
        assert state.spare_surplus == spare_surplus


class TestRegionJamming:
    def test_requires_box_or_disk(self):
        with pytest.raises(ValueError):
            RegionJammingFailure()
        with pytest.raises(ValueError):
            RegionJammingFailure(box=BoundingBox(0, 0, 1, 1), center=Point(0, 0), radius=1)
        with pytest.raises(ValueError):
            RegionJammingFailure(center=Point(0, 0), radius=-1)

    def test_rejects_partial_disk_specs(self):
        # Regression: a partial disk used to collapse to "no disk given", so
        # box + center (without radius) was silently accepted.
        with pytest.raises(ValueError):
            RegionJammingFailure(center=Point(0, 0))
        with pytest.raises(ValueError):
            RegionJammingFailure(radius=2.0)
        with pytest.raises(ValueError):
            RegionJammingFailure(box=BoundingBox(0, 0, 1, 1), center=Point(0, 0))
        with pytest.raises(ValueError):
            RegionJammingFailure(box=BoundingBox(0, 0, 1, 1), radius=2.0)

    def test_box_jamming_disables_only_inside(self, state, rng):
        box = BoundingBox(0, 0, 2, 2)
        victims = RegionJammingFailure(box=box).apply(state, rng)
        assert victims, "the jammed region contains nodes"
        for node in state.nodes():
            if box.contains(node.position):
                assert not node.is_enabled
            else:
                assert node.is_enabled

    def test_disk_jamming(self, state, rng):
        center = Point(5.0, 4.0)
        victims = RegionJammingFailure(center=center, radius=2.0).apply(state, rng)
        for node_id in victims:
            assert state.node(node_id).position.distance_to(center) <= 2.0

    def test_creates_holes(self, state, rng):
        RegionJammingFailure(box=BoundingBox(0, 0, 4, 4)).apply(state, rng)
        assert state.hole_count >= 4


class TestTargetedCellFailure:
    def test_disables_all_nodes_in_cells(self, state, rng):
        cells = [GridCoord(0, 0), GridCoord(4, 3)]
        TargetedCellFailure(cells=cells).apply(state, rng)
        for coord in cells:
            assert state.is_vacant(coord)
        assert state.hole_count == 2

    def test_rejects_cells_outside_grid(self, state, rng):
        with pytest.raises(ValueError):
            TargetedCellFailure(cells=[GridCoord(99, 99)]).apply(state, rng)

    def test_default_reason_is_misbehaving(self, state, rng):
        victims = TargetedCellFailure(cells=[GridCoord(1, 1)]).apply(state, rng)
        assert all(
            state.node(node_id).state is NodeState.MISBEHAVING for node_id in victims
        )


class TestBatteryAndComposite:
    def test_battery_depletion(self, state, rng):
        nodes = list(state.enabled_nodes())
        nodes[0].energy = 0.0
        nodes[1].energy = 0.5
        victims = BatteryDepletionFailure(threshold=0.5).apply(state, rng)
        assert set(victims) == {nodes[0].node_id, nodes[1].node_id}

    def test_composite_applies_in_order(self, state, rng):
        composite = CompositeFailure(
            models=[
                TargetedCellFailure(cells=[GridCoord(0, 0)]),
                RandomFailure(count=2),
            ]
        )
        victims = composite.apply(state, rng)
        assert len(victims) == 3 + 2  # 3 nodes per cell plus 2 random
        assert state.is_vacant(GridCoord(0, 0))

    def test_callable_protocol(self, state, rng):
        assert RandomFailure(count=1)(state, rng)
