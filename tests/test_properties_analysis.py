"""Property-based tests for the analytical model (Theorem 2 invariants)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import analysis

spares = st.integers(min_value=0, max_value=2000)
positive_spares = st.integers(min_value=1, max_value=2000)
path_lengths = st.integers(min_value=1, max_value=400)
cell_sizes = st.floats(min_value=0.5, max_value=50.0, allow_nan=False, allow_infinity=False)


@given(spares, path_lengths)
def test_distribution_is_a_probability_distribution(n, length):
    distribution = analysis.movement_distribution(n, length)
    assert len(distribution) == length
    assert (distribution >= -1e-12).all()
    assert np.isclose(distribution.sum(), 1.0)


@given(spares, path_lengths)
def test_expected_movements_within_bounds(n, length):
    value = analysis.expected_movements(n, length)
    assert 1.0 - 1e-9 <= value <= length + 1e-9


@given(spares, path_lengths)
def test_expected_movements_equals_distribution_mean(n, length):
    distribution = analysis.movement_distribution(n, length)
    mean = float(np.sum(np.arange(1, length + 1) * distribution))
    assert np.isclose(analysis.expected_movements(n, length), mean, rtol=1e-9, atol=1e-9)


@given(spares, path_lengths)
def test_monotone_in_spares(n, length):
    assert analysis.expected_movements(n, length) >= analysis.expected_movements(n + 1, length) - 1e-9


@given(positive_spares, st.integers(min_value=1, max_value=399))
def test_monotone_in_path_length(n, length):
    assert analysis.expected_movements(n, length) <= analysis.expected_movements(n, length + 1) + 1e-9


@given(spares, path_lengths, cell_sizes)
def test_distance_scales_linearly_with_cell_size(n, length, cell_size):
    single = analysis.expected_total_distance(n, length, cell_size)
    double = analysis.expected_total_distance(n, length, 2 * cell_size)
    assert np.isclose(double, 2 * single, rtol=1e-9)


@given(spares, path_lengths)
def test_convergence_probability_is_monotone_cdf(n, length):
    previous = 0.0
    for hops in range(0, length + 1, max(1, length // 7)):
        value = analysis.convergence_probability_within(n, length, hops)
        assert value >= previous - 1e-12
        assert -1e-12 <= value <= 1.0 + 1e-12
        previous = value


@given(st.integers(min_value=0, max_value=50), positive_spares, path_lengths)
def test_network_estimates_scale_with_holes(holes, n, length):
    per_hole = analysis.expected_movements(n, length)
    total = analysis.expected_network_movements(holes, n, length)
    assert np.isclose(total, holes * per_hole, rtol=1e-9)


@given(st.integers(min_value=2, max_value=400), st.floats(min_value=1.01, max_value=20.0))
@settings(max_examples=50)
def test_spares_for_expected_movements_is_minimal(length, target):
    spares_needed = analysis.spares_for_expected_movements(length, target)
    assert analysis.expected_movements(spares_needed, length) <= target + 1e-9
    if spares_needed > 0:
        assert analysis.expected_movements(spares_needed - 1, length) > target
