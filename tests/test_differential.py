"""Tests for the differential harness and its oracles.

Two layers:

* **Known-violation fixtures** — every oracle gets a hand-doctored
  :class:`DifferentialContext` (miscounted moves, a non-conserved message
  ledger, a rising energy series, a divergent sharded pair, a swallowed
  shard error) it must flag, plus a clean context it must pass.  An oracle
  without a fixture proving it fires is dead weight.
* **Harness integration** — ``run_differential`` over a real scenario is
  clean of bug-severity violations, deliberately infeasible shard requests
  fall back instead of erroring, and ``run_fuzz`` is deterministic: equal
  seeds archive byte-identical falsifier sets.
"""

import dataclasses

import pytest

from repro.experiments.differential import (
    ORACLES,
    DifferentialContext,
    check_energy_reconciliation,
    check_message_conservation,
    check_shard_fallback,
    check_sharded_identity,
    check_sr_ar_moves,
    check_theorem2_bound,
    run_differential,
    run_fuzz,
)
from repro.experiments.registry import available_schemes
from repro.experiments.scenario_files import Scenario, load_scenario
from repro.network.channel import ChannelModel
from repro.network.energy import EnergyModel
from repro.sim.scenario import ScenarioConfig


@pytest.fixture(scope="module")
def base_scenario():
    return Scenario(
        name="differential-fixture",
        scenario=ScenarioConfig(
            columns=4,
            rows=4,
            deployed_count=64,
            spare_surplus=6,
            seed=17,
            initial_energy=80.0,
        ),
        schemes=("SR", "AR"),
        energy=EnergyModel(idle_cost_per_round=0.5),
        channel=ChannelModel.with_params("lossy", drop_probability=0.2),
        trials=1,
        max_rounds=60,
    )


@pytest.fixture(scope="module")
def clean_report(base_scenario):
    return run_differential(base_scenario)


def doctor_record(record, **metric_changes):
    """Copy of ``record`` with doctored metrics fields."""
    return dataclasses.replace(
        record, metrics=dataclasses.replace(record.metrics, **metric_changes)
    )


def swap_record(context, scheme, record, trial=0):
    """Copy of ``context`` with trial ``trial``'s ``scheme`` record replaced."""
    position = trial * len(context.schemes) + context.schemes.index(scheme)
    records = list(context.records)
    records[position] = record
    return dataclasses.replace(context, records=tuple(records))


def get_record(context, scheme, trial=0):
    """Trial ``trial``'s record of ``scheme`` from the context."""
    return context.records[trial * len(context.schemes) + context.schemes.index(scheme)]


class TestHarness:
    def test_clean_scenario_has_no_bug_violations(self, clean_report):
        assert not clean_report.bug_violations

    def test_all_registered_oracles_are_evaluated(self, clean_report):
        assert tuple(o.name for o in clean_report.outcomes) == tuple(
            o.name for o in ORACLES
        )

    def test_schemes_are_replaced_by_the_full_registry(self, clean_report):
        # The input scenario named only SR and AR; the harness widens the
        # comparison to every registered scheme on the identical deployment.
        assert clean_report.context.schemes == available_schemes()
        assert len(clean_report.context.records) == len(available_schemes())

    def test_by_trial_regroups_records_per_scheme(self, clean_report):
        per_trial = clean_report.context.by_trial()
        assert len(per_trial) == 1
        assert set(per_trial[0]) == set(available_schemes())
        for scheme, record in per_trial[0].items():
            # metrics.scheme is the controller family ("SR-energy" runs the
            # SR controller); the spec records the registry name exactly.
            assert record.spec.scheme == scheme

    def test_sharded_rerun_happened(self, clean_report):
        assert clean_report.context.shard_error is None
        assert clean_report.context.sharded_pair is not None
        sequential, sharded = clean_report.context.sharded_pair
        assert sequential.spec.shards == 1
        assert sharded.spec.shards == clean_report.context.requested_shards


class TestSrArMovesOracle:
    def test_clean_context_passes(self, clean_report):
        # Bug-severity cleanliness is guaranteed; for this claim oracle the
        # fixture seed was chosen so the per-seed claim holds too.
        assert check_sr_ar_moves(clean_report.context) == []

    def test_flags_sr_moving_more_than_ar(self, clean_report):
        context = clean_report.context
        ar = get_record(context, "AR")
        doctored = swap_record(
            context,
            "SR",
            doctor_record(
                get_record(context, "SR"),
                total_moves=ar.metrics.total_moves + 5,
                final_holes=0,
            ),
        )
        doctored = swap_record(doctored, "AR", doctor_record(ar, final_holes=0))
        violations = check_sr_ar_moves(doctored)
        assert len(violations) == 1
        assert "SR moved" in violations[0] and "both converged" in violations[0]

    def test_ignores_trials_where_either_scheme_stalled(self, clean_report):
        context = clean_report.context
        ar = get_record(context, "AR")
        doctored = swap_record(
            context,
            "SR",
            doctor_record(
                get_record(context, "SR"),
                total_moves=ar.metrics.total_moves + 5,
                final_holes=2,  # SR did not converge: the claim says nothing
            ),
        )
        assert check_sr_ar_moves(doctored) == []

    def test_is_claim_severity(self):
        oracle = next(o for o in ORACLES if o.name == "sr-ar-moves")
        assert oracle.severity == "claim"


class TestTheorem2Oracle:
    def test_clean_context_passes(self, clean_report):
        assert check_theorem2_bound(clean_report.context) == []

    def test_flags_sr_moves_over_the_hard_bound(self, clean_report):
        context = clean_report.context
        sr = get_record(context, "SR")
        cells = context.scenario.scenario.cell_count
        bound = sr.metrics.processes_initiated * cells
        doctored = swap_record(
            context, "SR", doctor_record(sr, total_moves=bound + 1)
        )
        violations = check_theorem2_bound(doctored)
        assert len(violations) == 1
        assert f"hard bound" in violations[0] and "SR" in violations[0]

    def test_is_scoped_to_the_sr_family(self, clean_report):
        # AR moves spares directly and SMART/VF relocate without replacement
        # processes — the process-count bound says nothing about them.
        context = clean_report.context
        doctored = swap_record(
            context,
            "AR",
            doctor_record(get_record(context, "AR"), total_moves=10_000),
        )
        assert check_theorem2_bound(doctored) == []


class TestEnergyReconciliationOracle:
    def test_clean_context_passes(self, clean_report):
        assert check_energy_reconciliation(clean_report.context) == []

    def test_flags_a_rising_energy_series(self, clean_report):
        context = clean_report.context
        sr = get_record(context, "SR")
        series = sr.energy_series
        assert len(series) >= 2, "fixture must carry an energy series"
        rising = series[:-1] + (series[-2] + 5.0,)
        doctored = swap_record(
            context, "SR", dataclasses.replace(sr, energy_series=rising)
        )
        violations = check_energy_reconciliation(doctored)
        assert any("energy created" in v for v in violations)

    def test_flags_consumption_beyond_installed_capacity(self, clean_report):
        context = clean_report.context
        sr = get_record(context, "SR")
        summary = dataclasses.replace(
            sr.metrics.energy,
            total_consumed=sr.metrics.energy.initial_energy_total + 1.0,
        )
        doctored = swap_record(context, "SR", doctor_record(sr, energy=summary))
        violations = check_energy_reconciliation(doctored)
        assert any("installed" in v for v in violations)

    def test_flags_negative_consumption(self, clean_report):
        context = clean_report.context
        sr = get_record(context, "SR")
        summary = dataclasses.replace(sr.metrics.energy, total_consumed=-1.0)
        doctored = swap_record(context, "SR", doctor_record(sr, energy=summary))
        violations = check_energy_reconciliation(doctored)
        assert any("negative total consumption" in v for v in violations)

    def test_flags_series_summary_disagreement(self, clean_report):
        context = clean_report.context
        sr = get_record(context, "SR")
        summary = dataclasses.replace(
            sr.metrics.energy, total_energy=sr.energy_series[-1] + 3.0
        )
        doctored = swap_record(context, "SR", doctor_record(sr, energy=summary))
        violations = check_energy_reconciliation(doctored)
        assert any("disagrees" in v for v in violations)

    def test_records_without_energy_are_skipped(self, clean_report):
        context = clean_report.context
        sr = get_record(context, "SR")
        stripped = dataclasses.replace(
            doctor_record(sr, energy=None), energy_series=()
        )
        doctored = swap_record(context, "SR", stripped)
        assert check_energy_reconciliation(doctored) == []


class TestMessageConservationOracle:
    def test_clean_context_passes(self, clean_report):
        # The fixture channel is lossy, so the ledger is non-trivial: some
        # messages dropped, possibly some still in flight at the end.
        context = clean_report.context
        assert any(r.metrics.messages_dropped > 0 for r in context.records)
        assert check_message_conservation(context) == []

    def test_flags_a_non_conserved_ledger(self, clean_report):
        context = clean_report.context
        sr = get_record(context, "SR")
        doctored = swap_record(
            context,
            "SR",
            doctor_record(
                sr, messages_delivered=sr.metrics.messages_delivered + 1
            ),
        )
        violations = check_message_conservation(doctored)
        assert len(violations) == 1
        assert "SR: sent" in violations[0]

    def test_flags_vanished_messages(self, clean_report):
        context = clean_report.context
        ar = get_record(context, "AR")
        doctored = swap_record(
            context,
            "AR",
            doctor_record(ar, messages_sent=ar.metrics.messages_sent + 7),
        )
        violations = check_message_conservation(doctored)
        assert len(violations) == 1 and "AR" in violations[0]


class TestShardedIdentityOracle:
    def test_clean_context_passes(self, clean_report):
        assert check_sharded_identity(clean_report.context) == []

    def test_missing_pair_passes(self, clean_report):
        doctored = dataclasses.replace(clean_report.context, sharded_pair=None)
        assert check_sharded_identity(doctored) == []

    def test_flags_a_divergent_sharded_record(self, clean_report):
        context = clean_report.context
        sequential, sharded = context.sharded_pair
        diverged = doctor_record(
            sharded, total_moves=sharded.metrics.total_moves + 1
        )
        doctored = dataclasses.replace(
            context, sharded_pair=(sequential, diverged)
        )
        violations = check_sharded_identity(doctored)
        assert len(violations) == 1
        assert "diverged from sequential" in violations[0]
        assert "total_moves" in violations[0]

    def test_cached_flag_does_not_break_identity(self, clean_report):
        # `cached` is provenance, not physics: a cache-served sequential
        # record still matches a fresh sharded execution.
        context = clean_report.context
        sequential, sharded = context.sharded_pair
        doctored = dataclasses.replace(
            context,
            sharded_pair=(dataclasses.replace(sequential, cached=True), sharded),
        )
        assert check_sharded_identity(doctored) == []


class TestShardFallbackOracle:
    def test_clean_context_passes(self, clean_report):
        assert check_shard_fallback(clean_report.context) == []

    def test_flags_a_raised_shard_error(self, clean_report):
        doctored = dataclasses.replace(
            clean_report.context,
            shard_error="RuntimeError: shard tiling exploded",
        )
        violations = check_shard_fallback(doctored)
        assert len(violations) == 1
        assert "raised instead of falling back" in violations[0]

    def test_infeasible_shard_request_falls_back_cleanly(self):
        # A 2-column grid hosts no halo-wide band pair (feasible_shards == 1);
        # requesting 6 tiles must degrade to sequential, not raise — and the
        # fallback satisfies byte-identity by construction.
        scenario = Scenario(
            name="infeasible-shards",
            scenario=ScenarioConfig(
                columns=2, rows=6, deployed_count=36, spare_surplus=3, seed=5
            ),
            schemes=("SR", "AR"),
            trials=1,
            max_rounds=40,
            shards=6,
            shard_mode="inline",
        )
        report = run_differential(scenario)
        assert report.context.requested_shards == 6
        assert report.context.shard_error is None
        assert report.context.sharded_pair is not None
        assert not report.bug_violations


class TestRunFuzz:
    def test_requires_samples_or_minutes(self):
        with pytest.raises(ValueError):
            run_fuzz(seed=1)

    def test_zero_minutes_still_runs_one_sample(self):
        result = run_fuzz(seed=1, minutes=0.0)
        assert result.samples_run == 1

    def test_known_seed_archives_a_claim_falsifier(self, tmp_path):
        # Seed 9 sample 4 is the session's known discovery: a per-seed
        # counterexample to "SR moves <= AR moves" (claim severity).
        result = run_fuzz(seed=9, samples=5, archive_dir=tmp_path)
        assert result.samples_run == 5
        assert not result.bug_falsifiers
        names = [f.scenario.name for f in result.claim_falsifiers]
        assert names == ["falsified-sr-ar-moves-s9-i4"]
        falsifier = result.claim_falsifiers[0]
        assert falsifier.path is not None and falsifier.path.exists()
        archived = load_scenario(falsifier.path)
        assert archived.name == "falsified-sr-ar-moves-s9-i4"
        assert archived.stresses  # the violation detail rides along
        assert "sr-ar-moves" in archived.description

    def test_equal_seeds_archive_byte_identical_falsifiers(self, tmp_path):
        first_dir = tmp_path / "first"
        second_dir = tmp_path / "second"
        first = run_fuzz(seed=9, samples=5, archive_dir=first_dir)
        second = run_fuzz(seed=9, samples=5, archive_dir=second_dir)
        first_files = sorted(p.name for p in first_dir.iterdir())
        second_files = sorted(p.name for p in second_dir.iterdir())
        assert first_files == second_files and first_files
        for name in first_files:
            assert (first_dir / name).read_bytes() == (
                second_dir / name
            ).read_bytes()
        assert [f.violations for f in first.falsifiers] == [
            f.violations for f in second.falsifiers
        ]

    def test_archived_falsifier_still_fails_its_oracle_on_replay(self, tmp_path):
        result = run_fuzz(seed=9, samples=5, archive_dir=tmp_path)
        falsifier = result.falsifiers[0]
        oracle = next(o for o in ORACLES if o.name == falsifier.oracle)
        replay = run_differential(
            load_scenario(falsifier.path), oracles=(oracle,)
        )
        assert not replay.outcomes[0].passed
