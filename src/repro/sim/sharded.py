"""Sharded execution: one run simulated across column-band tiles, byte-identical.

:class:`ShardedEngine` runs a single :class:`~repro.sim.engine.RoundBasedEngine`
round loop with the per-round work distributed over worker tiles
(:mod:`repro.network.partition`), exchanging cross-tile effects at the round
barrier.  Determinism is the headline guarantee: a sharded run produces the
same :class:`~repro.sim.engine.SimulationResult` — metrics, series, move
records, message traffic — bit for bit as the sequential engine, so shard
count is an execution option, never part of a run's identity.

How byte-identity is achieved
-----------------------------

On the fast path (plain SR on a serpentine cycle, perfect channel, no energy
model, shard-safe failure models) every decision the controller takes in a
round is a *pure function of the round-start state*: the only rng draws of
the whole round are the two movement-target draws per committed move.  An SR
decision for a vacancy ``v`` reads exactly one cell — the cycle predecessor
``pred(v)`` it recruits from — and a serve writes exactly ``{v, pred(v)}``.
That tiny footprint is what the round protocol exploits:

1. **Scatter.**  Each tile holds a full-size replica of the state with the
   rows outside its halo coverage masked out.  Per round it applies the
   (shard-safe, hence rng-free) scheduled failures and reports every
   round-start vacancy in its *owned* column band, in global cycle order,
   together with a snapshot of the initiator cell's members — ids and exact
   floats.  Only never-moved deployment nodes share a cell (moves always
   target vacant cells), so these snapshots are bit-exact in every replica.

2. **Merge.**  The driver replays the sequential decision sequence over the
   merged reports.  Under the lowest-id election policy the head of a cell
   is always its lowest-id member, so a membership snapshot determines the
   whole decision: head, battery check, spare choice.  Same-round coupling —
   a chain of adjacent holes where each serve recruits the node that just
   arrived — is handled with a *delta map* of the cells written earlier in
   the round, and the floats of any node that already moved this round come
   from the driver's own float ledger, which is exact.  The merge is split
   so only its *decide* half sits on the critical path: gating, spare
   choice, the round's *only* rng draws, and the exact post-move floats.
   The controller/channel bookkeeping — process ids, move records, message
   posts, in exactly the sequential order — happens after the commits have
   been scattered, overlapping the tiles' apply phase.

3. **Gather.**  Each committed move is routed to just the tiles covering its
   source or target column.  A tile moves tracked rows with the exact target
   position (no draw), admits masked rows that enter its coverage, and
   evicts rows that leave it, keeping the invariant that a replica tracks
   exactly the nodes whose current cell it covers.  It returns its owned
   hole/spare counts — maintained incrementally, never by rescanning — which
   the driver sums for the round series.  Whenever the engine loop can reach
   the next round, the apply is *fused* with the next round's vacancy scan
   (one pipelined op), so from the second round on the only tile work left
   on the critical path is whatever outlasts the driver's own bookkeeping.

The expensive half of a round — vacancy enumeration and the per-move index
maintenance — thus runs tile-side in parallel, while the driver's serial
decide loop is a handful of float comparisons, two draws, and dict updates
per vacancy.

After the last round the tiles' rows are merged back into the driver state
(each tile exclusively owns the rows whose current cell lies in its band),
indices are rebuilt, and heads re-elected — identical, by the lowest-id
argument, to the assignment the sequential run would carry.

Ineligible runs (other controllers, lossy channels, energy physics, rng-
drawing failure models, grids too narrow for halo-wide tiles) transparently
fall back to the inherited sequential round loop — same object, same result.
"""

from __future__ import annotations

import math
import multiprocessing
import random
import time
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.hamilton import SerpentineHamiltonCycle
from repro.core.protocol import RoundOutcome
from repro.core.replacement import HamiltonReplacementController
from repro.grid.geometry import Point
from repro.grid.head_election import lowest_id_policy
from repro.grid.virtual_grid import GridCoord
from repro.network.channel import DEFAULT_CHANNEL
from repro.network.mobility import MovementModel, MoveRecord
from repro.network.partition import Tile, feasible_shards, partition_columns
from repro.network.state import WsnState
from repro.sim.engine import RoundBasedEngine, SimulationResult

__all__ = ["ShardAbort", "ShardedEngine", "TileSim"]


class ShardAbort(RuntimeError):
    """The sharded fast path cannot reproduce the sequential run.

    A safety valve rather than an expected outcome: the snapshot/delta merge
    covers every reachable fast-path interleaving, so this only fires on an
    internal invariant violation.  The driver catches it and re-runs the
    whole spec sequentially, so callers still get the byte-identical result.
    """


# One member of an initiator cell: (node_id, x, y, energy, moved, move_count).
_Member = Tuple[int, float, float, float, float, int]

# One owned round-start vacancy and the recruiting cell's membership:
# (cycle order, vacant coord, initiator coord, members).  ``members`` lists
# the initiator cell's enabled nodes in id order (so the first entry is the
# head under the lowest-id policy) with their exact round-start floats;
# empty when the initiator cell is itself vacant.  Plain tuples: these cross
# a pipe every round.
_VacancyReport = Tuple[int, GridCoord, GridCoord, Tuple[_Member, ...]]

# One authoritative move, routed to the tiles covering its source or target
# column: (mover_id, target coord, x, y, energy, moved_distance, move_count).
# The energy already includes the cascade message debit when there is one.
_Commit = Tuple[int, GridCoord, float, float, float, float, int]

# A tile's answer to ``run_round``: (vacancy reports, busy seconds).
_TileReport = Tuple[List[_VacancyReport], float]


class _SenderRef:
    """Minimal stand-in for the sending node in a driver-side channel post.

    The channel path of ``_post_replacement_request`` only reads
    ``sender.node_id``; energy is debited through the engine's debit hook,
    which the sharded driver overrides (the driver's float ledger applies
    the identical debit itself, and the tiles replay it replica-side).
    """

    __slots__ = ("node_id",)

    def __init__(self, node_id: int) -> None:
        self.node_id = node_id


class TileSim:
    """One worker's view of the run: a masked replica of the network state.

    The replica covers the tile's owned column band plus its halo; rows
    outside are masked.  Per round the tile applies scheduled failures,
    reports its owned vacancies with initiator-membership snapshots
    (:meth:`run_round`), and applies the barrier's authoritative moves
    (:meth:`apply_commits`).  All decision logic lives in the driver.
    """

    def __init__(
        self,
        tile: Tile,
        state: WsnState,
        cycle: SerpentineHamiltonCycle,
        failure_schedule: Dict[int, object],
    ) -> None:
        self.tile = tile
        self.state = state
        self.cycle = cycle
        self.failure_schedule = failure_schedule
        # Never drawn from: shard-safe failure models are rng-free and every
        # commit arrives with its exact target position.  It only exists to
        # satisfy the rng parameters of the state mutation APIs.
        self._scratch_rng = random.Random(0)
        # Incremental owned-band accounting, so neither the per-round vacancy
        # enumeration nor the series counters ever scan the whole grid: the
        # set of owned holes and the number of enabled nodes in the owned
        # band, updated by exactly the events that can change them (failures
        # and barrier commits).
        self._band_cells = tile.width * state.grid.rows
        self._band_holes = {
            coord
            for coord in state.vacant_cell_set()
            if tile.x_start <= coord.x < tile.x_stop
        }
        self._band_enabled = state.band_enabled_count(tile.x_start, tile.x_stop)

    def run_round(self, round_index: int) -> _TileReport:
        """Apply this round's failures, then report the owned vacancies."""
        started = time.perf_counter()
        state = self.state
        tile = self.tile
        x_start, x_stop = tile.x_start, tile.x_stop
        band_holes = self._band_holes
        model = self.failure_schedule.get(round_index)
        if model is not None:
            # Shard-safe models select victims purely from the state; masked
            # rows are invisible, so each replica disables exactly the
            # victims inside its coverage.
            for node_id in model.apply(state, self._scratch_rng):
                coord = state.cell_of_node(node_id)
                if x_start <= coord.x < x_stop:
                    self._band_enabled -= 1
                    if state.is_vacant(coord):
                        band_holes.add(coord)

        cycle_index = self.cycle.index_of
        initiator_for = self.cycle.initiator_for
        # Snapshots read the arrays directly (the id-sorted per-cell index
        # gives the member order, hence the head under the lowest-id policy).
        # For any node that already moved the driver's float ledger overrides
        # the snapshot anyway, so live values are as good as round-start ones.
        arrays = state.arrays
        row_of = arrays.row_of
        positions = arrays.positions
        energies = arrays.energy
        moved = arrays.moved_distance
        counts = arrays.move_count
        cell_members = state._cell_members
        vacancies: List[_VacancyReport] = []
        for vacant in sorted(band_holes, key=cycle_index):
            initiator = initiator_for(vacant)
            if initiator is None:  # pragma: no cover - serpentine never yields None
                continue
            members: List[_Member] = []
            for node_id in cell_members[initiator]:
                row = row_of(node_id)
                members.append(
                    (
                        node_id,
                        float(positions[row, 0]),
                        float(positions[row, 1]),
                        float(energies[row]),
                        float(moved[row]),
                        int(counts[row]),
                    )
                )
            vacancies.append((cycle_index(vacant), vacant, initiator, tuple(members)))
        return (vacancies, time.perf_counter() - started)

    def apply_commits(
        self, round_index: int, commits: Sequence[_Commit]
    ) -> Tuple[int, int, float]:
        """Apply the routed moves; return the owned band's (holes, spares, seconds).

        The driver routes each commit to exactly the tiles covering its
        source or target column, in cycle order, so a node that moved twice
        in one round (a cascade chain recruiting the node that just arrived)
        is stepped through both hops in sequence.  Three cases: a masked
        mover enters the coverage (admit — the routing guarantees the target
        is covered), a tracked mover relocates inside it (authoritative
        move, no draw), or a tracked mover leaves it (evict, so the replica
        keeps tracking exactly the nodes whose current cell it covers).
        """
        started = time.perf_counter()
        state = self.state
        tile = self.tile
        x_start, x_stop = tile.x_start, tile.x_stop
        band_holes = self._band_holes
        for mover_id, target, x, y, energy, moved_distance, move_count in commits:
            position = Point(x, y)
            if state.is_masked(mover_id):
                state.admit_node(
                    mover_id, target, position, energy, moved_distance, move_count
                )
                if x_start <= target.x < x_stop:
                    self._band_enabled += 1
                    band_holes.discard(target)
                continue
            if tile.covers_column(target.x):
                source = state.apply_authoritative_move(
                    mover_id, target, position, energy, moved_distance, move_count
                )
                if x_start <= target.x < x_stop:
                    self._band_enabled += 1
                    band_holes.discard(target)
            else:
                # Owned bands are at least one halo wide, so only halo-cell
                # residents can step out of the coverage.
                source = state.evict_node(mover_id)
            if x_start <= source.x < x_stop:
                self._band_enabled -= 1
                if state.is_vacant(source):
                    band_holes.add(source)
        holes = len(band_holes)
        spares = self._band_enabled - (self._band_cells - holes)
        return (holes, spares, time.perf_counter() - started)

    def apply_and_scan(
        self, round_index: int, commits: Sequence[_Commit]
    ) -> Tuple[Tuple[int, int, float], _TileReport]:
        """Apply round ``round_index``'s moves, then scan round ``round_index + 1``.

        Fusing the two ops takes the next round's vacancy scan off the
        driver's critical path: it overlaps the driver's bookkeeping of the
        current round instead of starting after it.  The driver only fuses
        when the engine either is guaranteed to execute the next round (a
        failure is still scheduled past the current one, which blocks every
        stop condition except the round bound) or the scan is a pure read
        (no failure scheduled next round), so the speculation never leaves
        an unwanted mutation behind.
        """
        counts = self.apply_commits(round_index, commits)
        return (counts, self.run_round(round_index + 1))

    def export_rows(self) -> Dict[str, object]:
        """Row data of every node currently located in the owned band."""
        return self.state.export_band_rows(self.tile.x_start, self.tile.x_stop)


# ------------------------------------------------------------------- backends
def _worker_loop(sim: TileSim, conn) -> None:
    """Blocking RPC loop of one forked tile worker."""
    try:
        while True:
            request = conn.recv()
            op = request[0]
            if op == "stop":
                break
            conn.send(getattr(sim, op)(*request[1:]))
    except (EOFError, KeyboardInterrupt):  # pragma: no cover - teardown races
        pass


class _InlineBackend:
    """Tiles stepped in-process (tests, benchmark timing, fork-less hosts)."""

    def __init__(self, sims: Sequence[TileSim]) -> None:
        self.sims = list(sims)
        self._pending: Optional[List[object]] = None

    def broadcast(self, op: str, *args) -> List[object]:
        """Run ``op`` on every tile with shared arguments; return the results."""
        return [getattr(sim, op)(*args) for sim in self.sims]

    def scatter(self, op: str, per_tile_args: Sequence[tuple]) -> None:
        """Start ``op`` with tile-specific arguments; :meth:`gather` collects.

        Inline tiles run eagerly, so the scatter/gather split only models the
        fork backend's pipelining — the per-tile busy seconds each call
        returns are what the modeled critical path is built from.
        """
        self._pending = [
            getattr(sim, op)(*args) for sim, args in zip(self.sims, per_tile_args)
        ]

    def gather(self) -> List[object]:
        """Collect the results of the last :meth:`scatter`."""
        results, self._pending = self._pending, None
        return results

    def close(self) -> None:
        """Nothing to release for in-process tiles."""


class _ForkBackend:
    """One forked worker process per tile, spoken to over pipes.

    Workers are persistent for the whole run: the replica state lives in the
    child and only reports/commits/counters cross the pipe each round.
    """

    def __init__(self, sims: Sequence[TileSim]) -> None:
        context = multiprocessing.get_context("fork")
        self.processes = []
        self.connections = []
        for sim in sims:
            parent_conn, child_conn = context.Pipe()
            process = context.Process(
                target=_worker_loop, args=(sim, child_conn), daemon=True
            )
            process.start()
            child_conn.close()
            self.processes.append(process)
            self.connections.append(parent_conn)

    def broadcast(self, op: str, *args) -> List[object]:
        """Run ``op`` on every worker with shared arguments; block for results."""
        request = (op, *args)
        for conn in self.connections:
            conn.send(request)
        return [conn.recv() for conn in self.connections]

    def scatter(self, op: str, per_tile_args: Sequence[tuple]) -> None:
        """Dispatch ``op`` with tile-specific arguments without waiting.

        The driver does its serial bookkeeping between :meth:`scatter` and
        :meth:`gather`, genuinely overlapping it with the workers' apply
        phase.
        """
        for conn, args in zip(self.connections, per_tile_args):
            conn.send((op, *args))

    def gather(self) -> List[object]:
        """Collect the results of the last :meth:`scatter` (blocking)."""
        return [conn.recv() for conn in self.connections]

    def close(self) -> None:
        """Stop every worker and release the pipes."""
        for conn in self.connections:
            try:
                conn.send(("stop",))
            except (BrokenPipeError, OSError):  # pragma: no cover - worker died
                pass
        for process in self.processes:
            process.join(timeout=5)
            if process.is_alive():  # pragma: no cover - defensive teardown
                process.terminate()
        for conn in self.connections:
            conn.close()


# --------------------------------------------------------------------- engine
class ShardedEngine(RoundBasedEngine):
    """Round-based engine that distributes eligible runs over column-band tiles.

    Construction mirrors :class:`RoundBasedEngine` plus:

    Parameters
    ----------
    shards:
        Requested worker count; clamped to the grid's feasible maximum
        (every owned band must be at least one halo wide).
    mode:
        ``"fork"`` (default) runs each tile in a forked worker process;
        ``"inline"`` steps tiles in-process (deterministically identical —
        used by tests and for timing without process overhead).  Hosts
        without the ``fork`` start method silently use ``inline``.
    sequential_factory:
        Zero-argument callable producing a *fresh* sequential engine
        (fresh state, controller, and rng) for the :class:`ShardAbort`
        safety valve.  Without it an abort propagates to the caller.

    Ineligible configurations (see :attr:`ineligible_reason`) transparently
    run the inherited sequential loop on the same state/controller/rng.
    """

    def __init__(
        self,
        state: WsnState,
        controller,
        rng: random.Random,
        *,
        shards: int,
        mode: str = "fork",
        sequential_factory: Optional[Callable[[], RoundBasedEngine]] = None,
        **engine_kwargs,
    ) -> None:
        super().__init__(state, controller, rng, **engine_kwargs)
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        if mode not in ("fork", "inline"):
            raise ValueError(f"mode must be 'fork' or 'inline', got {mode!r}")
        if mode == "fork" and "fork" not in multiprocessing.get_all_start_methods():
            mode = "inline"  # pragma: no cover - non-forking platforms
        self.requested_shards = shards
        self.mode = mode
        self._sequential_factory = sequential_factory
        self._active = False
        self._backend = None
        self.fallback_engine: Optional[RoundBasedEngine] = None
        self.abort_reason: Optional[str] = None
        self.ineligible_reason = self._shard_eligibility()
        self.shards_effective = (
            feasible_shards(state.grid, shards) if self.ineligible_reason is None else 1
        )
        if self.ineligible_reason is None and self.shards_effective < 2:
            self.ineligible_reason = (
                "fewer than two halo-wide tiles fit"
                if shards > 1
                else "one shard requested"
            )
            self.shards_effective = 1
        #: Per-run timing telemetry for modeled-speedup reporting on hosts
        #: with fewer cores than shards: per-round maxima/sums of the tiles'
        #: busy seconds in both phases, the driver's serial decide and
        #: (overlappable) bookkeeping seconds, and their combination
        #: ``critical_seconds`` — the per-round critical path
        #: ``max(tile run) + decide + max(bookkeep, max(tile apply))``
        #: that a fully parallel host would pay.
        self.timing: Dict[str, float] = {
            "rounds": 0.0,
            "tile_run_max": 0.0,
            "tile_run_sum": 0.0,
            "tile_apply_max": 0.0,
            "tile_apply_sum": 0.0,
            "decide_seconds": 0.0,
            "bookkeep_seconds": 0.0,
            "critical_seconds": 0.0,
        }

    # ------------------------------------------------------------ eligibility
    def _shard_eligibility(self) -> Optional[str]:
        """Why this run must stay sequential, or ``None`` for the fast path.

        The fast path requires every per-round decision to be a pure
        function of the round-start state (see the module docstring); each
        check below guards one way rng draws or effects invisible to a
        membership snapshot could leak into decisions.
        """
        controller = self.controller
        state = self.state
        if type(controller) is not HamiltonReplacementController:
            return f"controller {type(controller).__name__} is not plain SR"
        if not isinstance(controller.cycle, SerpentineHamiltonCycle):
            return "cycle is not the serpentine construction"
        if controller.cycle.grid is not state.grid:
            return "cycle was built for a different grid"
        if controller.activation_probability != 1.0:
            return "activation_probability < 1 draws per-head rng"
        if controller.spare_selection == "random":
            return "random spare selection draws rng"
        if controller._processes:
            return "controller carries processes from a previous run"
        if self.energy_model is not None:
            return "energy model applies per-round physics"
        if self.event_log is not None:
            return "event log requires the sequential trace"
        if self.channel is None:
            return "legacy no-channel path"
        if self.channel.model != DEFAULT_CHANNEL:
            return f"channel {self.channel.model.kind!r} is not the default perfect channel"
        if state._head_policy is not lowest_id_policy:
            return "custom head-election policy"
        movement = state.movement_model
        if type(movement) is not MovementModel:
            return f"custom movement model {type(movement).__name__}"
        if not movement._target_central_area:
            return "whole-cell move targeting"
        for round_index in sorted(self.failure_schedule):
            if not self.failure_schedule[round_index].shard_safe:
                return f"failure model at round {round_index} is not shard-safe"
        if state.neighbor_index is not None:
            return "attached neighbor index cannot follow the merged arrays"
        return None

    # -------------------------------------------------------------------- run
    def run(self) -> SimulationResult:
        """Run sharded when eligible; otherwise the inherited sequential loop."""
        if self.ineligible_reason is not None:
            self._active = False
            return super().run()
        tiles = partition_columns(self.state.grid, self.shards_effective)
        cycle = self.controller.cycle
        sims = [
            TileSim(
                tile,
                self.state.extract_column_band(tile.halo_start, tile.halo_stop),
                cycle,
                self.failure_schedule,
            )
            for tile in tiles
        ]
        backend = _ForkBackend(sims) if self.mode == "fork" else _InlineBackend(sims)
        self._backend = backend
        self._tile_count = len(tiles)
        #: Routing table: for each grid column, the indices of the tiles whose
        #: coverage (owned band + halo) includes it.  A commit only concerns
        #: the tiles covering its source or target column.
        self._column_tiles: List[Tuple[int, ...]] = [
            tuple(
                index
                for index, tile in enumerate(tiles)
                if tile.halo_start <= column < tile.halo_stop
            )
            for column in range(self.state.grid.columns)
        ]
        # Per-cell geometry and per-column-pair routing caches for the
        # decision loop (vacancy chains revisit the same cells round after
        # round, and source/target column pairs are few).
        self._area_cache: Dict[GridCoord, object] = {}
        self._center_cache: Dict[GridCoord, object] = {}
        self._route_cache: Dict[Tuple[int, int], Tuple[int, ...]] = {}
        #: Float ledger: (x, y, energy, moved_distance, move_count) of every
        #: node that has moved during the sharded run — the driver-side
        #: authority that keeps decision floats exact across rounds.
        self._floats: Dict[int, Tuple[float, float, float, float, int]] = {}
        #: Vacancy reports for the upcoming round, produced by the previous
        #: barrier's fused apply-and-scan (``None`` before the first round
        #: and after a round that could not prefetch).
        self._prefetched: Optional[List[_TileReport]] = None
        self._holes = self.state.hole_count
        self._spares = self.state.spare_count
        self._active = True
        try:
            return super().run()
        except ShardAbort as abort:
            self.abort_reason = str(abort)
            if self._sequential_factory is None:
                raise
            # The driver's controller/channel/rng are mid-round; rebuild the
            # run from scratch and execute it sequentially.
            self.fallback_engine = self._sequential_factory()
            return self.fallback_engine.run()
        finally:
            self._active = False
            self._backend = None
            backend.close()

    # ----------------------------------------------------------- phase hooks
    def _pre_round(self, round_index: int) -> int:
        if not self._active:
            return super()._pre_round(round_index)
        # Scheduled failures are applied replica-side by every tile (they are
        # shard-safe, hence rng-free), and the fast path excludes energy
        # models, so the driver state stays pristine until the final merge.
        return 0

    def _charge_sender(self, sender_id: int) -> None:
        if not self._active:
            super()._charge_sender(sender_id)
        # The driver's float ledger applies the message debit itself in
        # _barrier_round, and the tiles replay it when applying commits.

    def _controller_round(self, round_index: int) -> RoundOutcome:
        if not self._active:
            return super()._controller_round(round_index)
        return self._barrier_round(round_index)

    def _hole_count(self) -> int:
        if not self._active:
            return super()._hole_count()
        return self._holes

    def _spare_count(self) -> int:
        if not self._active:
            return super()._spare_count()
        return self._spares

    def _finish_run(self, final_round: int) -> None:
        if self._active:
            # Each tile owns its band's rows exclusively, so adopting every
            # band partitions the population exactly; heads are re-derived by
            # a fresh election (identical to the sequential assignment under
            # the lowest-id policy, which both paths are pinned to).
            for payload in self._backend.broadcast("export_rows"):
                self.state.apply_row_export(payload)
            self.state._rebuild_indices_from_arrays()
            self.state.elect_all_heads()
        super()._finish_run(final_round)

    # ---------------------------------------------------------------- barrier
    def _barrier_round(self, round_index: int) -> RoundOutcome:
        """One distributed round: gather reports, merge decisions, scatter moves.

        The serial merge is split in two so only its decision half sits on
        the critical path.  The *decide* loop resolves every serve — gating,
        spare choice, the round's only rng draws, the exact post-move floats
        — and routes the resulting commits; the *bookkeeping* loop (process
        records, move records, channel posts) runs after the commits have
        been scattered, overlapping the tiles' apply phase in fork mode.
        Nothing the bookkeeping writes is read by the same round's decisions:
        a cascade hands the process to a cell that was occupied at round
        start, so the keys it writes are never queried until the next round.
        """
        controller = self.controller
        outcome = RoundOutcome(round_index=round_index)
        timing = self.timing
        reports = self._prefetched
        self._prefetched = None
        if reports is None:
            # Only the first round pays a blocking scan; afterwards each
            # barrier's fused apply-and-scan hands the next round's reports
            # to the gather below.
            reports = self._backend.broadcast("run_round", round_index)
            run_elapsed = [report[1] for report in reports]
            timing["tile_run_max"] += max(run_elapsed)
            timing["tile_run_sum"] += sum(run_elapsed)
            initial_scan = max(run_elapsed)
        else:
            initial_scan = 0.0

        decide_started = time.perf_counter()
        timing["rounds"] += 1
        # Each tile reports in cycle order and owned bands are disjoint, so
        # this is a timsort over concatenated sorted runs with unique leading
        # keys — pure C tuple comparisons, never reaching the later elements.
        merged = [entry for report in reports for entry in report[0]]
        merged.sort()

        vacancy_process = controller._vacancy_process
        processes = controller._processes
        undelivered = controller._undelivered
        floats = self._floats
        rng_random = self.rng.random
        central_area = self.state.grid.central_area
        move_cost = self.state.movement_model.move_cost_per_meter
        message_cost = self._message_cost
        area_cache = self._area_cache
        column_tiles = self._column_tiles
        route_cache = self._route_cache
        spare_selection = controller.spare_selection
        select_mover = self._select_mover

        # Current membership of the cells written earlier this round, id
        # order preserved; cells not in the map still hold their snapshot
        # membership.  This is what makes same-round cascade chains — a
        # serve recruiting the node another serve just moved in — replay
        # exactly as the sequential interleaving.
        delta: Dict[GridCoord, Tuple[_Member, ...]] = {}
        commit_lists: List[List[_Commit]] = [[] for _ in range(self._tile_count)]
        pending: List[tuple] = []
        for entry in merged:
            vacant = entry[1]
            process_id = vacancy_process.get(vacant)
            process = processes.get(process_id) if process_id is not None else None
            if process is not None:
                if not process.is_active:
                    # Served by a process that already finished (e.g. failed):
                    # the scheme has no spare to offer.
                    continue
                if vacant in undelivered:
                    # The cascade notification is still in the channel.
                    continue
            initiator = entry[2]
            members = delta.get(initiator)
            if members is None:
                members = entry[3]
            if not members:
                # The recruiting cell is (by now) also vacant; retry next round.
                continue
            # Lowest-id member is the head; floats of anything that moved
            # this run come from the ledger, never the (stale) snapshot.
            head = members[0]
            head_floats = floats.get(head[0])
            if head_floats is None:
                head_floats = head[1:]
            if head_floats[2] <= 0.0:
                # Dead-battery head: the vacancy waits (sequential skip).
                continue
            if len(members) == 1:
                # No spares at all: cascade with the head, no selection.
                mover, is_spare = head, False
            else:
                mover, is_spare = select_mover(
                    members, head, vacant, spare_selection
                )
            mover_id = mover[0]
            pre = floats.get(mover_id)
            if pre is None:
                pre = mover[1:]
            # The movement draw — random_point_in_box over the central area
            # of the vacant cell, x then y, identical to
            # MovementModel.execute_move.
            box = area_cache.get(vacant)
            if box is None:
                box = central_area(vacant)
                area_cache[vacant] = box
            x = box.min_x + rng_random() * box.width
            y = box.min_y + rng_random() * box.height
            distance = math.hypot(pre[0] - x, pre[1] - y)
            energy = max(0.0, pre[2] - distance * move_cost)
            if not is_spare:
                # Cascade notification energy is debited at transmission,
                # after the move debit (sequential order of _serve_vacancy).
                energy = max(0.0, energy - message_cost)
            moved_distance = pre[3] + distance
            move_count = pre[4] + 1
            floats[mover_id] = (x, y, energy, moved_distance, move_count)
            commit = (mover_id, vacant, x, y, energy, moved_distance, move_count)
            route_key = (initiator.x, vacant.x)
            route = route_cache.get(route_key)
            if route is None:
                source_tiles = column_tiles[initiator.x]
                route = source_tiles + tuple(
                    index
                    for index in column_tiles[vacant.x]
                    if index not in source_tiles
                )
                route_cache[route_key] = route
            for index in route:
                commit_lists[index].append(commit)
            delta[vacant] = (mover,)
            delta[initiator] = tuple(m for m in members if m[0] != mover_id)
            pending.append(
                (vacant, initiator, process, mover_id, is_spare, pre, x, y, distance)
            )
        decide_elapsed = time.perf_counter() - decide_started
        timing["decide_seconds"] += decide_elapsed

        backend = self._backend
        # Prefetch the next round's scan whenever the loop can reach it: the
        # engine only stops after this round if no failure is scheduled past
        # it (every stop condition checks _failures_pending) or the round
        # bound hits — so either the next round runs and consumes the
        # reports, or the scan applied no failure and was a pure read.
        prefetch = round_index + 1 < self.max_rounds
        backend.scatter(
            "apply_and_scan" if prefetch else "apply_commits",
            [(round_index, commits) for commits in commit_lists],
        )

        book_started = time.perf_counter()
        cycle = controller.cycle
        max_hops = controller.max_hops
        start_process = controller._start_process
        post_request = controller._post_replacement_request
        initiator_of = cycle.initiator_for
        outcome_moves = outcome.moves
        sender = _SenderRef(0)
        for vacant, initiator, process, mover_id, is_spare, pre, x, y, distance in pending:
            if process is None:
                process = start_process(
                    origin_cell=vacant,
                    initiator_cell=initiator,
                    round_index=round_index,
                )
                vacancy_process[vacant] = process.process_id
                outcome.processes_started.append(process.process_id)
            if not is_spare:
                # Step 3 preamble: the notification is accounted before the
                # move (sequential order of _serve_vacancy).
                process.notifications_sent += 1
                outcome.messages_sent += 1
            record = MoveRecord(
                node_id=mover_id,
                source_cell=initiator,
                target_cell=vacant,
                source_position=Point(pre[0], pre[1]),
                target_position=Point(x, y),
                distance=distance,
                round_index=round_index,
                process_id=process.process_id,
            )
            if is_spare:
                # Step 2: a spare fills the hole and the process converges.
                process.record_move(record)
                outcome_moves.append(record)
                del vacancy_process[vacant]
                process.mark_converged(round_index)
                outcome.processes_converged.append(process.process_id)
            else:
                # Step 3: the head moves and notifies its own initiator.
                notify_target = initiator_of(initiator) or initiator
                final_hop = process.move_count + 1 >= max_hops
                sender.node_id = mover_id
                gated = post_request(
                    sender=sender,
                    source_cell=vacant,
                    target_cell=notify_target,
                    vacancy=initiator,
                    process_id=process.process_id,
                    round_index=round_index,
                    reliable=not final_hop,
                )
                process.record_move(record)
                outcome.moves.append(record)
                del vacancy_process[vacant]
                vacancy_process[initiator] = process.process_id
                if process.move_count >= max_hops:
                    process.mark_failed(round_index)
                    outcome.processes_failed.append(process.process_id)
                elif gated:
                    undelivered.add(initiator)
        book_elapsed = time.perf_counter() - book_started
        timing["bookkeep_seconds"] += book_elapsed

        results = backend.gather()
        if prefetch:
            counts = [result[0] for result in results]
            self._prefetched = [result[1] for result in results]
            scan_elapsed = [report[1] for report in self._prefetched]
            timing["tile_run_max"] += max(scan_elapsed)
            timing["tile_run_sum"] += sum(scan_elapsed)
            # Each tile runs its apply and its next-round scan back to back,
            # so the window overlapping the driver's bookkeeping is the
            # slowest per-tile apply+scan pair.
            tile_window = max(
                count[2] + scan for count, scan in zip(counts, scan_elapsed)
            )
        else:
            counts = results
            tile_window = max(count[2] for count in counts)
        self._holes = sum(count[0] for count in counts)
        self._spares = sum(count[1] for count in counts)
        apply_elapsed = [count[2] for count in counts]
        timing["tile_apply_max"] += max(apply_elapsed)
        timing["tile_apply_sum"] += sum(apply_elapsed)
        timing["critical_seconds"] += (
            initial_scan + decide_elapsed + max(book_elapsed, tile_window)
        )
        return outcome

    def _select_mover(
        self,
        members: Sequence[_Member],
        head: _Member,
        vacant: GridCoord,
        spare_selection: str,
    ) -> Tuple[_Member, bool]:
        """Replay ``HamiltonReplacementController._select_spare`` on snapshots.

        Returns the chosen spare (or the head for a cascade) and whether it
        was a spare.  Spares are never same-round movers (moves only target
        vacant cells, so an arriving node is always a sole member), but their
        floats are routed through the ledger anyway for uniformity.
        """
        usable: List[Tuple[_Member, Tuple[float, ...]]] = []
        for member in members[1:]:
            floats = self._floats.get(member[0], member[1:])
            if floats[2] > 0.0:
                usable.append((member, floats))
        if not usable:
            return head, False
        if len(usable) == 1:
            # Both selection policies pick the only candidate; skip the
            # geometry.
            return usable[0][0], True
        center = self._center_cache.get(vacant)
        if center is None:
            center = self.state.grid.cell_center(vacant)
            self._center_cache[vacant] = center
        if spare_selection == "max_energy":
            chosen = max(
                usable,
                key=lambda pair: (
                    pair[1][2],
                    -math.hypot(pair[1][0] - center.x, pair[1][1] - center.y),
                    -pair[0][0],
                ),
            )
        else:
            chosen = min(
                usable,
                key=lambda pair: (
                    math.hypot(pair[1][0] - center.x, pair[1][1] - center.y),
                    pair[0][0],
                ),
            )
        return chosen[0], True
