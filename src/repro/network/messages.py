"""Control messages exchanged by grid heads.

The control traffic of the paper's schemes is the *replacement notification*
a head sends to the head of its preceding grid when it is about to vacate its
own cell (Algorithm 1, step 3a), plus the acknowledgement the receiving head
returns when the run uses an unreliable channel (the retry trigger of the
reliability layer, see :mod:`repro.network.channel`).  Messages sent in round
``t`` are received in round ``t + latency`` ("wait until the corresponding
head w receives this notification"), which the :class:`Mailbox` models
explicitly; the paper's synchronisation assumption is ``latency = 1``.

Message ids are assigned by the :class:`Mailbox` that queues them, not by a
process-global counter: every run owns its own mailbox (through its channel),
so traces are deterministic for a given spec regardless of how many runs the
process executed before, and identical across :class:`~repro.experiments.orchestration.ParallelExecutor`
workers.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.grid.virtual_grid import GridCoord


class MessageKind(enum.Enum):
    """Kinds of control messages used by the mobility-control schemes."""

    #: "I am about to move into my vacant successor; please replace me."
    REPLACEMENT_REQUEST = "replacement_request"
    #: Acknowledgement that a replacement request was received.  Unreliable
    #: channels use it as the retry trigger: a request still unacknowledged
    #: after the channel's ack timeout is resent.
    REPLACEMENT_ACK = "replacement_ack"


@dataclass(frozen=True)
class Message:
    """A control message addressed to the head of a destination cell.

    ``message_id`` is ``None`` until a :class:`Mailbox` stamps the message
    (see :meth:`Mailbox.post`); stamped ids are unique and sequential within
    one mailbox.  ``sender_id`` names the node that transmitted the message,
    so the engine can debit the transmission energy from the right battery.
    """

    kind: MessageKind
    source_cell: GridCoord
    target_cell: GridCoord
    sent_round: int
    process_id: Optional[int] = None
    payload: Optional[dict] = None
    sender_id: Optional[int] = None
    message_id: Optional[int] = None


class Mailbox:
    """Round-delayed delivery of control messages.

    Messages submitted during round ``t`` become visible to the destination
    cell's head when :meth:`deliver` is called for round ``t + latency``.
    The default ``latency = 1`` is the synchronisation assumption of
    Algorithm 1; the ``delayed`` channel raises it.
    """

    def __init__(self, latency: int = 1) -> None:
        if latency < 1:
            raise ValueError(f"latency must be >= 1, got {latency}")
        self.latency = latency
        self._in_flight: List[Message] = []
        self._sent_count = 0
        self._delivered_count = 0
        self._next_message_id = 0

    @property
    def sent_count(self) -> int:
        """Total number of messages ever submitted."""
        return self._sent_count

    @property
    def delivered_count(self) -> int:
        """Total number of messages ever delivered."""
        return self._delivered_count

    @property
    def pending_count(self) -> int:
        """Messages submitted but not yet delivered."""
        return len(self._in_flight)

    def stamp_id(self) -> int:
        """Next message id of this mailbox (per-mailbox, hence deterministic).

        All message construction goes through
        :meth:`repro.network.channel.ChannelState.send`, which stamps every
        transmission with this counter — delivered and dropped alike — so
        id traces replay identically across runs and worker processes.
        """
        message_id = self._next_message_id
        self._next_message_id += 1
        return message_id

    def send(self, message: Message) -> None:
        """Submit a message for delivery after the mailbox latency."""
        self._in_flight.append(message)
        self._sent_count += 1

    def deliver(self, current_round: int) -> Dict[GridCoord, List[Message]]:
        """Return (and consume) messages whose latency has elapsed.

        A message sent in round ``t`` is delivered when
        ``current_round >= t + latency``.  The result maps destination cells
        to the messages addressed to them, in submission order.
        """
        ready: Dict[GridCoord, List[Message]] = {}
        still_in_flight: List[Message] = []
        for message in self._in_flight:
            if current_round >= message.sent_round + self.latency:
                ready.setdefault(message.target_cell, []).append(message)
                self._delivered_count += 1
            else:
                still_in_flight.append(message)
        self._in_flight = still_in_flight
        return ready

    def clear(self) -> None:
        """Drop all in-flight messages (used when a scenario is reset)."""
        self._in_flight.clear()
