"""Failure and attack injection.

Holes appear in the surveillance area when sensors fail, run out of battery,
or are disabled because they misbehave (Section 1 of the paper; jamming
attacks in particular can depopulate whole regions).  Failure models operate
on a :class:`repro.network.state.WsnState` and return the ids of the nodes
they disabled, so the caller can log them or re-run head election.

The module has two layers:

* the **imperative** layer — :class:`FailureModel` subclasses, constructed in
  code and applied to a state; and
* the **declarative** layer — :class:`FailureEvent`, a frozen
  ``(round, kind, params)`` triple naming a model from :data:`FAILURE_KINDS`.
  Scenario files and :class:`~repro.experiments.orchestration.RunSpec` carry
  events (hashable, picklable, JSON/TOML-serializable);
  :func:`compile_failure_schedule` turns them into the per-round model
  mapping the engine consumes.
"""

from __future__ import annotations

import abc
import math
import random
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.grid.geometry import BoundingBox, Point
from repro.grid.virtual_grid import GridCoord
from repro.network.node import NodeState


def _enabled_ids(state) -> List[int]:
    """Enabled node ids in deployment order, without materialising handles."""
    fast = getattr(state, "enabled_node_ids", None)
    if fast is not None:
        return fast()
    return [node.node_id for node in state.enabled_nodes()]


class FailureModel(abc.ABC):
    """A way of disabling nodes in a network state."""

    #: Whether applying the model is a pure function of the state: it never
    #: draws from the rng and selects victims only from node positions,
    #: cells, or energy.  Shard-safe models can be applied independently in
    #: every tile replica of a sharded run (each replica disables exactly the
    #: victims it can see) and reproduce the sequential run bit for bit; the
    #: sharded engine falls back to sequential execution for anything else.
    shard_safe = False

    @abc.abstractmethod
    def apply(self, state, rng: random.Random) -> List[int]:
        """Disable nodes in ``state`` and return the ids of the disabled nodes."""

    def __call__(self, state, rng: random.Random) -> List[int]:
        return self.apply(state, rng)


@dataclass
class RandomFailure(FailureModel):
    """Disable each enabled node independently with probability ``probability``.

    Alternatively an absolute ``count`` of nodes to disable can be given.
    """

    probability: Optional[float] = None
    count: Optional[int] = None
    reason: NodeState = NodeState.FAILED

    def __post_init__(self) -> None:
        if (self.probability is None) == (self.count is None):
            raise ValueError("specify exactly one of probability or count")
        if self.probability is not None and not 0.0 <= self.probability <= 1.0:
            raise ValueError(f"probability must be in [0, 1], got {self.probability}")
        if self.count is not None and self.count < 0:
            raise ValueError(f"count must be non-negative, got {self.count}")

    def apply(self, state, rng: random.Random) -> List[int]:
        """Disable the sampled victims and return their ids."""
        enabled_ids = _enabled_ids(state)
        if self.probability is not None:
            victims = [node_id for node_id in enabled_ids if rng.random() < self.probability]
        else:
            count = min(self.count or 0, len(enabled_ids))
            victims = rng.sample(enabled_ids, count)
        for node_id in victims:
            state.disable_node(node_id, reason=self.reason)
        return victims


@dataclass
class ThinningToEnabledCount(FailureModel):
    """Disable random nodes until exactly ``target_enabled`` nodes remain enabled.

    This reproduces the workload of Section 5: deploy 5000 sensors, then
    disable nodes at random so that ``N + m*n`` enabled nodes remain, where
    ``N`` is the paper's x-axis ("number of spare nodes left in networks").
    """

    target_enabled: int
    reason: NodeState = NodeState.FAILED

    def __post_init__(self) -> None:
        if self.target_enabled < 0:
            raise ValueError(f"target_enabled must be non-negative, got {self.target_enabled}")

    def apply(self, state, rng: random.Random) -> List[int]:
        """Disable random nodes until only ``target_enabled`` remain enabled."""
        enabled_ids = _enabled_ids(state)
        excess = len(enabled_ids) - self.target_enabled
        if excess <= 0:
            return []
        victims = rng.sample(enabled_ids, excess)
        for node_id in victims:
            state.disable_node(node_id, reason=self.reason)
        return victims


@dataclass
class RegionJammingFailure(FailureModel):
    """Disable every enabled node inside a jammed region.

    The region is either a bounding box or a disk (centre + radius).  This is
    the "attacker causes the nodes to … deplete their battery power, which
    might reduce node density in certain areas" scenario from Section 1.
    """

    box: Optional[BoundingBox] = None
    center: Optional[Point] = None
    radius: Optional[float] = None
    reason: NodeState = NodeState.FAILED

    shard_safe = True

    def __post_init__(self) -> None:
        # A disk is all-or-nothing: a partial spec (center without radius or
        # vice versa) must never silently collapse to "no disk given".
        if (self.center is None) != (self.radius is None):
            raise ValueError(
                "a disk region requires both center and radius; got "
                f"center={self.center!r}, radius={self.radius!r}"
            )
        disk_given = self.center is not None
        if self.box is None and not disk_given:
            raise ValueError("specify either box or (center and radius)")
        if self.box is not None and disk_given:
            raise ValueError("specify only one of box or (center and radius)")
        if self.radius is not None and self.radius < 0:
            raise ValueError(f"radius must be non-negative, got {self.radius}")

    def _is_inside(self, position: Point) -> bool:
        if self.box is not None:
            return self.box.contains(position)
        assert self.center is not None and self.radius is not None
        return position.distance_to(self.center) <= self.radius

    def apply(self, state, rng: random.Random) -> List[int]:
        """Disable every enabled node whose position lies inside the region."""
        arrays = getattr(state, "arrays", None)
        if arrays is not None:
            mask = arrays.enabled_mask()
            xs = arrays.positions[mask, 0]
            ys = arrays.positions[mask, 1]
            ids = arrays.node_ids[mask]
            if self.box is not None:
                inside = (
                    (self.box.min_x <= xs)
                    & (xs <= self.box.max_x)
                    & (self.box.min_y <= ys)
                    & (ys <= self.box.max_y)
                )
                victims = ids[inside].tolist()
            else:
                assert self.center is not None and self.radius is not None
                dx = xs - self.center.x
                dy = ys - self.center.y
                # Bounding-square prefilter, then the exact math.hypot test the
                # scalar Point.distance_to path uses, so the boundary cases
                # resolve bit-identically to the object path.
                near = (np.abs(dx) <= self.radius) & (np.abs(dy) <= self.radius)
                victims = [
                    int(node_id)
                    for node_id, ddx, ddy in zip(
                        ids[near].tolist(), dx[near].tolist(), dy[near].tolist()
                    )
                    if math.hypot(ddx, ddy) <= self.radius
                ]
        else:
            victims = [
                node.node_id
                for node in state.enabled_nodes()
                if self._is_inside(node.position)
            ]
        for node_id in victims:
            state.disable_node(node_id, reason=self.reason)
        return victims


@dataclass
class TargetedCellFailure(FailureModel):
    """Disable every enabled node in an explicit set of cells.

    Creates deterministic holes, which is the most convenient way to unit-test
    the replacement controllers.
    """

    cells: Sequence[GridCoord]
    reason: NodeState = NodeState.MISBEHAVING

    shard_safe = True

    def apply(self, state, rng: random.Random) -> List[int]:
        """Disable every enabled node located in one of the target cells."""
        target_cells = set(self.cells)
        for coord in target_cells:
            state.grid.validate_coord(coord)
        arrays = getattr(state, "arrays", None)
        if arrays is not None:
            # The state maintains each node's flat cell index, so the victim
            # scan is a single membership test over the enabled rows.
            flats = np.array(
                sorted(state.grid.flat_index(coord) for coord in target_cells),
                dtype=arrays.cell.dtype,
            )
            mask = arrays.enabled_mask() & np.isin(arrays.cell, flats)
            victims = arrays.node_ids[mask].tolist()
        else:
            victims = [
                node.node_id
                for node in state.enabled_nodes()
                if state.grid.cell_of(node.position) in target_cells
            ]
        for node_id in victims:
            state.disable_node(node_id, reason=self.reason)
        return victims


@dataclass
class BatteryDepletionFailure(FailureModel):
    """Disable enabled nodes whose remaining energy is at or below ``threshold``.

    This is the one-shot form of the engine-driven depletion performed by
    :class:`repro.network.energy.EnergyModel` every round; use an energy model
    on the engine for continuous in-run depletion.
    """

    threshold: float = 0.0
    reason: NodeState = NodeState.DEPLETED

    shard_safe = True

    def apply(self, state, rng: random.Random) -> List[int]:
        """Disable every enabled node at or below the energy threshold."""
        arrays = getattr(state, "arrays", None)
        if arrays is not None:
            mask = arrays.enabled_mask() & (arrays.energy <= self.threshold)
            victims = arrays.node_ids[mask].tolist()
        else:
            victims = [
                node.node_id
                for node in state.enabled_nodes()
                if node.energy <= self.threshold
            ]
        for node_id in victims:
            state.disable_node(node_id, reason=self.reason)
        return victims


@dataclass
class CompositeFailure(FailureModel):
    """Apply several failure models in sequence."""

    models: Sequence[FailureModel] = field(default_factory=list)

    @property
    def shard_safe(self) -> bool:
        """Shard-safe iff every constituent model is."""
        return all(model.shard_safe for model in self.models)

    def apply(self, state, rng: random.Random) -> List[int]:
        """Apply every constituent model in order; returns all victim ids."""
        victims: List[int] = []
        for model in self.models:
            victims.extend(model.apply(state, rng))
        return victims


# ---------------------------------------------------------- declarative layer
#: Frozen parameter form: sorted ``(key, value)`` pairs with tuples for lists.
FrozenParams = Tuple[Tuple[str, object], ...]


def freeze_params(params: Mapping[str, object]) -> FrozenParams:
    """Canonical hashable form of a parameter mapping (sorted, tuples for lists)."""
    return tuple(sorted((key, _freeze_value(value)) for key, value in params.items()))


def _freeze_value(value: object) -> object:
    if isinstance(value, Mapping):
        return tuple(sorted((k, _freeze_value(v)) for k, v in value.items()))
    if isinstance(value, (list, tuple)):
        return tuple(_freeze_value(item) for item in value)
    return value


def thaw_params(params: FrozenParams) -> Dict[str, object]:
    """Inverse of :func:`freeze_params` (one level: values keep their tuples)."""
    return dict(params)


def _reason_from(params: Dict[str, object], kind: str, default: NodeState) -> NodeState:
    value = params.pop("reason", None)
    if value is None:
        return default
    if isinstance(value, NodeState):
        return value
    choices = sorted(s.value for s in NodeState if s is not NodeState.ENABLED)
    if not isinstance(value, str) or value not in choices:
        raise ValueError(
            f"failure kind {kind!r}: reason must be one of {choices}, got {value!r}"
        )
    return NodeState(value)


def _checked_number(value: object, kind: str, key: str) -> float:
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        raise ValueError(
            f"failure kind {kind!r}: parameter {key!r} must be a number, got {value!r}"
        )
    return value


def _require_number(params: Dict[str, object], kind: str, key: str) -> float:
    return _checked_number(params.pop(key, None), kind, key)


def _reject_unknown(params: Dict[str, object], kind: str, allowed: Sequence[str]) -> None:
    if params:
        raise ValueError(
            f"failure kind {kind!r} got unknown parameter(s) {sorted(params)}; "
            f"allowed: {sorted(allowed)}"
        )


def _point_from(value: object, kind: str, key: str) -> Point:
    if (
        not isinstance(value, (list, tuple))
        or len(value) != 2
        or not all(isinstance(c, (int, float)) and not isinstance(c, bool) for c in value)
    ):
        raise ValueError(
            f"failure kind {kind!r}: parameter {key!r} must be an [x, y] pair "
            f"of numbers, got {value!r}"
        )
    return Point(float(value[0]), float(value[1]))


def _build_random(params: Dict[str, object]) -> FailureModel:
    reason = _reason_from(params, "random", NodeState.FAILED)
    probability = params.pop("probability", None)
    count = params.pop("count", None)
    _reject_unknown(params, "random", ("probability", "count", "reason"))
    if probability is not None:
        probability = _checked_number(probability, "random", "probability")
    if count is not None:
        count = int(_checked_number(count, "random", "count"))
    return RandomFailure(probability=probability, count=count, reason=reason)


def _build_thinning(params: Dict[str, object]) -> FailureModel:
    reason = _reason_from(params, "thinning", NodeState.FAILED)
    target = int(_require_number(params, "thinning", "target_enabled"))
    _reject_unknown(params, "thinning", ("target_enabled", "reason"))
    return ThinningToEnabledCount(target_enabled=target, reason=reason)


def _build_region_jamming(params: Dict[str, object]) -> FailureModel:
    reason = _reason_from(params, "region_jamming", NodeState.FAILED)
    box_value = params.pop("box", None)
    center_value = params.pop("center", None)
    radius_value = params.pop("radius", None)
    _reject_unknown(params, "region_jamming", ("box", "center", "radius", "reason"))
    box = None
    if box_value is not None:
        if (
            not isinstance(box_value, (list, tuple))
            or len(box_value) != 4
            or not all(
                isinstance(c, (int, float)) and not isinstance(c, bool)
                for c in box_value
            )
        ):
            raise ValueError(
                "failure kind 'region_jamming': parameter 'box' must be "
                f"[min_x, min_y, max_x, max_y], got {box_value!r}"
            )
        box = BoundingBox(
            float(box_value[0]), float(box_value[1]),
            float(box_value[2]), float(box_value[3]),
        )
    center = (
        _point_from(center_value, "region_jamming", "center")
        if center_value is not None
        else None
    )
    radius = (
        float(_checked_number(radius_value, "region_jamming", "radius"))
        if radius_value is not None
        else None
    )
    return RegionJammingFailure(box=box, center=center, radius=radius, reason=reason)


def _build_targeted_cells(params: Dict[str, object]) -> FailureModel:
    reason = _reason_from(params, "targeted_cells", NodeState.MISBEHAVING)
    cells_value = params.pop("cells", None)
    _reject_unknown(params, "targeted_cells", ("cells", "reason"))
    if not isinstance(cells_value, (list, tuple)) or not cells_value:
        raise ValueError(
            "failure kind 'targeted_cells': parameter 'cells' must be a "
            f"non-empty list of [x, y] pairs, got {cells_value!r}"
        )
    cells = []
    for entry in cells_value:
        if (
            not isinstance(entry, (list, tuple))
            or len(entry) != 2
            or not all(isinstance(c, int) and not isinstance(c, bool) for c in entry)
        ):
            raise ValueError(
                "failure kind 'targeted_cells': every cell must be an [x, y] "
                f"pair of integers, got {entry!r}"
            )
        cells.append(GridCoord(entry[0], entry[1]))
    return TargetedCellFailure(cells=tuple(cells), reason=reason)


def _build_battery_depletion(params: Dict[str, object]) -> FailureModel:
    reason = _reason_from(params, "battery_depletion", NodeState.DEPLETED)
    threshold = float(
        _checked_number(params.pop("threshold", 0.0), "battery_depletion", "threshold")
    )
    _reject_unknown(params, "battery_depletion", ("threshold", "reason"))
    return BatteryDepletionFailure(threshold=threshold, reason=reason)


#: Declarative failure kinds: name -> builder taking a plain parameter dict.
FAILURE_KINDS: Dict[str, Callable[[Dict[str, object]], FailureModel]] = {
    "random": _build_random,
    "thinning": _build_thinning,
    "region_jamming": _build_region_jamming,
    "targeted_cells": _build_targeted_cells,
    "battery_depletion": _build_battery_depletion,
}


def available_failure_kinds() -> Tuple[str, ...]:
    """All declarable failure kinds, sorted."""
    return tuple(sorted(FAILURE_KINDS))


def build_failure_model(kind: str, params: Mapping[str, object]) -> FailureModel:
    """Instantiate a failure model from its declarative ``(kind, params)`` form.

    Raises :class:`ValueError` with an actionable message on an unknown kind,
    an unknown parameter, or a malformed parameter value.  The parameter
    conventions are TOML/JSON-friendly: points are ``[x, y]`` pairs, boxes are
    ``[min_x, min_y, max_x, max_y]``, cells are ``[[x, y], ...]`` integer
    pairs, and ``reason`` is a lowercase :class:`NodeState` value name.
    """
    try:
        builder = FAILURE_KINDS[kind]
    except KeyError:
        raise ValueError(
            f"unknown failure kind {kind!r}; available: {list(available_failure_kinds())}"
        ) from None
    payload = {key: _thaw_value(value) for key, value in dict(params).items()}
    return builder(payload)


def _thaw_value(value: object) -> object:
    if isinstance(value, tuple):
        return [_thaw_value(item) for item in value]
    return value


@dataclass(frozen=True)
class FailureEvent:
    """A scheduled, declaratively-named failure: ``(round, kind, params)``.

    This is the form scenario files and
    :class:`~repro.experiments.orchestration.RunSpec` carry: frozen (hashable
    and picklable, so specs stay cache keys) and built from plain JSON/TOML
    values.  ``params`` is stored in the canonical sorted-tuple form of
    :func:`freeze_params`; use :meth:`with_params` to construct from a dict.
    The named model is validated eagerly, so a bad event fails at
    construction time with the builder's actionable error, not mid-run.
    """

    round: int
    kind: str
    params: FrozenParams = ()

    def __post_init__(self) -> None:
        if self.round < 0:
            raise ValueError(f"failure round must be non-negative, got {self.round}")
        object.__setattr__(self, "params", freeze_params(dict(self.params)))
        self.build()  # eager validation; the model itself is discarded

    @classmethod
    def with_params(cls, round: int, kind: str, **params: object) -> "FailureEvent":
        """Build an event from keyword parameters (``freeze_params`` applied)."""
        return cls(round=round, kind=kind, params=freeze_params(params))

    def build(self) -> FailureModel:
        """Instantiate the failure model this event names."""
        return build_failure_model(self.kind, thaw_params(self.params))


def compile_failure_schedule(
    events: Iterable[FailureEvent],
) -> Dict[int, FailureModel]:
    """Turn declarative events into the engine's ``{round: model}`` schedule.

    Events sharing a round are composed (in event order) into one
    :class:`CompositeFailure`, because the engine applies at most one model
    per round.
    """
    per_round: Dict[int, List[FailureModel]] = {}
    for event in events:
        per_round.setdefault(event.round, []).append(event.build())
    return {
        round_index: models[0] if len(models) == 1 else CompositeFailure(models=models)
        for round_index, models in per_round.items()
    }
