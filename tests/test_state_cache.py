"""Tests for the content-addressed initial-state cache.

The contracts exercised here:

* :func:`scenario_key` addresses the *scenario* — equal configs share a key,
  any field change (and any snapshot-layout bump) changes it;
* :class:`StateCache` lookups are LRU-bounded, counted, and always hand out
  private copies — mutating a result never contaminates later lookups;
* both storage modes (``clone`` and ``bytes``) return states byte-identical
  to a from-scratch ``build_scenario_state`` of the same config;
* a thundering herd of threads over one missing scenario performs exactly
  one build;
* ``execute_run`` through a state cache produces records byte-identical to
  cache-off execution, and the process-wide default can be swapped/disabled.
"""

from __future__ import annotations

import json
import threading

import numpy as np
import pytest

from repro.experiments.orchestration import RunSpec, execute_run
from repro.experiments.persistence import record_to_dict
from repro.experiments import state_cache as state_cache_module
from repro.experiments.state_cache import (
    DEFAULT_CAPACITY,
    STATE_CACHE_MODES,
    StateCache,
    default_state_cache,
    scenario_key,
    set_default_state_cache,
)
from repro.sim.scenario import ScenarioConfig, build_scenario_state

QUICK_CONFIG = ScenarioConfig(columns=5, rows=5, deployed_count=150, seed=7)


def assert_states_identical(left, right) -> None:
    """Byte-level equality of two states: grid, every column, head table."""
    assert left.grid.columns == right.grid.columns
    assert left.grid.rows == right.grid.rows
    assert left.grid.cell_size == right.grid.cell_size
    for column in (
        "node_ids",
        "positions",
        "energy",
        "initial_energy",
        "state",
        "role",
        "cell",
        "moved_distance",
        "move_count",
    ):
        a = getattr(left.arrays, column)
        b = getattr(right.arrays, column)
        assert a.dtype == b.dtype, column
        assert np.array_equal(a, b), column
    assert left.heads() == right.heads()


# -------------------------------------------------------------- scenario_key
def test_scenario_key_equal_configs_share_a_key():
    assert scenario_key(QUICK_CONFIG) == scenario_key(
        ScenarioConfig(columns=5, rows=5, deployed_count=150, seed=7)
    )


@pytest.mark.parametrize(
    "variant",
    [
        QUICK_CONFIG.with_seed(8),
        QUICK_CONFIG.with_spare_surplus(11),
        ScenarioConfig(columns=6, rows=5, deployed_count=150, seed=7),
    ],
)
def test_scenario_key_changes_with_any_field(variant):
    assert scenario_key(variant) != scenario_key(QUICK_CONFIG)


def test_scenario_key_folds_in_snapshot_version(monkeypatch):
    """A snapshot-layout bump must invalidate every existing key."""
    before = scenario_key(QUICK_CONFIG)
    monkeypatch.setattr(state_cache_module, "BUFFER_FORMAT_VERSION", 999)
    assert scenario_key(QUICK_CONFIG) != before


# -------------------------------------------------------------------- lookup
@pytest.mark.parametrize("mode", STATE_CACHE_MODES)
def test_state_for_matches_from_scratch_build(mode):
    cache = StateCache(mode=mode)
    for _ in range(2):  # miss, then hit — both must equal a fresh build
        state = cache.state_for(QUICK_CONFIG)
        assert_states_identical(state, build_scenario_state(QUICK_CONFIG))
    stats = cache.stats()
    assert (stats.hits, stats.misses, stats.entries) == (1, 1, 1)
    assert stats.builds_saved == 1
    assert stats.mode == mode


@pytest.mark.parametrize("mode", STATE_CACHE_MODES)
def test_lookups_hand_out_private_copies(mode):
    cache = StateCache(mode=mode)
    first = cache.state_for(QUICK_CONFIG)
    victim = first.enabled_nodes()[0].node_id
    first.disable_node(victim)
    second = cache.state_for(QUICK_CONFIG)
    assert second.node(victim).is_enabled
    assert_states_identical(second, build_scenario_state(QUICK_CONFIG))


def test_get_is_a_pure_lookup_and_put_stores():
    cache = StateCache()
    assert cache.get(QUICK_CONFIG) is None
    assert not cache.contains(QUICK_CONFIG)
    built = build_scenario_state(QUICK_CONFIG)
    cache.put(QUICK_CONFIG, built)
    assert cache.contains(QUICK_CONFIG)
    hit = cache.get(QUICK_CONFIG)
    assert hit is not built  # private copy, not the stored entry
    assert_states_identical(hit, built)


@pytest.mark.parametrize("mode", STATE_CACHE_MODES)
def test_snapshot_bytes_round_trips(mode):
    from repro.network.state import WsnState

    cache = StateCache(mode=mode)
    assert cache.snapshot_bytes(QUICK_CONFIG) is None
    built = cache.state_for(QUICK_CONFIG)
    snapshot = cache.snapshot_bytes(QUICK_CONFIG)
    assert isinstance(snapshot, bytes)
    restored = WsnState.from_bytes(snapshot, head_policy=QUICK_CONFIG.head_policy_fn)
    assert_states_identical(restored, built)


def test_lru_eviction_drops_the_least_recent_scenario():
    cache = StateCache(capacity=2)
    first = QUICK_CONFIG
    second = QUICK_CONFIG.with_seed(8)
    third = QUICK_CONFIG.with_seed(9)
    cache.state_for(first)
    cache.state_for(second)
    cache.state_for(first)  # refresh first; second is now LRU
    cache.state_for(third)
    assert cache.contains(first)
    assert not cache.contains(second)
    assert cache.contains(third)
    stats = cache.stats()
    assert stats.evictions == 1
    assert stats.entries == 2
    assert len(cache) == 2


def test_clear_empties_the_cache():
    cache = StateCache()
    cache.state_for(QUICK_CONFIG)
    assert cache.clear() == 1
    assert len(cache) == 0
    assert not cache.contains(QUICK_CONFIG)


def test_rejects_bad_capacity_and_mode():
    with pytest.raises(ValueError):
        StateCache(capacity=0)
    with pytest.raises(ValueError):
        StateCache(mode="marble")


def test_concurrent_lookups_build_once(monkeypatch):
    """A thundering herd over one missing scenario performs exactly one build."""
    builds = []
    real_build = state_cache_module.build_scenario_state

    def counting_build(config):
        builds.append(scenario_key(config))
        return real_build(config)

    monkeypatch.setattr(state_cache_module, "build_scenario_state", counting_build)
    cache = StateCache()
    barrier = threading.Barrier(8)
    results = []
    errors = []

    def lookup():
        try:
            barrier.wait(timeout=10)
            results.append(cache.state_for(QUICK_CONFIG))
        except Exception as error:  # noqa: BLE001 - asserted below
            errors.append(error)

    threads = [threading.Thread(target=lookup) for _ in range(8)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not errors
    assert len(builds) == 1
    assert len(results) == 8
    for state in results:
        assert_states_identical(state, build_scenario_state(QUICK_CONFIG))


# ----------------------------------------------------------- process default
def test_default_cache_swap_and_disable():
    original = default_state_cache()
    try:
        replacement = StateCache(capacity=3)
        previous = set_default_state_cache(replacement)
        assert previous is original
        assert default_state_cache() is replacement
        assert set_default_state_cache(None) is replacement
        assert default_state_cache() is None
    finally:
        set_default_state_cache(original)
    assert default_state_cache() is original


def test_default_cache_exists_with_default_capacity():
    cache = default_state_cache()
    assert cache is not None
    assert cache.capacity == DEFAULT_CAPACITY


# ------------------------------------------------------- execute_run identity
@pytest.mark.parametrize("mode", STATE_CACHE_MODES)
def test_execute_run_records_identical_with_and_without_cache(mode):
    """Cache-off, cache-miss, and cache-hit runs serialize identically."""
    spec = RunSpec(scenario=QUICK_CONFIG, scheme="SR", seed=3, max_rounds=40)
    cache = StateCache(mode=mode)
    baseline = execute_run(spec, state_cache=None)
    miss = execute_run(spec, state_cache=cache)
    hit = execute_run(spec, state_cache=cache)
    dumps = [
        json.dumps(record_to_dict(record), sort_keys=True)
        for record in (baseline, miss, hit)
    ]
    assert dumps[0] == dumps[1] == dumps[2]
    stats = cache.stats()
    assert stats.misses == 1
    assert stats.hits == 1
