"""Figure 5: estimated total moving distance of a single replacement (r = 10).

Regenerates the distance estimates for the 4x5 (L = 19) and 16x16 (L = 255)
grid systems and checks the per-hop distance model of Section 4 (minimum
``r/4``, maximum ``sqrt(58)/4 * r``, average ``1.08 * r``) against sampled
moves.
"""

from __future__ import annotations

import math
import random

import pytest

from repro.core import analysis
from repro.experiments.figures import figure5_distance_estimates
from repro.grid.geometry import Point
from repro.grid.virtual_grid import GridCoord, VirtualGrid, random_point_in_box
from repro.network.mobility import MovementModel
from repro.network.node import SensorNode

from figutils import emit


@pytest.mark.benchmark(group="fig5-distance")
def test_fig5_distance_table(benchmark, results_dir):
    """Regenerate the Figure 5 data series (r = 10 m, both grid systems)."""
    result = benchmark(figure5_distance_estimates, 10.0)

    emit(result, results_dir, "fig5_distance_estimates.csv")
    small = {int(row["N"]): row["expected_distance"] for row in result.rows if row["grid"] == "4x5"}
    large = {int(row["N"]): row["expected_distance"] for row in result.rows if row["grid"] == "16x16"}
    # Left edge of the curves: with no spares the estimate is 1.08 * r * L.
    assert small[0] == pytest.approx(1.08 * 10.0 * 19, rel=1e-9)
    assert large[0] == pytest.approx(1.08 * 10.0 * 255, rel=1e-9)
    # Right edge: with many spares a replacement costs about one hop.
    assert small[140] < 1.2 * 1.08 * 10.0
    assert large[1000] < 1.3 * 1.08 * 10.0


@pytest.mark.benchmark(group="fig5-distance")
def test_fig5_hop_distance_model(benchmark):
    """Empirical per-hop distances stay within the paper's [r/4, sqrt(58)/4*r] bounds."""
    cell_size = 10.0
    grid = VirtualGrid(4, 5, cell_size=cell_size)
    model = MovementModel(grid)
    rng = random.Random(5)
    source_cell, target_cell = GridCoord(1, 1), GridCoord(2, 1)

    def sample_moves(samples: int = 400) -> float:
        total = 0.0
        for i in range(samples):
            start = random_point_in_box(grid.cell_bounds(source_cell), rng)
            node = SensorNode(node_id=i, position=start)
            record = model.execute_move(
                node, source_cell, target_cell, rng, round_index=0
            )
            total += record.distance
        return total / samples

    average = benchmark(sample_moves)

    low, estimate, high = analysis.hop_distance_statistics(cell_size)
    assert low == pytest.approx(cell_size / 4.0)
    assert high == pytest.approx(math.sqrt(58.0) / 4.0 * cell_size)
    # The empirical mean of random-corner to central-area moves sits near the
    # paper's 1.08 * r figure (it is an approximation, so allow a wide band).
    assert 0.75 * estimate <= average <= 1.25 * estimate
