"""Load benchmark for the ``repro serve`` experiment service.

Stands up an in-process server (ephemeral port, ephemeral sqlite store) and
drives it with the workload shape the broker exists for:

* a **cold pass** — every spec is novel, so each request simulates through
  the broker (per-request latency = queueing + simulation + persistence);
* a **warm pass** — the identical specs again, now answered from the cache
  (per-request latency = one HTTP round-trip + one backend lookup);
* a **herd pass** — many concurrent requests for one novel spec, which the
  broker's in-flight dedup must collapse onto a single simulation.

Usage::

    PYTHONPATH=src python benchmarks/bench_serve.py          # writes BENCH_serve.json
    PYTHONPATH=src python benchmarks/bench_serve.py --smoke  # CI guards only

The report records specs/second and p50/p99 latency for both passes, the
warm/cold throughput ratio, and the herd dedup accounting.  The guards —
enforced in ``--smoke`` and on the full run alike — are:

* warm-cache throughput at least 10x cold throughput (the service exists to
  make repeated queries cheap);
* the herd performs exactly one simulation (in-flight dedup works);
* warm p50 latency under a generous quarter-second ceiling (a cache hit
  must never cost simulation time).
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import threading
import time
from pathlib import Path

if __package__ in (None, ""):  # running as a script: make src/ importable
    sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.serve.client import ServeClient
from repro.serve.server import ServeConfig, make_server

#: Scenario shape of every benchmarked spec: the paper's Section-5 workload
#: (16x16 grid, 5000 deployed sensors), so cold-pass cost is the cost a real
#: figure query pays.
SCENARIO = {"columns": 16, "rows": 16, "deployed_count": 5000, "spare_surplus": 55}
SCHEMES = ("SR", "AR")
MAX_ROUNDS = 60
WARM_REPEATS = 3
HERD_SIZE = 8
#: Guards (see module docstring).
MIN_WARM_SPEEDUP = 10.0
MAX_WARM_P50_SECONDS = 0.25


def spec_payload(scheme: str, seed: int) -> dict:
    """One run-spec request body for the benchmark workload."""
    return {
        "scenario": {**SCENARIO, "seed": seed},
        "scheme": scheme,
        "seed": seed,
        "max_rounds": MAX_ROUNDS,
    }


def build_workload(seeds: int) -> list:
    """The benchmark's distinct specs: every scheme crossed with every seed."""
    return [
        spec_payload(scheme, seed) for scheme in SCHEMES for seed in range(1, seeds + 1)
    ]


def timed_pass(client: ServeClient, payloads: list) -> dict:
    """Issue every payload sequentially and summarize latency/throughput."""
    latencies = []
    cached = 0
    started = time.perf_counter()
    for payload in payloads:
        t0 = time.perf_counter()
        response = client.run(payload)
        latencies.append(time.perf_counter() - t0)
        cached += 1 if response["cached"] else 0
    wall = time.perf_counter() - started
    latencies.sort()
    return {
        "requests": len(payloads),
        "cached_answers": cached,
        "wall_seconds": round(wall, 4),
        "specs_per_second": round(len(payloads) / wall, 2),
        "latency_p50_seconds": round(statistics.median(latencies), 5),
        "latency_p99_seconds": round(
            latencies[min(len(latencies) - 1, int(len(latencies) * 0.99))], 5
        ),
    }


def herd_pass(server, client: ServeClient, payload: dict) -> dict:
    """Fire HERD_SIZE concurrent requests for one novel spec; count simulations."""
    before = server.broker.stats()
    results = []
    errors = []

    def ask():
        try:
            results.append(client.run(payload))
        except Exception as error:  # noqa: BLE001 - reported in the summary
            errors.append(str(error))

    threads = [threading.Thread(target=ask) for _ in range(HERD_SIZE)]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - started
    after = server.broker.stats()
    executed = after.executed - before.executed
    identical = bool(results) and all(
        r["record"] == results[0]["record"] for r in results
    )
    return {
        "concurrent_requests": HERD_SIZE,
        "errors": errors,
        "wall_seconds": round(wall, 4),
        "simulations_performed": executed,
        "dedup_or_cache_hits": (after.dedup_hits - before.dedup_hits)
        + (after.cache_hits - before.cache_hits),
        "records_identical": identical,
    }


def run_benchmark(seeds: int, workers: int) -> tuple:
    """Execute all three passes against a private server; return (report, failures)."""
    server = make_server(ServeConfig(port=0, workers=workers))
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    client = ServeClient(server.url, timeout=300)
    try:
        workload = build_workload(seeds)
        cold = timed_pass(client, workload)
        warm = timed_pass(client, workload * WARM_REPEATS)
        herd = herd_pass(server, client, spec_payload("SR", seed=10_000))
        stats = client.stats()
    finally:
        server.shutdown()
        thread.join(timeout=10)
        server.close()

    speedup = warm["specs_per_second"] / cold["specs_per_second"]
    report = {
        "benchmark": "bench_serve",
        "description": (
            "HTTP experiment-service load benchmark: cold pass (every spec "
            "simulated through the broker) vs warm pass (identical specs "
            "answered from the cache) vs a concurrent herd of one novel spec "
            "(in-flight dedup); warm_vs_cold_speedup >= 10x is the guard the "
            "serving layer must keep"
        ),
        "scenario": SCENARIO,
        "schemes": list(SCHEMES),
        "max_rounds": MAX_ROUNDS,
        "distinct_specs": len(SCHEMES) * seeds,
        "broker_workers": workers,
        "cold": cold,
        "warm": warm,
        "warm_vs_cold_speedup": round(speedup, 1),
        "herd": herd,
        "server_stats": stats,
    }

    failures = []
    if cold["cached_answers"] != 0:
        failures.append("cold pass hit the cache; the workload is not novel")
    if warm["cached_answers"] != warm["requests"]:
        failures.append(
            f"warm pass missed the cache ({warm['cached_answers']} of "
            f"{warm['requests']} answered cached)"
        )
    if speedup < MIN_WARM_SPEEDUP:
        failures.append(
            f"warm-cache throughput is only {speedup:.1f}x cold "
            f"(guard: >= {MIN_WARM_SPEEDUP:.0f}x)"
        )
    if warm["latency_p50_seconds"] > MAX_WARM_P50_SECONDS:
        failures.append(
            f"warm p50 latency {warm['latency_p50_seconds']}s exceeds "
            f"{MAX_WARM_P50_SECONDS}s"
        )
    if herd["errors"]:
        failures.append(f"herd requests errored: {herd['errors'][:3]}")
    if herd["simulations_performed"] != 1:
        failures.append(
            f"herd of {HERD_SIZE} identical requests performed "
            f"{herd['simulations_performed']} simulations (dedup broken)"
        )
    if not herd["records_identical"]:
        failures.append("herd requests received differing records")
    return report, failures


def main(argv=None) -> int:
    """Benchmark entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small workload, guards only, no BENCH_serve.json",
    )
    parser.add_argument(
        "--seeds", type=int, default=None, help="seeds per scheme (distinct specs / 2)"
    )
    parser.add_argument("--workers", type=int, default=2, help="broker worker threads")
    parser.add_argument(
        "--output",
        type=Path,
        default=Path(__file__).resolve().parents[1] / "BENCH_serve.json",
        help="report destination (full runs only)",
    )
    args = parser.parse_args(argv)

    seeds = args.seeds if args.seeds is not None else (2 if args.smoke else 6)
    report, failures = run_benchmark(seeds=seeds, workers=args.workers)

    if failures:
        for failure in failures:
            print(f"bench_serve FAILED: {failure}", file=sys.stderr)
        return 1
    print(
        f"bench_serve OK: cold {report['cold']['specs_per_second']} specs/s, "
        f"warm {report['warm']['specs_per_second']} specs/s "
        f"({report['warm_vs_cold_speedup']}x), herd of "
        f"{report['herd']['concurrent_requests']} -> "
        f"{report['herd']['simulations_performed']} simulation"
    )
    if not args.smoke:
        args.output.write_text(json.dumps(report, indent=2) + "\n")
        print(f"[written to {args.output}]")
    return 0


if __name__ == "__main__":
    sys.exit(main())
