#!/usr/bin/env python3
"""Quickstart: repair the coverage holes of a small sensor network with SR.

This five-minute tour walks through the full pipeline of the library:

1. build the virtual grid and deploy sensors uniformly at random;
2. disable some nodes to create coverage holes;
3. thread the grid with the directed Hamilton cycle;
4. run the paper's SR replacement scheme until every cell has a head again;
5. inspect the cost metrics and compare them with the analytical model.

Run it with ``python examples/quickstart.py``.
"""

from __future__ import annotations

import random

from repro import (
    HamiltonReplacementController,
    RandomFailure,
    ScenarioConfig,
    build_hamilton_cycle,
    build_scenario_state,
    coverage_report,
    derive_rng,
    is_head_network_connected,
    run_recovery,
)
from repro.core import analysis
from repro.viz.ascii_grid import render_occupancy


def main() -> None:
    # ------------------------------------------------------------------ setup
    # An 8x8 grid system; the communication range R = 10 m gives the GAF cell
    # side r = 10 / sqrt(5) = 4.47 m.  250 sensors are deployed uniformly and
    # nodes are then disabled at random until 64 + 40 enabled nodes remain
    # (i.e. the paper's spare surplus N = 40).
    config = ScenarioConfig(
        columns=8,
        rows=8,
        communication_range=10.0,
        deployed_count=250,
        spare_surplus=40,
        seed=42,
    )
    state = build_scenario_state(config)

    print("=== initial network ===")
    print(f"deployed nodes : {state.node_count}")
    print(f"enabled nodes  : {state.enabled_count}")
    print(f"coverage holes : {state.hole_count}")
    print(f"spare nodes    : {state.spare_count}")
    print(render_occupancy(state))
    report = coverage_report(state)
    print(f"cell coverage  : {report.cell_coverage:.1%}")
    print(f"head overlay connected: {is_head_network_connected(state)}")
    print()

    # --------------------------------------------------------- hamilton cycle
    cycle = build_hamilton_cycle(state.grid)
    cycle.validate()
    print(
        f"Hamilton structure: {type(cycle).__name__}, "
        f"replacement path length L = {cycle.replacement_path_length}"
    )
    print()

    # ------------------------------------------------------------ SR recovery
    controller = HamiltonReplacementController(cycle)
    result = run_recovery(state, controller, derive_rng(config.seed, "controller"))
    metrics = result.metrics

    print("=== after SR recovery ===")
    print(render_occupancy(state))
    print(f"rounds executed        : {metrics.rounds}")
    print(f"processes initiated    : {metrics.processes_initiated}")
    print(f"processes converged    : {metrics.processes_converged}")
    print(f"success rate           : {metrics.success_rate:.1%}")
    print(f"total node movements   : {metrics.total_moves}")
    print(f"total moving distance  : {metrics.total_distance:.1f} m")
    print(f"holes remaining        : {metrics.final_holes}")
    print(f"head overlay connected : {is_head_network_connected(state)}")
    print()

    # ------------------------------------------------------- analytical check
    expected_moves_per_hole = analysis.expected_movements(
        config.spare_surplus, cycle.replacement_path_length
    )
    measured_moves_per_hole = (
        metrics.total_moves / metrics.repaired_holes if metrics.repaired_holes else 0.0
    )
    print("=== analytical model (Theorem 2) ===")
    print(f"expected movements per hole : {expected_moves_per_hole:.2f}")
    print(f"measured movements per hole : {measured_moves_per_hole:.2f}")
    print(
        "expected distance per hole  : "
        f"{analysis.expected_total_distance(config.spare_surplus, cycle.replacement_path_length, state.grid.cell_size):.1f} m"
    )

    # ------------------------------------------------------------ dynamic hole
    # The scheme is fully distributed, so new holes appearing later are simply
    # repaired by the same controller as they are detected.
    print()
    print("=== injecting a second failure wave ===")
    RandomFailure(count=25).apply(state, random.Random(7))
    print(f"holes after new failures: {state.hole_count}")
    result2 = run_recovery(state, controller, derive_rng(config.seed, "second-wave"))
    print(f"holes after second recovery: {result2.metrics.final_holes}")
    print(f"additional movements: {result2.metrics.total_moves - metrics.total_moves}")


if __name__ == "__main__":
    main()
