"""ASCII plotting helpers.

The offline environment this reproduction targets has no matplotlib, so the
figure benchmarks print their series both as tables and as simple ASCII
charts.  The charts are only meant for eyeballing the *shape* of a curve
(decay, crossover, plateau), which is exactly what the reproduction needs to
compare against the paper's figures.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

#: Symbols assigned to the successive series of a chart.
SERIES_MARKERS = "xo*#@+%&"


def ascii_chart(
    series: Dict[str, Sequence[Tuple[float, float]]],
    width: int = 70,
    height: int = 18,
    title: str = "",
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """Render one or more ``(x, y)`` series as a text scatter chart.

    Each series gets its own marker character; the legend at the bottom maps
    markers back to series names.  Values are scaled to the chart area using
    the global minima/maxima over all series.
    """
    points = [(x, y) for values in series.values() for x, y in values]
    if not points:
        return f"{title}\n(no data)"
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    min_x, max_x = min(xs), max(xs)
    min_y, max_y = min(ys), max(ys)
    span_x = max_x - min_x or 1.0
    span_y = max_y - min_y or 1.0

    canvas = [[" "] * width for _ in range(height)]
    for index, (name, values) in enumerate(series.items()):
        marker = SERIES_MARKERS[index % len(SERIES_MARKERS)]
        for x, y in values:
            column = int(round((x - min_x) / span_x * (width - 1)))
            row = int(round((y - min_y) / span_y * (height - 1)))
            canvas[height - 1 - row][column] = marker

    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(f"{max_y:>12.2f} +" + "-" * width)
    for row in canvas:
        lines.append(" " * 13 + "|" + "".join(row))
    lines.append(f"{min_y:>12.2f} +" + "-" * width)
    lines.append(
        " " * 14 + f"{min_x:<12.1f}{x_label:^{max(1, width - 24)}}{max_x:>12.1f}"
    )
    legend = "   ".join(
        f"{SERIES_MARKERS[i % len(SERIES_MARKERS)]} = {name}"
        for i, name in enumerate(series)
    )
    lines.append("    legend: " + legend + f"   (y = {y_label})")
    return "\n".join(lines)


def format_table(
    columns: Sequence[str], rows: Sequence[Sequence[object]], float_digits: int = 2
) -> str:
    """Small standalone table formatter for ad-hoc output in examples."""
    rendered = [[str(column) for column in columns]]
    for row in rows:
        rendered.append(
            [
                f"{value:.{float_digits}f}" if isinstance(value, float) else str(value)
                for value in row
            ]
        )
    widths = [max(len(r[i]) for r in rendered) for i in range(len(columns))]
    lines = ["  ".join(cell.rjust(w) for cell, w in zip(rendered[0], widths))]
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered[1:]:
        lines.append("  ".join(cell.rjust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)
