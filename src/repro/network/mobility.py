"""Movement model for replacement moves.

Section 4 ("Implementation Issue") specifies how a node moves during a
replacement: it goes straight to a point in the *central area* of the target
cell.  For an ``r x r`` cell the central area is the middle ``r/2 x r/2``
square, so a single hop covers at least ``r/4`` and at most ``sqrt(58)/4 * r``
metres; the paper uses ``1.08 * r`` as the average per-hop distance in its
estimates (Figure 5).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from repro.grid.geometry import Point
from repro.grid.virtual_grid import (
    AVERAGE_MOVE_FACTOR,
    GridCoord,
    VirtualGrid,
    move_distance_bounds,
    random_point_in_box,
)
from repro.network.node import MOVE_COST_PER_METER, SensorNode


@dataclass(frozen=True)
class MoveRecord:
    """One completed relocation of a node between two cells."""

    node_id: int
    source_cell: GridCoord
    target_cell: GridCoord
    source_position: Point
    target_position: Point
    distance: float
    round_index: int
    process_id: Optional[int] = None

    @property
    def is_cascading(self) -> bool:
        """Whether the move vacated its source cell as part of a cascade."""
        return self.process_id is not None


class MovementModel:
    """Chooses target positions and executes replacement moves."""

    def __init__(
        self,
        grid: VirtualGrid,
        target_central_area: bool = True,
        move_cost_per_meter: float = MOVE_COST_PER_METER,
    ) -> None:
        if move_cost_per_meter < 0:
            raise ValueError(
                f"move_cost_per_meter must be non-negative, got {move_cost_per_meter}"
            )
        self._grid = grid
        self._target_central_area = target_central_area
        self._move_cost_per_meter = move_cost_per_meter

    @property
    def grid(self) -> VirtualGrid:
        """The virtual grid movements are validated against."""
        return self._grid

    @property
    def move_cost_per_meter(self) -> float:
        """Energy debited per metre moved (joules/metre)."""
        return self._move_cost_per_meter

    def with_move_cost(self, move_cost_per_meter: float) -> "MovementModel":
        """Copy of this model with a different move rate, other knobs kept."""
        return MovementModel(
            self._grid,
            target_central_area=self._target_central_area,
            move_cost_per_meter=move_cost_per_meter,
        )

    @property
    def average_hop_distance(self) -> float:
        """The paper's average per-hop distance estimate, ``1.08 * r``."""
        return AVERAGE_MOVE_FACTOR * self._grid.cell_size

    @property
    def hop_distance_bounds(self) -> tuple:
        """(min, max) possible per-hop distance for this grid's cell size."""
        return move_distance_bounds(self._grid.cell_size)

    def choose_target_position(self, target_cell: GridCoord, rng: random.Random) -> Point:
        """Random point in the central area (or the whole cell) of ``target_cell``.

        "Each movement of node u from one grid to its neighbour will randomly
        select the destination location in the central area of the target
        grid" (Section 5).
        """
        if self._target_central_area:
            box = self._grid.central_area(target_cell)
        else:
            box = self._grid.cell_bounds(target_cell)
        return random_point_in_box(box, rng)

    def execute_move(
        self,
        node: SensorNode,
        source_cell: GridCoord,
        target_cell: GridCoord,
        rng: random.Random,
        round_index: int,
        process_id: Optional[int] = None,
        target_position: Optional[Point] = None,
    ) -> MoveRecord:
        """Move ``node`` from ``source_cell`` into ``target_cell``.

        The caller is responsible for keeping the cell-membership index of the
        network state consistent (see :meth:`repro.network.state.WsnState.move_node`,
        which wraps this method).
        """
        self._grid.validate_coord(source_cell)
        self._grid.validate_coord(target_cell)
        source_position = node.position
        if target_position is None:
            target_position = self.choose_target_position(target_cell, rng)
        distance = node.relocate(target_position, cost_per_meter=self._move_cost_per_meter)
        return MoveRecord(
            node_id=node.node_id,
            source_cell=source_cell,
            target_cell=target_cell,
            source_position=source_position,
            target_position=target_position,
            distance=distance,
            round_index=round_index,
            process_id=process_id,
        )
