"""End-to-end tests for the energy-aware round loop and the lifetime driver.

Covers the coupling the lifetime smoke gate protects in CI: engine-driven
depletion opens holes mid-run, the controllers repair them, the energy series
and summaries record the trajectory, and node-level debits reconcile with the
run's cost metrics.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.hamilton import build_hamilton_cycle
from repro.core.replacement import HamiltonReplacementController
from repro.experiments.lifetime import (
    SMOKE_CONFIG,
    SMOKE_ENERGY,
    build_lifetime_specs,
    run_lifetime_experiment,
)
from repro.experiments.orchestration import SerialExecutor, execute_many
from repro.experiments.persistence import (
    RunCache,
    record_from_dict,
    record_to_dict,
)
from repro.grid.virtual_grid import GridCoord
from repro.network.energy import EnergyModel, energy_summary, recovery_energy_cost
from repro.network.node import NodeState
from repro.sim.engine import RoundBasedEngine, run_recovery
from repro.sim.events import EventKind, EventLog
from repro.sim.rng import derive_rng
from repro.sim.scenario import ScenarioConfig, build_scenario_state


def sr_controller(state, **kwargs):
    return HamiltonReplacementController(build_hamilton_cycle(state.grid), **kwargs)


class TestEngineDepletion:
    def test_depletion_creates_hole_that_sr_repairs(self, dense_state, rng):
        """Seeded e2e: a cell's nodes deplete mid-run, SR refills the cell."""
        victims = [node.node_id for node in dense_state.members_of(GridCoord(2, 2))]
        # One idle drain empties these batteries, so the engine depletes the
        # whole cell in the very first round, before the controller acts.
        for node_id in victims:
            dense_state.node(node_id).reset_energy(0.5)
        log = EventLog()
        model = EnergyModel(idle_cost_per_round=1.0)
        engine = RoundBasedEngine(
            dense_state, sr_controller(dense_state), rng, energy_model=model, event_log=log
        )
        result = engine.run()

        # The engine (not a failure schedule) disabled the drained nodes ...
        assert sorted(result.depleted_nodes) == sorted(victims)
        for node_id in victims:
            assert dense_state.node(node_id).state is NodeState.DEPLETED
        battery_events = [
            e
            for e in log.events(EventKind.NODE_DISABLED)
            if e.details.get("cause") == "battery-depleted"
        ]
        assert len(battery_events) == len(victims)

        # ... and the resulting hole was repaired by the controller.
        assert result.converged
        assert not dense_state.is_vacant(GridCoord(2, 2))
        assert result.metrics.total_moves >= 1

        # The per-round energy trajectory was recorded and drains monotonically.
        series = result.series.energy
        assert len(series) == result.rounds_executed > 0
        assert all(b <= a for a, b in zip(series, series[1:]))
        assert len(result.series.depletions) == result.rounds_executed
        assert sum(result.series.depletions) == len(victims)

        # The metrics snapshot carries the battery summary.
        summary = result.metrics.energy
        assert summary is not None
        assert summary.depleted_nodes == len(victims)
        assert summary.total_consumed > 0.0

    def test_depleted_spares_are_never_selected(self, dense_state, rng):
        """A drained spare is skipped in favour of a charged one."""
        cell = GridCoord(1, 2)
        spares = dense_state.spares_of(cell)
        assert len(spares) >= 2
        drained = spares[0]
        drained.consume_energy(drained.energy)
        from helpers import make_hole

        make_hole(dense_state, GridCoord(0, 2))
        result = run_recovery(dense_state, sr_controller(dense_state), rng)
        assert result.converged
        assert drained.move_count == 0

    def test_max_energy_selection_prefers_fullest_spare(self, dense_state, rng):
        from helpers import make_hole

        hole = GridCoord(3, 1)
        make_hole(dense_state, hole)
        cycle = build_hamilton_cycle(dense_state.grid)
        initiator = cycle.initiator_for(hole, has_spare=dense_state.has_spare, origin=hole)
        spares = dense_state.spares_of(initiator)
        assert len(spares) >= 2
        full, weak = spares[0], spares[1]
        weak.reset_energy(5.0)
        controller = HamiltonReplacementController(cycle, spare_selection="max_energy")
        result = run_recovery(dense_state, controller, rng)
        assert result.converged
        assert full.move_count == 1
        assert weak.move_count == 0

    def test_run_to_exhaustion_outlives_coverage(self, dense_state, rng):
        """Lifetime mode keeps draining after full coverage until death."""
        for node in dense_state.nodes():
            node.reset_energy(5.0)
        model = EnergyModel(idle_cost_per_round=1.0)
        engine = RoundBasedEngine(
            dense_state,
            sr_controller(dense_state),
            rng,
            energy_model=model,
            run_to_exhaustion=True,
            max_rounds=50,
        )
        result = engine.run()
        # Uniform batteries: everyone dies in the same round, the run stalls
        # with the whole grid vacant, and the rounds reflect the drain time.
        assert result.rounds_executed >= 5
        assert result.stalled
        assert dense_state.enabled_count == 0

    def test_custom_move_and_message_costs_route_to_node_debits(
        self, sparse_state, rng
    ):
        # sparse_state has no spares, so SR must cascade heads — which both
        # moves them and sends notifications, exercising both debit paths.
        from helpers import make_hole

        make_hole(sparse_state, GridCoord(1, 1))
        model = EnergyModel(move_cost_per_meter=3.0, message_cost=0.25)
        engine = RoundBasedEngine(
            sparse_state, sr_controller(sparse_state), rng, energy_model=model
        )
        result = engine.run()
        assert result.metrics.messages_sent > 0
        summary = energy_summary(sparse_state)
        expected = model.recovery_cost(
            result.metrics.total_distance, result.metrics.messages_sent
        )
        assert summary.total_consumed == pytest.approx(expected, rel=1e-9)

    def test_custom_move_cost_preserves_movement_model_config(self, dense_state, rng):
        from repro.network.mobility import MovementModel

        dense_state.movement_model = MovementModel(
            dense_state.grid, target_central_area=False
        )
        model = EnergyModel(move_cost_per_meter=2.0)
        RoundBasedEngine(dense_state, sr_controller(dense_state), rng, energy_model=model)
        assert dense_state.movement_model.move_cost_per_meter == 2.0
        assert dense_state.movement_model._target_central_area is False

    def test_message_charge_cannot_abort_a_committed_head_move(self, sparse_state, rng):
        # Regression: a head whose battery was emptied by the notification
        # charge used to hit relocate()'s depletion guard mid-cascade and
        # crash the whole run with a RuntimeError.
        from helpers import make_hole

        hole = GridCoord(1, 1)
        make_hole(sparse_state, hole)
        cycle = build_hamilton_cycle(sparse_state.grid)
        initiator = cycle.initiator_for(hole, has_spare=sparse_state.has_spare, origin=hole)
        initiator_head = sparse_state.head_of(initiator)
        assert initiator_head is not None
        # Enough battery to move one hop, but less than the message charge —
        # charging before the move would clamp the battery to zero and make
        # relocate() raise.
        initiator_head.reset_energy(0.9)
        model = EnergyModel(message_cost=1.0)
        engine = RoundBasedEngine(
            sparse_state,
            HamiltonReplacementController(cycle),
            rng,
            energy_model=model,
        )
        result = engine.run()  # must not raise
        assert initiator_head.move_count == 1
        assert result.rounds_executed >= 1


class TestEnergyReconciliation:
    """Node-level debits always reconcile with the run's cost metrics."""

    @settings(max_examples=20, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10**6),
        scheme=st.sampled_from(["SR", "AR", "SR-shortcut", "SR-energy", "AR-energy"]),
        holes=st.integers(min_value=1, max_value=4),
    )
    def test_consumed_energy_equals_recovery_cost(self, seed, scheme, holes):
        from repro.experiments.registry import make_controller

        config = ScenarioConfig(
            columns=4,
            rows=4,
            communication_range=4.0,
            deployed_count=48,
            deployment="per_cell",
            seed=seed,
        )
        state = build_scenario_state(config)
        rng = derive_rng(seed, "reconciliation")
        cells = list(state.grid.all_coords())
        for index in range(holes):
            coord = cells[rng.randrange(len(cells))]
            for node in list(state.members_of(coord)):
                state.disable_node(node.node_id)
        controller = make_controller(scheme, state)
        result = run_recovery(state, controller, rng)
        summary = energy_summary(state)
        expected = recovery_energy_cost(
            result.metrics.total_distance, result.metrics.messages_sent
        )
        assert summary.total_consumed == pytest.approx(expected, rel=1e-9, abs=1e-9)


class TestLifetimeDriver:
    def test_smoke_workload_depletes_and_repairs(self):
        specs = build_lifetime_specs(
            SMOKE_CONFIG, schemes=("SR",), energy=SMOKE_ENERGY, trials=1, max_rounds=400
        )
        (record,) = execute_many(specs, executor=SerialExecutor())
        assert record.energy_series, "per-round energy series must be recorded"
        assert record.energy_series[-1] < record.energy_series[0]
        assert record.metrics.energy.depleted_nodes > 0
        assert record.metrics.total_moves > 0
        assert record.stalled or record.exhausted

    def test_serial_reexecution_is_byte_identical(self):
        specs = build_lifetime_specs(
            SMOKE_CONFIG, schemes=("SR", "AR"), energy=SMOKE_ENERGY, trials=1, max_rounds=400
        )
        first = execute_many(specs, executor=SerialExecutor())
        second = execute_many(specs, executor=SerialExecutor())
        as_json = lambda records: json.dumps(
            [record_to_dict(r) for r in records], sort_keys=True
        )
        assert as_json(first) == as_json(second)

    def test_records_round_trip_through_the_cache(self, tmp_path):
        specs = build_lifetime_specs(
            SMOKE_CONFIG, schemes=("SR",), energy=SMOKE_ENERGY, trials=1, max_rounds=400
        )
        cache = RunCache(tmp_path)
        (fresh,) = execute_many(specs, executor=SerialExecutor(), cache=cache)
        restored = record_from_dict(record_to_dict(fresh))
        assert restored == fresh
        executor = SerialExecutor()
        (cached,) = execute_many(specs, executor=executor, cache=cache)
        assert executor.runs_executed == 0
        assert cached.cached
        assert cached.energy_series == fresh.energy_series
        assert cached.metrics == fresh.metrics

    def test_experiment_table_reports_lifetimes(self):
        result = run_lifetime_experiment(
            config=SMOKE_CONFIG,
            schemes=("SR", "AR"),
            energy=SMOKE_ENERGY,
            trials=1,
            max_rounds=400,
        )
        assert [row["scheme"] for row in result.rows] == ["SR", "AR"]
        for row in result.rows:
            assert row["lifetime_rounds"] > 0
            assert row["depleted_nodes"] > 0
            assert row["energy_consumed"] > 0

    def test_rejects_unbounded_batteries(self):
        with pytest.raises(ValueError):
            build_lifetime_specs(ScenarioConfig(columns=4, rows=4, deployed_count=32))

    def test_rejects_drainless_energy_model(self):
        config = ScenarioConfig(
            columns=4, rows=4, deployed_count=32, initial_energy=10.0
        )
        with pytest.raises(ValueError):
            build_lifetime_specs(config, energy=EnergyModel(idle_cost_per_round=0.0))
