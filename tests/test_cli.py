"""Tests for the command-line interface (python -m repro)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_known_commands_parse(self):
        parser = build_parser()
        assert parser.parse_args(["figures", "fig3"]).command == "figures"
        assert parser.parse_args(["compare"]).command == "compare"
        assert parser.parse_args(["analyze", "--spares", "5"]).command == "analyze"
        assert parser.parse_args(["layout"]).command == "layout"

    def test_compare_rejects_unknown_scheme(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["compare", "--schemes", "BOGUS"])


class TestAnalyzeCommand:
    def test_prints_theorem2_values(self, capsys):
        assert main(["analyze", "--spares", "12", "--path-length", "19"]) == 0
        output = capsys.readouterr().out
        assert "2.0139" in output
        assert "per-hop distance" in output


class TestLayoutCommand:
    def test_even_grid_prints_cycle(self, capsys):
        assert main(["layout", "--columns", "4", "--rows", "4"]) == 0
        assert "Hamilton cycle" in capsys.readouterr().out

    def test_odd_grid_prints_dual_path(self, capsys):
        assert main(["layout", "--columns", "5", "--rows", "5"]) == 0
        output = capsys.readouterr().out
        assert "Dual-path" in output
        assert "path one" in output


class TestFiguresCommand:
    def test_analytical_figures_only(self, capsys, tmp_path):
        code = main(["figures", "fig3", "fig5", "--csv-dir", str(tmp_path)])
        assert code == 0
        output = capsys.readouterr().out
        assert "Figure 3" in output and "Figure 5" in output
        assert (tmp_path / "fig3_expected_movements.csv").exists()
        assert (tmp_path / "fig5_distance_estimates.csv").exists()

    def test_unknown_figure_is_an_error(self, capsys):
        assert main(["figures", "fig99"]) == 2
        assert "unknown figures" in capsys.readouterr().err

    def test_structural_figures(self, capsys):
        assert main(["figures", "fig1", "fig4"]) == 0
        output = capsys.readouterr().out
        assert "Hamilton cycle" in output and "Dual-path" in output


class TestCompareCommand:
    def test_small_comparison_runs(self, capsys):
        code = main(
            [
                "compare",
                "--columns", "6",
                "--rows", "6",
                "--deployed", "200",
                "--spare-surplus", "20",
                "--seed", "2",
                "--schemes", "SR", "AR",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "SR" in output and "AR" in output
        assert "holes_left" in output

    def test_shortcut_scheme_available(self, capsys):
        code = main(
            [
                "compare",
                "--columns", "6",
                "--rows", "6",
                "--deployed", "150",
                "--spare-surplus", "10",
                "--seed", "4",
                "--schemes", "SR-shortcut",
            ]
        )
        assert code == 0
        assert "SR-shortcut" in capsys.readouterr().out
