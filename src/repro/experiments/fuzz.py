"""Seeded scenario fuzzer: sample valid documents from the declarative space.

The 11 curated catalog scenarios cover a vanishing fraction of the space the
declarative layer can describe — deployment x failure schedule x energy x
channel x scheme x engine sharding.  This module samples that space
*constraint-aware*: every document a :class:`ScenarioSampler` produces passes
:func:`~repro.experiments.scenario_files.load_scenario` validation and
round-trips byte-stably through
:func:`~repro.experiments.scenario_files.dumps_scenario`, so each sample is a
legitimate workload any user could have written by hand.

Three pieces:

* :class:`ScenarioSampler` — the seeded generator.  ``sample(index)`` is a
  pure function of ``(seed, index)``: each sample derives its own
  ``random.Random(f"fuzz-{seed}-{index}")`` stream (string seeding hashes via
  SHA-512, stable across Python versions and platforms), so sample ``i`` is
  reproducible without generating samples ``0..i-1``.
* :func:`validate_roundtrip` — the validity gate each sample must clear:
  ``dumps -> loads -> dumps`` byte-stability, re-validation of the parsed
  document, and cache-key-stable compiled :class:`RunSpec` cells.
* :func:`shrink_candidates` / :func:`minimize_scenario` — greedy falsifier
  minimization.  Candidates are ordered cheapest-first (rounds, trials, grid,
  then structural deletions), and every candidate is itself re-validated, so
  a minimized falsifier is still a loadable scenario document.

The differential harness (:mod:`repro.experiments.differential`) consumes the
samples; ``python -m repro scenario fuzz`` drives both.
"""

from __future__ import annotations

import dataclasses
import random
from dataclasses import dataclass
from typing import Callable, Iterator, List, Optional, Tuple

from repro.experiments.persistence import run_key
from repro.experiments.registry import available_schemes
from repro.experiments.scenario_files import (
    Scenario,
    ScenarioValidationError,
    dumps_scenario,
    loads_scenario,
)
from repro.network.channel import ChannelModel
from repro.network.energy import EnergyModel
from repro.network.failures import FailureEvent
from repro.network.partition import feasible_shards
from repro.sim.scenario import HEAD_POLICIES, ScenarioConfig

__all__ = [
    "FuzzSample",
    "FuzzValidationError",
    "ScenarioSampler",
    "minimize_scenario",
    "shrink_candidates",
    "validate_roundtrip",
]

#: Grid dimensions the sampler draws from.  Every pair has a Hamilton cycle
#: (even cell count -> serpentine; odd x odd -> the dual-path construction)
#: and stays small enough that a full differential pass over all registered
#: schemes completes in milliseconds.
_GRID_SIDES = (2, 3, 4, 5, 6, 7, 8)

#: Hard cap the sampler puts on ``max_rounds`` so no sampled run is unbounded.
_MAX_ROUNDS_RANGE = (20, 120)


class FuzzValidationError(AssertionError):
    """A sampled scenario failed the validity gate it is guaranteed to pass.

    This firing is itself a finding: the sampler and the document validator
    disagree about what a valid scenario is.
    """

    def __init__(self, where: str, message: str) -> None:
        self.where = where
        super().__init__(f"fuzz validity gate failed at {where}: {message}")


@dataclass(frozen=True)
class FuzzSample:
    """One sampled scenario plus the sampling decisions the oracles care about.

    Attributes
    ----------
    index:
        Sample index within the fuzzing session (``sample(index)``).
    seed:
        Session seed of the sampler that produced this sample.
    scenario:
        The sampled (and validity-gated) scenario document.
    requested_shards:
        The ``[engine] shards`` value the sampler chose, before feasibility.
    feasible_shard_count:
        :func:`~repro.network.partition.feasible_shards` evaluated on the
        sampled grid — the largest shard count whose column bands are all
        halo-wide.
    expects_shard_fallback:
        Whether the sharded execution path is expected to degrade (clamp to
        fewer tiles, or run the sequential engine outright) rather than run
        ``requested_shards`` tiles: the sampler *deliberately* emits such
        combinations to exercise the degrade path, and the differential
        harness asserts they fall back instead of erroring.
    """

    index: int
    seed: int
    scenario: Scenario
    requested_shards: int
    feasible_shard_count: int
    expects_shard_fallback: bool


class ScenarioSampler:
    """Seeded generator of valid scenario documents.

    ``ScenarioSampler(seed).sample(i)`` is deterministic in ``(seed, i)`` and
    independent across ``i`` — each sample owns a fresh
    ``random.Random(f"fuzz-{seed}-{i}")`` stream.  All sampling is
    constraint-aware: failure rounds stay below the round bound, targeted
    cells stay inside the grid, per-cell deployments use exact multiples of
    the cell count, run-to-exhaustion always rides on a positive idle drain,
    and jam windows are well-ordered — so :func:`validate_roundtrip` passes
    by construction (and the property suite proves it over hundreds of
    samples).
    """

    def __init__(self, seed: int) -> None:
        self.seed = seed

    # ------------------------------------------------------------- sampling
    def sample(self, index: int) -> FuzzSample:
        """Sample scenario ``index`` of this session (pure in ``(seed, index)``)."""
        rng = random.Random(f"fuzz-{self.seed}-{index}")
        config = self._sample_config(rng)
        max_rounds = rng.randint(*_MAX_ROUNDS_RANGE)
        energy, run_to_exhaustion = self._sample_energy(rng)
        channel = self._sample_channel(rng, config, max_rounds)
        failures = self._sample_failures(rng, config, max_rounds)
        schemes = self._sample_schemes(rng)
        shards, shard_mode, feasible, expects_fallback = self._sample_engine(
            rng, config
        )
        scenario = Scenario(
            name=f"fuzz-{self.seed}-{index}",
            scenario=config,
            schemes=schemes,
            description=f"sampled scenario {index} of fuzz session seed {self.seed}",
            failures=failures,
            energy=energy,
            channel=channel,
            trials=rng.choice((1, 1, 2)),
            max_rounds=max_rounds,
            idle_round_limit=rng.randint(2, 6),
            run_to_exhaustion=run_to_exhaustion,
            shards=shards,
            shard_mode=shard_mode,
        )
        return FuzzSample(
            index=index,
            seed=self.seed,
            scenario=scenario,
            requested_shards=shards,
            feasible_shard_count=feasible,
            expects_shard_fallback=expects_fallback,
        )

    def samples(self, count: int) -> List[FuzzSample]:
        """The first ``count`` samples of the session, in index order."""
        return [self.sample(index) for index in range(count)]

    # ------------------------------------------------------------- sub-parts
    def _sample_config(self, rng: random.Random) -> ScenarioConfig:
        # Every draw from _GRID_SIDES has a Hamilton cycle: an even cell
        # count uses the serpentine construction, and the odd sides are all
        # >= 3, so odd x odd grids satisfy the dual-path 3x3 minimum.
        columns = rng.choice(_GRID_SIDES)
        rows = rng.choice(_GRID_SIDES)
        cells = columns * rows
        deployment = "per_cell" if rng.random() < 0.2 else "uniform"
        if deployment == "per_cell":
            deployed_count = cells * rng.randint(2, 5)
        else:
            deployed_count = rng.randint(2 * cells, 6 * cells)
        spare_surplus: Optional[int] = None
        if rng.random() < 0.7:
            spare_surplus = rng.randint(0, max(1, cells // 2))
        initial_energy: Optional[float] = None
        jitter = 0.0
        if rng.random() < 0.4:
            initial_energy = float(rng.randint(20, 80))
            if rng.random() < 0.5:
                jitter = round(rng.uniform(0.05, 0.45), 2)
        return ScenarioConfig(
            columns=columns,
            rows=rows,
            deployed_count=deployed_count,
            spare_surplus=spare_surplus,
            seed=rng.randrange(2**31),
            initial_energy=initial_energy,
            initial_energy_jitter=jitter,
            head_policy=rng.choice(sorted(HEAD_POLICIES)),
            deployment=deployment,
        )

    def _sample_energy(
        self, rng: random.Random
    ) -> Tuple[Optional[EnergyModel], bool]:
        if rng.random() < 0.55:
            return None, False
        run_to_exhaustion = rng.random() < 0.25
        idle = round(rng.uniform(0.5, 2.0), 2) if (
            run_to_exhaustion or rng.random() < 0.6
        ) else 0.0
        return (
            EnergyModel(
                idle_cost_per_round=idle,
                depletion_threshold=round(rng.uniform(0.0, 1.0), 2),
            ),
            run_to_exhaustion,
        )

    def _sample_channel(
        self, rng: random.Random, config: ScenarioConfig, max_rounds: int
    ) -> Optional[ChannelModel]:
        kind = rng.choice(("perfect", "perfect", "lossy", "delayed", "jammed"))
        if kind == "perfect":
            # The canonical form of the default channel is its absence
            # (RunSpec folds them together), so sample it as None.
            return None
        if kind == "lossy":
            return ChannelModel.with_params(
                "lossy",
                drop_probability=round(rng.uniform(0.05, 0.4), 2),
                ack_timeout=rng.randint(2, 4),
                max_retries=rng.randint(2, 8),
            )
        if kind == "delayed":
            return ChannelModel.with_params("delayed", latency=rng.randint(1, 3))
        x0 = rng.randrange(config.columns)
        y0 = rng.randrange(config.rows)
        x1 = rng.randint(x0, config.columns - 1)
        y1 = rng.randint(y0, config.rows - 1)
        from_round = rng.randint(0, max_rounds // 2)
        until_round = rng.randint(from_round + 1, max_rounds)
        return ChannelModel.with_params(
            "jammed",
            region=[x0, y0, x1, y1],
            from_round=from_round,
            until_round=until_round,
            ack_timeout=rng.randint(2, 4),
            max_retries=rng.randint(2, 8),
        )

    def _sample_failures(
        self, rng: random.Random, config: ScenarioConfig, max_rounds: int
    ) -> Tuple[FailureEvent, ...]:
        events: List[FailureEvent] = []
        for _ in range(rng.randint(0, 3)):
            round_index = rng.randrange(max_rounds)
            kind = rng.choice(
                ("random", "thinning", "region_jamming", "targeted_cells",
                 "battery_depletion")
            )
            if kind == "random":
                if rng.random() < 0.5:
                    params = {"probability": round(rng.uniform(0.02, 0.3), 2)}
                else:
                    params = {"count": rng.randint(1, 5)}
            elif kind == "thinning":
                params = {
                    "target_enabled": config.cell_count + rng.randint(0, 5)
                }
            elif kind == "region_jamming":
                width = config.columns * config.cell_size
                height = config.rows * config.cell_size
                if rng.random() < 0.5:
                    params = {
                        "center": [
                            round(rng.uniform(0, width), 2),
                            round(rng.uniform(0, height), 2),
                        ],
                        "radius": round(rng.uniform(config.cell_size, 2 * config.cell_size), 2),
                    }
                else:
                    bx0 = round(rng.uniform(0, width / 2), 2)
                    by0 = round(rng.uniform(0, height / 2), 2)
                    params = {
                        "box": [
                            bx0,
                            by0,
                            round(bx0 + rng.uniform(0, width / 2), 2),
                            round(by0 + rng.uniform(0, height / 2), 2),
                        ]
                    }
            elif kind == "targeted_cells":
                count = rng.randint(1, min(3, config.cell_count))
                cells = rng.sample(
                    [(x, y) for x in range(config.columns) for y in range(config.rows)],
                    count,
                )
                params = {"cells": [[x, y] for x, y in sorted(cells)]}
            else:
                params = {"threshold": round(rng.uniform(0.0, 2.0), 2)}
            events.append(
                FailureEvent.with_params(round=round_index, kind=kind, **params)
            )
        events.sort(key=lambda event: (event.round, event.kind))
        return tuple(events)

    def _sample_schemes(self, rng: random.Random) -> Tuple[str, ...]:
        # SR and AR anchor every sample (the paper's central comparison, and
        # what the sr-ar-moves oracle needs); extras join at random.
        names = list(available_schemes())
        extras = [name for name in names if name not in ("SR", "AR")]
        chosen = {"SR", "AR"}
        for name in extras:
            if rng.random() < 0.3:
                chosen.add(name)
        return tuple(name for name in names if name in chosen)

    def _sample_engine(
        self, rng: random.Random, config: ScenarioConfig
    ) -> Tuple[int, str, int, bool]:
        """Sample ``[engine]`` consulting :func:`feasible_shards` (satellite fix).

        Roughly half the sharded samples request more tiles than the grid can
        feasibly host (or pick a grid that is ineligible outright) — those
        combinations are generated *on purpose* so the differential harness
        exercises and asserts the degrade-to-fewer-tiles / sequential
        fallback path instead of only ever seeing comfortable configurations.
        """
        feasible = feasible_shards(config.make_grid(), 16)
        if rng.random() < 0.6:
            return 1, "fork", feasible, False
        if feasible > 1 and rng.random() < 0.5:
            shards = rng.randint(2, feasible)
        else:
            # Deliberately infeasible: more tiles than halo-wide bands fit.
            shards = feasible + rng.randint(1, 4)
        expects_fallback = shards > feasible or feasible < 2
        return shards, "inline", feasible, expects_fallback


# ---------------------------------------------------------------- validation
def validate_roundtrip(scenario: Scenario) -> Scenario:
    """Validity gate: parse, round-trip byte-stably, and keep cache keys stable.

    Returns the re-parsed scenario (proven equal to the input in document
    form).  Raises :class:`FuzzValidationError` naming the failed property:

    * ``loads``  — the dumped document fails ``loads_scenario`` validation;
    * ``dumps``  — ``dumps(loads(dumps(x))) != dumps(x)`` (byte drift);
    * ``run_key`` — the compiled :class:`RunSpec` cells of the original and
      the re-parsed scenario disagree on any cache key.
    """
    first = dumps_scenario(scenario, format="toml")
    try:
        parsed = loads_scenario(first, format="toml")
    except ScenarioValidationError as error:
        raise FuzzValidationError("loads", str(error)) from error
    second = dumps_scenario(parsed, format="toml")
    if second != first:
        raise FuzzValidationError(
            "dumps", f"round-trip drifted:\n--- first\n{first}\n--- second\n{second}"
        )
    original_keys = [run_key(spec) for spec in scenario.run_specs()]
    parsed_keys = [run_key(spec) for spec in parsed.run_specs()]
    if original_keys != parsed_keys:
        raise FuzzValidationError(
            "run_key",
            f"compiled specs changed identity across the round-trip: "
            f"{original_keys} != {parsed_keys}",
        )
    return parsed


# ---------------------------------------------------------------- shrinking
def shrink_candidates(scenario: Scenario) -> Iterator[Scenario]:
    """Simplified variants of ``scenario``, cheapest simplification first.

    The order implements the shrink strategy: rounds and trials first (they
    only bound work), then the grid (with the deployment scaled to keep the
    document valid), then structural deletions (failures, channel, energy,
    sharding).  Variants that fail document validation are skipped — every
    yielded candidate is a valid scenario.
    """
    candidates: List[Scenario] = []

    def _try(**changes: object) -> None:
        try:
            candidates.append(dataclasses.replace(scenario, **changes))
        except (ScenarioValidationError, ValueError, TypeError):
            pass

    if scenario.max_rounds is not None and scenario.max_rounds > 20:
        _try(max_rounds=max(20, scenario.max_rounds // 2))
    if scenario.trials > 1:
        _try(trials=1)
    config = scenario.scenario
    for columns, rows in ((config.columns // 2, config.rows), (config.columns, config.rows // 2)):
        if columns < 2 or rows < 2:
            continue
        if columns % 2 == 1 and rows % 2 == 1 and (columns < 3 or rows < 3):
            continue
        cells = columns * rows
        if config.deployment == "per_cell":
            per_cell = max(2, config.deployed_count // config.cell_count)
            deployed = cells * per_cell
        else:
            deployed = max(2 * cells, config.deployed_count // 2)
        spare = config.spare_surplus
        if spare is not None:
            spare = min(spare, cells // 2)
        try:
            shrunk = dataclasses.replace(
                config,
                columns=columns,
                rows=rows,
                deployed_count=deployed,
                spare_surplus=spare,
            )
            candidates.append(dataclasses.replace(scenario, scenario=shrunk))
        except (ScenarioValidationError, ValueError, TypeError):
            pass
    for index in range(len(scenario.failures)):
        _try(failures=scenario.failures[:index] + scenario.failures[index + 1:])
    if scenario.channel is not None:
        _try(channel=None)
    if scenario.energy is not None:
        _try(energy=None, run_to_exhaustion=False)
    if scenario.run_to_exhaustion:
        _try(run_to_exhaustion=False)
    if scenario.shards != 1:
        _try(shards=1, shard_mode="fork")
    for candidate in candidates:
        yield candidate


def minimize_scenario(
    scenario: Scenario,
    still_fails: Callable[[Scenario], bool],
    max_evaluations: int = 48,
) -> Scenario:
    """Greedy falsifier minimization: accept any simplification that still fails.

    ``still_fails`` re-runs whatever check produced the falsifier; the loop
    restarts from the accepted candidate after every success and stops after
    ``max_evaluations`` predicate calls (the budget that keeps minimization
    bounded) or when no candidate reproduces the failure.  Deterministic:
    candidates come from :func:`shrink_candidates` in a fixed order, so equal
    inputs minimize to equal outputs.
    """
    current = scenario
    evaluations = 0
    progress = True
    while progress and evaluations < max_evaluations:
        progress = False
        for candidate in shrink_candidates(current):
            if evaluations >= max_evaluations:
                break
            evaluations += 1
            if still_fails(candidate):
                current = candidate
                progress = True
                break
    return current
