"""Unit tests for the round-based simulation engine."""

import pytest

from repro.core.hamilton import build_hamilton_cycle
from repro.core.protocol import MobilityController, RoundOutcome
from repro.core.replacement import HamiltonReplacementController
from repro.grid.virtual_grid import GridCoord
from repro.network.failures import TargetedCellFailure
from repro.sim.engine import RoundBasedEngine, run_recovery
from repro.sim.events import EventKind, EventLog

from helpers import make_hole


class NullController(MobilityController):
    """A controller that never does anything (used to test stall detection)."""

    name = "null"

    def execute_round(self, state, rng, round_index):
        return RoundOutcome(round_index=round_index)


def sr_controller(state):
    return HamiltonReplacementController(build_hamilton_cycle(state.grid))


class TestTermination:
    def test_stops_immediately_when_fully_covered(self, dense_state, rng):
        result = run_recovery(dense_state, sr_controller(dense_state), rng)
        assert result.rounds_executed == 1
        assert result.converged
        assert not result.stalled

    def test_stops_after_repairing_all_holes(self, dense_state, rng):
        make_hole(dense_state, GridCoord(1, 1))
        make_hole(dense_state, GridCoord(3, 2))
        result = run_recovery(dense_state, sr_controller(dense_state), rng)
        assert result.converged
        assert result.metrics.final_holes == 0
        assert result.rounds_executed < 10

    def test_detects_stall_when_nothing_can_act(self, sparse_state, rng):
        # Null controller + a hole: no progress is ever made.
        make_hole(sparse_state, GridCoord(0, 0))
        engine = RoundBasedEngine(sparse_state, NullController(), rng, max_rounds=50)
        result = engine.run()
        assert result.stalled
        assert not result.converged
        assert result.rounds_executed <= engine.idle_round_limit + 1

    def test_max_rounds_bound_is_respected(self, sparse_state, rng):
        make_hole(sparse_state, GridCoord(2, 2))
        engine = RoundBasedEngine(
            sparse_state, sr_controller(sparse_state), rng, max_rounds=3
        )
        result = engine.run()
        assert result.rounds_executed <= 3

    def test_bound_hit_with_holes_left_reports_stalled_and_exhausted(
        self, sparse_state, rng
    ):
        # Regression: a run that exhausts max_rounds with holes remaining used
        # to return stalled=False, indistinguishable from a clean finish.
        make_hole(sparse_state, GridCoord(2, 2))
        engine = RoundBasedEngine(
            sparse_state, sr_controller(sparse_state), rng, max_rounds=2
        )
        result = engine.run()
        assert result.metrics.final_holes > 0
        assert result.exhausted
        assert result.stalled
        assert not result.converged

    def test_converged_run_is_neither_stalled_nor_exhausted(self, dense_state, rng):
        make_hole(dense_state, GridCoord(1, 1))
        result = run_recovery(dense_state, sr_controller(dense_state), rng)
        assert result.converged
        assert not result.stalled
        assert not result.exhausted

    def test_invalid_parameters(self, dense_state, rng):
        with pytest.raises(ValueError):
            RoundBasedEngine(dense_state, NullController(), rng, max_rounds=0)
        with pytest.raises(ValueError):
            RoundBasedEngine(dense_state, NullController(), rng, idle_round_limit=0)


class TestFailureSchedule:
    def test_dynamic_holes_are_repaired(self, dense_state, rng):
        schedule = {
            2: TargetedCellFailure(cells=[GridCoord(2, 2)]),
            4: TargetedCellFailure(cells=[GridCoord(0, 4)]),
        }
        engine = RoundBasedEngine(
            dense_state, sr_controller(dense_state), rng, failure_schedule=schedule
        )
        result = engine.run()
        assert result.converged
        assert result.metrics.final_holes == 0
        # The engine must not stop before the last scheduled failure fires.
        assert result.rounds_executed > 4

    def test_failure_events_logged(self, dense_state, rng):
        log = EventLog()
        schedule = {1: TargetedCellFailure(cells=[GridCoord(1, 1)])}
        engine = RoundBasedEngine(
            dense_state,
            sr_controller(dense_state),
            rng,
            failure_schedule=schedule,
            event_log=log,
        )
        engine.run()
        assert log.count(EventKind.NODE_DISABLED) == 3
        assert log.count(EventKind.NODE_MOVED) >= 1


class TestResultContents:
    def test_series_lengths_match_rounds(self, dense_state, rng):
        make_hole(dense_state, GridCoord(1, 3))
        result = run_recovery(dense_state, sr_controller(dense_state), rng)
        assert result.series.rounds == result.rounds_executed
        assert len(result.round_outcomes) == result.rounds_executed
        assert result.series.holes[-1] == 0

    def test_cumulative_moves_series(self, dense_state, rng):
        make_hole(dense_state, GridCoord(1, 3))
        result = run_recovery(dense_state, sr_controller(dense_state), rng)
        cumulative = result.series.cumulative_moves
        assert cumulative[-1] == result.metrics.total_moves
        assert all(a <= b for a, b in zip(cumulative, cumulative[1:]))

    def test_metrics_snapshot_fields(self, dense_state, rng):
        make_hole(dense_state, GridCoord(2, 0))
        initial_spares = dense_state.spare_count
        result = run_recovery(dense_state, sr_controller(dense_state), rng)
        metrics = result.metrics
        assert metrics.initial_holes == 1
        assert metrics.initial_spares == initial_spares
        assert metrics.final_holes == 0
        assert metrics.repaired_holes == 1
        assert metrics.cell_coverage_before < 1.0
        assert metrics.cell_coverage_after == 1.0
        assert metrics.scheme == "SR"

    def test_event_log_records_full_trace(self, dense_state, rng):
        log = EventLog()
        make_hole(dense_state, GridCoord(1, 1))
        engine = RoundBasedEngine(
            dense_state, sr_controller(dense_state), rng, event_log=log
        )
        engine.run()
        assert log.count(EventKind.PROCESS_STARTED) == 1
        assert log.count(EventKind.PROCESS_CONVERGED) == 1
        assert log.count(EventKind.SIMULATION_FINISHED) == 1
        assert log.count(EventKind.ROUND_COMPLETED) >= 1

    def test_finalize_called_on_shutdown(self, sparse_state, rng):
        controller = sr_controller(sparse_state)
        make_hole(sparse_state, GridCoord(0, 0))
        engine = RoundBasedEngine(sparse_state, controller, rng, max_rounds=2)
        engine.run()
        assert not controller.active_processes()
