"""Round-based simulation engine.

The paper describes its schemes in a round-based system (Section 2): in every
round each head observes the cells it monitors, control messages sent in the
previous round arrive, and replacement moves complete "before the next round
starts".  :class:`RoundBasedEngine` drives one
:class:`~repro.core.protocol.MobilityController` through those synchronous
rounds, optionally injecting additional failures while the simulation runs
(dynamic holes), and collects the metrics the paper's evaluation reports.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.protocol import MobilityController, RoundOutcome
from repro.network.failures import FailureModel
from repro.network.state import WsnState
from repro.sim.events import EventKind, EventLog
from repro.sim.metrics import (
    InitialSnapshot,
    RoundSeries,
    RunMetrics,
    collect_metrics,
    snapshot_state,
)

#: Consecutive no-progress rounds after which the engine declares the run stalled.
DEFAULT_IDLE_ROUND_LIMIT = 3


@dataclass
class SimulationResult:
    """Everything a caller may want to know after a recovery run."""

    metrics: RunMetrics
    rounds_executed: int
    stalled: bool
    round_outcomes: List[RoundOutcome] = field(default_factory=list)
    series: RoundSeries = field(default_factory=RoundSeries)
    event_log: Optional[EventLog] = None

    @property
    def converged(self) -> bool:
        """Whether the run ended with complete coverage (no holes left)."""
        return self.metrics.coverage_restored


class RoundBasedEngine:
    """Drives a controller through synchronous rounds until the network is repaired.

    Parameters
    ----------
    state:
        The network to repair; it is mutated in place.
    controller:
        The hole-recovery scheme under test (SR, AR, or an extension).
    rng:
        Random stream used for movement targets and controller tie-breaking.
    max_rounds:
        Hard bound on the number of rounds; generous by default because a
        single cascading replacement needs at most ``m*n`` rounds.
    failure_schedule:
        Optional mapping from round index to a
        :class:`~repro.network.failures.FailureModel` applied at the start of
        that round — this is how dynamic hole creation is simulated.
    event_log:
        Optional :class:`~repro.sim.events.EventLog` receiving a trace of the run.
    idle_round_limit:
        Number of consecutive rounds without progress after which the run is
        declared stalled (holes remain but nobody can act on them).
    """

    def __init__(
        self,
        state: WsnState,
        controller: MobilityController,
        rng: random.Random,
        max_rounds: Optional[int] = None,
        failure_schedule: Optional[Dict[int, FailureModel]] = None,
        event_log: Optional[EventLog] = None,
        idle_round_limit: int = DEFAULT_IDLE_ROUND_LIMIT,
    ) -> None:
        if idle_round_limit < 1:
            raise ValueError(f"idle_round_limit must be >= 1, got {idle_round_limit}")
        self.state = state
        self.controller = controller
        self.rng = rng
        self.max_rounds = max_rounds if max_rounds is not None else 4 * state.grid.cell_count
        if self.max_rounds < 1:
            raise ValueError(f"max_rounds must be >= 1, got {self.max_rounds}")
        self.failure_schedule = dict(failure_schedule or {})
        # The schedule is fixed for the lifetime of the engine, so the last
        # scheduled round can be computed once instead of scanning the whole
        # schedule in every round's pending-failures check.
        self._last_scheduled_round = max(self.failure_schedule, default=-1)
        self.event_log = event_log
        self.idle_round_limit = idle_round_limit

    # -------------------------------------------------------------------- run
    def run(self) -> SimulationResult:
        """Execute rounds until coverage is restored, the run stalls, or the bound hits."""
        initial = snapshot_state(self.state)
        self._emit(
            EventKind.HOLE_DETECTED,
            round_index=0,
            holes=initial.holes,
            spares=initial.spares,
        )
        outcomes: List[RoundOutcome] = []
        series = RoundSeries()
        idle_rounds = 0
        stalled = False
        rounds_executed = 0

        for round_index in range(self.max_rounds):
            self._inject_failures(round_index)
            outcome = self.controller.execute_round(self.state, self.rng, round_index)
            outcomes.append(outcome)
            rounds_executed = round_index + 1
            self._emit_outcome(outcome)
            # hole_count and spare_count are O(1) reads of the state's
            # incremental indices, so per-round sampling stays cheap on
            # arbitrarily large grids.
            series.record(
                holes=self.state.hole_count,
                moves=outcome.move_count,
                distance=outcome.total_distance,
                spares=self.state.spare_count,
            )

            if outcome.made_progress:
                idle_rounds = 0
            else:
                idle_rounds += 1

            if self._finished(round_index):
                break
            if idle_rounds >= self.idle_round_limit and not self._failures_pending(round_index):
                stalled = self.state.hole_count > 0
                break

        final_round = rounds_executed
        finalize = getattr(self.controller, "finalize", None)
        if callable(finalize):
            finalize(self.state, final_round)
        messages_sent = sum(outcome.messages_sent for outcome in outcomes)
        metrics = collect_metrics(
            self.controller, self.state, initial, rounds_executed, messages_sent
        )
        self._emit(
            EventKind.SIMULATION_FINISHED,
            round_index=final_round,
            holes=self.state.hole_count,
            moves=metrics.total_moves,
            distance=round(metrics.total_distance, 3),
        )
        return SimulationResult(
            metrics=metrics,
            rounds_executed=rounds_executed,
            stalled=stalled,
            round_outcomes=outcomes,
            series=series,
            event_log=self.event_log,
        )

    # --------------------------------------------------------------- internal
    def _inject_failures(self, round_index: int) -> None:
        model = self.failure_schedule.get(round_index)
        if model is None:
            return
        victims = model.apply(self.state, self.rng)
        for node_id in victims:
            self._emit(EventKind.NODE_DISABLED, round_index=round_index, node_id=node_id)
        if victims:
            self._emit(
                EventKind.HOLE_DETECTED,
                round_index=round_index,
                holes=self.state.hole_count,
            )

    def _failures_pending(self, round_index: int) -> bool:
        return self._last_scheduled_round > round_index

    def _finished(self, round_index: int) -> bool:
        if self.state.hole_count > 0:
            return False
        if self._failures_pending(round_index):
            return False
        return self.controller.is_quiescent(self.state)

    def _emit_outcome(self, outcome: RoundOutcome) -> None:
        if self.event_log is None:
            return
        for process_id in outcome.processes_started:
            self._emit(
                EventKind.PROCESS_STARTED,
                round_index=outcome.round_index,
                process_id=process_id,
            )
        for move in outcome.moves:
            self._emit(
                EventKind.NODE_MOVED,
                round_index=outcome.round_index,
                node_id=move.node_id,
                source=move.source_cell.as_tuple(),
                target=move.target_cell.as_tuple(),
                distance=round(move.distance, 3),
                process_id=move.process_id,
            )
        for process_id in outcome.processes_converged:
            self._emit(
                EventKind.PROCESS_CONVERGED,
                round_index=outcome.round_index,
                process_id=process_id,
            )
        for process_id in outcome.processes_failed:
            self._emit(
                EventKind.PROCESS_FAILED,
                round_index=outcome.round_index,
                process_id=process_id,
            )
        self._emit(
            EventKind.ROUND_COMPLETED,
            round_index=outcome.round_index,
            moves=outcome.move_count,
        )

    def _emit(self, kind: EventKind, round_index: int, **details: object) -> None:
        if self.event_log is not None:
            self.event_log.emit(kind, round_index, **details)


def run_recovery(
    state: WsnState,
    controller: MobilityController,
    rng: random.Random,
    max_rounds: Optional[int] = None,
    failure_schedule: Optional[Dict[int, FailureModel]] = None,
    event_log: Optional[EventLog] = None,
) -> SimulationResult:
    """Convenience wrapper: build a :class:`RoundBasedEngine` and run it."""
    engine = RoundBasedEngine(
        state,
        controller,
        rng,
        max_rounds=max_rounds,
        failure_schedule=failure_schedule,
        event_log=event_log,
    )
    return engine.run()
