"""Round-based simulation engine.

The paper describes its schemes in a round-based system (Section 2): in every
round each head observes the cells it monitors, control messages sent in the
previous round arrive, and replacement moves complete "before the next round
starts".  :class:`RoundBasedEngine` drives one
:class:`~repro.core.protocol.MobilityController` through those synchronous
rounds, optionally injecting additional failures while the simulation runs
(dynamic holes), and collects the metrics the paper's evaluation reports.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.protocol import MobilityController, RoundOutcome
from repro.network.energy import EnergyModel, remaining_energy
from repro.network.failures import FailureModel
from repro.network.state import WsnState
from repro.sim.events import EventKind, EventLog
from repro.sim.metrics import (
    InitialSnapshot,
    RoundSeries,
    RunMetrics,
    collect_metrics,
    snapshot_state,
)

#: Consecutive no-progress rounds after which the engine declares the run stalled.
DEFAULT_IDLE_ROUND_LIMIT = 3


@dataclass
class SimulationResult:
    """Everything a caller may want to know after a recovery run."""

    metrics: RunMetrics
    rounds_executed: int
    stalled: bool
    #: Whether the run hit ``max_rounds`` before finishing.  A bound-hit run
    #: with holes remaining is also reported as stalled: it did not converge,
    #: and must not be indistinguishable from a clean finish.
    exhausted: bool = False
    round_outcomes: List[RoundOutcome] = field(default_factory=list)
    series: RoundSeries = field(default_factory=RoundSeries)
    event_log: Optional[EventLog] = None
    #: Ids of nodes the engine disabled as battery-depleted, in depletion order.
    depleted_nodes: List[int] = field(default_factory=list)

    @property
    def converged(self) -> bool:
        """Whether the run ended with complete coverage (no holes left)."""
        return self.metrics.coverage_restored


class RoundBasedEngine:
    """Drives a controller through synchronous rounds until the network is repaired.

    Parameters
    ----------
    state:
        The network to repair; it is mutated in place.
    controller:
        The hole-recovery scheme under test (SR, AR, or an extension).
    rng:
        Random stream used for movement targets and controller tie-breaking.
    max_rounds:
        Hard bound on the number of rounds; generous by default because a
        single cascading replacement needs at most ``m*n`` rounds.
    failure_schedule:
        Optional mapping from round index to a
        :class:`~repro.network.failures.FailureModel` applied at the start of
        that round — this is how dynamic hole creation is simulated.
    event_log:
        Optional :class:`~repro.sim.events.EventLog` receiving a trace of the run.
    idle_round_limit:
        Number of consecutive rounds without progress after which the run is
        declared stalled (holes remain but nobody can act on them).
    energy_model:
        Optional :class:`~repro.network.energy.EnergyModel` the engine applies
        at the start of every round: idle drain for every enabled node, then
        engine-driven depletion — nodes at or below the model's threshold are
        disabled, so new holes emerge from the energy physics mid-run.
    run_to_exhaustion:
        With an energy model whose idle drain is positive, do not stop when
        coverage is complete — keep draining until a hole becomes
        unrepairable (stall), the network dies, or ``max_rounds`` hits.  This
        is the run-until-network-death mode of the lifetime workloads.
    """

    def __init__(
        self,
        state: WsnState,
        controller: MobilityController,
        rng: random.Random,
        max_rounds: Optional[int] = None,
        failure_schedule: Optional[Dict[int, FailureModel]] = None,
        event_log: Optional[EventLog] = None,
        idle_round_limit: int = DEFAULT_IDLE_ROUND_LIMIT,
        energy_model: Optional[EnergyModel] = None,
        run_to_exhaustion: bool = False,
    ) -> None:
        if idle_round_limit < 1:
            raise ValueError(f"idle_round_limit must be >= 1, got {idle_round_limit}")
        self.state = state
        self.controller = controller
        self.rng = rng
        self.max_rounds = max_rounds if max_rounds is not None else 4 * state.grid.cell_count
        if self.max_rounds < 1:
            raise ValueError(f"max_rounds must be >= 1, got {self.max_rounds}")
        self.failure_schedule = dict(failure_schedule or {})
        # The schedule is fixed for the lifetime of the engine, so the last
        # scheduled round can be computed once instead of scanning the whole
        # schedule in every round's pending-failures check.
        self._last_scheduled_round = max(self.failure_schedule, default=-1)
        self.event_log = event_log
        self.idle_round_limit = idle_round_limit
        self.energy_model = energy_model
        self.run_to_exhaustion = run_to_exhaustion
        self.depleted_nodes: List[int] = []
        if energy_model is not None:
            # Route the model's rates into the node-level debit paths: moves
            # through the state's movement model (a reconfigured copy, so
            # e.g. a whole-cell targeting choice survives) and messages
            # through the controller's charge rate.
            if energy_model.move_cost_per_meter != state.movement_model.move_cost_per_meter:
                state.movement_model = state.movement_model.with_move_cost(
                    energy_model.move_cost_per_meter
                )
            controller.message_cost = energy_model.message_cost

    # -------------------------------------------------------------------- run
    def run(self) -> SimulationResult:
        """Execute rounds until coverage is restored, the run stalls, or the bound hits."""
        initial = snapshot_state(self.state)
        self._emit(
            EventKind.HOLE_DETECTED,
            round_index=0,
            holes=initial.holes,
            spares=initial.spares,
        )
        outcomes: List[RoundOutcome] = []
        series = RoundSeries()
        idle_rounds = 0
        stalled = False
        exhausted = False
        rounds_executed = 0
        track_energy = self.energy_model is not None

        for round_index in range(self.max_rounds):
            self._inject_failures(round_index)
            round_depletions = self._apply_energy(round_index)
            outcome = self.controller.execute_round(self.state, self.rng, round_index)
            outcomes.append(outcome)
            rounds_executed = round_index + 1
            self._emit_outcome(outcome)
            # hole_count and spare_count are O(1) reads of the state's
            # incremental indices, so per-round sampling stays cheap on
            # arbitrarily large grids.  The energy total is an O(enabled)
            # sweep, sampled only when an energy model is active.
            series.record(
                holes=self.state.hole_count,
                moves=outcome.move_count,
                distance=outcome.total_distance,
                spares=self.state.spare_count,
                energy=remaining_energy(self.state)[0] if track_energy else None,
                depletions=round_depletions if track_energy else None,
            )

            if outcome.made_progress or round_depletions:
                idle_rounds = 0
            else:
                idle_rounds += 1

            if self._finished(round_index):
                break
            if idle_rounds >= self.idle_round_limit and not self._failures_pending(round_index):
                if self.state.hole_count > 0:
                    # Holes remain and nobody has acted on them for the whole
                    # idle window: the run is stuck, in every mode.
                    stalled = True
                    break
                if not self._drain_active():
                    break
                # Coverage is complete but batteries are still draining in
                # run-to-exhaustion mode: keep going until depletion opens the
                # next hole (or the round bound hits).
        else:
            exhausted = True

        if exhausted and self.state.hole_count > 0:
            # The round bound hit with holes remaining: the run did not
            # converge and must not look like a clean finish.
            stalled = True

        final_round = rounds_executed
        finalize = getattr(self.controller, "finalize", None)
        if callable(finalize):
            finalize(self.state, final_round)
        messages_sent = sum(outcome.messages_sent for outcome in outcomes)
        metrics = collect_metrics(
            self.controller, self.state, initial, rounds_executed, messages_sent
        )
        self._emit(
            EventKind.SIMULATION_FINISHED,
            round_index=final_round,
            holes=self.state.hole_count,
            moves=metrics.total_moves,
            distance=round(metrics.total_distance, 3),
        )
        return SimulationResult(
            metrics=metrics,
            rounds_executed=rounds_executed,
            stalled=stalled,
            exhausted=exhausted,
            round_outcomes=outcomes,
            series=series,
            event_log=self.event_log,
            depleted_nodes=list(self.depleted_nodes),
        )

    # --------------------------------------------------------------- internal
    def _apply_energy(self, round_index: int) -> int:
        """Apply the energy model for one round; returns how many nodes depleted."""
        if self.energy_model is None:
            return 0
        victims = self.energy_model.apply_round(self.state)
        if not victims:
            return 0
        self.depleted_nodes.extend(victims)
        for node_id in victims:
            self._emit(
                EventKind.NODE_DISABLED,
                round_index=round_index,
                node_id=node_id,
                cause="battery-depleted",
            )
        self._emit(
            EventKind.HOLE_DETECTED,
            round_index=round_index,
            holes=self.state.hole_count,
        )
        return len(victims)

    def _drain_active(self) -> bool:
        """Whether run-to-exhaustion still has energy physics to play out."""
        return (
            self.run_to_exhaustion
            and self.energy_model is not None
            and self.energy_model.idle_cost_per_round > 0
            and self.state.enabled_count > 0
        )

    def _inject_failures(self, round_index: int) -> None:
        model = self.failure_schedule.get(round_index)
        if model is None:
            return
        victims = model.apply(self.state, self.rng)
        for node_id in victims:
            self._emit(EventKind.NODE_DISABLED, round_index=round_index, node_id=node_id)
        if victims:
            self._emit(
                EventKind.HOLE_DETECTED,
                round_index=round_index,
                holes=self.state.hole_count,
            )

    def _failures_pending(self, round_index: int) -> bool:
        return self._last_scheduled_round > round_index

    def _finished(self, round_index: int) -> bool:
        if self.state.hole_count > 0:
            return False
        if self._failures_pending(round_index):
            return False
        if self._drain_active():
            # Lifetime mode: complete coverage is not the end — batteries keep
            # draining until depletion opens a hole nobody can repair.
            return False
        return self.controller.is_quiescent(self.state)

    def _emit_outcome(self, outcome: RoundOutcome) -> None:
        if self.event_log is None:
            return
        for process_id in outcome.processes_started:
            self._emit(
                EventKind.PROCESS_STARTED,
                round_index=outcome.round_index,
                process_id=process_id,
            )
        for move in outcome.moves:
            self._emit(
                EventKind.NODE_MOVED,
                round_index=outcome.round_index,
                node_id=move.node_id,
                source=move.source_cell.as_tuple(),
                target=move.target_cell.as_tuple(),
                distance=round(move.distance, 3),
                process_id=move.process_id,
            )
        for process_id in outcome.processes_converged:
            self._emit(
                EventKind.PROCESS_CONVERGED,
                round_index=outcome.round_index,
                process_id=process_id,
            )
        for process_id in outcome.processes_failed:
            self._emit(
                EventKind.PROCESS_FAILED,
                round_index=outcome.round_index,
                process_id=process_id,
            )
        self._emit(
            EventKind.ROUND_COMPLETED,
            round_index=outcome.round_index,
            moves=outcome.move_count,
        )

    def _emit(self, kind: EventKind, round_index: int, **details: object) -> None:
        if self.event_log is not None:
            self.event_log.emit(kind, round_index, **details)


def run_recovery(
    state: WsnState,
    controller: MobilityController,
    rng: random.Random,
    max_rounds: Optional[int] = None,
    failure_schedule: Optional[Dict[int, FailureModel]] = None,
    event_log: Optional[EventLog] = None,
    energy_model: Optional[EnergyModel] = None,
    run_to_exhaustion: bool = False,
) -> SimulationResult:
    """Convenience wrapper: build a :class:`RoundBasedEngine` and run it."""
    engine = RoundBasedEngine(
        state,
        controller,
        rng,
        max_rounds=max_rounds,
        failure_schedule=failure_schedule,
        event_log=event_log,
        energy_model=energy_model,
        run_to_exhaustion=run_to_exhaustion,
    )
    return engine.run()
