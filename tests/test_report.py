"""Unit tests for the shape-analysis / report module."""

import pytest

from repro.experiments.report import (
    ShapeCheck,
    check_dominates,
    check_monotone_decreasing,
    check_tracks,
    find_crossover,
    render_markdown_report,
    section5_shape_checks,
    series_ratio,
)
from repro.experiments.results import ExperimentResult


def make_experiment():
    """A small synthetic comparison table shaped like the paper's Figures 6-8."""
    result = ExperimentResult(
        name="synthetic sweep",
        columns=[
            "N",
            "holes",
            "SR_processes",
            "AR_processes",
            "SR_success_rate",
            "AR_success_rate",
            "SR_moves",
            "AR_moves",
            "SR_distance",
            "AR_distance",
            "SR_moves_analytic",
            "SR_distance_analytic",
        ],
        description="synthetic data for unit tests",
    )
    rows = [
        # N, holes, SRp, ARp, SRsucc, ARsucc, SRmoves, ARmoves, SRdist, ARdist, SRa, SRda
        (10, 80, 80, 240, 1.0, 0.7, 1300, 400, 6200, 1800, 1800, 9000),
        (55, 70, 70, 200, 1.0, 0.8, 350, 280, 1600, 1300, 340, 1650),
        (200, 40, 40, 130, 1.0, 0.9, 90, 140, 430, 650, 70, 340),
        (600, 5, 5, 18, 1.0, 1.0, 5, 20, 20, 80, 5, 22),
    ]
    for row in rows:
        result.add_row(
            N=row[0],
            holes=row[1],
            SR_processes=row[2],
            AR_processes=row[3],
            SR_success_rate=row[4],
            AR_success_rate=row[5],
            SR_moves=row[6],
            AR_moves=row[7],
            SR_distance=row[8],
            AR_distance=row[9],
            SR_moves_analytic=row[10],
            SR_distance_analytic=row[11],
        )
    return result


class TestPrimitives:
    def test_series_ratio(self):
        experiment = make_experiment()
        ratios = dict(series_ratio(experiment, "N", "AR_processes", "SR_processes"))
        assert ratios[10] == pytest.approx(3.0)
        assert ratios[600] == pytest.approx(3.6)

    def test_find_crossover(self):
        experiment = make_experiment()
        crossover = find_crossover(experiment, "N", "SR_moves", "AR_moves")
        assert crossover == 200

    def test_find_crossover_none_when_never_below(self):
        result = ExperimentResult(name="t", columns=["N", "a", "b"])
        result.add_row(N=1, a=10, b=5)
        result.add_row(N=2, a=9, b=5)
        assert find_crossover(result, "N", "a", "b") is None

    def test_check_dominates(self):
        experiment = make_experiment()
        ok = check_dominates(experiment, "N", "SR_processes", "AR_processes", factor=1.9)
        assert ok.holds
        too_strict = check_dominates(experiment, "N", "SR_processes", "AR_processes", factor=4.0)
        assert not too_strict.holds
        assert "violated" in too_strict.details

    def test_check_monotone_decreasing(self):
        experiment = make_experiment()
        assert check_monotone_decreasing(experiment, "N", "SR_moves").holds
        result = ExperimentResult(name="t", columns=["N", "y"])
        result.add_row(N=1, y=10.0)
        result.add_row(N=2, y=50.0)
        assert not check_monotone_decreasing(result, "N", "y").holds

    def test_check_tracks(self):
        experiment = make_experiment()
        assert check_tracks(experiment, "N", "SR_moves", "SR_moves_analytic", rel_band=1.5).holds
        assert not check_tracks(
            experiment, "N", "AR_moves", "SR_moves_analytic", rel_band=0.05
        ).holds

    def test_shapecheck_str(self):
        check = ShapeCheck(claim="x" * 100, holds=True, details="fine")
        text = str(check)
        assert text.startswith("[OK ]")
        assert "..." in text


class TestSection5Checks:
    def test_all_claims_hold_on_well_shaped_data(self):
        checks = section5_shape_checks(make_experiment())
        assert checks, "at least one claim is evaluated"
        assert all(check.holds for check in checks)

    def test_detects_broken_success_rate(self):
        experiment = make_experiment()
        experiment.rows[0]["SR_success_rate"] = 0.5
        checks = section5_shape_checks(experiment)
        success_check = next(c for c in checks if "success rate" in c.claim)
        assert not success_check.holds

    def test_real_sweep_passes_shape_checks(self):
        """A real (small) sweep of the actual simulator satisfies the claims."""
        from repro.experiments.figures import run_section5_experiment
        from repro.sim.scenario import ScenarioConfig

        experiment = run_section5_experiment(
            spare_values=[10, 60, 200],
            config=ScenarioConfig(columns=8, rows=8, deployed_count=400, seed=17),
            trials=1,
        )
        checks = section5_shape_checks(experiment)
        # The crossover and tracking claims are grid-size dependent; the
        # process-count and success-rate claims must hold even on this tiny grid.
        by_claim = {check.claim: check for check in checks}
        assert by_claim["SR_processes stays below AR_processes (factor 1.9)"].holds
        assert by_claim["SR success rate is 100% for every N"].holds


class TestMarkdownReport:
    def test_report_contains_table_and_checks(self):
        experiment = make_experiment()
        report = render_markdown_report(experiment, title="demo report")
        assert report.startswith("# demo report")
        assert "| N |" in report
        assert "Shape checks" in report
        assert "shape checks hold" in report
        assert "✅" in report

    def test_report_with_explicit_checks(self):
        experiment = make_experiment()
        checks = [ShapeCheck(claim="custom claim", holds=False, details="nope")]
        report = render_markdown_report(experiment, checks=checks)
        assert "❌ custom claim" in report
        assert "0 / 1" in report
