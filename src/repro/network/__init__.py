"""Wireless-sensor-network substrate: nodes, radio, deployment, failures.

This subpackage models the physical network the paper's mobility-control
algorithms operate on: sensor nodes with positions and energy, a unit-disk
radio, deployment generators, failure/attack injection, the movement model,
and the mutable network state (:class:`repro.network.state.WsnState`) that
tracks which node occupies which virtual-grid cell and which node is the grid
head.
"""

from repro.network.node import NodeRole, NodeState, SensorNode
from repro.network.radio import UnitDiskRadio
from repro.network.deployment import (
    deploy_grid_heads,
    deploy_per_cell,
    deploy_uniform,
    deploy_clustered,
)
from repro.network.failures import (
    BatteryDepletionFailure,
    CompositeFailure,
    FailureEvent,
    FailureModel,
    RandomFailure,
    RegionJammingFailure,
    TargetedCellFailure,
    ThinningToEnabledCount,
    available_failure_kinds,
    build_failure_model,
    compile_failure_schedule,
)
from repro.network.energy import (
    EnergyModel,
    EnergySummary,
    energy_summary,
    recovery_energy_cost,
)
from repro.network.mobility import MoveRecord, MovementModel
from repro.network.messages import Mailbox, Message, MessageKind
from repro.network.channel import (
    ChannelModel,
    ChannelState,
    ChannelStats,
    available_channel_kinds,
    build_channel,
    parse_channel_spec,
)
from repro.network.state import WsnState

__all__ = [
    "NodeRole",
    "NodeState",
    "SensorNode",
    "UnitDiskRadio",
    "deploy_uniform",
    "deploy_per_cell",
    "deploy_grid_heads",
    "deploy_clustered",
    "FailureEvent",
    "FailureModel",
    "available_failure_kinds",
    "build_failure_model",
    "compile_failure_schedule",
    "RandomFailure",
    "RegionJammingFailure",
    "TargetedCellFailure",
    "BatteryDepletionFailure",
    "ThinningToEnabledCount",
    "CompositeFailure",
    "EnergyModel",
    "EnergySummary",
    "energy_summary",
    "recovery_energy_cost",
    "MoveRecord",
    "MovementModel",
    "Message",
    "MessageKind",
    "Mailbox",
    "ChannelModel",
    "ChannelState",
    "ChannelStats",
    "available_channel_kinds",
    "build_channel",
    "parse_channel_spec",
    "WsnState",
]
