"""Coverage evaluation.

The paper equates *complete coverage* with "every virtual-grid cell has a
grid head" (Section 2, following the GAF result): when that holds, the heads
alone cover the surveillance area and stay connected.  This module provides

* the cell-level coverage metrics the paper's argument is based on, and
* a sampled area-coverage metric for a given sensing radius, which is useful
  to visualise how large the physical blind spots of a set of holes are.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from repro.grid.geometry import Point
from repro.grid.virtual_grid import GridCoord, VirtualGrid


@dataclass(frozen=True)
class CoverageReport:
    """Summary of coverage for one network state."""

    total_cells: int
    covered_cells: int
    vacant_cells: int
    cell_coverage: float
    area_coverage: Optional[float] = None

    @property
    def is_complete(self) -> bool:
        """Whether every cell has at least one enabled node (no holes)."""
        return self.vacant_cells == 0


def cell_coverage_fraction(state) -> float:
    """Fraction of cells that currently have a head (i.e. are not holes).

    O(1): both terms come from the state's incremental indices.
    """
    total = state.grid.cell_count
    vacant = state.hole_count
    return (total - vacant) / total if total else 1.0


def covered_cells(state) -> List[GridCoord]:
    """Cells that currently have at least one enabled node."""
    return state.occupied_cells()


def sampled_area_coverage(
    positions: Union[Sequence[Point], np.ndarray],
    grid: VirtualGrid,
    sensing_range: float,
    samples_per_cell_side: int = 4,
) -> float:
    """Fraction of the surveillance area within ``sensing_range`` of a sensor.

    The area is sampled on a regular lattice (``samples_per_cell_side`` sample
    points per cell side); exact polygon unions are unnecessary for the shape
    comparisons this library targets.

    ``positions`` is either a sequence of :class:`~repro.grid.geometry.Point`
    or an ``(N, 2)`` float array (the zero-copy path used by array-backed
    states).  Each sensor only touches the lattice window its sensing disk
    can reach, so the cost is proportional to the covered samples rather than
    ``N x lattice`` — which is what keeps the metric usable at the bench
    tiers' node counts.
    """
    if sensing_range < 0:
        raise ValueError(f"sensing_range must be non-negative, got {sensing_range}")
    if samples_per_cell_side < 1:
        raise ValueError("samples_per_cell_side must be >= 1")
    bounds = grid.bounds
    nx = grid.columns * samples_per_cell_side
    ny = grid.rows * samples_per_cell_side
    xs = np.linspace(bounds.min_x, bounds.max_x, nx, endpoint=False) + (
        bounds.width / nx / 2.0
    )
    ys = np.linspace(bounds.min_y, bounds.max_y, ny, endpoint=False) + (
        bounds.height / ny / 2.0
    )
    if isinstance(positions, np.ndarray):
        coords = np.asarray(positions, dtype=np.float64).reshape(-1, 2)
        px, py = coords[:, 0], coords[:, 1]
    else:
        px = np.array([p.x for p in positions], dtype=np.float64)
        py = np.array([p.y for p in positions], dtype=np.float64)
    if len(px) == 0:
        return 0.0
    covered = np.zeros((ny, nx), dtype=bool)
    range_sq = sensing_range * sensing_range
    total = covered.size
    done = 0
    for x, y in zip(px.tolist(), py.tolist()):
        # Samples outside the bounding square of the sensing disk can never
        # satisfy the distance test, so restrict the update to that window;
        # inside it the test is element-wise identical to the full-lattice
        # version, and OR-ing windows commutes, so the result is unchanged.
        i_lo = int(np.searchsorted(xs, x - sensing_range, side="left"))
        i_hi = int(np.searchsorted(xs, x + sensing_range, side="right"))
        j_lo = int(np.searchsorted(ys, y - sensing_range, side="left"))
        j_hi = int(np.searchsorted(ys, y + sensing_range, side="right"))
        if i_lo >= i_hi or j_lo >= j_hi:
            continue
        dx_sq = (xs[i_lo:i_hi] - x) ** 2
        dy_sq = (ys[j_lo:j_hi] - y) ** 2
        window = covered[j_lo:j_hi, i_lo:i_hi]
        window |= dy_sq[:, None] + dx_sq[None, :] <= range_sq
        done += 1
        if done % 256 == 0 and covered.sum() == total:
            break
    return float(covered.mean())


def coverage_report(
    state,
    sensing_range: Optional[float] = None,
    samples_per_cell_side: int = 4,
) -> CoverageReport:
    """Build a :class:`CoverageReport` for a network state.

    When ``sensing_range`` is given, the sampled area coverage of the enabled
    nodes is included as well.
    """
    total = state.grid.cell_count
    vacant = state.hole_count
    area_coverage = None
    if sensing_range is not None:
        arrays = getattr(state, "arrays", None)
        if arrays is not None:
            positions = arrays.positions[arrays.enabled_mask()]
        else:
            positions = [node.position for node in state.enabled_nodes()]
        area_coverage = sampled_area_coverage(
            positions,
            state.grid,
            sensing_range,
            samples_per_cell_side=samples_per_cell_side,
        )
    return CoverageReport(
        total_cells=total,
        covered_cells=total - vacant,
        vacant_cells=vacant,
        cell_coverage=(total - vacant) / total if total else 1.0,
        area_coverage=area_coverage,
    )


def hole_cells_adjacency(state) -> Dict[GridCoord, List[GridCoord]]:
    """Group the current holes with their vacant 4-neighbours.

    Useful for analysing clustered holes produced by region jamming: the
    result maps each vacant cell to the vacant cells adjacent to it.
    """
    vacant = state.vacant_cell_set()
    return {
        coord: [n for n in state.grid.neighbours(coord) if n in vacant]
        for coord in vacant
    }
