"""Failure and attack injection.

Holes appear in the surveillance area when sensors fail, run out of battery,
or are disabled because they misbehave (Section 1 of the paper; jamming
attacks in particular can depopulate whole regions).  Failure models operate
on a :class:`repro.network.state.WsnState` and return the ids of the nodes
they disabled, so the caller can log them or re-run head election.
"""

from __future__ import annotations

import abc
import random
from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence

from repro.grid.geometry import BoundingBox, Point
from repro.grid.virtual_grid import GridCoord
from repro.network.node import NodeState


class FailureModel(abc.ABC):
    """A way of disabling nodes in a network state."""

    @abc.abstractmethod
    def apply(self, state, rng: random.Random) -> List[int]:
        """Disable nodes in ``state`` and return the ids of the disabled nodes."""

    def __call__(self, state, rng: random.Random) -> List[int]:
        return self.apply(state, rng)


@dataclass
class RandomFailure(FailureModel):
    """Disable each enabled node independently with probability ``probability``.

    Alternatively an absolute ``count`` of nodes to disable can be given.
    """

    probability: Optional[float] = None
    count: Optional[int] = None
    reason: NodeState = NodeState.FAILED

    def __post_init__(self) -> None:
        if (self.probability is None) == (self.count is None):
            raise ValueError("specify exactly one of probability or count")
        if self.probability is not None and not 0.0 <= self.probability <= 1.0:
            raise ValueError(f"probability must be in [0, 1], got {self.probability}")
        if self.count is not None and self.count < 0:
            raise ValueError(f"count must be non-negative, got {self.count}")

    def apply(self, state, rng: random.Random) -> List[int]:
        enabled_ids = [node.node_id for node in state.enabled_nodes()]
        if self.probability is not None:
            victims = [node_id for node_id in enabled_ids if rng.random() < self.probability]
        else:
            count = min(self.count or 0, len(enabled_ids))
            victims = rng.sample(enabled_ids, count)
        for node_id in victims:
            state.disable_node(node_id, reason=self.reason)
        return victims


@dataclass
class ThinningToEnabledCount(FailureModel):
    """Disable random nodes until exactly ``target_enabled`` nodes remain enabled.

    This reproduces the workload of Section 5: deploy 5000 sensors, then
    disable nodes at random so that ``N + m*n`` enabled nodes remain, where
    ``N`` is the paper's x-axis ("number of spare nodes left in networks").
    """

    target_enabled: int
    reason: NodeState = NodeState.FAILED

    def __post_init__(self) -> None:
        if self.target_enabled < 0:
            raise ValueError(f"target_enabled must be non-negative, got {self.target_enabled}")

    def apply(self, state, rng: random.Random) -> List[int]:
        enabled_ids = [node.node_id for node in state.enabled_nodes()]
        excess = len(enabled_ids) - self.target_enabled
        if excess <= 0:
            return []
        victims = rng.sample(enabled_ids, excess)
        for node_id in victims:
            state.disable_node(node_id, reason=self.reason)
        return victims


@dataclass
class RegionJammingFailure(FailureModel):
    """Disable every enabled node inside a jammed region.

    The region is either a bounding box or a disk (centre + radius).  This is
    the "attacker causes the nodes to … deplete their battery power, which
    might reduce node density in certain areas" scenario from Section 1.
    """

    box: Optional[BoundingBox] = None
    center: Optional[Point] = None
    radius: Optional[float] = None
    reason: NodeState = NodeState.FAILED

    def __post_init__(self) -> None:
        # A disk is all-or-nothing: a partial spec (center without radius or
        # vice versa) must never silently collapse to "no disk given".
        if (self.center is None) != (self.radius is None):
            raise ValueError(
                "a disk region requires both center and radius; got "
                f"center={self.center!r}, radius={self.radius!r}"
            )
        disk_given = self.center is not None
        if self.box is None and not disk_given:
            raise ValueError("specify either box or (center and radius)")
        if self.box is not None and disk_given:
            raise ValueError("specify only one of box or (center and radius)")
        if self.radius is not None and self.radius < 0:
            raise ValueError(f"radius must be non-negative, got {self.radius}")

    def _is_inside(self, position: Point) -> bool:
        if self.box is not None:
            return self.box.contains(position)
        assert self.center is not None and self.radius is not None
        return position.distance_to(self.center) <= self.radius

    def apply(self, state, rng: random.Random) -> List[int]:
        victims = [
            node.node_id
            for node in state.enabled_nodes()
            if self._is_inside(node.position)
        ]
        for node_id in victims:
            state.disable_node(node_id, reason=self.reason)
        return victims


@dataclass
class TargetedCellFailure(FailureModel):
    """Disable every enabled node in an explicit set of cells.

    Creates deterministic holes, which is the most convenient way to unit-test
    the replacement controllers.
    """

    cells: Sequence[GridCoord]
    reason: NodeState = NodeState.MISBEHAVING

    def apply(self, state, rng: random.Random) -> List[int]:
        victims: List[int] = []
        target_cells = set(self.cells)
        for coord in target_cells:
            state.grid.validate_coord(coord)
        for node in state.enabled_nodes():
            if state.grid.cell_of(node.position) in target_cells:
                victims.append(node.node_id)
        for node_id in victims:
            state.disable_node(node_id, reason=self.reason)
        return victims


@dataclass
class BatteryDepletionFailure(FailureModel):
    """Disable enabled nodes whose remaining energy is at or below ``threshold``.

    This is the one-shot form of the engine-driven depletion performed by
    :class:`repro.network.energy.EnergyModel` every round; use an energy model
    on the engine for continuous in-run depletion.
    """

    threshold: float = 0.0
    reason: NodeState = NodeState.DEPLETED

    def apply(self, state, rng: random.Random) -> List[int]:
        victims = [
            node.node_id
            for node in state.enabled_nodes()
            if node.energy <= self.threshold
        ]
        for node_id in victims:
            state.disable_node(node_id, reason=self.reason)
        return victims


@dataclass
class CompositeFailure(FailureModel):
    """Apply several failure models in sequence."""

    models: Sequence[FailureModel] = field(default_factory=list)

    def apply(self, state, rng: random.Random) -> List[int]:
        victims: List[int] = []
        for model in self.models:
            victims.extend(model.apply(state, rng))
        return victims
