"""Smoke tests: the shipped examples must run end to end.

The examples are documentation as much as code, so a refactor that breaks
them should fail the test suite.  Only the two fastest examples are executed
in-process here; the heavier ones (jamming attack, all-baselines comparison)
are exercised indirectly because they use exactly the same public API as the
integration tests.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


def load_example(name: str):
    """Import an example script as a module without executing its __main__ guard."""
    path = EXAMPLES_DIR / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"examples_{name}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


class TestExamplesAreRunnable:
    def test_examples_directory_contents(self):
        expected = {
            "quickstart.py",
            "jamming_attack.py",
            "sparse_network_recovery.py",
            "baseline_comparison.py",
        }
        present = {path.name for path in EXAMPLES_DIR.glob("*.py")}
        assert expected <= present

    def test_quickstart_runs(self, capsys):
        module = load_example("quickstart")
        module.main()
        output = capsys.readouterr().out
        assert "after SR recovery" in output
        assert "holes remaining        : 0" in output
        assert "analytical model" in output

    def test_sparse_network_recovery_runs(self, capsys):
        module = load_example("sparse_network_recovery")
        module.main()
        output = capsys.readouterr().out
        assert "dual-path" in output.lower()
        assert "holes remaining       : 0" in output

    @pytest.mark.parametrize("name", ["jamming_attack", "baseline_comparison"])
    def test_other_examples_import_cleanly(self, name):
        module = load_example(name)
        assert callable(module.main)
