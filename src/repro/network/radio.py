"""Unit-disk radio model and neighbour discovery.

All nodes share the same communication range ``R`` (Section 2).  Two nodes
within range are neighbours and directly connected; the paper's overlay needs
``R = sqrt(5) * r`` so that a grid head can reach every node in the four
neighbouring cells.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

import numpy as np

from repro.grid.geometry import Point
from repro.grid.virtual_grid import GAF_RANGE_FACTOR, cell_side_for_range
from repro.network.node import SensorNode


@dataclass(frozen=True)
class UnitDiskRadio:
    """A symmetric unit-disk radio with communication range ``R`` (metres)."""

    communication_range: float

    def __post_init__(self) -> None:
        if self.communication_range <= 0:
            raise ValueError(
                f"communication_range must be positive, got {self.communication_range}"
            )

    @property
    def gaf_cell_size(self) -> float:
        """Cell side ``r = R / sqrt(5)`` that this radio supports."""
        return cell_side_for_range(self.communication_range)

    def supports_cell_size(self, cell_size: float) -> bool:
        """Whether ``R >= sqrt(5) * r`` holds for the given cell side."""
        return self.communication_range + 1e-12 >= GAF_RANGE_FACTOR * cell_size

    def in_range(self, a: Point, b: Point) -> bool:
        """Whether two positions can communicate directly."""
        return a.distance_to(b) <= self.communication_range + 1e-12

    def neighbours_of(
        self, node: SensorNode, nodes: Iterable[SensorNode]
    ) -> List[SensorNode]:
        """Enabled nodes within range of ``node`` (excluding itself)."""
        return [
            other
            for other in nodes
            if other.node_id != node.node_id
            and other.is_enabled
            and self.in_range(node.position, other.position)
        ]

    def adjacency(
        self, nodes: Sequence[SensorNode]
    ) -> Dict[int, List[int]]:
        """Adjacency lists (by node id) over the enabled nodes.

        Uses a vectorised pairwise-distance computation so that building the
        neighbourhood of a few thousand nodes stays fast.
        """
        enabled = [n for n in nodes if n.is_enabled]
        ids = [n.node_id for n in enabled]
        if not enabled:
            return {}
        coords = np.array([[n.position.x, n.position.y] for n in enabled])
        # Pairwise squared distances without scipy, chunked implicitly by numpy.
        diff_x = coords[:, 0][:, None] - coords[:, 0][None, :]
        diff_y = coords[:, 1][:, None] - coords[:, 1][None, :]
        dist_sq = diff_x * diff_x + diff_y * diff_y
        limit_sq = self.communication_range * self.communication_range + 1e-9
        adjacency: Dict[int, List[int]] = {node_id: [] for node_id in ids}
        rows, cols = np.nonzero(dist_sq <= limit_sq)
        for i, j in zip(rows.tolist(), cols.tolist()):
            if i == j:
                continue
            adjacency[ids[i]].append(ids[j])
        return adjacency

    def link_pairs(self, nodes: Sequence[SensorNode]) -> List[Tuple[int, int]]:
        """Undirected communication links among enabled nodes as ``(id_a, id_b)`` pairs."""
        adjacency = self.adjacency(nodes)
        pairs = []
        for a, neighbours in adjacency.items():
            for b in neighbours:
                if a < b:
                    pairs.append((a, b))
        return pairs
