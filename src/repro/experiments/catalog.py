"""Curated scenario catalog: named, shipped, documented workloads.

The catalog is the answer to "what can this simulator do besides the paper's
one workload?": every entry is a declarative scenario file under
:mod:`repro.scenarios` (see :mod:`repro.experiments.scenario_files` for the
format), loadable by name, runnable through ``python -m repro scenario run
<name>``, and documented by the generated ``SCENARIOS.md`` reference
(:func:`render_catalog_docs`, kept in sync by a CI gate).

The entries span the workload space the ROADMAP asks for:

* ``paper-16x16`` — the paper's Section-5 baseline;
* ``corner-holes`` / ``edge-breach`` — deterministic holes at the grid's
  geometric extremes;
* ``region-jamming`` — disk-shaped attack regions, one of them mid-run;
* ``attack-waves`` — repeated random compromise waves;
* ``lifetime-heterogeneous`` — run-until-network-death on jittered batteries;
* ``sparse-per-cell`` — the Theorem-1 sparse regime;
* ``stress-64x64`` — a 4096-cell scale stress;
* ``lossy-channel`` — the paper's workload on a 20%-loss control channel;
* ``delayed-relay`` — a 3-round-latency control backbone;
* ``comms-blackout`` — a mid-recovery communication blackout over the
  attacked region (jammed channel composing with a jamming failure).
"""

from __future__ import annotations

from functools import lru_cache
from importlib.resources import files
from pathlib import Path
from typing import Dict, List, Tuple, Union

from repro.experiments.scenario_files import Scenario, load_scenario, loads_scenario

__all__ = [
    "CATALOG_NAMES",
    "catalog_names",
    "catalog_scenarios",
    "load_catalog_scenario",
    "render_catalog_docs",
    "resolve_scenario",
]

#: Curated order of the shipped scenarios (also the order of SCENARIOS.md).
CATALOG_NAMES: Tuple[str, ...] = (
    "paper-16x16",
    "corner-holes",
    "edge-breach",
    "region-jamming",
    "attack-waves",
    "lifetime-heterogeneous",
    "sparse-per-cell",
    "stress-64x64",
    "lossy-channel",
    "delayed-relay",
    "comms-blackout",
)

_SCENARIO_PACKAGE = "repro.scenarios"


def catalog_names() -> Tuple[str, ...]:
    """Names of every shipped catalog scenario, in curated order."""
    return CATALOG_NAMES


@lru_cache(maxsize=None)
def load_catalog_scenario(name: str) -> Scenario:
    """Load one shipped scenario by name.

    Raises :class:`KeyError` listing the catalog when the name is unknown.
    Results are cached — :class:`Scenario` is frozen, so sharing is safe.
    """
    if name not in CATALOG_NAMES:
        raise KeyError(
            f"unknown catalog scenario {name!r}; available: {list(CATALOG_NAMES)}"
        )
    resource = files(_SCENARIO_PACKAGE).joinpath(f"{name}.toml")
    scenario = loads_scenario(resource.read_text(), format="toml")
    if scenario.name != name:
        raise ValueError(
            f"catalog file {name}.toml declares name = {scenario.name!r}; "
            "the file name and the document name must match"
        )
    return scenario


def catalog_scenarios() -> Dict[str, Scenario]:
    """All shipped scenarios keyed by name, in curated order."""
    return {name: load_catalog_scenario(name) for name in CATALOG_NAMES}


def resolve_scenario(ref: Union[str, Path]) -> Scenario:
    """Resolve a CLI-style reference: a catalog name or a scenario-file path.

    Anything that looks like a file (an existing path, or a ``.toml`` /
    ``.json`` suffix) is loaded from disk; everything else is looked up in
    the catalog, with the catalog listing in the error when the lookup fails.
    """
    path = Path(ref)
    if path.suffix.lower() in (".toml", ".json") or path.exists():
        return load_scenario(path)
    return load_catalog_scenario(str(ref))


# ------------------------------------------------------------- documentation
def render_catalog_docs() -> str:
    """The generated ``SCENARIOS.md`` catalog reference (deterministic).

    Regenerate with ``python -m repro scenario docs --output SCENARIOS.md``;
    CI fails when the committed file drifts from this rendering.
    """
    lines: List[str] = [
        "# Scenario catalog",
        "",
        "<!-- GENERATED FILE - do not edit by hand. -->",
        "<!-- Regenerate with: python -m repro scenario docs --output SCENARIOS.md -->",
        "",
        "Scenario files are declarative TOML/JSON documents (see DESIGN.md and",
        "`repro.experiments.scenario_files`) that compile into ordinary cached",
        "`RunSpec` cells.  Every entry below ships inside the package and runs",
        "with `python -m repro scenario run <name>` (append `--smoke` for the",
        "bounded CI variant); `python -m repro scenario show <name>` prints the",
        "underlying document.",
        "",
        "| scenario | grid | deployed | N | schemes | failures | energy | channel |",
        "|---|---|---|---|---|---|---|---|",
    ]
    for name, scenario in catalog_scenarios().items():
        config = scenario.scenario
        spare = "-" if config.spare_surplus is None else str(config.spare_surplus)
        failures = str(len(scenario.failures)) if scenario.failures else "-"
        energy = "yes" if scenario.energy is not None else "-"
        channel = scenario.channel.kind if scenario.channel is not None else "-"
        lines.append(
            f"| [`{name}`](#{name}) | {config.columns}x{config.rows} "
            f"| {config.deployed_count} | {spare} "
            f"| {', '.join(scenario.schemes)} | {failures} | {energy} | {channel} |"
        )
    for name, scenario in catalog_scenarios().items():
        config = scenario.scenario
        lines += ["", f"## {name}", "", scenario.description, ""]
        if scenario.stresses:
            lines += [f"**Stresses:** {scenario.stresses}", ""]
        if scenario.expected:
            lines += [f"**Expected outcome:** {scenario.expected}", ""]
        knobs = [
            ("grid", f"{config.columns}x{config.rows} cells, r = {config.cell_size:.4f} m"),
            ("deployment", f"{config.deployed_count} nodes, {config.deployment}"),
            (
                "thinning",
                "none"
                if config.spare_surplus is None
                else f"to {config.target_enabled} enabled (N = {config.spare_surplus})",
            ),
            ("seed", str(config.seed)),
            ("head policy", config.head_policy),
            ("schemes", ", ".join(scenario.schemes)),
            (
                "rounds",
                ("engine default" if scenario.max_rounds is None else str(scenario.max_rounds))
                + (", run to exhaustion" if scenario.run_to_exhaustion else ""),
            ),
            ("trials", str(scenario.trials)),
        ]
        if config.initial_energy is not None:
            jitter = (
                f" (-{config.initial_energy_jitter:.0%} jitter)"
                if config.initial_energy_jitter
                else ""
            )
            knobs.append(("battery", f"{config.initial_energy} J{jitter}"))
        if scenario.energy is not None:
            knobs.append(
                (
                    "energy model",
                    f"idle {scenario.energy.idle_cost_per_round} J/round, "
                    f"move {scenario.energy.move_cost_per_meter} J/m, "
                    f"message {scenario.energy.message_cost} J, "
                    f"depletion at {scenario.energy.depletion_threshold} J",
                )
            )
        if scenario.channel is not None:
            params = ", ".join(
                f"{key}={value!r}" for key, value in scenario.channel.params
            )
            detail = f"`{scenario.channel.kind}`" + (f" ({params})" if params else "")
            if not scenario.channel.reliable:
                detail += (
                    f", ack timeout {scenario.channel.ack_timeout} rounds, "
                    f"{scenario.channel.max_retries} retries"
                )
            knobs.append(("channel", detail))
        lines += ["| knob | value |", "|---|---|"]
        lines += [f"| {key} | {value} |" for key, value in knobs]
        if scenario.failures:
            lines += ["", "Failure schedule:", ""]
            for event in scenario.failures:
                params = ", ".join(
                    f"{key}={value!r}" for key, value in event.params
                )
                lines.append(f"- round {event.round}: `{event.kind}` ({params})")
        lines += ["", f"Run it: `python -m repro scenario run {name}`"]
    return "\n".join(lines) + "\n"
