"""Planar geometry primitives used throughout the simulator.

Everything in the paper happens on a flat 2-D surveillance area, so the only
geometry needed is points, axis-aligned boxes, and Euclidean distance.  The
classes here are immutable value objects so they can be freely shared between
the network state, the event log, and metric records.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence, Tuple


@dataclass(frozen=True, order=True)
class Point:
    """A point in the 2-D surveillance plane (coordinates in metres)."""

    x: float
    y: float

    def distance_to(self, other: "Point") -> float:
        """Euclidean distance to ``other``."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def manhattan_distance_to(self, other: "Point") -> float:
        """L1 distance to ``other`` (useful for grid-aligned estimates)."""
        return abs(self.x - other.x) + abs(self.y - other.y)

    def translated(self, dx: float, dy: float) -> "Point":
        """Return a new point shifted by ``(dx, dy)``."""
        return Point(self.x + dx, self.y + dy)

    def midpoint(self, other: "Point") -> "Point":
        """Return the midpoint of the segment between this point and ``other``."""
        return Point((self.x + other.x) / 2.0, (self.y + other.y) / 2.0)

    def as_tuple(self) -> Tuple[float, float]:
        """Return ``(x, y)`` as a plain tuple (handy for numpy interop)."""
        return (self.x, self.y)

    def __iter__(self) -> Iterator[float]:
        yield self.x
        yield self.y


@dataclass(frozen=True)
class BoundingBox:
    """An axis-aligned rectangle ``[min_x, max_x] x [min_y, max_y]``."""

    min_x: float
    min_y: float
    max_x: float
    max_y: float

    def __post_init__(self) -> None:
        if self.max_x < self.min_x or self.max_y < self.min_y:
            raise ValueError(
                "BoundingBox requires max >= min on both axes, got "
                f"x:[{self.min_x}, {self.max_x}] y:[{self.min_y}, {self.max_y}]"
            )

    @property
    def width(self) -> float:
        """Extent along the x axis (metres)."""
        return self.max_x - self.min_x

    @property
    def height(self) -> float:
        """Extent along the y axis (metres)."""
        return self.max_y - self.min_y

    @property
    def area(self) -> float:
        """Rectangle area (square metres)."""
        return self.width * self.height

    @property
    def center(self) -> Point:
        """Geometric centre of the rectangle."""
        return Point((self.min_x + self.max_x) / 2.0, (self.min_y + self.max_y) / 2.0)

    def contains(self, point: Point, tolerance: float = 0.0) -> bool:
        """Whether ``point`` lies inside the box (closed, with ``tolerance`` slack)."""
        return (
            self.min_x - tolerance <= point.x <= self.max_x + tolerance
            and self.min_y - tolerance <= point.y <= self.max_y + tolerance
        )

    def clamp(self, point: Point) -> Point:
        """Return the closest point inside the box to ``point``."""
        return Point(
            min(max(point.x, self.min_x), self.max_x),
            min(max(point.y, self.min_y), self.max_y),
        )

    def shrunk(self, margin: float) -> "BoundingBox":
        """Return the box shrunk by ``margin`` on every side.

        Raises :class:`ValueError` when the margin would invert the box.
        """
        return BoundingBox(
            self.min_x + margin,
            self.min_y + margin,
            self.max_x - margin,
            self.max_y - margin,
        )

    def corners(self) -> Tuple[Point, Point, Point, Point]:
        """The four corners, counter-clockwise from ``(min_x, min_y)``."""
        return (
            Point(self.min_x, self.min_y),
            Point(self.max_x, self.min_y),
            Point(self.max_x, self.max_y),
            Point(self.min_x, self.max_y),
        )

    def intersects(self, other: "BoundingBox") -> bool:
        """Whether the two closed boxes share at least one point."""
        return not (
            other.min_x > self.max_x
            or other.max_x < self.min_x
            or other.min_y > self.max_y
            or other.max_y < self.min_y
        )


def centroid(points: Sequence[Point]) -> Point:
    """Arithmetic mean of a non-empty sequence of points."""
    if not points:
        raise ValueError("centroid() requires at least one point")
    sx = sum(p.x for p in points)
    sy = sum(p.y for p in points)
    return Point(sx / len(points), sy / len(points))

def bounding_box_of(points: Iterable[Point]) -> BoundingBox:
    """Smallest axis-aligned box containing every point in ``points``."""
    points = list(points)
    if not points:
        raise ValueError("bounding_box_of() requires at least one point")
    return BoundingBox(
        min(p.x for p in points),
        min(p.y for p in points),
        max(p.x for p in points),
        max(p.y for p in points),
    )


def total_path_length(points: Sequence[Point]) -> float:
    """Length of the polyline visiting ``points`` in order."""
    return sum(a.distance_to(b) for a, b in zip(points, points[1:]))
