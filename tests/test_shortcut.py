"""Unit tests for the short-cut SR extension (the paper's stated future work)."""

import pytest

from repro.core.hamilton import build_hamilton_cycle
from repro.core.replacement import HamiltonReplacementController
from repro.core.shortcut import ShortcutReplacementController
from repro.grid.virtual_grid import GridCoord, VirtualGrid
from repro.network.deployment import deploy_per_cell_counts
from repro.network.state import WsnState
from repro.sim.engine import run_recovery

from helpers import make_hole


def shortcut_for(state, **kwargs):
    return ShortcutReplacementController(build_hamilton_cycle(state.grid), **kwargs)


class TestConstruction:
    def test_invalid_radius(self, small_cycle):
        with pytest.raises(ValueError):
            ShortcutReplacementController(small_cycle, shortcut_radius=0)

    def test_name_distinguishes_from_plain_sr(self, small_cycle):
        assert ShortcutReplacementController(small_cycle).name == "SR-shortcut"


class TestBehaviour:
    def test_identical_to_sr_when_initiator_has_spare(self, dense_state, rng):
        controller = shortcut_for(dense_state)
        hole = GridCoord(2, 2)
        make_hole(dense_state, hole)
        outcome = controller.execute_round(dense_state, rng, 0)
        assert outcome.move_count == 1
        assert controller.shortcut_moves == 0
        assert controller.converged_processes == 1

    def test_pulls_spare_from_neighbour_instead_of_cascading(self, rng):
        """The short-cut case: the cycle initiator is empty-handed but a physical
        neighbour of the hole has a spare."""
        grid = VirtualGrid(4, 4, cell_size=1.0)
        cycle = build_hamilton_cycle(grid)
        hole = GridCoord(2, 2)
        initiator = cycle.initiator_for(hole)
        # Every cell has exactly one node except one non-initiator neighbour
        # of the hole, which holds the only spare in the network.
        donor = next(
            c for c in grid.neighbours(hole) if c != initiator
        )
        counts = {coord: 1 for coord in grid.all_coords()}
        counts[donor] = 2
        state = WsnState(grid, deploy_per_cell_counts(grid, counts, rng))
        make_hole(state, hole)

        shortcut = ShortcutReplacementController(cycle)
        result = run_recovery(state, shortcut, rng)
        assert result.metrics.final_holes == 0
        assert result.metrics.total_moves == 1
        assert shortcut.shortcut_moves == 1
        state.check_invariants()

    def test_shortcut_preserves_one_process_per_hole(self, rng):
        grid = VirtualGrid(6, 6, cell_size=1.0)
        counts = {coord: 2 for coord in grid.all_coords()}
        state = WsnState(grid, deploy_per_cell_counts(grid, counts, rng))
        controller = ShortcutReplacementController(build_hamilton_cycle(grid))
        holes = [GridCoord(1, 1), GridCoord(4, 4), GridCoord(2, 5)]
        for hole in holes:
            make_hole(state, hole)
        result = run_recovery(state, controller, rng)
        assert result.metrics.processes_initiated == len(holes)
        assert result.metrics.final_holes == 0
        assert result.metrics.success_rate == 1.0

    def test_falls_back_to_cascade_when_no_neighbour_has_spares(self, rng):
        grid = VirtualGrid(4, 4, cell_size=1.0)
        cycle = build_hamilton_cycle(grid)
        order = cycle.order()
        hole = order[10]
        spare_cell = order[4]  # six hops upstream, not adjacent to the hole
        counts = {coord: 1 for coord in grid.all_coords()}
        counts[spare_cell] = 2
        state = WsnState(grid, deploy_per_cell_counts(grid, counts, rng))
        make_hole(state, hole)
        controller = ShortcutReplacementController(cycle)
        result = run_recovery(state, controller, rng)
        assert result.metrics.final_holes == 0
        # The snake may shorten as soon as some intermediate vacancy has a
        # spare next to it, but it still needs the cascade mechanism.
        assert result.metrics.total_moves >= 1
        state.check_invariants()

    def test_cheaper_than_plain_sr_in_sparse_networks(self, rng):
        """The claim of Section 5's future-work paragraph, measured."""
        grid = VirtualGrid(8, 8, cell_size=1.0)
        counts = {coord: 1 for coord in grid.all_coords()}
        # A handful of spares scattered around the area.
        for coord in (GridCoord(1, 6), GridCoord(6, 1), GridCoord(5, 5), GridCoord(2, 2)):
            counts[coord] = 2
        base = WsnState(grid, deploy_per_cell_counts(grid, counts, rng))
        holes = [GridCoord(0, 3), GridCoord(7, 4), GridCoord(4, 0)]
        for hole in holes:
            make_hole(base, hole)

        sr_state, shortcut_state = base.clone(), base.clone()
        sr = HamiltonReplacementController(build_hamilton_cycle(grid))
        shortcut = ShortcutReplacementController(build_hamilton_cycle(grid))
        sr_result = run_recovery(sr_state, sr, rng)
        shortcut_result = run_recovery(shortcut_state, shortcut, rng)

        assert sr_result.metrics.final_holes == 0
        assert shortcut_result.metrics.final_holes == 0
        # The paper's future-work claim is about cost: the short-cut never
        # moves more nodes than plain SR on the same scenario.  (Round counts
        # can go either way because consuming a nearby spare may lengthen the
        # walk of a *different* hole's cascade.)
        assert shortcut_result.metrics.total_moves <= sr_result.metrics.total_moves

    def test_larger_radius_accepted(self, dense_state, rng):
        controller = shortcut_for(dense_state, shortcut_radius=2)
        make_hole(dense_state, GridCoord(1, 1))
        result = run_recovery(dense_state, controller, rng)
        assert result.metrics.final_holes == 0
