"""Unit tests for the control-message mailbox (one-round delivery latency)."""

import pytest

from repro.grid.virtual_grid import GridCoord
from repro.network.messages import Mailbox, Message, MessageKind


def request(source, target, sent_round, process_id=None):
    return Message(
        kind=MessageKind.REPLACEMENT_REQUEST,
        source_cell=GridCoord(*source),
        target_cell=GridCoord(*target),
        sent_round=sent_round,
        process_id=process_id,
    )


class TestMailbox:
    def test_message_not_delivered_in_same_round(self):
        mailbox = Mailbox()
        mailbox.send(request((0, 0), (0, 1), sent_round=3))
        assert mailbox.deliver(current_round=3) == {}
        assert mailbox.pending_count == 1

    def test_message_delivered_next_round(self):
        mailbox = Mailbox()
        message = request((0, 0), (0, 1), sent_round=3)
        mailbox.send(message)
        delivered = mailbox.deliver(current_round=4)
        assert delivered == {GridCoord(0, 1): [message]}
        assert mailbox.pending_count == 0
        assert mailbox.delivered_count == 1

    def test_delivery_consumes_messages(self):
        mailbox = Mailbox()
        mailbox.send(request((0, 0), (0, 1), sent_round=0))
        mailbox.deliver(current_round=1)
        assert mailbox.deliver(current_round=2) == {}

    def test_messages_grouped_by_target(self):
        mailbox = Mailbox()
        mailbox.send(request((0, 0), (1, 1), sent_round=0))
        mailbox.send(request((2, 2), (1, 1), sent_round=0))
        mailbox.send(request((0, 0), (3, 3), sent_round=0))
        delivered = mailbox.deliver(current_round=1)
        assert len(delivered[GridCoord(1, 1)]) == 2
        assert len(delivered[GridCoord(3, 3)]) == 1

    def test_late_messages_stay_in_flight(self):
        mailbox = Mailbox()
        mailbox.send(request((0, 0), (0, 1), sent_round=0))
        mailbox.send(request((0, 0), (0, 1), sent_round=5))
        delivered = mailbox.deliver(current_round=1)
        assert len(delivered[GridCoord(0, 1)]) == 1
        assert mailbox.pending_count == 1

    def test_counters(self):
        mailbox = Mailbox()
        for round_index in range(3):
            mailbox.send(request((0, 0), (0, 1), sent_round=round_index))
        assert mailbox.sent_count == 3
        mailbox.deliver(current_round=10)
        assert mailbox.delivered_count == 3

    def test_clear(self):
        mailbox = Mailbox()
        mailbox.send(request((0, 0), (0, 1), sent_round=0))
        mailbox.clear()
        assert mailbox.pending_count == 0
        assert mailbox.deliver(current_round=5) == {}


class TestMessage:
    def test_mailbox_stamps_unique_sequential_ids(self):
        mailbox = Mailbox()
        assert (mailbox.stamp_id(), mailbox.stamp_id(), mailbox.stamp_id()) == (0, 1, 2)

    def test_ids_are_per_mailbox_hence_deterministic(self):
        # Ids are assigned by the owning mailbox, not a process-global
        # counter: two runs (two mailboxes) produce identical id traces no
        # matter how many messages earlier runs in the process created.
        first = Mailbox()
        for _ in range(5):
            first.stamp_id()
        second = Mailbox()
        assert second.stamp_id() == 0

    def test_unstamped_message_has_no_id(self):
        message = request((0, 0), (0, 1), 0)
        assert message.message_id is None

    def test_message_carries_process_id(self):
        message = request((0, 0), (0, 1), 0, process_id=42)
        assert message.process_id == 42
        assert message.kind is MessageKind.REPLACEMENT_REQUEST

    def test_dead_enum_members_removed(self):
        # REPLACEMENT_ACK is implemented (retry trigger on unreliable
        # channels); HEARTBEAT was never wired to anything and is gone.
        assert {kind.name for kind in MessageKind} == {
            "REPLACEMENT_REQUEST",
            "REPLACEMENT_ACK",
        }


class TestMailboxLatency:
    def test_configurable_latency(self):
        mailbox = Mailbox(latency=3)
        mailbox.send(request((0, 0), (0, 1), sent_round=0))
        assert mailbox.deliver(current_round=2) == {}
        delivered = mailbox.deliver(current_round=3)
        assert len(delivered[GridCoord(0, 1)]) == 1

    def test_latency_must_be_positive(self):
        with pytest.raises(ValueError):
            Mailbox(latency=0)
