"""JSON result persistence with content-addressed caching keyed on the RunSpec.

The figure scripts (6, 7, 8) and the extension benchmarks all consume the same
sweep; before this module existed each of them re-simulated every cell.  A
:class:`RunCache` stores one JSON document per executed
:class:`~repro.experiments.orchestration.RunSpec`, addressed by a SHA-256 over
the spec's canonical JSON form, so any script that asks for an already
executed spec gets the stored :class:`~repro.experiments.orchestration.RunRecord`
back instead of a re-simulation.

Cache-soundness rests on two properties:

* ``execute_run`` is a pure function of its spec (see the determinism
  contract in :mod:`repro.experiments.orchestration`), so a stored record is
  exactly what a re-run would produce;
* the key covers *every* field of the spec (scenario knobs included), so any
  change to the scenario, scheme, seed, or engine bounds produces a new key.

``CACHE_FORMAT_VERSION`` is folded into the key; bump it whenever the record
schema or the simulation semantics change, and every old entry silently
becomes a miss instead of serving stale physics.
"""

from __future__ import annotations

import contextlib
import dataclasses
import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Dict, Optional, Union

from repro.experiments.orchestration import RunRecord, RunSpec
from repro.experiments.registry import factory_identity
from repro.network.channel import channel_from_dict, channel_to_dict
from repro.network.energy import EnergyModel, EnergySummary
from repro.network.failures import FailureEvent, freeze_params, thaw_params
from repro.sim.metrics import RunMetrics
from repro.sim.scenario import ScenarioConfig

#: Bump on any change to the stored schema or to simulation semantics.
#: v2: energy-aware engine — specs carry an optional EnergyModel and the
#: run-to-exhaustion flag, records carry exhausted/energy_series, metrics
#: carry an EnergySummary, and bound-hit runs with holes now report stalled.
#: v3: declarative failure schedules — specs carry a tuple of FailureEvents
#: applied by the engine at the start of their round.
#: v4: pluggable control channels — specs carry an optional ChannelModel,
#: control messages are real channel traffic debited by the engine, and
#: metrics carry messages_dropped / mean_delivery_latency.
CACHE_FORMAT_VERSION = 4


# ------------------------------------------------------------- serialization
def spec_to_dict(spec: RunSpec) -> Dict[str, object]:
    """Canonical JSON-compatible form of a spec (stable across processes)."""
    return {
        "format_version": CACHE_FORMAT_VERSION,
        "scenario": dataclasses.asdict(spec.scenario),
        "scheme": spec.scheme,
        "seed": spec.seed,
        "max_rounds": spec.max_rounds,
        "idle_round_limit": spec.idle_round_limit,
        "energy": dataclasses.asdict(spec.energy) if spec.energy is not None else None,
        "run_to_exhaustion": spec.run_to_exhaustion,
        "failures": [
            {
                "round": event.round,
                "kind": event.kind,
                "params": dict(thaw_params(event.params)),
            }
            for event in spec.failures
        ],
        "channel": channel_to_dict(spec.channel),
    }


def spec_from_dict(payload: Dict[str, object]) -> RunSpec:
    """Inverse of :func:`spec_to_dict`."""
    energy = payload["energy"]
    return RunSpec(
        scenario=ScenarioConfig(**payload["scenario"]),
        scheme=payload["scheme"],
        seed=payload["seed"],
        max_rounds=payload["max_rounds"],
        idle_round_limit=payload["idle_round_limit"],
        energy=EnergyModel(**energy) if energy is not None else None,
        run_to_exhaustion=payload["run_to_exhaustion"],
        failures=tuple(
            FailureEvent(
                round=entry["round"],
                kind=entry["kind"],
                params=freeze_params(entry["params"]),
            )
            for entry in payload.get("failures", ())
        ),
        channel=channel_from_dict(payload.get("channel")),
    )


def record_to_dict(record: RunRecord) -> Dict[str, object]:
    """JSON-compatible form of a record (``cached`` is execution metadata, not stored)."""
    return {
        "format_version": CACHE_FORMAT_VERSION,
        "spec": spec_to_dict(record.spec),
        "metrics": dataclasses.asdict(record.metrics),
        "rounds_executed": record.rounds_executed,
        "stalled": record.stalled,
        "exhausted": record.exhausted,
        "energy_series": list(record.energy_series),
    }


def record_from_dict(payload: Dict[str, object]) -> RunRecord:
    """Inverse of :func:`record_to_dict`."""
    metrics_payload = dict(payload["metrics"])
    energy = metrics_payload.get("energy")
    if energy is not None:
        metrics_payload["energy"] = EnergySummary(**energy)
    return RunRecord(
        spec=spec_from_dict(payload["spec"]),
        metrics=RunMetrics(**metrics_payload),
        rounds_executed=payload["rounds_executed"],
        stalled=payload["stalled"],
        exhausted=payload["exhausted"],
        energy_series=tuple(payload["energy_series"]),
    )


def run_key(spec: RunSpec) -> str:
    """Content hash of a spec — the cache address of its record.

    Besides the spec fields, the key covers the *identity* of the factory
    currently registered under the spec's scheme name: shadowing a scheme
    with ``register_scheme(..., replace=True)`` must not serve records that
    were simulated by the previous implementation.
    """
    payload = spec_to_dict(spec)
    try:
        payload["scheme_impl"] = factory_identity(spec.scheme)
    except KeyError:
        # Unregistered scheme: the key is still well-defined; execution will
        # fail later with the registry's own error.
        pass
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


# --------------------------------------------------------------------- cache
class RunCache:
    """Directory of ``<run_key>.json`` records, one per executed spec.

    Lookups that fail for any reason (missing file, corrupt JSON, schema
    drift, or a stored spec that does not round-trip to the requested one)
    are treated as misses, so a damaged cache degrades to re-simulation
    rather than wrong results.
    """

    def __init__(self, cache_dir: Union[str, Path]) -> None:
        self.cache_dir = Path(cache_dir)
        self.hits = 0
        self.misses = 0

    def path_for(self, spec: RunSpec) -> Path:
        """The file a record for ``spec`` is (or would be) stored at."""
        return self.cache_dir / f"{run_key(spec)}.json"

    def get(self, spec: RunSpec) -> Optional[RunRecord]:
        """The stored record for ``spec``, or ``None`` on any kind of miss."""
        path = self.path_for(spec)
        try:
            payload = json.loads(path.read_text())
            if not isinstance(payload, dict):
                raise ValueError("cache entry is not a JSON object")
            if payload.get("format_version") != CACHE_FORMAT_VERSION:
                raise ValueError("cache format version mismatch")
            record = record_from_dict(payload)
            if record.spec != spec:
                raise ValueError("stored spec does not match requested spec")
        except (OSError, ValueError, KeyError, TypeError):
            self.misses += 1
            return None
        self.hits += 1
        return record

    def put(self, record: RunRecord) -> Path:
        """Persist ``record`` (atomically) and return its path.

        The temp file gets a writer-unique name so concurrent processes
        racing to store the same spec each publish a complete document (last
        full write wins — both wrote the same deterministic record anyway).
        """
        self.cache_dir.mkdir(parents=True, exist_ok=True)
        path = self.path_for(record.spec)
        payload = json.dumps(record_to_dict(record), sort_keys=True, indent=1)
        fd, tmp_name = tempfile.mkstemp(
            dir=self.cache_dir, prefix=path.stem, suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(payload)
            os.replace(tmp_name, path)
        except BaseException:
            with contextlib.suppress(OSError):
                os.unlink(tmp_name)
            raise
        return path

    def __contains__(self, spec: RunSpec) -> bool:
        return self.path_for(spec).exists()

    def __len__(self) -> int:
        if not self.cache_dir.exists():
            return 0
        return sum(1 for _ in self.cache_dir.glob("*.json"))

    def clear(self) -> int:
        """Delete every stored record; returns how many were removed."""
        removed = 0
        if self.cache_dir.exists():
            for path in self.cache_dir.glob("*.json"):
                path.unlink()
                removed += 1
        return removed
