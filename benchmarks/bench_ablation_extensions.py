"""Ablation and extension benchmarks beyond the paper's own evaluation.

DESIGN.md calls out three design choices worth quantifying separately:

* the head-election policy (the paper allows rotation but does not measure it);
* the spare-selection rule inside a cell (nearest versus random);
* how SR compares against the related-work baselines the introduction
  criticises (virtual force, SMART scan balancing).

None of these series appears in the paper; they are extensions that use the
same workload generator so their numbers are directly comparable with the
Figure 6-8 reproductions.
"""

from __future__ import annotations

import pytest

from repro.core.hamilton import build_hamilton_cycle
from repro.core.replacement import HamiltonReplacementController
from repro.core.shortcut import ShortcutReplacementController
from repro.experiments.results import ExperimentResult
from repro.experiments.registry import available_schemes, make_controller
from repro.sim.engine import run_recovery
from repro.sim.rng import derive_rng
from repro.sim.scenario import ScenarioConfig, build_scenario_state

from figutils import emit


ABLATION_CONFIG = ScenarioConfig(
    columns=12, rows=12, communication_range=10.0, deployed_count=1000, seed=77
)


@pytest.mark.benchmark(group="ablation-spare-selection")
@pytest.mark.parametrize("selection", ["nearest", "random"])
def test_ablation_spare_selection(benchmark, selection):
    """Nearest-spare selection saves distance over random selection, not moves."""
    config = ABLATION_CONFIG.with_spare_surplus(80)
    base_state = build_scenario_state(config)

    def run():
        state = base_state.clone()
        controller = HamiltonReplacementController(
            build_hamilton_cycle(state.grid), spare_selection=selection
        )
        return run_recovery(state, controller, derive_rng(77, selection)).metrics

    metrics = benchmark(run)
    assert metrics.final_holes == 0
    assert metrics.success_rate == 1.0


@pytest.mark.benchmark(group="ablation-head-policy")
@pytest.mark.parametrize("policy", ["lowest_id", "highest_energy", "nearest_to_center"])
def test_ablation_head_policy(benchmark, policy):
    """The SR guarantees hold under every head-election policy."""
    config = ScenarioConfig(
        columns=12,
        rows=12,
        deployed_count=1000,
        spare_surplus=80,
        seed=78,
        head_policy=policy,
    )
    base_state = build_scenario_state(config)

    def run():
        state = base_state.clone()
        controller = HamiltonReplacementController(build_hamilton_cycle(state.grid))
        return run_recovery(state, controller, derive_rng(78, policy)).metrics

    metrics = benchmark(run)
    assert metrics.final_holes == 0
    assert metrics.processes_initiated == metrics.initial_holes


@pytest.mark.benchmark(group="extension-shortcut")
@pytest.mark.parametrize("spare_surplus", [15, 60])
def test_extension_shortcut_versus_plain_sr(benchmark, results_dir, spare_surplus):
    """The paper's future-work short-cut: cheaper than plain SR, same guarantee.

    The sparse point (N = 15) is where Section 5 expects the biggest win; the
    dense point (N = 60) checks the short-cut never hurts.
    """
    config = ABLATION_CONFIG.with_spare_surplus(spare_surplus)
    base_state = build_scenario_state(config)

    def run_pair():
        rows = {}
        for name, cls in (("SR", HamiltonReplacementController), ("SR-shortcut", ShortcutReplacementController)):
            state = base_state.clone()
            controller = cls(build_hamilton_cycle(state.grid))
            metrics = run_recovery(
                state, controller, derive_rng(83, f"{name}-{spare_surplus}")
            ).metrics
            rows[name] = metrics
        return rows

    rows = benchmark.pedantic(run_pair, rounds=1, iterations=1)
    result = ExperimentResult(
        name=f"extension: short-cut SR vs plain SR (N = {spare_surplus})",
        columns=["scheme", "moves", "distance", "rounds", "final_holes"],
    )
    for name, metrics in rows.items():
        result.add_row(
            scheme=name,
            moves=metrics.total_moves,
            distance=metrics.total_distance,
            rounds=metrics.rounds,
            final_holes=metrics.final_holes,
        )
    emit(result, results_dir, f"extension_shortcut_N{spare_surplus}.csv")

    assert rows["SR"].final_holes == 0
    assert rows["SR-shortcut"].final_holes == 0
    assert rows["SR-shortcut"].total_moves <= rows["SR"].total_moves
    assert rows["SR-shortcut"].processes_initiated == rows["SR"].processes_initiated


@pytest.mark.benchmark(group="extension-baselines")
def test_extension_all_schemes_comparison(benchmark, results_dir):
    """SR versus AR, virtual force, and SMART balancing on one scenario."""
    config = ABLATION_CONFIG.with_spare_surplus(60)
    base_state = build_scenario_state(config)

    def run_all() -> ExperimentResult:
        result = ExperimentResult(
            name="extension: all schemes on a 12x12 scenario",
            columns=[
                "scheme",
                "rounds",
                "processes",
                "success_rate",
                "moves",
                "distance",
                "final_holes",
            ],
            description=f"N = 60, {base_state.enabled_count} enabled nodes",
        )
        for scheme in available_schemes():
            state = base_state.clone()
            controller = make_controller(scheme, state)
            metrics = run_recovery(
                state, controller, derive_rng(79, scheme), max_rounds=400
            ).metrics
            result.add_row(
                scheme=scheme,
                rounds=metrics.rounds,
                processes=metrics.processes_initiated,
                success_rate=metrics.success_rate,
                moves=metrics.total_moves,
                distance=metrics.total_distance,
                final_holes=metrics.final_holes,
            )
        return result

    result = benchmark.pedantic(run_all, rounds=1, iterations=1)
    emit(result, results_dir, "extension_all_schemes.csv")

    by_scheme = {row["scheme"]: row for row in result.rows}
    # SR restores coverage with the fewest movements of all schemes.
    assert by_scheme["SR"]["final_holes"] == 0
    assert by_scheme["SR"]["moves"] <= by_scheme["AR"]["moves"]
    assert by_scheme["SR"]["moves"] <= by_scheme["SMART"]["moves"]
    assert by_scheme["SR"]["moves"] <= by_scheme["VF"]["moves"]
