"""Energy accounting helpers (extension).

Movement dominates the energy budget of mobile sensors, which is exactly why
the paper optimises the number of movements and the total moving distance.
These helpers summarise the battery state of a network and translate a
recovery run's cost metrics into consumed energy, so the examples and the
extended benchmarks can present the comparison in joules as well as metres.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.network.node import (
    DEFAULT_BATTERY_CAPACITY,
    MESSAGE_COST,
    MOVE_COST_PER_METER,
    NodeRole,
)


@dataclass(frozen=True)
class EnergySummary:
    """Aggregate battery statistics of the enabled nodes of a network."""

    enabled_nodes: int
    total_energy: float
    mean_energy: float
    min_energy: float
    max_energy: float
    depleted_nodes: int
    head_mean_energy: float
    spare_mean_energy: float

    @property
    def total_consumed(self) -> float:
        """Energy consumed so far, assuming every node started at full capacity."""
        return self.enabled_nodes * DEFAULT_BATTERY_CAPACITY - self.total_energy

    @property
    def imbalance(self) -> float:
        """Spread between the fullest and the emptiest enabled node (joules)."""
        return self.max_energy - self.min_energy


def energy_summary(state) -> EnergySummary:
    """Summarise the remaining energy of all enabled nodes in ``state``."""
    enabled = state.enabled_nodes()
    if not enabled:
        return EnergySummary(
            enabled_nodes=0,
            total_energy=0.0,
            mean_energy=0.0,
            min_energy=0.0,
            max_energy=0.0,
            depleted_nodes=0,
            head_mean_energy=0.0,
            spare_mean_energy=0.0,
        )
    energies = [node.energy for node in enabled]
    heads = [node.energy for node in enabled if node.role is NodeRole.HEAD]
    spares = [node.energy for node in enabled if node.role is NodeRole.SPARE]
    return EnergySummary(
        enabled_nodes=len(enabled),
        total_energy=sum(energies),
        mean_energy=sum(energies) / len(energies),
        min_energy=min(energies),
        max_energy=max(energies),
        depleted_nodes=sum(1 for node in enabled if node.is_battery_depleted),
        head_mean_energy=sum(heads) / len(heads) if heads else 0.0,
        spare_mean_energy=sum(spares) / len(spares) if spares else 0.0,
    )


def recovery_energy_cost(
    total_distance: float,
    messages_sent: int = 0,
    move_cost_per_meter: float = MOVE_COST_PER_METER,
    message_cost: float = MESSAGE_COST,
) -> float:
    """Energy (joules) a recovery run consumed, from its cost metrics.

    The model is the same linear one the node class uses: moving costs
    ``move_cost_per_meter`` joules per metre and each control message costs
    ``message_cost`` joules — so the comparison between schemes in joules has
    exactly the same shape as the paper's moving-distance comparison, shifted
    only by the (tiny) messaging term.
    """
    if total_distance < 0:
        raise ValueError(f"total_distance must be non-negative, got {total_distance}")
    if messages_sent < 0:
        raise ValueError(f"messages_sent must be non-negative, got {messages_sent}")
    return total_distance * move_cost_per_meter + messages_sent * message_cost


def per_scheme_energy_costs(metrics_by_scheme: Dict[str, "RunMetrics"]) -> Dict[str, float]:
    """Translate a mapping of scheme name -> RunMetrics into joules consumed."""
    return {
        scheme: recovery_energy_cost(metrics.total_distance, metrics.messages_sent)
        for scheme, metrics in metrics_by_scheme.items()
    }
