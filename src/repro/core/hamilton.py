"""Directed Hamilton cycle over the virtual grid (Sections 2 and 4).

The SR scheme threads all grid cells along a *directed Hamilton cycle*: each
head monitors the successor cell on the cycle and is the unique initiator of
a replacement when that cell becomes vacant.  This module provides:

* :class:`SerpentineHamiltonCycle` — the standard boustrophedon cycle that
  exists whenever at least one grid dimension is even (Figure 1(b) shows it
  for the paper's 4x5 grid);
* :class:`DualPathHamiltonCycle` — the construction of Section 4 for grids
  where *both* dimensions are odd.  A grid graph with an odd number of cells
  has no Hamilton cycle, so the paper builds an ``(m*n - 1)``-hop cycle from
  two directed Hamilton paths that share ``m*n - 2`` cells.  The two
  remaining cells, A and B, are the endpoints: path one runs A -> ... -> B
  and path two runs B -> ... -> A.  The shared chain starts at D (the common
  successor of A and B) and ends at C (their common predecessor), exactly as
  in Figure 4;
* :func:`build_hamilton_cycle` — a factory that picks the right construction
  for a grid.

The replacement controllers only need one question answered: *given a vacant
cell, which cell's head is responsible for initiating (or continuing) its
replacement?*  That is :meth:`HamiltonCycle.initiator_for`, which encodes the
special cases of Algorithm 2 for the dual-path construction.
"""

from __future__ import annotations

import abc
from typing import Callable, Dict, List, Optional, Sequence

from repro.grid.virtual_grid import GridCoord, VirtualGrid


class HamiltonConstructionError(ValueError):
    """Raised when no Hamilton cycle construction exists for a grid shape."""


#: Predicate telling whether a cell currently holds at least one spare node.
SpareLookup = Callable[[GridCoord], bool]


class HamiltonCycle(abc.ABC):
    """Common interface of the directed Hamilton structures used by SR."""

    def __init__(self, grid: VirtualGrid) -> None:
        self.grid = grid

    # --------------------------------------------------------------- topology
    @property
    @abc.abstractmethod
    def cycle_length(self) -> int:
        """Number of hops of the directed cycle (``m*n`` or ``m*n - 1``)."""

    @property
    @abc.abstractmethod
    def replacement_path_length(self) -> int:
        """``L`` — the length of the Hamilton path a replacement can stretch along.

        This is the value used by the analytical model: ``m*n - 1`` for the
        plain cycle (Theorem 2) and ``m*n - 2`` for the dual-path
        construction (Corollary 2).
        """

    @abc.abstractmethod
    def order(self) -> List[GridCoord]:
        """A representative traversal order covering every cell exactly once."""

    @abc.abstractmethod
    def monitored_cells(self, coord: GridCoord) -> List[GridCoord]:
        """Cells whose vacancy the head of ``coord`` is responsible for."""

    @abc.abstractmethod
    def initiator_for(
        self,
        vacant: GridCoord,
        has_spare: Optional[SpareLookup] = None,
        origin: Optional[GridCoord] = None,
    ) -> Optional[GridCoord]:
        """The unique cell whose head must react to ``vacant`` being empty.

        Parameters
        ----------
        vacant:
            The cell that currently has no head.
        has_spare:
            Optional lookup used by the dual-path construction, where the
            choice at the junction cells C and D depends on which of A/B has
            spare nodes (Algorithm 2, cases two and three).
        origin:
            The original hole the replacement process is serving.  The
            dual-path junction rules differ for an *original* vacancy at D
            versus a vacancy at D created by a cascading move.
        """

    # -------------------------------------------------------------- utilities
    def validate(self) -> None:
        """Check that the construction is a legal directed Hamilton structure.

        Every consecutive pair of the traversal order must be neighbouring
        grids, and every grid cell must appear exactly once.
        """
        order = self.order()
        expected = set(self.grid.all_coords())
        seen = set(order)
        if seen != expected or len(order) != len(expected):
            missing = expected - seen
            extra = seen - expected
            raise AssertionError(
                f"traversal does not cover the grid exactly once "
                f"(missing={sorted(c.as_tuple() for c in missing)}, "
                f"extra={sorted(c.as_tuple() for c in extra)}, "
                f"length={len(order)})"
            )
        for a, b in zip(order, order[1:]):
            if not a.is_neighbour_of(b):
                raise AssertionError(
                    f"consecutive cells {a.as_tuple()} -> {b.as_tuple()} are not neighbours"
                )

    def index_of(self, coord: GridCoord) -> int:
        """Position of ``coord`` in the representative traversal order."""
        return self._index[coord]

    def _build_index(self, order: Sequence[GridCoord]) -> None:
        self._index: Dict[GridCoord, int] = {coord: i for i, coord in enumerate(order)}


class SerpentineHamiltonCycle(HamiltonCycle):
    """Boustrophedon Hamilton cycle for grids with at least one even dimension.

    The construction reserves one boundary line and snakes through the rest,
    returning along the reserved line to close the cycle — the layout shown in
    Figure 1(b) of the paper.  It exists for every ``n x m`` grid with
    ``min(n, m) >= 2`` and ``n*m`` even.
    """

    def __init__(self, grid: VirtualGrid) -> None:
        super().__init__(grid)
        n, m = grid.columns, grid.rows
        if n < 2 or m < 2:
            raise HamiltonConstructionError(
                f"a Hamilton cycle needs at least a 2x2 grid, got {n}x{m}"
            )
        if (n * m) % 2 != 0:
            raise HamiltonConstructionError(
                f"grid {n}x{m} has an odd number of cells; use DualPathHamiltonCycle"
            )
        self._order = self._build_order(n, m)
        self._build_index(self._order)
        self._successor: Dict[GridCoord, GridCoord] = {}
        self._predecessor: Dict[GridCoord, GridCoord] = {}
        for i, coord in enumerate(self._order):
            nxt = self._order[(i + 1) % len(self._order)]
            self._successor[coord] = nxt
            self._predecessor[nxt] = coord

    @staticmethod
    def _build_order(n: int, m: int) -> List[GridCoord]:
        order: List[GridCoord] = []
        if m % 2 == 0:
            # Snake over columns 1..n-1 row by row, then return down column 0.
            for y in range(m):
                xs = range(1, n) if y % 2 == 0 else range(n - 1, 0, -1)
                order.extend(GridCoord(x, y) for x in xs)
            order.extend(GridCoord(0, y) for y in range(m - 1, -1, -1))
        else:
            # n is even: snake over rows 1..m-1 column by column, return along row 0.
            for x in range(n):
                ys = range(1, m) if x % 2 == 0 else range(m - 1, 0, -1)
                order.extend(GridCoord(x, y) for y in ys)
            order.extend(GridCoord(x, 0) for x in range(n - 1, -1, -1))
        return order

    # --------------------------------------------------------------- topology
    @property
    def cycle_length(self) -> int:
        """Number of hops in the directed cycle (``m*n`` cells)."""
        return self.grid.cell_count

    @property
    def replacement_path_length(self) -> int:
        # Removing the vacant cell from the cycle leaves a Hamilton path of
        # m*n - 1 cells that could supply the spare (Theorem 2).
        """Longest replacement path the cycle supports (Theorem 2): ``m*n - 1``."""
        return self.grid.cell_count - 1

    def order(self) -> List[GridCoord]:
        """The cells in cycle visiting order (a copy)."""
        return list(self._order)

    def successor(self, coord: GridCoord) -> GridCoord:
        """The next cell along the directed cycle (the cell ``coord`` monitors)."""
        return self._successor[self.grid.validate_coord(coord)]

    def predecessor(self, coord: GridCoord) -> GridCoord:
        """The previous cell along the directed cycle."""
        return self._predecessor[self.grid.validate_coord(coord)]

    def monitored_cells(self, coord: GridCoord) -> List[GridCoord]:
        """The cells whose coverage ``coord``'s head monitors: its cycle successor."""
        return [self.successor(coord)]

    def initiator_for(
        self,
        vacant: GridCoord,
        has_spare: Optional[SpareLookup] = None,
        origin: Optional[GridCoord] = None,
    ) -> Optional[GridCoord]:
        """The cell whose head initiates the replacement of ``vacant``: its predecessor."""
        return self.predecessor(vacant)

    def upstream_distance(self, vacant: GridCoord, supplier: GridCoord) -> int:
        """Hops from ``vacant`` walking backwards along the cycle to ``supplier``."""
        vi = self.index_of(vacant)
        si = self.index_of(supplier)
        return (vi - si) % self.cycle_length


class DualPathHamiltonCycle(HamiltonCycle):
    """Section 4's dual-path construction for odd-by-odd grids.

    Cell roles (using the concrete layout of this construction):

    * ``A = (0, 0)`` and ``B = (1, 1)`` — the two cells covered by only one
      path each;
    * ``D = (1, 0)`` — the common successor of A and B;
    * ``C = (0, 1)`` — the common predecessor of A and B;
    * the *shared chain* runs from D to C and visits every other cell once.

    Path one is ``A -> D -> chain -> C -> B`` and path two is
    ``B -> D -> chain -> C -> A``; both are directed Hamilton paths of the
    full grid and they share the ``m*n - 2`` chain cells.
    """

    def __init__(self, grid: VirtualGrid) -> None:
        super().__init__(grid)
        n, m = grid.columns, grid.rows
        if n % 2 == 0 or m % 2 == 0:
            raise HamiltonConstructionError(
                f"DualPathHamiltonCycle is meant for odd-by-odd grids, got {n}x{m}; "
                "use SerpentineHamiltonCycle instead"
            )
        if n < 3 or m < 3:
            raise HamiltonConstructionError(
                f"the dual-path construction needs at least a 3x3 grid, got {n}x{m}"
            )
        self.cell_a = GridCoord(0, 0)
        self.cell_b = GridCoord(1, 1)
        self.cell_c = GridCoord(0, 1)
        self.cell_d = GridCoord(1, 0)
        self._chain = self._build_chain(n, m)
        if self._chain[0] != self.cell_d or self._chain[-1] != self.cell_c:
            raise AssertionError("dual-path chain must run from D to C")
        self._chain_index: Dict[GridCoord, int] = {
            coord: i for i, coord in enumerate(self._chain)
        }
        self._path_one = [self.cell_a] + self._chain + [self.cell_b]
        self._path_two = [self.cell_b] + self._chain + [self.cell_a]
        self._build_index(self._path_one)

    @staticmethod
    def _build_chain(n: int, m: int) -> List[GridCoord]:
        """Hamilton path over all cells except A=(0,0) and B=(1,1), from D=(1,0) to C=(0,1)."""
        chain: List[GridCoord] = [GridCoord(1, 0)]
        # 1. Zigzag over rows 0 and 1 for columns 2..n-1, ending at (n-1, 1).
        for x in range(2, n):
            if x % 2 == 0:
                chain.append(GridCoord(x, 0))
                chain.append(GridCoord(x, 1))
            else:
                chain.append(GridCoord(x, 1))
                chain.append(GridCoord(x, 0))
        # 2. Climb the last column from row 2 to the top.
        for y in range(2, m):
            chain.append(GridCoord(n - 1, y))
        # 3. Snake back down over columns 0..n-2, rows m-1 .. 2, ending at (0, 2).
        for k, y in enumerate(range(m - 1, 1, -1)):
            xs = range(n - 2, -1, -1) if k % 2 == 0 else range(0, n - 1)
            chain.extend(GridCoord(x, y) for x in xs)
        # 4. Finish at C.
        chain.append(GridCoord(0, 1))
        return chain

    # --------------------------------------------------------------- topology
    @property
    def cycle_length(self) -> int:
        # The paper describes the construction as an (m*n - 1)-hop cycle.
        """Number of hops in the dual-path construction's cycle (``m*n - 1``)."""
        return self.grid.cell_count - 1

    @property
    def replacement_path_length(self) -> int:
        # Corollary 2: replacements can stretch as far as m*n - 2 hops.
        """Longest replacement path of the construction (Corollary 2): ``m*n - 2``."""
        return self.grid.cell_count - 2

    def order(self) -> List[GridCoord]:
        """Path one (A -> D -> chain -> C -> B); covers every cell exactly once."""
        return list(self._path_one)

    def path_one(self) -> List[GridCoord]:
        """Path one of the construction (A -> D -> chain -> C -> B), as a copy."""
        return list(self._path_one)

    def path_two(self) -> List[GridCoord]:
        """Path two of the construction (ends at B instead of A), as a copy."""
        return list(self._path_two)

    def shared_chain(self) -> List[GridCoord]:
        """The ``m*n - 2`` cells shared by both paths, from D to C."""
        return list(self._chain)

    def chain_predecessor(self, coord: GridCoord) -> Optional[GridCoord]:
        """Predecessor of a chain cell within the shared chain (``None`` for D)."""
        index = self._chain_index.get(coord)
        if index is None:
            raise ValueError(f"{coord.as_tuple()} is not on the shared chain")
        return None if index == 0 else self._chain[index - 1]

    def chain_successor(self, coord: GridCoord) -> Optional[GridCoord]:
        """Successor of a chain cell within the shared chain (``None`` for C)."""
        index = self._chain_index.get(coord)
        if index is None:
            raise ValueError(f"{coord.as_tuple()} is not on the shared chain")
        return None if index == len(self._chain) - 1 else self._chain[index + 1]

    def monitored_cells(self, coord: GridCoord) -> List[GridCoord]:
        """Cells the head of ``coord`` watches for vacancy.

        * C watches both A and B (it precedes them on the two paths);
        * B watches D (Algorithm 2, case two: only B initiates for D);
        * A also watches D so that case three's "from D either A or B will be
          notified" has a listener even when B is vacant;
        * chain cells watch their chain successor (C's chain successor is
          ``None`` because its successors are A/B, handled above).
        """
        self.grid.validate_coord(coord)
        if coord == self.cell_c:
            return [self.cell_a, self.cell_b]
        if coord == self.cell_b:
            return [self.cell_d]
        if coord == self.cell_a:
            return [self.cell_d]
        successor = self.chain_successor(coord)
        return [successor] if successor is not None else []

    def initiator_for(
        self,
        vacant: GridCoord,
        has_spare: Optional[SpareLookup] = None,
        origin: Optional[GridCoord] = None,
    ) -> Optional[GridCoord]:
        """Algorithm 2's choice of the unique initiator for a vacant cell.

        * vacant A or B -> C initiates (cases one);
        * vacant D as an *original* hole -> B initiates (case two); when D was
          vacated by a cascading move, whichever of A/B still has a spare is
          notified, preferring A (case three);
        * vacant C -> A is preferred when it has spare nodes (and is not the
          hole being served), otherwise the replacement continues up the
          shared chain (case two's "grid A ... is always preferred");
        * any other vacant chain cell -> its chain predecessor.
        """
        self.grid.validate_coord(vacant)
        spare = has_spare or (lambda _c: False)
        if vacant == self.cell_a or vacant == self.cell_b:
            return self.cell_c
        if vacant == self.cell_d:
            if origin is None or origin == self.cell_d:
                return self.cell_b
            if spare(self.cell_a):
                return self.cell_a
            return self.cell_b
        if vacant == self.cell_c:
            if origin != self.cell_a and spare(self.cell_a):
                return self.cell_a
            return self.chain_predecessor(self.cell_c)
        return self.chain_predecessor(vacant)


def build_hamilton_cycle(grid: VirtualGrid) -> HamiltonCycle:
    """Build the appropriate directed Hamilton structure for ``grid``.

    Grids with an even number of cells get the serpentine cycle; odd-by-odd
    grids get the dual-path construction.  Degenerate one-row or one-column
    grids have no Hamilton cycle and raise
    :class:`HamiltonConstructionError`.
    """
    n, m = grid.columns, grid.rows
    if n < 2 or m < 2:
        raise HamiltonConstructionError(
            f"no Hamilton cycle exists over a {n}x{m} grid; the scheme needs a 2-D grid"
        )
    if (n * m) % 2 == 0:
        return SerpentineHamiltonCycle(grid)
    return DualPathHamiltonCycle(grid)
