"""Lifetime / depletion workloads: run schemes until the network dies.

The paper's Section 1 motivates coverage holes with nodes that "deplete their
battery power"; this driver turns that motivation into a measurable workload.
Every node starts with a (jittered) battery, the engine drains an idle cost
per round and disables nodes at the depletion threshold, and the recovery
scheme under test must keep repairing the holes that depletion opens — until
some hole becomes unrepairable (the run stalls), the network dies, or the
round bound hits.

The headline metric is the **lifetime**: the number of rounds a scheme kept
the surveillance area covered before the first unrepairable hole.  Schemes
that spend less movement energy per repair (SR versus AR) and schemes that
spread the drain across spares (the ``*-energy`` variants with ``max_energy``
spare selection) live longer on the same battery budget.

Everything runs through the ordinary orchestration layer —
:class:`~repro.experiments.orchestration.RunSpec` cells with a frozen
:class:`~repro.network.energy.EnergyModel` attached — so lifetime sweeps are
cacheable and serial/parallel byte-identical like every other experiment.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Sequence

from repro.experiments.orchestration import (
    RunExecutor,
    RunRecord,
    RunSpec,
    SerialExecutor,
    execute_many,
    make_executor,
)
from repro.experiments.persistence import RunCache, record_to_dict
from repro.experiments.registry import available_schemes
from repro.experiments.results import ExperimentResult, average_dicts
from repro.network.energy import EnergyModel
from repro.sim.rng import spawn_seeds
from repro.sim.scenario import ScenarioConfig

__all__ = [
    "DEFAULT_LIFETIME_SCHEMES",
    "LIFETIME_CONFIG",
    "LIFETIME_ENERGY",
    "SMOKE_CONFIG",
    "SMOKE_ENERGY",
    "build_lifetime_specs",
    "run_lifetime_experiment",
    "run_lifetime_smoke",
]

#: Schemes the lifetime comparison runs by default: the paper's pair plus
#: their energy-aware (max_energy spare selection) variants.
DEFAULT_LIFETIME_SCHEMES = ("SR", "SR-energy", "AR", "AR-energy")

#: Default lifetime deployment: small enough that a run dies within the round
#: bound in well under a second, dense enough that depletion holes are
#: repairable for a long stretch.  Battery jitter staggers depletion so holes
#: open gradually instead of in one synchronized wave.
LIFETIME_CONFIG = ScenarioConfig(
    columns=8,
    rows=8,
    communication_range=10.0,
    deployed_count=300,
    spare_surplus=30,
    seed=7,
    initial_energy=40.0,
    initial_energy_jitter=0.5,
)

#: Default physics: a quarter joule of idle/sensing drain per round, standard
#: move/message rates, depletion at an empty battery.
LIFETIME_ENERGY = EnergyModel(idle_cost_per_round=0.25)

#: Tiny fixed workload for the CI smoke gate (see :func:`run_lifetime_smoke`).
#: The per-cell deployment starts fully covered with three spares per cell, so
#: every hole the run ever sees is opened by engine-driven depletion — exactly
#: the coupling the gate is meant to protect.
SMOKE_CONFIG = ScenarioConfig(
    columns=6,
    rows=6,
    communication_range=10.0,
    deployed_count=144,
    seed=7,
    initial_energy=30.0,
    initial_energy_jitter=0.5,
    deployment="per_cell",
)

SMOKE_ENERGY = EnergyModel(idle_cost_per_round=0.5)


def build_lifetime_specs(
    config: ScenarioConfig,
    schemes: Sequence[str] = DEFAULT_LIFETIME_SCHEMES,
    energy: EnergyModel = LIFETIME_ENERGY,
    trials: int = 1,
    max_rounds: int = 1500,
    shards: int = 1,
) -> List[RunSpec]:
    """The lifetime sweep's run specs in deterministic (trial, scheme) order.

    Every scheme in a trial gets the *same* scenario config (same deployment,
    thinning, and battery-jitter seed), so all schemes start from identical
    networks and battery placements — the comparison is purely about how long
    each scheme keeps that network alive.  Schemes are innermost, so specs
    sharing a scenario are consecutive and the initial-state cache builds
    each trial's network exactly once for the whole scheme set.

    ``shards`` is plumbed through for CLI uniformity; results are identical
    at any value (it never enters the cache key).  Note that energy-model
    runs are ineligible for the sharded fast path, so today's lifetime specs
    execute sequentially regardless.
    """
    if trials < 1:
        raise ValueError(f"trials must be >= 1, got {trials}")
    if max_rounds < 1:
        raise ValueError(f"max_rounds must be >= 1, got {max_rounds}")
    if config.initial_energy is None:
        raise ValueError(
            "lifetime scenarios need an explicit initial_energy; an unbounded "
            "default battery never depletes within a sensible round budget"
        )
    if energy.idle_cost_per_round <= 0:
        raise ValueError(
            "lifetime scenarios need a positive idle_cost_per_round; without "
            "idle drain nothing depletes and the run measures only the repair "
            "of the initial holes, not a lifetime"
        )
    unknown = [scheme for scheme in schemes if scheme not in available_schemes()]
    if unknown:
        raise KeyError(
            f"unknown schemes {unknown}; available: {list(available_schemes())}"
        )
    specs: List[RunSpec] = []
    for trial_seed in spawn_seeds(config.seed, trials, label="lifetime"):
        scenario = config.with_seed(trial_seed)
        for scheme in schemes:
            specs.append(
                RunSpec(
                    scenario=scenario,
                    scheme=scheme,
                    seed=trial_seed,
                    max_rounds=max_rounds,
                    energy=energy,
                    run_to_exhaustion=True,
                    shards=shards,
                )
            )
    return specs


def run_lifetime_experiment(
    config: Optional[ScenarioConfig] = None,
    schemes: Sequence[str] = DEFAULT_LIFETIME_SCHEMES,
    energy: Optional[EnergyModel] = None,
    trials: int = 1,
    max_rounds: int = 1500,
    executor: Optional[RunExecutor] = None,
    cache: Optional[RunCache] = None,
    shards: int = 1,
    broker: Optional[object] = None,
) -> ExperimentResult:
    """Run every scheme to network death and tabulate lifetimes.

    The resulting table has one row per scheme (averaged over trials) with::

        scheme, lifetime_rounds, stalled, exhausted, depleted_nodes,
        final_holes, moves, distance_m, energy_consumed, mean_residual_energy

    ``lifetime_rounds`` is the rounds executed until the first unrepairable
    hole (or the bound); ``stalled``/``exhausted`` are the fractions of trials
    that ended in each way (a run can be both when the bound hits with holes).
    Pass ``broker`` to route the cells through a long-running
    :class:`~repro.experiments.broker.ExperimentBroker` instead of a private
    executor/cache pair.
    """
    config = config if config is not None else LIFETIME_CONFIG
    energy = energy if energy is not None else LIFETIME_ENERGY
    specs = build_lifetime_specs(
        config,
        schemes=schemes,
        energy=energy,
        trials=trials,
        max_rounds=max_rounds,
        shards=shards,
    )
    records = execute_many(specs, executor=executor, cache=cache, broker=broker)

    result = ExperimentResult(
        name=f"lifetime comparison on {config.columns}x{config.rows} grid",
        columns=[
            "scheme",
            "lifetime_rounds",
            "stalled",
            "exhausted",
            "depleted_nodes",
            "final_holes",
            "moves",
            "distance_m",
            "energy_consumed",
            "mean_residual_energy",
        ],
        description=(
            f"run-until-network-death, trials={trials}, "
            f"idle={energy.idle_cost_per_round} J/round, "
            f"battery={config.initial_energy} J "
            f"(-{config.initial_energy_jitter:.0%} jitter)"
        ),
    )

    # Records come back in spec order: schemes nested inside each trial.
    per_scheme: Dict[str, List[Dict[str, float]]] = {scheme: [] for scheme in schemes}
    record_iter = iter(records)
    for _ in range(trials):
        for scheme in schemes:
            record: RunRecord = next(record_iter)
            metrics = record.metrics
            summary = metrics.energy
            per_scheme[scheme].append(
                {
                    "scheme": scheme,
                    "lifetime_rounds": record.rounds_executed,
                    "stalled": 1.0 if record.stalled else 0.0,
                    "exhausted": 1.0 if record.exhausted else 0.0,
                    "depleted_nodes": summary.depleted_nodes if summary else 0,
                    "final_holes": metrics.final_holes,
                    "moves": metrics.total_moves,
                    "distance_m": metrics.total_distance,
                    "energy_consumed": summary.total_consumed if summary else 0.0,
                    "mean_residual_energy": summary.mean_energy if summary else 0.0,
                }
            )
    for scheme in schemes:
        result.add_row(**average_dicts(per_scheme[scheme]))
    return result


# ------------------------------------------------------------------ smoke gate
def run_lifetime_smoke(jobs: int = 2) -> List[str]:
    """CI gate for the energy round loop; returns failure messages (empty = OK).

    Executes the fixed :data:`SMOKE_CONFIG` workload three times — twice
    serially and once across ``jobs`` worker processes — and checks that

    * the three batches of records are byte-identical once serialized
      (depletion determinism, serial/parallel equivalence), and
    * every record shows the energy physics actually coupled to the round
      loop: a non-empty, decreasing per-round energy series, engine-depleted
      nodes, and repair movement responding to the depletion holes.
    """
    specs = build_lifetime_specs(
        SMOKE_CONFIG, schemes=("SR", "AR"), energy=SMOKE_ENERGY, trials=1, max_rounds=400
    )

    def canonical(records: Sequence[RunRecord]) -> str:
        """Canonical JSON form of the records, for byte-identity comparison."""
        return json.dumps([record_to_dict(r) for r in records], sort_keys=True)

    serial = execute_many(specs, executor=SerialExecutor())
    repeat = execute_many(specs, executor=SerialExecutor())
    parallel = execute_many(specs, executor=make_executor(max(2, jobs)))

    failures: List[str] = []
    if canonical(serial) != canonical(repeat):
        failures.append("serial re-execution is not deterministic")
    if canonical(serial) != canonical(parallel):
        failures.append("parallel records differ from serial records")
    for record in serial:
        scheme = record.spec.scheme
        if not record.energy_series:
            failures.append(f"{scheme}: empty per-round energy series")
            continue
        if record.energy_series[-1] >= record.energy_series[0]:
            failures.append(f"{scheme}: energy series does not decrease")
        summary = record.metrics.energy
        if summary is None or summary.depleted_nodes == 0:
            failures.append(f"{scheme}: engine depleted no node")
        if record.metrics.total_moves == 0:
            failures.append(f"{scheme}: no repair movement despite depletion holes")
        if record.metrics.rounds != len(record.energy_series):
            failures.append(f"{scheme}: energy series length != rounds executed")
    return failures
