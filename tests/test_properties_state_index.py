"""Property tests for the incremental state indices of :class:`WsnState`.

The state keeps live indices (per-cell sorted membership, occupancy
counters, the vacant-cell set, and running spare/enabled totals) that are
updated by the three mutation paths — ``disable_node``, ``enable_node``, and
``move_node``.  These tests drive long seeded sequences of random mutations
and assert, via ``check_invariants`` (the contract's oracle, which rebuilds
every index from scratch) and an explicit rebuilt ``WsnState``, that the
incremental indices never drift from the ground truth.
"""

from __future__ import annotations

import random

import pytest

from repro.grid.virtual_grid import GridCoord, VirtualGrid
from repro.network.deployment import deploy_uniform
from repro.network.state import WsnState

#: Number of seeded mutation sequences (acceptance: 200+).
SEQUENCE_COUNT = 220
#: Mutations per sequence.
OPERATIONS_PER_SEQUENCE = 30


def _random_state(rng: random.Random) -> WsnState:
    grid = VirtualGrid(columns=4, rows=4, cell_size=1.0)
    nodes = deploy_uniform(grid, rng.randint(10, 36), rng)
    return WsnState(grid, nodes)


def _apply_random_operation(state: WsnState, rng: random.Random) -> None:
    """One random disable / enable / move, skipping impossible choices."""
    operation = rng.random()
    enabled = state.enabled_nodes()
    if operation < 0.35:
        if enabled:
            state.disable_node(rng.choice(enabled).node_id)
    elif operation < 0.55:
        disabled = state.disabled_nodes()
        if disabled:
            state.enable_node(rng.choice(disabled).node_id)
    elif enabled:
        node = rng.choice(enabled)
        source = state.cell_of_node(node.node_id)
        if operation < 0.9:
            neighbours = state.grid.neighbours(source)
            state.move_node(node.node_id, rng.choice(neighbours), rng)
        else:
            target = GridCoord(
                rng.randrange(state.grid.columns), rng.randrange(state.grid.rows)
            )
            state.move_node(node.node_id, target, rng, enforce_adjacent=False)


@pytest.mark.parametrize("seed", range(SEQUENCE_COUNT))
def test_incremental_indices_match_rebuild(seed):
    """After every mutation the live indices equal a from-scratch rebuild."""
    rng = random.Random(seed)
    state = _random_state(rng)
    state.check_invariants()
    for _ in range(OPERATIONS_PER_SEQUENCE):
        _apply_random_operation(state, rng)
        state.check_invariants()

    # Cross-check against an independently constructed WsnState built from
    # copies of the surviving nodes: every derived statistic must agree.
    rebuilt = WsnState(state.grid, [node.copy() for node in state.nodes()])
    assert rebuilt.occupancy() == state.occupancy()
    assert rebuilt.spare_counts() == state.spare_counts()
    assert rebuilt.vacant_cells() == state.vacant_cells()
    assert rebuilt.vacant_cell_set() == state.vacant_cell_set()
    assert rebuilt.hole_count == state.hole_count
    assert rebuilt.spare_count == state.spare_count
    assert rebuilt.enabled_count == state.enabled_count
    for coord in state.grid.all_coords():
        assert [n.node_id for n in rebuilt.members_of(coord)] == [
            n.node_id for n in state.members_of(coord)
        ]


@pytest.mark.parametrize("seed", range(0, SEQUENCE_COUNT, 10))
def test_clone_preserves_indices_and_stays_independent(seed):
    """Structural clones share no mutable state with the original."""
    rng = random.Random(seed)
    state = _random_state(rng)
    for _ in range(10):
        _apply_random_operation(state, rng)
    twin = state.clone()
    twin.check_invariants()
    assert twin.occupancy() == state.occupancy()
    assert twin.heads() == state.heads()

    before = state.occupancy()
    for _ in range(10):
        _apply_random_operation(twin, rng)
        twin.check_invariants()
    assert state.occupancy() == before
    state.check_invariants()


def test_corrupted_occupancy_counter_is_detected():
    rng = random.Random(99)
    state = _random_state(rng)
    coord = next(iter(state.grid.all_coords()))
    state._occupancy[coord] += 1
    with pytest.raises(AssertionError):
        state.check_invariants()


def test_corrupted_vacant_set_is_detected():
    rng = random.Random(99)
    state = _random_state(rng)
    occupied = [c for c in state.grid.all_coords() if not state.is_vacant(c)]
    state._vacant.add(occupied[0])
    with pytest.raises(AssertionError):
        state.check_invariants()


def test_corrupted_spare_total_is_detected():
    rng = random.Random(99)
    state = _random_state(rng)
    state._spare_total += 1
    with pytest.raises(AssertionError):
        state.check_invariants()
