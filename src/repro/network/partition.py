"""Spatial partitioning of the virtual grid into contiguous column-band tiles.

The sharded engine (:mod:`repro.sim.sharded`) simulates one grid across
several workers.  The unit of distribution is a :class:`Tile`: a contiguous
band of grid columns (the tile *region*, owned exclusively by one worker)
plus a *halo* of neighbouring columns one radio range wide on each side.
The halo is wide enough that every cell a worker reads while deciding the
fate of an *owned* vacancy — the cycle predecessor it recruits from, the
cells a cascade notification targets — lies inside the worker's replica,
and that any node moved by a neighbouring worker is visible before it can
influence an owned decision (cascades travel one cell per round, so a halo
of ``ceil(R / r)`` columns buys ``ceil(R / r)`` rounds of advance notice).

Column bands (rather than 2-D blocks) keep the exchange pattern linear:
every tile has at most two neighbours, and the round barrier merges tiles
in index order, which is what makes the sharded merge deterministic.

Tiles narrower than the halo cannot guarantee the containment property, so
:func:`partition_columns` *falls back* to the largest feasible shard count
instead of producing unsound tiles (a 1-tile partition is always feasible
and degenerates to the unsharded engine).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional

from repro.grid.virtual_grid import VirtualGrid

__all__ = ["Tile", "halo_columns", "feasible_shards", "partition_columns"]


@dataclass(frozen=True)
class Tile:
    """One contiguous column band of the grid plus its halo.

    Attributes
    ----------
    index:
        Position of the tile in the left-to-right band order (the merge
        order of the round barrier).
    x_start, x_stop:
        Owned column range ``[x_start, x_stop)``.  Every grid column belongs
        to exactly one tile's owned range.
    halo_start, halo_stop:
        Column range ``[halo_start, halo_stop)`` of the tile's replica
        coverage: the owned band widened by the halo on each side, clamped
        to the grid.
    """

    index: int
    x_start: int
    x_stop: int
    halo_start: int
    halo_stop: int

    @property
    def width(self) -> int:
        """Number of owned columns."""
        return self.x_stop - self.x_start

    def owns_column(self, x: int) -> bool:
        """Whether column ``x`` is in the tile's owned band."""
        return self.x_start <= x < self.x_stop

    def covers_column(self, x: int) -> bool:
        """Whether column ``x`` is in the tile's replica coverage (owned + halo)."""
        return self.halo_start <= x < self.halo_stop


def halo_columns(grid: VirtualGrid, radio_range: Optional[float] = None) -> int:
    """Halo width in columns: one radio range, rounded up to whole cells.

    ``radio_range`` defaults to the GAF range the grid's overlay assumes
    (``R = sqrt(5) * r``), giving a 3-column halo.
    """
    if radio_range is None:
        radio_range = grid.required_communication_range
    if radio_range <= 0:
        raise ValueError(f"radio_range must be positive, got {radio_range}")
    return max(1, math.ceil(radio_range / grid.cell_size - 1e-9))


def feasible_shards(
    grid: VirtualGrid, shards: int, radio_range: Optional[float] = None
) -> int:
    """The largest shard count ``<= shards`` whose tiles are all halo-wide.

    Every owned band must be at least as wide as the halo, otherwise a
    cascade could cross a whole tile between two barriers and the replica
    containment argument breaks.  ``floor(columns / k) >= halo`` bounds the
    feasible ``k``; 1 is always feasible.
    """
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    halo = halo_columns(grid, radio_range)
    return max(1, min(shards, grid.columns // halo))


def partition_columns(
    grid: VirtualGrid, shards: int, radio_range: Optional[float] = None
) -> List[Tile]:
    """Split the grid into ``shards`` contiguous column-band tiles.

    The requested count is first clamped with :func:`feasible_shards`; the
    surviving bands differ in width by at most one column (the remainder is
    spread over the leftmost tiles), so uneven grids partition without
    starving any worker.  The result is deterministic: equal inputs always
    produce the identical tile list.
    """
    count = feasible_shards(grid, shards, radio_range)
    halo = halo_columns(grid, radio_range)
    base, remainder = divmod(grid.columns, count)
    tiles: List[Tile] = []
    start = 0
    for index in range(count):
        width = base + (1 if index < remainder else 0)
        stop = start + width
        tiles.append(
            Tile(
                index=index,
                x_start=start,
                x_stop=stop,
                halo_start=max(0, start - halo),
                halo_stop=min(grid.columns, stop + halo),
            )
        )
        start = stop
    assert start == grid.columns
    return tiles
