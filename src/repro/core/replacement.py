"""SR: the Hamilton-cycle-synchronised snake-like cascading replacement.

This is the paper's contribution (Algorithm 1, extended by Algorithm 2 for
the dual-path construction).  Every head monitors its successor cell along
the directed Hamilton cycle.  When the successor becomes vacant:

1. the head (node ``u``) is the *only* initiator for that vacancy — the
   synchronisation provided by the directed cycle guarantees one and only one
   replacement process per hole;
2. ``u`` sends one of its spare nodes into the vacant cell if it has one, and
   the process converges;
3. otherwise ``u`` itself moves into the vacant cell, notifies the head of
   its preceding grid, and the cascade continues from there in the next
   round — the snake-like cascading movement.

The controller is fully round-based: notifications sent in round ``t`` are
acted upon in round ``t + 1``, exactly as the paper's synchronisation model
assumes.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Set, Tuple

from repro.core.hamilton import HamiltonCycle
from repro.core.protocol import MobilityController, ReplacementProcess, RoundOutcome
from repro.grid.virtual_grid import GridCoord
from repro.network.messages import Message
from repro.network.node import SensorNode
from repro.network.state import WsnState


class HamiltonReplacementController(MobilityController):
    """The SR scheme of the paper (Algorithms 1 and 2).

    Parameters
    ----------
    cycle:
        The directed Hamilton structure threading the grid (serpentine cycle
        or the dual-path construction for odd-by-odd grids).
    max_hops:
        Safety bound on the number of cascading moves a single process may
        perform.  Defaults to the replacement path length ``L``; a converged
        process can never legitimately need more than ``L`` hops because the
        path visits every potential supplier cell exactly once.
    spare_selection:
        ``"nearest"`` (default) sends the spare closest to the vacant cell's
        centre; ``"random"`` picks a uniformly random spare, matching the
        loosest reading of the paper; ``"max_energy"`` sends the spare with
        the fullest battery (ties broken by distance, then id), so repeated
        replacement stops draining the same nearest node — the energy-aware
        policy of the lifetime workloads.
    activation_probability:
        Probability that a responsible head acts in a given round.  The
        default of 1.0 is the paper's round-based model; values below 1.0
        model the asynchronous relaxation mentioned in Section 2 ("all the
        schemes … can be extended easily to an asynchronous system"): heads
        wake up at independent random times, so a vacancy may wait a few
        rounds before its initiator reacts, but the recovery guarantee is
        unchanged.
    """

    name = "SR"

    def __init__(
        self,
        cycle: HamiltonCycle,
        max_hops: Optional[int] = None,
        spare_selection: str = "nearest",
        activation_probability: float = 1.0,
    ) -> None:
        super().__init__()
        if spare_selection not in ("nearest", "random", "max_energy"):
            raise ValueError(
                "spare_selection must be 'nearest', 'random', or 'max_energy', "
                f"got {spare_selection!r}"
            )
        if not 0.0 < activation_probability <= 1.0:
            raise ValueError(
                f"activation_probability must be in (0, 1], got {activation_probability}"
            )
        self.cycle = cycle
        self.max_hops = max_hops if max_hops is not None else cycle.replacement_path_length
        if self.max_hops < 1:
            raise ValueError(f"max_hops must be >= 1, got {self.max_hops}")
        self.spare_selection = spare_selection
        self.activation_probability = activation_probability
        #: Vacant cells currently being served, mapped to their process id.
        self._vacancy_process: Dict[GridCoord, int] = {}
        #: Cascade vacancies whose replacement request is still in flight.
        #: A head only acts on a cascade vacancy once the notification has
        #: actually been delivered through the channel; on the default
        #: perfect channel delivery happens exactly one round after the move,
        #: which is precisely when the vacancy becomes actionable anyway.
        self._undelivered: Set[GridCoord] = set()

    # ------------------------------------------------------------------ round
    def execute_round(
        self, state: WsnState, rng: random.Random, round_index: int
    ) -> RoundOutcome:
        """Run one SR round: start processes for new holes and advance each cascade one hop."""
        outcome = RoundOutcome(round_index=round_index)
        self._service_retries(state, round_index, outcome)
        # Snapshot the holes visible at the start of the round.  New vacancies
        # created by this round's moves are only observable next round.  The
        # vacancy index makes this O(holes log holes) — round cost no longer
        # depends on the grid size.
        ordered = sorted(state.vacant_cell_set(), key=self.cycle.index_of)
        acted_heads: set = set()

        for vacant in ordered:
            process_id = self._vacancy_process.get(vacant)
            process = self._processes.get(process_id) if process_id is not None else None
            if process is not None and not process.is_active:
                # Served by a process that already finished (e.g. failed):
                # leave the vacancy alone; the scheme has no spare to offer.
                continue
            if process is not None and vacant in self._undelivered:
                # The cascade notification for this vacancy is still in the
                # channel; nobody knows about it yet, so nobody may act.
                continue

            origin = process.origin_cell if process is not None else vacant
            initiator = self.cycle.initiator_for(
                vacant, has_spare=state.has_spare, origin=origin
            )
            if initiator is None:
                continue
            if initiator in acted_heads or state.is_vacant(initiator):
                # The responsible head is busy this round or does not exist
                # yet (its own cell is also vacant); retry next round.
                continue
            if (
                self.activation_probability < 1.0
                and rng.random() >= self.activation_probability
            ):
                # Asynchronous relaxation: this head did not wake up this round.
                continue
            head = state.head_of(initiator)
            assert head is not None
            if head.is_battery_depleted:
                # A dead-battery head can neither move nor message; the
                # vacancy waits until the energy model disables the head and
                # a charged successor is elected.
                continue

            if process is None:
                process = self._start_process(
                    origin_cell=vacant, initiator_cell=initiator, round_index=round_index
                )
                self._vacancy_process[vacant] = process.process_id
                outcome.processes_started.append(process.process_id)

            self._serve_vacancy(
                state, rng, round_index, vacant, initiator, head, process, outcome
            )
            acted_heads.add(initiator)
        return outcome

    # ------------------------------------------------------------------ steps
    def _serve_vacancy(
        self,
        state: WsnState,
        rng: random.Random,
        round_index: int,
        vacant: GridCoord,
        initiator: GridCoord,
        head: SensorNode,
        process: ReplacementProcess,
        outcome: RoundOutcome,
    ) -> None:
        """One hop of Algorithm 1 for a single vacancy."""
        spare = self._select_spare(state, initiator, vacant, rng)
        if spare is not None:
            # Step 2: a spare exists — it fills the hole and the process converges.
            record = state.move_node(
                spare.node_id, vacant, rng, round_index, process_id=process.process_id
            )
            process.record_move(record)
            outcome.moves.append(record)
            del self._vacancy_process[vacant]
            process.mark_converged(round_index)
            outcome.processes_converged.append(process.process_id)
            return

        # Step 3: no spare — the head notifies its own initiator and moves
        # itself into the vacant cell, leaving its cell vacant for the
        # cascading replacement.  The notification is sent after the move: a
        # head whose battery would be emptied by the transmission must still
        # complete the move it committed to this round.
        process.notifications_sent += 1
        outcome.messages_sent += 1
        record = state.move_node(
            head.node_id, vacant, rng, round_index, process_id=process.process_id
        )
        notify_target = (
            self.cycle.initiator_for(
                initiator, has_spare=state.has_spare, origin=process.origin_cell
            )
            or initiator
        )
        # The hop that blows the budget ends the process, so its notification
        # is advisory: nobody will serve the abandoned vacancy, hence nothing
        # to acknowledge or retry.
        final_hop = process.move_count + 1 >= self.max_hops
        gated = self._post_replacement_request(
            sender=head,
            source_cell=vacant,
            target_cell=notify_target,
            vacancy=initiator,
            process_id=process.process_id,
            round_index=round_index,
            reliable=not final_hop,
        )
        process.record_move(record)
        outcome.moves.append(record)
        del self._vacancy_process[vacant]
        if process.move_count >= self.max_hops:
            # The cascade visited every candidate supplier without finding a
            # spare: there is no spare left to find, so the process fails and
            # the remaining vacancy is left in place.
            self._vacancy_process[initiator] = process.process_id
            process.mark_failed(round_index)
            outcome.processes_failed.append(process.process_id)
            return
        self._vacancy_process[initiator] = process.process_id
        if gated:
            self._undelivered.add(initiator)

    @staticmethod
    def _usable_spares(state: WsnState, cell: GridCoord) -> List[SensorNode]:
        """Spares of ``cell`` that still have the battery to move."""
        return [
            node for node in state.spares_of(cell) if not node.is_battery_depleted
        ]

    def _select_spare(
        self,
        state: WsnState,
        cell: GridCoord,
        vacant: GridCoord,
        rng: random.Random,
    ) -> Optional[SensorNode]:
        spares = self._usable_spares(state, cell)
        if not spares:
            return None
        if self.spare_selection == "random":
            return spares[rng.randrange(len(spares))]
        target_center = state.grid.cell_center(vacant)
        if self.spare_selection == "max_energy":
            return max(
                spares,
                key=lambda node: (
                    node.energy,
                    -node.position.distance_to(target_center),
                    -node.node_id,
                ),
            )
        return min(
            spares,
            key=lambda node: (node.position.distance_to(target_center), node.node_id),
        )

    # -------------------------------------------------------------- messaging
    def _reset_messaging_state(self) -> None:
        """Drop delivery gates from a previous run's channel (rebind hook)."""
        self._undelivered.clear()

    def _on_request_delivered(
        self, state: WsnState, message: Message, round_index: int
    ) -> None:
        """A cascade notification arrived: its vacancy becomes actionable.

        The gate only opens for the process that currently owns the vacancy:
        a stale retransmission from an earlier process that once served the
        same (since refilled and re-vacated) cell must not unlock a later
        process's still-undelivered notification.
        """
        payload = message.payload or {}
        vacancy = payload.get("vacancy")
        if vacancy is None:
            return
        cell = GridCoord(*vacancy)
        if self._vacancy_process.get(cell) == message.process_id:
            self._undelivered.discard(cell)

    def _on_request_abandoned(
        self,
        state: WsnState,
        key: Tuple[int, Tuple[int, int]],
        round_index: int,
        outcome: RoundOutcome,
    ) -> None:
        """Retry budget exhausted: the cascade can never continue, so it fails."""
        process_id, vacancy_tuple = key
        vacancy = GridCoord(*vacancy_tuple)
        process = self._processes.get(process_id)
        if process is None or not process.is_active or vacancy not in self._undelivered:
            return
        self._undelivered.discard(vacancy)
        process.mark_failed(round_index)
        outcome.processes_failed.append(process_id)

    # -------------------------------------------------------------- lifecycle
    def is_quiescent(self, state: WsnState) -> bool:
        """The controller is idle when no active process still has a vacancy to serve."""
        return not any(
            self._processes[pid].is_active for pid in self._vacancy_process.values()
        ) and super().is_quiescent(state)

    def finalize(self, state: WsnState, round_index: int) -> None:
        """Mark processes that never converged as failed (engine shutdown hook)."""
        for process in self._processes.values():
            if process.is_active:
                process.mark_failed(round_index)

    def pending_vacancies(self) -> List[GridCoord]:
        """Vacant cells currently owned by an active process (for inspection)."""
        return [
            cell
            for cell, pid in self._vacancy_process.items()
            if self._processes[pid].is_active
        ]
