"""Control messages exchanged by grid heads.

The only control traffic in the paper's scheme is the *replacement
notification* a head sends to the head of its preceding grid when it is about
to vacate its own cell (Algorithm 1, step 3a).  Messages sent in round ``t``
are received in round ``t + 1`` ("wait until the corresponding head w
receives this notification"), which the :class:`Mailbox` models explicitly.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.grid.virtual_grid import GridCoord


class MessageKind(enum.Enum):
    """Kinds of control messages used by the mobility-control schemes."""

    #: "I am about to move into my vacant successor; please replace me."
    REPLACEMENT_REQUEST = "replacement_request"
    #: Acknowledgement that a replacement was dispatched (extension; the
    #: paper's round-based scheme does not strictly need it).
    REPLACEMENT_ACK = "replacement_ack"
    #: Periodic head heartbeat used by the monitoring extension.
    HEARTBEAT = "heartbeat"


_message_ids = itertools.count()


@dataclass(frozen=True)
class Message:
    """A control message addressed to the head of a destination cell."""

    kind: MessageKind
    source_cell: GridCoord
    target_cell: GridCoord
    sent_round: int
    process_id: Optional[int] = None
    payload: Optional[dict] = None
    message_id: int = field(default_factory=lambda: next(_message_ids))


class Mailbox:
    """Round-delayed delivery of control messages.

    Messages submitted during round ``t`` become visible to the destination
    cell's head when :meth:`deliver` is called for round ``t + 1``.  This is
    the synchronisation assumption of Algorithm 1.
    """

    def __init__(self) -> None:
        self._in_flight: List[Message] = []
        self._sent_count = 0
        self._delivered_count = 0

    @property
    def sent_count(self) -> int:
        """Total number of messages ever submitted."""
        return self._sent_count

    @property
    def delivered_count(self) -> int:
        """Total number of messages ever delivered."""
        return self._delivered_count

    @property
    def pending_count(self) -> int:
        """Messages submitted but not yet delivered."""
        return len(self._in_flight)

    def send(self, message: Message) -> None:
        """Submit a message for delivery in the next round."""
        self._in_flight.append(message)
        self._sent_count += 1

    def deliver(self, current_round: int) -> Dict[GridCoord, List[Message]]:
        """Return (and consume) messages whose one-round latency has elapsed.

        A message sent in round ``t`` is delivered when ``current_round > t``.
        The result maps destination cells to the messages addressed to them,
        in submission order.
        """
        ready: Dict[GridCoord, List[Message]] = {}
        still_in_flight: List[Message] = []
        for message in self._in_flight:
            if current_round > message.sent_round:
                ready.setdefault(message.target_cell, []).append(message)
                self._delivered_count += 1
            else:
                still_in_flight.append(message)
        self._in_flight = still_in_flight
        return ready

    def clear(self) -> None:
        """Drop all in-flight messages (used when a scenario is reset)."""
        self._in_flight.clear()
