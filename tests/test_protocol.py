"""Unit tests for the controller protocol and process bookkeeping."""

import random

import pytest

from repro.core.protocol import (
    MobilityController,
    ProcessStatus,
    ReplacementProcess,
    RoundOutcome,
)
from repro.grid.geometry import Point
from repro.grid.virtual_grid import GridCoord
from repro.network.mobility import MoveRecord


def make_move(distance=1.0, process_id=0):
    return MoveRecord(
        node_id=1,
        source_cell=GridCoord(0, 0),
        target_cell=GridCoord(0, 1),
        source_position=Point(0.5, 0.5),
        target_position=Point(0.5, 1.5),
        distance=distance,
        round_index=0,
        process_id=process_id,
    )


class DummyController(MobilityController):
    """Minimal concrete controller used to exercise the shared bookkeeping."""

    name = "dummy"

    def execute_round(self, state, rng, round_index):
        return RoundOutcome(round_index=round_index)


class TestReplacementProcess:
    def test_initial_state(self):
        process = ReplacementProcess(
            process_id=0,
            origin_cell=GridCoord(1, 1),
            initiator_cell=GridCoord(1, 0),
            started_round=2,
        )
        assert process.is_active
        assert not process.converged and not process.failed
        assert process.move_count == 0
        assert process.total_distance == 0.0

    def test_recording_moves(self):
        process = ReplacementProcess(0, GridCoord(0, 0), GridCoord(0, 1), 0)
        process.record_move(make_move(2.0))
        process.record_move(make_move(3.0))
        assert process.move_count == 2
        assert process.total_distance == pytest.approx(5.0)

    def test_terminal_states(self):
        process = ReplacementProcess(0, GridCoord(0, 0), GridCoord(0, 1), 0)
        process.mark_converged(7)
        assert process.converged and not process.is_active
        assert process.finished_round == 7
        other = ReplacementProcess(1, GridCoord(0, 0), GridCoord(0, 1), 0)
        other.mark_failed(3)
        assert other.failed and other.status is ProcessStatus.FAILED


class TestRoundOutcome:
    def test_progress_detection(self):
        idle = RoundOutcome(round_index=0)
        assert not idle.made_progress
        assert RoundOutcome(round_index=0, messages_sent=1).made_progress
        assert RoundOutcome(round_index=0, moves=[make_move()]).made_progress
        assert RoundOutcome(round_index=0, processes_started=[1]).made_progress

    def test_aggregates(self):
        outcome = RoundOutcome(round_index=0, moves=[make_move(1.0), make_move(2.5)])
        assert outcome.move_count == 2
        assert outcome.total_distance == pytest.approx(3.5)


class TestControllerBookkeeping:
    def test_process_creation_and_lookup(self):
        controller = DummyController()
        p0 = controller._start_process(GridCoord(0, 0), GridCoord(0, 1), 0)
        p1 = controller._start_process(GridCoord(1, 1), GridCoord(1, 0), 1)
        assert p0.process_id == 0 and p1.process_id == 1
        assert controller.total_processes == 2
        assert controller.process(1) is p1
        assert [p.process_id for p in controller.processes()] == [0, 1]

    def test_aggregate_properties(self):
        controller = DummyController()
        p0 = controller._start_process(GridCoord(0, 0), GridCoord(0, 1), 0)
        p1 = controller._start_process(GridCoord(1, 1), GridCoord(1, 0), 0)
        p0.record_move(make_move(4.0))
        p0.mark_converged(1)
        p1.mark_failed(2)
        assert controller.total_moves == 1
        assert controller.total_distance == pytest.approx(4.0)
        assert controller.converged_processes == 1
        assert controller.failed_processes == 1
        assert controller.success_rate == pytest.approx(0.5)
        assert controller.active_processes() == []

    def test_success_rate_with_no_processes(self):
        assert DummyController().success_rate == 1.0

    def test_quiescence(self):
        controller = DummyController()
        assert controller.is_quiescent(state=None)
        process = controller._start_process(GridCoord(0, 0), GridCoord(0, 1), 0)
        assert not controller.is_quiescent(state=None)
        process.mark_converged(0)
        assert controller.is_quiescent(state=None)

    def test_describe_mentions_name_and_counts(self):
        controller = DummyController()
        controller._start_process(GridCoord(0, 0), GridCoord(0, 1), 0)
        text = controller.describe()
        assert "dummy" in text
        assert "processes=1" in text
