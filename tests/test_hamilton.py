"""Unit tests for the directed Hamilton cycle constructions (Sections 2 and 4)."""

import pytest

from repro.core.hamilton import (
    DualPathHamiltonCycle,
    HamiltonConstructionError,
    SerpentineHamiltonCycle,
    build_hamilton_cycle,
)
from repro.grid.virtual_grid import GridCoord, VirtualGrid


def grid(columns, rows):
    return VirtualGrid(columns, rows, cell_size=1.0)


class TestFactory:
    @pytest.mark.parametrize("columns,rows", [(2, 2), (4, 5), (16, 16), (6, 3)])
    def test_even_grids_use_serpentine(self, columns, rows):
        cycle = build_hamilton_cycle(grid(columns, rows))
        assert isinstance(cycle, SerpentineHamiltonCycle)

    @pytest.mark.parametrize("columns,rows", [(3, 3), (5, 5), (7, 3), (9, 11)])
    def test_odd_by_odd_grids_use_dual_path(self, columns, rows):
        cycle = build_hamilton_cycle(grid(columns, rows))
        assert isinstance(cycle, DualPathHamiltonCycle)

    @pytest.mark.parametrize("columns,rows", [(1, 1), (1, 5), (7, 1)])
    def test_degenerate_grids_rejected(self, columns, rows):
        with pytest.raises(HamiltonConstructionError):
            build_hamilton_cycle(grid(columns, rows))


class TestSerpentine:
    @pytest.mark.parametrize("columns,rows", [(2, 2), (4, 5), (5, 4), (16, 16), (3, 8)])
    def test_is_valid_hamilton_cycle(self, columns, rows):
        cycle = SerpentineHamiltonCycle(grid(columns, rows))
        cycle.validate()
        order = cycle.order()
        assert len(order) == columns * rows
        # Closing edge: the last cell is adjacent to the first one.
        assert order[-1].is_neighbour_of(order[0])

    def test_rejects_odd_by_odd(self):
        with pytest.raises(HamiltonConstructionError):
            SerpentineHamiltonCycle(grid(5, 5))

    def test_rejects_single_row(self):
        with pytest.raises(HamiltonConstructionError):
            SerpentineHamiltonCycle(grid(1, 4))

    def test_lengths_match_paper(self):
        assert SerpentineHamiltonCycle(grid(4, 5)).replacement_path_length == 19
        assert SerpentineHamiltonCycle(grid(16, 16)).replacement_path_length == 255
        assert SerpentineHamiltonCycle(grid(4, 5)).cycle_length == 20

    def test_successor_predecessor_inverse(self):
        cycle = SerpentineHamiltonCycle(grid(6, 4))
        for coord in grid(6, 4).all_coords():
            assert cycle.predecessor(cycle.successor(coord)) == coord
            assert cycle.successor(cycle.predecessor(coord)) == coord
            assert cycle.successor(coord).is_neighbour_of(coord)

    def test_every_cell_has_unique_successor(self):
        cycle = SerpentineHamiltonCycle(grid(4, 5))
        successors = [cycle.successor(c) for c in grid(4, 5).all_coords()]
        assert len(set(successors)) == 20

    def test_initiator_is_predecessor(self):
        cycle = SerpentineHamiltonCycle(grid(4, 5))
        vacant = GridCoord(2, 2)
        assert cycle.initiator_for(vacant) == cycle.predecessor(vacant)

    def test_monitored_cells(self):
        cycle = SerpentineHamiltonCycle(grid(4, 5))
        for coord in grid(4, 5).all_coords():
            assert cycle.monitored_cells(coord) == [cycle.successor(coord)]

    def test_upstream_distance(self):
        cycle = SerpentineHamiltonCycle(grid(4, 5))
        vacant = GridCoord(2, 2)
        predecessor = cycle.predecessor(vacant)
        assert cycle.upstream_distance(vacant, predecessor) == 1
        assert cycle.upstream_distance(vacant, vacant) == 0
        assert cycle.upstream_distance(vacant, cycle.successor(vacant)) == 19

    def test_index_of_round_trip(self):
        cycle = SerpentineHamiltonCycle(grid(4, 5))
        order = cycle.order()
        for index, coord in enumerate(order):
            assert cycle.index_of(coord) == index


class TestDualPath:
    @pytest.mark.parametrize("columns,rows", [(3, 3), (5, 5), (3, 7), (9, 5), (11, 11)])
    def test_paths_are_valid_hamilton_paths(self, columns, rows):
        cycle = DualPathHamiltonCycle(grid(columns, rows))
        cycle.validate()
        all_cells = set(grid(columns, rows).all_coords())
        for path in (cycle.path_one(), cycle.path_two()):
            assert set(path) == all_cells
            assert len(path) == columns * rows
            for a, b in zip(path, path[1:]):
                assert a.is_neighbour_of(b)

    def test_rejects_even_grids(self):
        with pytest.raises(HamiltonConstructionError):
            DualPathHamiltonCycle(grid(4, 5))

    def test_rejects_too_small(self):
        with pytest.raises(HamiltonConstructionError):
            DualPathHamiltonCycle(grid(1, 3))

    def test_shared_chain_properties(self):
        cycle = DualPathHamiltonCycle(grid(5, 5))
        chain = cycle.shared_chain()
        # The two paths share m*n - 2 cells (everything except A and B).
        assert len(chain) == 23
        assert cycle.cell_a not in chain
        assert cycle.cell_b not in chain
        assert chain[0] == cycle.cell_d
        assert chain[-1] == cycle.cell_c

    def test_special_cell_adjacency(self):
        """C must precede both A and B; D must succeed both (Section 4)."""
        cycle = DualPathHamiltonCycle(grid(7, 9))
        assert cycle.cell_c.is_neighbour_of(cycle.cell_a)
        assert cycle.cell_c.is_neighbour_of(cycle.cell_b)
        assert cycle.cell_d.is_neighbour_of(cycle.cell_a)
        assert cycle.cell_d.is_neighbour_of(cycle.cell_b)

    def test_paths_share_middle_section(self):
        cycle = DualPathHamiltonCycle(grid(5, 5))
        assert cycle.path_one()[1:-1] == cycle.path_two()[1:-1] == cycle.shared_chain()
        assert cycle.path_one()[0] == cycle.cell_a and cycle.path_one()[-1] == cycle.cell_b
        assert cycle.path_two()[0] == cycle.cell_b and cycle.path_two()[-1] == cycle.cell_a

    def test_lengths_match_corollary(self):
        cycle = DualPathHamiltonCycle(grid(5, 5))
        assert cycle.cycle_length == 24
        assert cycle.replacement_path_length == 23

    def test_chain_navigation(self):
        cycle = DualPathHamiltonCycle(grid(5, 5))
        chain = cycle.shared_chain()
        assert cycle.chain_predecessor(cycle.cell_d) is None
        assert cycle.chain_successor(cycle.cell_c) is None
        assert cycle.chain_successor(cycle.cell_d) == chain[1]
        assert cycle.chain_predecessor(chain[1]) == cycle.cell_d
        with pytest.raises(ValueError):
            cycle.chain_predecessor(cycle.cell_a)

    def test_initiators_for_special_cells(self):
        cycle = DualPathHamiltonCycle(grid(5, 5))
        no_spares = lambda _c: False
        # Case one: A or B vacant -> C initiates.
        assert cycle.initiator_for(cycle.cell_a, no_spares, origin=cycle.cell_a) == cycle.cell_c
        assert cycle.initiator_for(cycle.cell_b, no_spares, origin=cycle.cell_b) == cycle.cell_c
        # Case two: D vacant as an original hole -> only B initiates.
        assert cycle.initiator_for(cycle.cell_d, no_spares, origin=cycle.cell_d) == cycle.cell_b
        # Case three: D vacated by a cascade -> prefer A when A has a spare.
        has_spare_at_a = lambda c: c == cycle.cell_a
        other_origin = GridCoord(3, 3)
        assert (
            cycle.initiator_for(cycle.cell_d, has_spare_at_a, origin=other_origin)
            == cycle.cell_a
        )
        assert (
            cycle.initiator_for(cycle.cell_d, no_spares, origin=other_origin)
            == cycle.cell_b
        )

    def test_initiator_for_c_prefers_a_with_spares(self):
        cycle = DualPathHamiltonCycle(grid(5, 5))
        has_spare_at_a = lambda c: c == cycle.cell_a
        assert (
            cycle.initiator_for(cycle.cell_c, has_spare_at_a, origin=GridCoord(4, 4))
            == cycle.cell_a
        )
        # When the process serves A itself, A cannot be the supplier.
        assert (
            cycle.initiator_for(cycle.cell_c, has_spare_at_a, origin=cycle.cell_a)
            == cycle.chain_predecessor(cycle.cell_c)
        )
        assert (
            cycle.initiator_for(cycle.cell_c, lambda _c: False, origin=GridCoord(4, 4))
            == cycle.chain_predecessor(cycle.cell_c)
        )

    def test_initiator_for_chain_cells(self):
        cycle = DualPathHamiltonCycle(grid(5, 5))
        chain = cycle.shared_chain()
        for previous, current in zip(chain, chain[1:]):
            assert cycle.initiator_for(current, lambda _c: False, origin=current) == previous

    def test_monitored_cells_cover_every_cell(self):
        cycle = DualPathHamiltonCycle(grid(5, 5))
        monitored = set()
        for coord in grid(5, 5).all_coords():
            monitored.update(cycle.monitored_cells(coord))
        # Every cell is watched by someone, so every hole gets detected.
        assert monitored == set(grid(5, 5).all_coords())
