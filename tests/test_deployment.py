"""Unit tests for the deployment generators."""

import random

import pytest

from repro.grid.geometry import Point
from repro.grid.virtual_grid import GridCoord, VirtualGrid
from repro.network.deployment import (
    deploy_clustered,
    deploy_grid_heads,
    deploy_per_cell,
    deploy_per_cell_counts,
    deploy_uniform,
    occupancy_by_cell,
)


@pytest.fixture
def grid():
    return VirtualGrid(6, 4, cell_size=2.0)


class TestUniform:
    def test_count_and_ids(self, grid, rng):
        nodes = deploy_uniform(grid, 100, rng)
        assert len(nodes) == 100
        assert [n.node_id for n in nodes] == list(range(100))

    def test_all_positions_inside_area(self, grid, rng):
        for node in deploy_uniform(grid, 200, rng):
            assert grid.bounds.contains(node.position)

    def test_start_id_offset(self, grid, rng):
        nodes = deploy_uniform(grid, 5, rng, start_id=50)
        assert [n.node_id for n in nodes] == [50, 51, 52, 53, 54]

    def test_zero_and_negative(self, grid, rng):
        assert deploy_uniform(grid, 0, rng) == []
        with pytest.raises(ValueError):
            deploy_uniform(grid, -1, rng)

    def test_reproducible_for_same_seed(self, grid):
        a = deploy_uniform(grid, 20, random.Random(9))
        b = deploy_uniform(grid, 20, random.Random(9))
        assert [n.position for n in a] == [n.position for n in b]

    def test_roughly_uniform_occupancy(self, grid):
        nodes = deploy_uniform(grid, 2400, random.Random(4))
        occupancy = occupancy_by_cell(grid, nodes)
        expected = 2400 / grid.cell_count
        assert min(occupancy.values()) > expected * 0.4
        assert max(occupancy.values()) < expected * 1.8


class TestPerCell:
    def test_exact_per_cell(self, grid, rng):
        nodes = deploy_per_cell(grid, 3, rng)
        occupancy = occupancy_by_cell(grid, nodes)
        assert all(count == 3 for count in occupancy.values())
        assert len(nodes) == grid.cell_count * 3

    def test_zero_per_cell(self, grid, rng):
        assert deploy_per_cell(grid, 0, rng) == []

    def test_rejects_negative(self, grid, rng):
        with pytest.raises(ValueError):
            deploy_per_cell(grid, -2, rng)

    def test_nodes_are_in_their_cell(self, grid, rng):
        nodes = deploy_per_cell(grid, 2, rng)
        occupancy = occupancy_by_cell(grid, nodes)
        assert sum(occupancy.values()) == len(nodes)


class TestPerCellCounts:
    def test_explicit_counts(self, grid, rng):
        counts = {GridCoord(0, 0): 2, GridCoord(5, 3): 1}
        nodes = deploy_per_cell_counts(grid, counts, rng)
        occupancy = occupancy_by_cell(grid, nodes)
        assert occupancy[GridCoord(0, 0)] == 2
        assert occupancy[GridCoord(5, 3)] == 1
        assert sum(occupancy.values()) == 3

    def test_rejects_invalid_cell_and_count(self, grid, rng):
        with pytest.raises(ValueError):
            deploy_per_cell_counts(grid, {GridCoord(9, 9): 1}, rng)
        with pytest.raises(ValueError):
            deploy_per_cell_counts(grid, {GridCoord(0, 0): -1}, rng)


class TestGridHeads:
    def test_one_node_per_cell_at_center(self, grid):
        nodes = deploy_grid_heads(grid)
        assert len(nodes) == grid.cell_count
        for node in nodes:
            coord = grid.cell_of(node.position)
            assert node.position == grid.cell_center(coord)

    def test_jitter_requires_rng(self, grid, rng):
        with pytest.raises(ValueError):
            deploy_grid_heads(grid, jitter=True)
        nodes = deploy_grid_heads(grid, rng=rng, jitter=True)
        for node in nodes:
            coord = grid.cell_of(node.position)
            assert grid.central_area(coord).contains(node.position)


class TestClustered:
    def test_positions_clamped_to_area(self, grid, rng):
        centers = [Point(0.0, 0.0), Point(12.0, 8.0)]
        nodes = deploy_clustered(grid, 150, centers, spread=5.0, rng=rng)
        assert len(nodes) == 150
        for node in nodes:
            assert grid.bounds.contains(node.position)

    def test_clusters_are_denser_near_centres(self, grid):
        rng = random.Random(10)
        center = Point(2.0, 2.0)
        nodes = deploy_clustered(grid, 400, [center], spread=1.0, rng=rng)
        near = sum(1 for n in nodes if n.position.distance_to(center) < 3.0)
        assert near > len(nodes) * 0.7

    def test_invalid_arguments(self, grid, rng):
        with pytest.raises(ValueError):
            deploy_clustered(grid, 10, [], spread=1.0, rng=rng)
        with pytest.raises(ValueError):
            deploy_clustered(grid, -1, [Point(0, 0)], spread=1.0, rng=rng)
        with pytest.raises(ValueError):
            deploy_clustered(grid, 10, [Point(0, 0)], spread=-1.0, rng=rng)


class TestOccupancy:
    def test_occupancy_counts_disabled_optionally(self, grid, rng):
        nodes = deploy_per_cell(grid, 1, rng)
        nodes[0].disable()
        enabled_occupancy = occupancy_by_cell(grid, nodes)
        all_occupancy = occupancy_by_cell(grid, nodes, enabled_only=False)
        assert sum(enabled_occupancy.values()) == grid.cell_count - 1
        assert sum(all_occupancy.values()) == grid.cell_count
