"""Round-based simulation engine.

The paper describes its schemes in a round-based system (Section 2): in every
round each head observes the cells it monitors, control messages sent in the
previous round arrive, and replacement moves complete "before the next round
starts".  :class:`RoundBasedEngine` drives one
:class:`~repro.core.protocol.MobilityController` through those synchronous
rounds, optionally injecting additional failures while the simulation runs
(dynamic holes), and collects the metrics the paper's evaluation reports.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.core.protocol import MobilityController, RoundOutcome
from repro.network.channel import (
    DEFAULT_CHANNEL,
    ChannelModel,
    ChannelStats,
    build_channel,
)
from repro.network.energy import EnergyModel, energy_summary, remaining_energy
from repro.network.failures import FailureModel
from repro.network.node import MESSAGE_COST
from repro.network.state import WsnState
from repro.sim.events import EventKind, EventLog
from repro.sim.rng import derive_rng
from repro.sim.metrics import (
    InitialSnapshot,
    RoundSeries,
    RunMetrics,
    collect_metrics,
    snapshot_state,
)

#: Consecutive no-progress rounds after which the engine declares the run stalled.
DEFAULT_IDLE_ROUND_LIMIT = 3


@dataclass
class SimulationResult:
    """Everything a caller may want to know after a recovery run."""

    metrics: RunMetrics
    rounds_executed: int
    stalled: bool
    #: Whether the run hit ``max_rounds`` before finishing.  A bound-hit run
    #: with holes remaining is also reported as stalled: it did not converge,
    #: and must not be indistinguishable from a clean finish.
    exhausted: bool = False
    round_outcomes: List[RoundOutcome] = field(default_factory=list)
    series: RoundSeries = field(default_factory=RoundSeries)
    event_log: Optional[EventLog] = None
    #: Ids of nodes the engine disabled as battery-depleted, in depletion order.
    depleted_nodes: List[int] = field(default_factory=list)
    #: Traffic statistics of the run's control channel (``None`` when the
    #: engine ran without a messaging subsystem).
    channel_stats: Optional[ChannelStats] = None

    @property
    def converged(self) -> bool:
        """Whether the run ended with complete coverage (no holes left)."""
        return self.metrics.coverage_restored


class RoundBasedEngine:
    """Drives a controller through synchronous rounds until the network is repaired.

    Parameters
    ----------
    state:
        The network to repair; it is mutated in place.
    controller:
        The hole-recovery scheme under test (SR, AR, or an extension).
    rng:
        Random stream used for movement targets and controller tie-breaking.
    max_rounds:
        Hard bound on the number of rounds; generous by default because a
        single cascading replacement needs at most ``m*n`` rounds.
    failure_schedule:
        Optional mapping from round index to a
        :class:`~repro.network.failures.FailureModel` applied at the start of
        that round — this is how dynamic hole creation is simulated.
    event_log:
        Optional :class:`~repro.sim.events.EventLog` receiving a trace of the run.
    idle_round_limit:
        Number of consecutive rounds without progress after which the run is
        declared stalled (holes remain but nobody can act on them).
    energy_model:
        Optional :class:`~repro.network.energy.EnergyModel` the engine applies
        at the start of every round: idle drain for every enabled node, then
        engine-driven depletion — nodes at or below the model's threshold are
        disabled, so new holes emerge from the energy physics mid-run.
    run_to_exhaustion:
        With an energy model whose idle drain is positive, do not stop when
        coverage is complete — keep draining until a hole becomes
        unrepairable (stall), the network dies, or ``max_rounds`` hits.  This
        is the run-until-network-death mode of the lifetime workloads.
    channel:
        The :class:`~repro.network.channel.ChannelModel` of the run's control
        traffic.  The default is the paper's perfect one-round channel, which
        reproduces the pre-channel semantics bit for bit.  Pass ``None`` to
        run without a messaging subsystem at all — the controllers fall back
        to their observation-driven legacy path (used by the channel-overhead
        benchmark and the equivalence regression tests).
    channel_seed:
        Seed of the channel's own random stream (stochastic drops); kept
        separate from ``rng`` so loss patterns never perturb movement
        targets.
    """

    def __init__(
        self,
        state: WsnState,
        controller: MobilityController,
        rng: random.Random,
        max_rounds: Optional[int] = None,
        failure_schedule: Optional[Dict[int, FailureModel]] = None,
        event_log: Optional[EventLog] = None,
        idle_round_limit: int = DEFAULT_IDLE_ROUND_LIMIT,
        energy_model: Optional[EnergyModel] = None,
        run_to_exhaustion: bool = False,
        channel: Optional[ChannelModel] = DEFAULT_CHANNEL,
        channel_seed: int = 0,
    ) -> None:
        if idle_round_limit < 1:
            raise ValueError(f"idle_round_limit must be >= 1, got {idle_round_limit}")
        self.state = state
        self.controller = controller
        self.rng = rng
        self.max_rounds = max_rounds if max_rounds is not None else 4 * state.grid.cell_count
        if self.max_rounds < 1:
            raise ValueError(f"max_rounds must be >= 1, got {self.max_rounds}")
        self.failure_schedule = dict(failure_schedule or {})
        # The schedule is fixed for the lifetime of the engine, so the last
        # scheduled round can be computed once instead of scanning the whole
        # schedule in every round's pending-failures check.
        self._last_scheduled_round = max(self.failure_schedule, default=-1)
        self.event_log = event_log
        self.idle_round_limit = idle_round_limit
        self.energy_model = energy_model
        self.run_to_exhaustion = run_to_exhaustion
        self.depleted_nodes: List[int] = []
        #: Optional per-round observer ``(round_index, sample_dict) -> None``
        #: called right after each round's series sample is recorded.  The
        #: serve layer uses it to stream live per-round series; it must not
        #: mutate state, and leaving it ``None`` (the default) keeps the hot
        #: loop free of any callback overhead beyond one attribute check.
        self.round_observer: Optional[Callable[[int, Dict[str, float]], None]] = None
        #: Joules debited per control-message transmission — the single
        #: source of truth for message energy, applied by the engine to every
        #: actual channel send.
        self._message_cost = (
            energy_model.message_cost if energy_model is not None else MESSAGE_COST
        )
        if channel is None and self._message_cost != MESSAGE_COST:
            # The legacy path charges the node default at the send site; it
            # cannot honour a custom rate, and silently under- or
            # over-debiting would corrupt the energy books.
            raise ValueError(
                "channel=None (the legacy no-messaging path) cannot honour a "
                f"custom EnergyModel.message_cost ({self._message_cost}); run "
                "with a channel model instead"
            )
        self.channel = (
            build_channel(channel, derive_rng(channel_seed, f"channel:{channel.kind}"))
            if channel is not None
            else None
        )
        if self.channel is not None:
            # Message energy is debited at the moment of transmission — the
            # same in-round visibility the movement debit has, so a head that
            # empties its battery by transmitting is seen as depleted for the
            # rest of the round.
            self.channel.debit_hook = self._charge_sender
        controller.bind_channel(self.channel)
        if energy_model is not None:
            # Route the model's move rate into the node-level debit path
            # through the state's movement model (a reconfigured copy, so
            # e.g. a whole-cell targeting choice survives).
            if energy_model.move_cost_per_meter != state.movement_model.move_cost_per_meter:
                state.movement_model = state.movement_model.with_move_cost(
                    energy_model.move_cost_per_meter
                )

    # -------------------------------------------------------------------- run
    #
    # ``run()`` is a template over small per-phase hooks so an alternative
    # driver (the sharded engine) can substitute *where* round work happens
    # — worker tiles instead of ``self.state`` — while reusing this exact
    # control flow: the round ordering, the series sampling, and the
    # stop/stall/exhaustion verdicts are defined once, here.
    def run(self) -> SimulationResult:
        """Execute rounds until coverage is restored, the run stalls, or the bound hits."""
        initial = self._begin_run()
        self._emit(
            EventKind.HOLE_DETECTED,
            round_index=0,
            holes=initial.holes,
            spares=initial.spares,
        )
        outcomes: List[RoundOutcome] = []
        series = RoundSeries()
        idle_rounds = 0
        stalled = False
        exhausted = False
        rounds_executed = 0
        track_energy = self.energy_model is not None

        for round_index in range(self.max_rounds):
            round_depletions = self._pre_round(round_index)
            sent_before, dropped_before = self._channel_counters()
            self._deliver_messages(round_index)
            outcome = self._controller_round(round_index)
            outcomes.append(outcome)
            rounds_executed = round_index + 1
            self._emit_outcome(outcome)
            sent_after, dropped_after = self._channel_counters()
            # hole_count and spare_count are O(1) reads of the state's
            # incremental indices, so per-round sampling stays cheap on
            # arbitrarily large grids.  The energy total is an O(enabled)
            # sweep, sampled only when an energy model is active.
            series.record(
                holes=self._hole_count(),
                moves=outcome.move_count,
                distance=outcome.total_distance,
                spares=self._spare_count(),
                energy=self._energy_remaining() if track_energy else None,
                depletions=round_depletions if track_energy else None,
                messages=(
                    sent_after - sent_before
                    if self.channel is not None
                    else outcome.messages_sent
                ),
                drops=dropped_after - dropped_before,
            )
            if self.round_observer is not None:
                sample = {
                    "holes": series.holes[-1],
                    "moves": outcome.move_count,
                    "distance": outcome.total_distance,
                    "spares": series.spares[-1],
                }
                if track_energy:
                    sample["energy"] = series.energy[-1]
                    sample["depletions"] = round_depletions
                self.round_observer(round_index, sample)

            if outcome.made_progress or round_depletions:
                idle_rounds = 0
            else:
                idle_rounds += 1

            if self._finished(round_index):
                break
            if (
                idle_rounds >= self.idle_round_limit
                and not self._failures_pending(round_index)
                and not self._messaging_pending()
            ):
                if self._hole_count() > 0:
                    # Holes remain and nobody has acted on them for the whole
                    # idle window: the run is stuck, in every mode.
                    stalled = True
                    break
                if not self._drain_active():
                    break
                # Coverage is complete but batteries are still draining in
                # run-to-exhaustion mode: keep going until depletion opens the
                # next hole (or the round bound hits).
        else:
            exhausted = True

        if exhausted and self._hole_count() > 0:
            # The round bound hit with holes remaining: the run did not
            # converge and must not look like a clean finish.
            stalled = True

        final_round = rounds_executed
        self._finish_run(final_round)
        if self.channel is not None:
            # The channel is the authority on traffic: every actual
            # transmission (requests, retries, acknowledgements) counts.
            messages_sent = self.channel.sent_count
            messages_dropped = self.channel.dropped_count
            mean_latency = self.channel.mean_delivery_latency
            messages_delivered = self.channel.delivered_count
            messages_in_flight = self.channel.pending_count
        else:
            messages_sent = sum(outcome.messages_sent for outcome in outcomes)
            messages_dropped = 0
            mean_latency = 0.0
            messages_delivered = 0
            messages_in_flight = 0
        metrics = self._collect(
            initial,
            rounds_executed,
            messages_sent,
            messages_dropped,
            mean_latency,
            track_energy,
            messages_delivered,
            messages_in_flight,
        )
        self._emit(
            EventKind.SIMULATION_FINISHED,
            round_index=final_round,
            holes=self._hole_count(),
            moves=metrics.total_moves,
            distance=round(metrics.total_distance, 3),
        )
        return SimulationResult(
            metrics=metrics,
            rounds_executed=rounds_executed,
            stalled=stalled,
            exhausted=exhausted,
            round_outcomes=outcomes,
            series=series,
            event_log=self.event_log,
            depleted_nodes=list(self.depleted_nodes),
            channel_stats=self.channel.stats() if self.channel is not None else None,
        )

    # ----------------------------------------------------------- phase hooks
    def _begin_run(self) -> InitialSnapshot:
        """Snapshot the pre-run state the metrics are reported against."""
        return snapshot_state(self.state)

    def _pre_round(self, round_index: int) -> int:
        """Start-of-round physics: scheduled failures, then the energy model.

        Returns the number of nodes the energy model depleted this round.
        """
        self._inject_failures(round_index)
        return self._apply_energy(round_index)

    def _deliver_messages(self, round_index: int) -> None:
        """Deliver the channel and hand arrivals to the controller.

        Control messages sent in earlier rounds arrive now, before any head
        acts — the paper's one-round-latency assumption, generalised to
        whatever the channel model dictates.
        """
        if self.channel is None:
            return
        inbox = self.channel.deliver(round_index)
        if inbox:
            self.controller.handle_messages(self.state, inbox, round_index)

    def _controller_round(self, round_index: int) -> RoundOutcome:
        """Execute one controller round against the engine's state."""
        return self.controller.execute_round(self.state, self.rng, round_index)

    def _hole_count(self) -> int:
        """Current number of uncovered cells."""
        return self.state.hole_count

    def _spare_count(self) -> int:
        """Current number of spare nodes."""
        return self.state.spare_count

    def _energy_remaining(self) -> float:
        """Total remaining energy of the enabled nodes (O(enabled) sweep)."""
        return remaining_energy(self.state)[0]

    def _finish_run(self, final_round: int) -> None:
        """Let the controller settle its bookkeeping after the last round."""
        finalize = getattr(self.controller, "finalize", None)
        if callable(finalize):
            finalize(self.state, final_round)

    def _collect(
        self,
        initial: InitialSnapshot,
        rounds_executed: int,
        messages_sent: int,
        messages_dropped: int,
        mean_latency: float,
        track_energy: bool,
        messages_delivered: int = 0,
        messages_in_flight: int = 0,
    ) -> RunMetrics:
        """Aggregate the run's metrics from the final state."""
        return collect_metrics(
            self.controller,
            self.state,
            initial,
            rounds_executed,
            messages_sent,
            # The battery summary is an O(all nodes) sweep — worth it only
            # when the run actually had energy physics to report on.
            energy=energy_summary(self.state) if track_energy else None,
            messages_dropped=messages_dropped,
            mean_delivery_latency=mean_latency,
            messages_delivered=messages_delivered,
            messages_in_flight=messages_in_flight,
        )

    # --------------------------------------------------------------- internal
    def _channel_counters(self) -> tuple:
        """(sent, dropped) totals of the channel (zeros without a channel)."""
        if self.channel is None:
            return (0, 0)
        return (self.channel.sent_count, self.channel.dropped_count)

    def _charge_sender(self, sender_id: int) -> None:
        """Debit one transmission from its sender (the channel's debit hook).

        This is the single message-energy accounting path: requests, retries,
        and acknowledgements all debit :attr:`_message_cost` joules from the
        node that fired the radio, whether or not the channel lost the
        message in transit.
        """
        self.state.node(sender_id).charge_message_cost(cost=self._message_cost)

    def _messaging_pending(self) -> bool:
        """Whether control traffic is still in flight or awaiting retries.

        An idle window that merely spans a long delivery latency or ack
        timeout must not be mistaken for a stall: the cascade will resume
        (or give up, unblocking a real stall verdict) once the channel acts.
        """
        if self.channel is None:
            return False
        return self.channel.pending_count > 0 or self.controller.pending_acknowledgements > 0

    def _apply_energy(self, round_index: int) -> int:
        """Apply the energy model for one round; returns how many nodes depleted."""
        if self.energy_model is None:
            return 0
        victims = self.energy_model.apply_round(self.state)
        if not victims:
            return 0
        self.depleted_nodes.extend(victims)
        for node_id in victims:
            self._emit(
                EventKind.NODE_DISABLED,
                round_index=round_index,
                node_id=node_id,
                cause="battery-depleted",
            )
        self._emit(
            EventKind.HOLE_DETECTED,
            round_index=round_index,
            holes=self.state.hole_count,
        )
        return len(victims)

    def _drain_active(self) -> bool:
        """Whether run-to-exhaustion still has energy physics to play out."""
        return (
            self.run_to_exhaustion
            and self.energy_model is not None
            and self.energy_model.idle_cost_per_round > 0
            and self.state.enabled_count > 0
        )

    def _inject_failures(self, round_index: int) -> None:
        model = self.failure_schedule.get(round_index)
        if model is None:
            return
        victims = model.apply(self.state, self.rng)
        for node_id in victims:
            self._emit(EventKind.NODE_DISABLED, round_index=round_index, node_id=node_id)
        if victims:
            self._emit(
                EventKind.HOLE_DETECTED,
                round_index=round_index,
                holes=self.state.hole_count,
            )

    def _failures_pending(self, round_index: int) -> bool:
        return self._last_scheduled_round > round_index

    def _finished(self, round_index: int) -> bool:
        if self._hole_count() > 0:
            return False
        if self._failures_pending(round_index):
            return False
        if self._drain_active():
            # Lifetime mode: complete coverage is not the end — batteries keep
            # draining until depletion opens a hole nobody can repair.
            return False
        return self.controller.is_quiescent(self.state)

    def _emit_outcome(self, outcome: RoundOutcome) -> None:
        if self.event_log is None:
            return
        for process_id in outcome.processes_started:
            self._emit(
                EventKind.PROCESS_STARTED,
                round_index=outcome.round_index,
                process_id=process_id,
            )
        for move in outcome.moves:
            self._emit(
                EventKind.NODE_MOVED,
                round_index=outcome.round_index,
                node_id=move.node_id,
                source=move.source_cell.as_tuple(),
                target=move.target_cell.as_tuple(),
                distance=round(move.distance, 3),
                process_id=move.process_id,
            )
        for process_id in outcome.processes_converged:
            self._emit(
                EventKind.PROCESS_CONVERGED,
                round_index=outcome.round_index,
                process_id=process_id,
            )
        for process_id in outcome.processes_failed:
            self._emit(
                EventKind.PROCESS_FAILED,
                round_index=outcome.round_index,
                process_id=process_id,
            )
        self._emit(
            EventKind.ROUND_COMPLETED,
            round_index=outcome.round_index,
            moves=outcome.move_count,
        )

    def _emit(self, kind: EventKind, round_index: int, **details: object) -> None:
        if self.event_log is not None:
            self.event_log.emit(kind, round_index, **details)


def run_recovery(
    state: WsnState,
    controller: MobilityController,
    rng: random.Random,
    max_rounds: Optional[int] = None,
    failure_schedule: Optional[Dict[int, FailureModel]] = None,
    event_log: Optional[EventLog] = None,
    energy_model: Optional[EnergyModel] = None,
    run_to_exhaustion: bool = False,
    channel: Optional[ChannelModel] = DEFAULT_CHANNEL,
    channel_seed: int = 0,
) -> SimulationResult:
    """Convenience wrapper: build a :class:`RoundBasedEngine` and run it."""
    engine = RoundBasedEngine(
        state,
        controller,
        rng,
        max_rounds=max_rounds,
        failure_schedule=failure_schedule,
        event_log=event_log,
        energy_model=energy_model,
        run_to_exhaustion=run_to_exhaustion,
        channel=channel,
        channel_seed=channel_seed,
    )
    return engine.run()
