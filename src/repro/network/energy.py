"""Energy model and accounting.

Section 1 of the paper motivates coverage holes with nodes that "deplete
their battery power" (jamming attacks in particular), and movement dominates
the energy budget of mobile sensors — which is exactly why the paper
optimises the number of movements and the total moving distance.  This module
provides both halves of the energy story:

* :class:`EnergyModel` — the physics the round-based engine applies every
  round: a per-round idle/sensing drain for every enabled node, the node-level
  per-move and per-message debit rates, and the depletion threshold at which
  the engine disables a node mid-run (creating a *new* hole the controllers
  must repair — dynamic holes emerging from the energy physics instead of a
  hand-written failure schedule).
* :class:`EnergySummary` / :func:`energy_summary` — an aggregate snapshot of
  the battery state of a network, consumed by :class:`~repro.sim.metrics.RunMetrics`
  and the lifetime experiment driver.
* :func:`recovery_energy_cost` — translate a recovery run's cost metrics
  (distance, messages) into joules, so scheme comparisons can be presented in
  energy as well as metres.

Consumption is accounted per node as ``initial_energy - energy``, summed over
**all** deployed nodes — so heterogeneous battery capacities and nodes that
were disabled mid-run (whose batteries stop draining but whose past
consumption must not vanish) are both handled correctly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.network.node import (
    MESSAGE_COST,
    MOVE_COST_PER_METER,
    ROLE_CODES,
    STATE_CODES,
    NodeRole,
    NodeState,
)

_ENABLED = STATE_CODES[NodeState.ENABLED]
_DEPLETED = STATE_CODES[NodeState.DEPLETED]
_HEAD = ROLE_CODES[NodeRole.HEAD]
_SPARE = ROLE_CODES[NodeRole.SPARE]


def _sequential_sum(values: np.ndarray) -> float:
    """Left-to-right float sum, identical to Python's ``sum()`` over a list."""
    return float(np.cumsum(values)[-1]) if len(values) else 0.0


@dataclass(frozen=True)
class EnergyModel:
    """Per-round energy physics applied by the round-based engine.

    Attributes
    ----------
    idle_cost_per_round:
        Joules every enabled node spends per round on sensing and idle
        listening, whether or not it moves.  Zero disables the drain (the
        paper's original workload, where only movement costs energy).
    move_cost_per_meter:
        Joules per metre of movement, debited from the moving node.
    message_cost:
        Joules per control message, debited from the sending head.
    depletion_threshold:
        Remaining-energy level at or below which the engine disables a node
        (:attr:`~repro.network.node.NodeState.DEPLETED`) at the start of the
        next round.  The vacancy this creates is an ordinary hole to the
        controllers.
    """

    idle_cost_per_round: float = 0.0
    move_cost_per_meter: float = MOVE_COST_PER_METER
    message_cost: float = MESSAGE_COST
    depletion_threshold: float = 0.0

    def __post_init__(self) -> None:
        for name in (
            "idle_cost_per_round",
            "move_cost_per_meter",
            "message_cost",
            "depletion_threshold",
        ):
            value = getattr(self, name)
            if value < 0:
                raise ValueError(f"{name} must be non-negative, got {value}")

    def apply_round(self, state) -> List[int]:
        """Drain the per-round idle cost and disable depleted nodes.

        Every enabled node pays :attr:`idle_cost_per_round`; any enabled node
        left at or below :attr:`depletion_threshold` afterwards (including
        nodes drained below it by earlier movement) is disabled with reason
        :attr:`~repro.network.node.NodeState.DEPLETED`.  Returns the ids of
        the disabled nodes, in ascending order, so callers can log them.

        On an array-backed state the drain is one masked array operation;
        the clamp (``max(0, e - cost)``) matches the node-level
        ``consume_energy`` bit-for-bit.
        """
        arrays = getattr(state, "arrays", None)
        if arrays is not None:
            mask = arrays.state == _ENABLED
            if self.idle_cost_per_round:
                arrays.energy[mask] = np.maximum(
                    0.0, arrays.energy[mask] - self.idle_cost_per_round
                )
            depleted = arrays.node_ids[
                mask & (arrays.energy <= self.depletion_threshold)
            ].tolist()
        else:
            depleted = []
            for node in state.enabled_nodes():
                if self.idle_cost_per_round:
                    node.consume_energy(self.idle_cost_per_round)
                if node.energy <= self.depletion_threshold:
                    depleted.append(node.node_id)
        for node_id in depleted:
            state.disable_node(node_id, reason=NodeState.DEPLETED)
        return sorted(depleted)

    def recovery_cost(self, total_distance: float, messages_sent: int = 0) -> float:
        """:func:`recovery_energy_cost` evaluated at this model's rates."""
        return recovery_energy_cost(
            total_distance,
            messages_sent,
            move_cost_per_meter=self.move_cost_per_meter,
            message_cost=self.message_cost,
        )


@dataclass(frozen=True)
class EnergySummary:
    """Aggregate battery statistics of a network.

    The per-node statistics (mean/min/max, role means) cover the *enabled*
    nodes — the network that is still alive — while the capacity and
    consumption totals cover **all** deployed nodes, so energy spent by nodes
    that have since failed or depleted is never lost from the books.
    """

    enabled_nodes: int
    total_energy: float
    mean_energy: float
    min_energy: float
    max_energy: float
    depleted_nodes: int
    head_mean_energy: float
    spare_mean_energy: float
    initial_energy_total: float = 0.0
    total_consumed: float = 0.0

    @property
    def imbalance(self) -> float:
        """Spread between the fullest and the emptiest enabled node (joules)."""
        return self.max_energy - self.min_energy


def _energy_summary_arrays(arrays) -> EnergySummary:
    """Array-backed :func:`energy_summary` (totals summed left-to-right)."""
    initial = arrays.initial_energy
    energy = arrays.energy
    enabled = arrays.state == _ENABLED
    enabled_energy = energy[enabled]
    head_energy = energy[enabled & (arrays.role == _HEAD)]
    spare_energy = energy[enabled & (arrays.role == _SPARE)]
    depleted = int(
        ((arrays.state == _DEPLETED) | (enabled & (energy <= 0.0))).sum()
    )
    count = len(enabled_energy)
    total = _sequential_sum(enabled_energy)
    return EnergySummary(
        enabled_nodes=count,
        total_energy=total,
        mean_energy=total / count if count else 0.0,
        min_energy=float(enabled_energy.min()) if count else 0.0,
        max_energy=float(enabled_energy.max()) if count else 0.0,
        depleted_nodes=depleted,
        head_mean_energy=(
            _sequential_sum(head_energy) / len(head_energy) if len(head_energy) else 0.0
        ),
        spare_mean_energy=(
            _sequential_sum(spare_energy) / len(spare_energy)
            if len(spare_energy)
            else 0.0
        ),
        initial_energy_total=_sequential_sum(initial),
        total_consumed=_sequential_sum(np.maximum(0.0, initial - energy)),
    )


def energy_summary(state) -> EnergySummary:
    """Summarise the battery state of ``state`` (see :class:`EnergySummary`)."""
    arrays = getattr(state, "arrays", None)
    if arrays is not None:
        return _energy_summary_arrays(arrays)
    initial_total = 0.0
    consumed = 0.0
    depleted = 0
    energies: List[float] = []
    heads: List[float] = []
    spares: List[float] = []
    for node in state.nodes():
        initial_total += node.initial_energy or 0.0
        consumed += node.consumed_energy
        if node.state is NodeState.DEPLETED or (
            node.is_enabled and node.is_battery_depleted
        ):
            depleted += 1
        if not node.is_enabled:
            continue
        energies.append(node.energy)
        if node.role is NodeRole.HEAD:
            heads.append(node.energy)
        elif node.role is NodeRole.SPARE:
            spares.append(node.energy)
    return EnergySummary(
        enabled_nodes=len(energies),
        total_energy=sum(energies),
        mean_energy=sum(energies) / len(energies) if energies else 0.0,
        min_energy=min(energies) if energies else 0.0,
        max_energy=max(energies) if energies else 0.0,
        depleted_nodes=depleted,
        head_mean_energy=sum(heads) / len(heads) if heads else 0.0,
        spare_mean_energy=sum(spares) / len(spares) if spares else 0.0,
        initial_energy_total=initial_total,
        total_consumed=consumed,
    )


def remaining_energy(state) -> Tuple[float, int]:
    """``(total remaining joules, count)`` over the enabled nodes of ``state``."""
    arrays = getattr(state, "arrays", None)
    if arrays is not None:
        enabled_energy = arrays.energy[arrays.state == _ENABLED]
        return _sequential_sum(enabled_energy), len(enabled_energy)
    total = 0.0
    count = 0
    for node in state.enabled_nodes():
        total += node.energy
        count += 1
    return total, count


def recovery_energy_cost(
    total_distance: float,
    messages_sent: int = 0,
    move_cost_per_meter: float = MOVE_COST_PER_METER,
    message_cost: float = MESSAGE_COST,
) -> float:
    """Energy (joules) a recovery run consumed, from its cost metrics.

    The model is the same linear one the node class uses: moving costs
    ``move_cost_per_meter`` joules per metre and each control message costs
    ``message_cost`` joules — so the comparison between schemes in joules has
    exactly the same shape as the paper's moving-distance comparison, shifted
    only by the (tiny) messaging term.
    """
    if total_distance < 0:
        raise ValueError(f"total_distance must be non-negative, got {total_distance}")
    if messages_sent < 0:
        raise ValueError(f"messages_sent must be non-negative, got {messages_sent}")
    return total_distance * move_cost_per_meter + messages_sent * message_cost


def per_scheme_energy_costs(metrics_by_scheme: Dict[str, "RunMetrics"]) -> Dict[str, float]:
    """Translate a mapping of scheme name -> RunMetrics into joules consumed."""
    return {
        scheme: recovery_energy_cost(metrics.total_distance, metrics.messages_sent)
        for scheme, metrics in metrics_by_scheme.items()
    }
