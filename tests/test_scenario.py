"""Unit tests for the Section-5 scenario configuration and builder."""

import pytest

from repro.sim.scenario import HEAD_POLICIES, ScenarioConfig, build_scenario_state


class TestConfigValidation:
    def test_defaults_match_paper(self):
        config = ScenarioConfig()
        assert config.columns == 16 and config.rows == 16
        assert config.communication_range == 10.0
        assert config.deployed_count == 5000
        assert config.cell_size == pytest.approx(4.4721, abs=1e-4)
        assert config.cell_count == 256

    def test_invalid_values(self):
        with pytest.raises(ValueError):
            ScenarioConfig(columns=0)
        with pytest.raises(ValueError):
            ScenarioConfig(communication_range=0)
        with pytest.raises(ValueError):
            ScenarioConfig(deployed_count=-1)
        with pytest.raises(ValueError):
            ScenarioConfig(spare_surplus=-5)
        with pytest.raises(ValueError):
            ScenarioConfig(head_policy="no-such-policy")
        with pytest.raises(ValueError):
            ScenarioConfig(deployment="hexagonal")

    def test_target_enabled(self):
        assert ScenarioConfig(spare_surplus=40).target_enabled == 256 + 40
        assert ScenarioConfig().target_enabled is None

    def test_with_helpers_return_copies(self):
        base = ScenarioConfig(seed=1)
        changed = base.with_spare_surplus(99).with_seed(7)
        assert changed.spare_surplus == 99 and changed.seed == 7
        assert base.spare_surplus is None and base.seed == 1

    def test_head_policy_lookup(self):
        for name in HEAD_POLICIES:
            assert ScenarioConfig(head_policy=name).head_policy_fn is HEAD_POLICIES[name]

    def test_make_grid(self):
        grid = ScenarioConfig(columns=8, rows=6).make_grid()
        assert grid.columns == 8 and grid.rows == 6
        assert grid.cell_size == pytest.approx(4.4721, abs=1e-4)


class TestBuildScenario:
    def test_thinning_gives_requested_enabled_count(self):
        config = ScenarioConfig(
            columns=8, rows=8, deployed_count=500, spare_surplus=30, seed=3
        )
        state = build_scenario_state(config)
        assert state.node_count == 500
        assert state.enabled_count == 64 + 30
        # The defining relation of the workload: spares exceed holes by N.
        assert state.spare_surplus == 30

    def test_no_thinning_without_spare_surplus(self):
        config = ScenarioConfig(columns=8, rows=8, deployed_count=300, seed=3)
        state = build_scenario_state(config)
        assert state.enabled_count == 300

    def test_reproducible_builds(self):
        config = ScenarioConfig(columns=8, rows=8, deployed_count=400, spare_surplus=20, seed=11)
        a = build_scenario_state(config)
        b = build_scenario_state(config)
        assert a.occupancy() == b.occupancy()
        assert a.heads() == b.heads()

    def test_different_seeds_differ(self):
        base = ScenarioConfig(columns=8, rows=8, deployed_count=400, spare_surplus=20)
        a = build_scenario_state(base.with_seed(1))
        b = build_scenario_state(base.with_seed(2))
        assert a.occupancy() != b.occupancy()

    def test_per_cell_deployment(self):
        config = ScenarioConfig(
            columns=6, rows=6, deployed_count=72, deployment="per_cell", seed=5
        )
        state = build_scenario_state(config)
        assert state.hole_count == 0
        assert all(count == 2 for count in state.occupancy().values())

    def test_heads_elected_in_built_state(self):
        config = ScenarioConfig(columns=8, rows=8, deployed_count=600, spare_surplus=64, seed=9)
        state = build_scenario_state(config)
        state.check_invariants()
        for coord in state.occupied_cells():
            assert state.head_of(coord) is not None


class TestPerCellDeploymentValidation:
    """per_cell deployments must honor deployed_count exactly or be rejected."""

    def test_non_multiple_count_is_rejected(self):
        with pytest.raises(ValueError, match="positive multiple of the cell count"):
            ScenarioConfig(columns=6, rows=6, deployed_count=20, deployment="per_cell")

    def test_zero_count_is_rejected(self):
        with pytest.raises(ValueError, match="positive multiple of the cell count"):
            ScenarioConfig(columns=4, rows=4, deployed_count=0, deployment="per_cell")

    def test_exact_multiple_deploys_exactly_that_many(self):
        config = ScenarioConfig(
            columns=4, rows=4, deployed_count=48, deployment="per_cell", seed=2
        )
        state = build_scenario_state(config)
        assert state.node_count == 48
        assert all(count == 3 for count in state.occupancy().values())
