#!/usr/bin/env python3
"""Scenario: compare SR against AR, virtual-force, and SMART scan balancing.

The paper evaluates SR only against AR, but its introduction argues that
virtual-force methods converge slowly and that grid balancing (SMART) moves
far more nodes than necessary.  This example builds a declarative
:class:`repro.Scenario` in code that runs *every* registered scheme on one
identical deployment — the same document could be saved as TOML with
:func:`repro.dump_scenario` and run via ``python -m repro scenario run
<file>``; the script prints the document first to show the equivalence.

Run with ``python examples/baseline_comparison.py``.
"""

from __future__ import annotations

from repro import Scenario, ScenarioConfig
from repro.experiments.registry import available_schemes
from repro.experiments.scenario_files import dumps_scenario, tabulate_records


def build_scenario() -> Scenario:
    """An all-schemes comparison on a 12x12 deployment with a generous N."""
    return Scenario(
        name="baseline-comparison",
        description="every registered scheme on one identical 12x12 deployment",
        scenario=ScenarioConfig(
            columns=12,
            rows=12,
            communication_range=10.0,
            deployed_count=900,
            spare_surplus=80,
            seed=11,
        ),
        schemes=available_schemes(),
        max_rounds=400,
    )


def main() -> None:
    """Run every registered scheme on the shared scenario and tabulate costs."""
    scenario = build_scenario()
    print("# The declarative document this comparison executes:")
    print(dumps_scenario(scenario))
    records = scenario.execute()
    print(tabulate_records(scenario, records).format(float_digits=1))
    print()
    print(
        "Expected reading (matches the paper's qualitative claims):\n"
        "  * SR uses one process per hole and the fewest movements;\n"
        "  * AR initiates several processes per hole and moves more nodes;\n"
        "  * VF eventually covers the holes but needs many small movements\n"
        "    and far more rounds (slow convergence);\n"
        "  * SMART rebalances the entire grid, paying a large movement bill\n"
        "    for the same coverage guarantee."
    )


if __name__ == "__main__":
    main()
