"""Unit tests for the movement model (Section 4 implementation issue)."""

import math
import random

import pytest

from repro.grid.geometry import Point
from repro.grid.virtual_grid import GridCoord, VirtualGrid
from repro.network.mobility import MovementModel, MoveRecord
from repro.network.node import SensorNode


@pytest.fixture
def grid():
    return VirtualGrid(4, 4, cell_size=10.0)


@pytest.fixture
def model(grid):
    return MovementModel(grid)


class TestTargetSelection:
    def test_targets_central_area(self, model, grid, rng):
        cell = GridCoord(2, 2)
        for _ in range(50):
            point = model.choose_target_position(cell, rng)
            assert grid.central_area(cell).contains(point)

    def test_whole_cell_targeting_option(self, grid, rng):
        model = MovementModel(grid, target_central_area=False)
        cell = GridCoord(0, 0)
        points = [model.choose_target_position(cell, rng) for _ in range(200)]
        assert all(grid.cell_bounds(cell).contains(p) for p in points)
        # With whole-cell targeting some samples fall outside the central area.
        assert any(not grid.central_area(cell).contains(p) for p in points)

    def test_average_hop_distance_estimate(self, model):
        assert model.average_hop_distance == pytest.approx(10.8)

    def test_hop_distance_bounds(self, model):
        low, high = model.hop_distance_bounds
        assert low == pytest.approx(2.5)
        assert high == pytest.approx(math.sqrt(58) / 4 * 10.0)


class TestExecuteMove:
    def test_move_record_fields(self, model, rng):
        node = SensorNode(node_id=7, position=Point(15.0, 15.0))
        record = model.execute_move(
            node, GridCoord(1, 1), GridCoord(2, 1), rng, round_index=4, process_id=9
        )
        assert isinstance(record, MoveRecord)
        assert record.node_id == 7
        assert record.source_cell == GridCoord(1, 1)
        assert record.target_cell == GridCoord(2, 1)
        assert record.source_position == Point(15.0, 15.0)
        assert record.round_index == 4
        assert record.process_id == 9
        assert record.is_cascading
        assert record.distance == pytest.approx(
            record.source_position.distance_to(record.target_position)
        )

    def test_move_updates_node(self, model, rng):
        node = SensorNode(node_id=1, position=Point(5.0, 5.0))
        record = model.execute_move(node, GridCoord(0, 0), GridCoord(1, 0), rng, round_index=0)
        assert node.position == record.target_position
        assert node.move_count == 1

    def test_explicit_target_position(self, model, rng):
        node = SensorNode(node_id=1, position=Point(5.0, 5.0))
        target = Point(15.0, 5.0)
        record = model.execute_move(
            node, GridCoord(0, 0), GridCoord(1, 0), rng, round_index=0, target_position=target
        )
        assert record.target_position == target
        assert record.distance == pytest.approx(10.0)

    def test_rejects_cells_outside_grid(self, model, rng):
        node = SensorNode(node_id=1, position=Point(5.0, 5.0))
        with pytest.raises(ValueError):
            model.execute_move(node, GridCoord(0, 0), GridCoord(9, 0), rng, round_index=0)

    def test_non_cascading_record(self, model, rng):
        node = SensorNode(node_id=1, position=Point(5.0, 5.0))
        record = model.execute_move(node, GridCoord(0, 0), GridCoord(0, 1), rng, round_index=0)
        assert not record.is_cascading


class TestDistanceStatistics:
    def test_neighbour_hop_within_paper_bounds(self, grid, model):
        """Sampled neighbour-cell hops stay within [r/4, sqrt(58)/4 * r]."""
        rng = random.Random(11)
        low, high = model.hop_distance_bounds
        for _ in range(300):
            start_cell = GridCoord(rng.randrange(3), rng.randrange(4))
            target_cell = GridCoord(start_cell.x + 1, start_cell.y)
            start = Point(
                grid.cell_bounds(start_cell).min_x + rng.random() * grid.cell_size,
                grid.cell_bounds(start_cell).min_y + rng.random() * grid.cell_size,
            )
            node = SensorNode(node_id=0, position=start)
            record = model.execute_move(node, start_cell, target_cell, rng, round_index=0)
            assert low - 1e-9 <= record.distance <= high + 1e-9

    def test_average_close_to_1_08_r(self, grid, model):
        rng = random.Random(13)
        total = 0.0
        samples = 600
        for _ in range(samples):
            start_cell = GridCoord(1, 1)
            target_cell = GridCoord(2, 1)
            bounds = grid.cell_bounds(start_cell)
            start = Point(
                bounds.min_x + rng.random() * grid.cell_size,
                bounds.min_y + rng.random() * grid.cell_size,
            )
            node = SensorNode(node_id=0, position=start)
            total += model.execute_move(node, start_cell, target_cell, rng, 0).distance
        average = total / samples
        # The paper's 1.08*r is an estimate; the sampled mean lands nearby.
        assert 0.85 * model.average_hop_distance <= average <= 1.15 * model.average_hop_distance
