"""HTTP experiment service: cache-first spec/scenario/figure queries over the broker.

The server is a stdlib :class:`http.server.ThreadingHTTPServer` (no new
dependencies) whose handler threads share one
:class:`~repro.experiments.broker.ExperimentBroker` and one
:class:`~repro.experiments.persistence.RunCache`:

* ``GET  /health`` — liveness + uptime.
* ``GET  /stats`` — cache hit/miss counters and broker admission counters.
* ``GET  /schemes`` — the registered recovery schemes.
* ``GET  /scenarios`` — the curated catalog.
* ``GET  /scenario/<name>[?smoke=1]`` — run a catalog scenario cache-first
  through the broker and return its tabulated records.
* ``GET  /figure/<fig6|fig7|fig8>[?quick=1&trials=k]`` — the Section-5
  figure series, cache-first.
* ``POST /run`` — execute one spec (JSON body, see
  :func:`spec_from_request`); answered from the cache when stored, admitted
  through the broker otherwise (``?priority=batch`` yields to interactive
  traffic).  With ``?stream=1`` the response is newline-delimited JSON that
  carries the run's **live per-round series** — one ``round`` event per
  simulated round as it happens (via the engine's ``round_observer`` hook) —
  followed by the final record.
* ``POST /shutdown`` — drain and stop (the serve smoke gate uses this).

Identical concurrent ``POST /run`` requests collapse onto one simulation
(the broker's in-flight dedup), so a thundering herd of the same query costs
one run plus N-1 table lookups.
"""

from __future__ import annotations

import dataclasses
import json
import tempfile
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Dict, List, Optional, Tuple
from urllib.parse import parse_qs, urlparse

from repro.experiments.broker import (
    BrokerQueueFull,
    ExperimentBroker,
    Priority,
)
from repro.experiments.catalog import catalog_names, load_catalog_scenario
from repro.experiments.figures import (
    QUICK_SPARE_VALUES,
    figure6_processes_and_success,
    figure7_node_movements,
    figure8_total_distance,
    run_section5_experiment,
)
from repro.experiments.orchestration import RunRecord, RunSpec, build_initial_state
from repro.experiments.persistence import (
    RunCache,
    make_cache,
    record_to_dict,
    run_key,
    spec_from_dict,
)
from repro.experiments.registry import available_schemes, make_controller
from repro.experiments.results import ExperimentResult
from repro.experiments.scenario_files import tabulate_records
from repro.network.channel import DEFAULT_CHANNEL, channel_to_dict, parse_channel_spec
from repro.network.failures import compile_failure_schedule
from repro.sim.engine import DEFAULT_IDLE_ROUND_LIMIT, RoundBasedEngine
from repro.sim.rng import derive_rng

DEFAULT_HOST = "127.0.0.1"
DEFAULT_PORT = 8008

#: The figure endpoints the server exposes (each maps to a driver function).
FIGURE_ENDPOINTS = ("fig6", "fig7", "fig8")


@dataclasses.dataclass
class ServeConfig:
    """Configuration of one :class:`ExperimentServer`.

    Attributes
    ----------
    host, port:
        Bind address; port ``0`` asks the OS for an ephemeral port (tests
        and the smoke gate use this).
    cache_dir:
        Root of the persistent run store.  ``None`` creates a private
        temporary directory — the service still dedups and caches within
        its lifetime, but forgets everything on exit.
    cache_backend:
        ``"sqlite"`` (default — the concurrent-safe choice for a shared
        long-running store) or ``"json"``.
    workers:
        Broker worker threads simulating cache misses.
    queue_limit:
        Bound on queued-but-not-running specs; past it, ``POST /run``
        answers HTTP 503 instead of buffering unboundedly.
    verbose:
        Log one line per request to stderr.
    """

    host: str = DEFAULT_HOST
    port: int = DEFAULT_PORT
    cache_dir: Optional[Path] = None
    cache_backend: str = "sqlite"
    workers: int = 2
    queue_limit: Optional[int] = 256
    verbose: bool = False


def spec_from_request(payload: object) -> RunSpec:
    """Parse a ``POST /run`` body into a :class:`RunSpec`, filling defaults.

    The body is the ``spec_to_dict`` form with every field beyond
    ``scenario`` and ``scheme`` optional; ``seed`` defaults to the scenario
    seed, and ``channel`` additionally accepts the CLI's compact string form
    (``"lossy:0.2"``).  Raises ``ValueError`` on anything malformed — the
    handler maps that to HTTP 400.
    """
    if not isinstance(payload, dict):
        raise ValueError("request body must be a JSON object")
    body = dict(payload)
    body.pop("format_version", None)
    for field in ("scenario", "scheme"):
        if field not in body:
            raise ValueError(f"request body is missing the {field!r} field")
    if not isinstance(body["scenario"], dict):
        raise ValueError("'scenario' must be a JSON object of ScenarioConfig fields")
    channel = body.get("channel")
    if isinstance(channel, str):
        body["channel"] = channel_to_dict(parse_channel_spec(channel))
    body.setdefault("seed", body["scenario"].get("seed", 0))
    body.setdefault("max_rounds", None)
    body.setdefault("idle_round_limit", DEFAULT_IDLE_ROUND_LIMIT)
    body.setdefault("energy", None)
    body.setdefault("run_to_exhaustion", False)
    body.setdefault("failures", [])
    body.setdefault("channel", None)
    try:
        return spec_from_dict(body)
    except (KeyError, TypeError, ValueError) as error:
        raise ValueError(f"malformed run spec: {error}") from error


def _result_payload(result: ExperimentResult) -> Dict[str, object]:
    """JSON form of an :class:`ExperimentResult` table."""
    return {
        "name": result.name,
        "description": result.description,
        "columns": result.columns,
        "rows": result.rows,
    }


def execute_run_streaming(spec: RunSpec, emit) -> RunRecord:
    """Execute ``spec`` sequentially, calling ``emit(round, sample)`` per round.

    This mirrors :func:`~repro.experiments.orchestration.execute_run` on its
    sequential path (the engine's ``round_observer`` hook carries the live
    series out), so the returned record is byte-identical to what the broker
    would produce for the same spec and can be published to the shared cache.
    The initial state comes through :func:`build_initial_state`, so streamed
    runs share the process-wide state cache with the broker workers.
    """
    state = build_initial_state(spec)
    controller = make_controller(spec.scheme, state)
    rng = derive_rng(spec.seed, spec.controller_rng_label())
    engine = RoundBasedEngine(
        state,
        controller,
        rng,
        max_rounds=spec.max_rounds,
        failure_schedule=compile_failure_schedule(spec.failures) or None,
        idle_round_limit=spec.idle_round_limit,
        energy_model=spec.energy,
        run_to_exhaustion=spec.run_to_exhaustion,
        channel=spec.channel if spec.channel is not None else DEFAULT_CHANNEL,
        channel_seed=spec.seed,
    )
    engine.round_observer = emit
    result = engine.run()
    return RunRecord(
        spec=spec,
        metrics=result.metrics,
        rounds_executed=result.rounds_executed,
        stalled=result.stalled,
        exhausted=result.exhausted,
        energy_series=tuple(result.series.energy),
    )


class ExperimentServer(ThreadingHTTPServer):
    """A :class:`ThreadingHTTPServer` owning the broker, cache, and config.

    Handler threads reach the shared state through ``self.server``; the
    broker and cache may be injected (tests do) or built from the config.
    """

    daemon_threads = True

    def __init__(
        self,
        config: ServeConfig,
        broker: Optional[ExperimentBroker] = None,
        cache: Optional[RunCache] = None,
    ) -> None:
        self.config = config
        self._temp_dir: Optional[tempfile.TemporaryDirectory] = None
        if broker is not None:
            self.broker = broker
            self.cache = broker.cache if cache is None else cache
        else:
            if cache is None:
                cache_dir = config.cache_dir
                if cache_dir is None:
                    self._temp_dir = tempfile.TemporaryDirectory(prefix="repro-serve-")
                    cache_dir = Path(self._temp_dir.name)
                cache = make_cache(cache_dir, backend=config.cache_backend)
            self.cache = cache
            self.broker = ExperimentBroker(
                cache=cache, workers=config.workers, queue_limit=config.queue_limit
            )
        self.started_monotonic = time.monotonic()
        super().__init__((config.host, config.port), _RequestHandler)

    @property
    def url(self) -> str:
        """Base URL of the bound server (after the ephemeral port resolves)."""
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"

    def close(self) -> None:
        """Shut down the broker and release the (possibly temporary) store."""
        self.broker.shutdown(wait=True)
        self.server_close()
        if self._temp_dir is not None:
            self._temp_dir.cleanup()


class _RequestHandler(BaseHTTPRequestHandler):
    """Routes HTTP requests onto the shared broker/cache (one thread each)."""

    server: ExperimentServer  # narrowed for type checkers

    # ------------------------------------------------------------- plumbing
    def log_message(self, format: str, *args: object) -> None:  # noqa: A002
        """Per-request logging, silenced unless the server is verbose."""
        if self.server.config.verbose:
            super().log_message(format, *args)

    def _send_json(self, status: int, payload: object) -> None:
        """One complete JSON response."""
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_error_json(self, status: int, message: str) -> None:
        """A JSON error envelope."""
        self._send_json(status, {"error": message})

    def _route(self) -> Tuple[str, List[str], Dict[str, List[str]]]:
        """Split the request target into (path, segments, query dict)."""
        parsed = urlparse(self.path)
        segments = [part for part in parsed.path.split("/") if part]
        return parsed.path, segments, parse_qs(parsed.query)

    @staticmethod
    def _flag(query: Dict[str, List[str]], name: str) -> bool:
        """Whether a query flag is present and truthy (``1``, ``true``, ``yes``)."""
        values = query.get(name, [])
        return bool(values) and values[-1].lower() in ("1", "true", "yes")

    # --------------------------------------------------------------- routes
    def do_GET(self) -> None:  # noqa: N802 - http.server API
        """Dispatch the read-only endpoints."""
        _, segments, query = self._route()
        try:
            if segments == ["health"]:
                self._send_json(
                    200,
                    {
                        "status": "ok",
                        "uptime_seconds": round(
                            time.monotonic() - self.server.started_monotonic, 3
                        ),
                    },
                )
            elif segments == ["stats"]:
                self._handle_stats()
            elif segments == ["schemes"]:
                self._send_json(200, {"schemes": list(available_schemes())})
            elif segments == ["scenarios"]:
                self._send_json(
                    200,
                    {
                        "scenarios": [
                            {
                                "name": name,
                                "description": load_catalog_scenario(name).description,
                            }
                            for name in catalog_names()
                        ]
                    },
                )
            elif len(segments) == 2 and segments[0] == "scenario":
                self._handle_scenario(segments[1], query)
            elif len(segments) == 2 and segments[0] == "figure":
                self._handle_figure(segments[1], query)
            else:
                self._send_error_json(404, f"unknown endpoint {self.path!r}")
        except BrokenPipeError:
            pass
        except BrokerQueueFull as error:
            self._send_error_json(503, str(error))

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        """Dispatch the mutating endpoints (``/run``, ``/shutdown``)."""
        _, segments, query = self._route()
        try:
            if segments == ["run"]:
                self._handle_run(query)
            elif segments == ["shutdown"]:
                self._send_json(200, {"status": "shutting down"})
                threading.Thread(target=self.server.shutdown, daemon=True).start()
            else:
                self._send_error_json(404, f"unknown endpoint {self.path!r}")
        except BrokenPipeError:
            pass
        except BrokerQueueFull as error:
            self._send_error_json(503, str(error))

    # ------------------------------------------------------------- handlers
    def _handle_stats(self) -> None:
        """``GET /stats``: cache + broker counters."""
        cache = self.server.cache
        payload: Dict[str, object] = {
            "uptime_seconds": round(
                time.monotonic() - self.server.started_monotonic, 3
            ),
            "broker": self.server.broker.stats().as_dict(),
        }
        if cache is not None:
            payload["cache"] = {
                "backend": cache.backend.kind,
                "records": len(cache),
                **cache.stats.snapshot().as_dict(),
            }
        state_cache_stats = self.server.broker.state_cache_stats()
        if state_cache_stats is not None:
            payload["state_cache"] = state_cache_stats.as_dict()
        self._send_json(200, payload)

    def _read_body(self) -> object:
        """Parse the request body as JSON (raises ``ValueError`` when invalid)."""
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b""
        if not raw:
            raise ValueError("empty request body")
        try:
            return json.loads(raw)
        except json.JSONDecodeError as error:
            raise ValueError(f"request body is not valid JSON: {error}") from error

    def _handle_run(self, query: Dict[str, List[str]]) -> None:
        """``POST /run``: one spec, cache-first, optionally streamed."""
        try:
            spec = spec_from_request(self._read_body())
        except ValueError as error:
            self._send_error_json(400, str(error))
            return
        priority_name = (query.get("priority") or ["interactive"])[-1].lower()
        if priority_name not in ("interactive", "batch"):
            self._send_error_json(
                400, f"unknown priority {priority_name!r}; use interactive or batch"
            )
            return
        priority = (
            Priority.INTERACTIVE if priority_name == "interactive" else Priority.BATCH
        )
        if self._flag(query, "stream"):
            self._handle_run_stream(spec)
            return
        handle = self.server.broker.submit(spec, priority=priority)
        try:
            record = handle.result()
        except Exception as error:  # noqa: BLE001 - simulation errors -> HTTP 500
            self._send_error_json(500, f"run failed: {type(error).__name__}: {error}")
            return
        self._send_json(
            200,
            {
                "key": handle.key,
                "cached": record.cached,
                "deduplicated": handle.deduplicated,
                "record": record_to_dict(record),
            },
        )

    def _handle_run_stream(self, spec: RunSpec) -> None:
        """``POST /run?stream=1``: NDJSON with live per-round series.

        A cached spec answers with one ``cached`` event (the record's
        per-round series is not part of the frozen record schema, so there
        is nothing to replay); a novel spec simulates in this handler thread
        with the engine's ``round_observer`` writing each round's sample to
        the socket as it is produced, then publishes the finished record to
        the shared cache so the *next* query is a hit.
        """
        key = run_key(spec)
        cache = self.server.cache
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.send_header("Connection", "close")
        self.end_headers()

        def emit_line(payload: Dict[str, object]) -> None:
            """Write one NDJSON event and flush so it arrives live."""
            self.wfile.write((json.dumps(payload) + "\n").encode("utf-8"))
            self.wfile.flush()

        if cache is not None:
            hit = cache.get(spec)
            if hit is not None:
                emit_line(
                    {"event": "cached", "key": key, "record": record_to_dict(hit)}
                )
                return
        emit_line({"event": "accepted", "key": key})

        def observe(round_index: int, sample: Dict[str, float]) -> None:
            """The engine's per-round hook: forward the sample to the socket."""
            emit_line({"event": "round", "round": round_index, **sample})

        record = execute_run_streaming(spec, observe)
        if cache is not None:
            cache.put(record)
        emit_line({"event": "done", "key": key, "record": record_to_dict(record)})

    def _handle_scenario(self, name: str, query: Dict[str, List[str]]) -> None:
        """``GET /scenario/<name>``: run a catalog scenario through the broker."""
        try:
            scenario = load_catalog_scenario(name)
        except KeyError:
            self._send_error_json(
                404, f"unknown scenario {name!r}; see /scenarios for the catalog"
            )
            return
        if self._flag(query, "smoke"):
            scenario = scenario.smoke_variant()
        records = scenario.execute(broker=self.server.broker)
        table = tabulate_records(scenario, records)
        self._send_json(
            200,
            {
                "scenario": name,
                "cached_records": sum(1 for record in records if record.cached),
                "total_records": len(records),
                **_result_payload(table),
            },
        )

    def _handle_figure(self, name: str, query: Dict[str, List[str]]) -> None:
        """``GET /figure/<name>``: the Section-5 series behind figures 6-8."""
        if name not in FIGURE_ENDPOINTS:
            self._send_error_json(
                404, f"unknown figure {name!r}; choose from {list(FIGURE_ENDPOINTS)}"
            )
            return
        trials = int((query.get("trials") or ["1"])[-1])
        spare_values = (
            QUICK_SPARE_VALUES if self._flag(query, "quick") else None
        )
        experiment = run_section5_experiment(
            spare_values=spare_values,
            trials=trials,
            broker=self.server.broker,
        )
        driver = {
            "fig6": figure6_processes_and_success,
            "fig7": figure7_node_movements,
            "fig8": figure8_total_distance,
        }[name]
        self._send_json(200, {"figure": name, **_result_payload(driver(experiment))})


def make_server(
    config: Optional[ServeConfig] = None,
    broker: Optional[ExperimentBroker] = None,
    cache: Optional[RunCache] = None,
) -> ExperimentServer:
    """Build (but do not start) an :class:`ExperimentServer`.

    Call ``serve_forever()`` on the result — typically from a dedicated
    thread — and ``close()`` when done.  ``broker``/``cache`` injection is
    for tests and embedding; normally both are built from the config.
    """
    return ExperimentServer(config or ServeConfig(), broker=broker, cache=cache)


def serve_forever(config: ServeConfig) -> int:
    """Run the service until interrupted (the ``repro serve`` entry point)."""
    server = make_server(config)
    cache_note = (
        f"{server.cache.backend.kind} cache at {server.cache.cache_dir}"
        if config.cache_dir is not None
        else f"ephemeral {server.cache.backend.kind} cache"
    )
    print(
        f"repro experiment service on {server.url} "
        f"({config.workers} workers, {cache_note}); Ctrl-C to stop"
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("shutting down")
    finally:
        server.close()
        snapshot = server.cache.stats.snapshot()
        print(
            f"served {snapshot.lookups} lookups, "
            f"{snapshot.hits} cache hits ({snapshot.hit_rate:.1%} hit rate)"
        )
    return 0


# ------------------------------------------------------------------ smoke gate
def _smoke_spec_payload(seed: int = 7) -> Dict[str, object]:
    """A small fixed spec body the smoke gate queries twice."""
    return {
        "scenario": {
            "columns": 6,
            "rows": 6,
            "deployed_count": 200,
            "spare_surplus": 12,
            "seed": seed,
        },
        "scheme": "SR",
        "seed": seed,
        "max_rounds": 60,
    }


def run_serve_smoke(workers: int = 2) -> List[str]:
    """CI gate for the serving stack; returns failure messages (empty = OK).

    Starts a private server on an ephemeral port with an ephemeral sqlite
    cache, then checks the full request surface end to end: health, an
    uncached run (simulated), the identical run again (answered from the
    cache), a streamed run (live per-round events arrive), stats consistency,
    and clean shutdown.
    """
    from repro.serve.client import ServeClient

    failures: List[str] = []
    config = ServeConfig(port=0, workers=workers, verbose=False)
    server = make_server(config)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    client = ServeClient(server.url)
    try:
        health = client.health()
        if health.get("status") != "ok":
            failures.append(f"health endpoint unhealthy: {health}")

        first = client.run(_smoke_spec_payload())
        if first.get("cached"):
            failures.append("first query of a novel spec claims to be cached")
        if "record" not in first or first["record"]["metrics"]["rounds"] < 1:
            failures.append("uncached run returned no usable record")

        second = client.run(_smoke_spec_payload())
        if not second.get("cached"):
            failures.append("repeated query was not answered from the cache")
        if second.get("record") != first.get("record"):
            failures.append("cached record differs from the simulated record")

        events = list(client.run_stream(_smoke_spec_payload(seed=11)))
        kinds = [event.get("event") for event in events]
        if kinds[:1] != ["accepted"] or kinds[-1:] != ["done"]:
            failures.append(f"stream framing wrong: {kinds[:3]}...{kinds[-1:]}")
        if kinds.count("round") < 1:
            failures.append("stream carried no live per-round events")

        stats = client.stats()
        cache_stats = stats.get("cache", {})
        if cache_stats.get("hits", 0) < 1:
            failures.append(f"stats report no cache hit after a repeat query: {stats}")
        if stats.get("broker", {}).get("executed", 0) < 1:
            failures.append(f"stats report no executed run: {stats}")

        client.shutdown()
    except Exception as error:  # noqa: BLE001 - the gate reports, not raises
        failures.append(f"serve smoke raised {type(error).__name__}: {error}")
    finally:
        thread.join(timeout=10)
        if thread.is_alive():
            failures.append("server thread did not shut down within 10s")
        server.close()
    return failures
