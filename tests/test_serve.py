"""Tests for the HTTP experiment service and its client.

The contracts exercised here:

* request parsing (:func:`spec_from_request`) fills defaults and rejects
  malformed bodies;
* a repeated ``/run`` query is answered from the cache with the identical
  record; concurrent identical queries collapse onto one simulation;
* ``/run?stream=1`` carries live per-round events and publishes the finished
  record so the next query is a hit;
* error mapping: bad specs -> 400, unknown endpoints -> 404, a full broker
  queue -> 503.
"""

import threading
from contextlib import contextmanager

import pytest

from repro.experiments.broker import ExperimentBroker
from repro.experiments.orchestration import execute_run
from repro.experiments.persistence import record_to_dict
from repro.serve import ServeClient, ServeConfig, make_server, spec_from_request
from repro.serve.client import ServeError
from repro.sim.engine import DEFAULT_IDLE_ROUND_LIMIT


def spec_payload(scheme: str = "SR", seed: int = 3, **overrides) -> dict:
    payload = {
        "scenario": {
            "columns": 5,
            "rows": 5,
            "deployed_count": 150,
            "spare_surplus": 8,
            "seed": seed,
        },
        "scheme": scheme,
        "seed": seed,
        "max_rounds": 40,
    }
    payload.update(overrides)
    return payload


@contextmanager
def running_server(broker=None, **config_kwargs):
    """An ephemeral-port server (and client) that is torn down afterwards."""
    config = ServeConfig(port=0, workers=config_kwargs.pop("workers", 2), **config_kwargs)
    server = make_server(config, broker=broker)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield server, ServeClient(server.url, timeout=60)
    finally:
        server.shutdown()
        thread.join(timeout=10)
        server.close()


# ------------------------------------------------------------ request parsing
def test_spec_from_request_fills_defaults():
    spec = spec_from_request({"scenario": {"seed": 9}, "scheme": "SR"})
    assert spec.scheme == "SR"
    assert spec.seed == 9  # inherited from the scenario seed
    assert spec.max_rounds is None
    assert spec.idle_round_limit == DEFAULT_IDLE_ROUND_LIMIT
    assert spec.energy is None and not spec.run_to_exhaustion
    assert spec.failures == () and spec.channel is None


def test_spec_from_request_accepts_channel_strings():
    spec = spec_from_request(spec_payload(channel="lossy:0.2"))
    assert spec.channel is not None
    assert spec.channel.kind == "lossy"
    assert dict(spec.channel.params)["drop_probability"] == pytest.approx(0.2)


@pytest.mark.parametrize(
    "body",
    [
        "not a dict",
        {},
        {"scheme": "SR"},
        {"scenario": {"seed": 1}},
        {"scenario": "not-a-dict", "scheme": "SR"},
        {"scenario": {"bogus_field": 1}, "scheme": "SR"},
    ],
)
def test_spec_from_request_rejects_malformed_bodies(body):
    with pytest.raises(ValueError):
        spec_from_request(body)


# ------------------------------------------------------------------ endpoints
def test_serve_answers_repeated_queries_from_the_cache():
    with running_server() as (server, client):
        assert client.health()["status"] == "ok"
        assert "SR" in client.schemes()
        assert any(s["name"] == "paper-16x16" for s in client.scenarios())

        first = client.run(spec_payload())
        assert not first["cached"]
        second = client.run(spec_payload())
        assert second["cached"]
        assert second["record"] == first["record"]

        stats = client.stats()
        assert stats["cache"]["hits"] >= 1
        assert stats["broker"]["executed"] == 1


def test_serve_run_matches_local_execution():
    with running_server() as (server, client):
        remote = client.run(spec_payload())["record"]
    local = record_to_dict(execute_run(spec_from_request(spec_payload())))
    assert remote == local


def test_streamed_run_emits_live_rounds_then_caches():
    with running_server() as (server, client):
        events = list(client.run_stream(spec_payload(seed=11)))
        kinds = [event["event"] for event in events]
        assert kinds[0] == "accepted"
        assert kinds[-1] == "done"
        rounds = [e for e in events if e["event"] == "round"]
        assert rounds, "no live per-round events arrived"
        assert [e["round"] for e in rounds] == list(range(len(rounds)))
        assert all("holes" in e and "moves" in e for e in rounds)
        # The streamed record was published: the next stream is one cached event.
        replay = list(client.run_stream(spec_payload(seed=11)))
        assert [e["event"] for e in replay] == ["cached"]
        assert replay[0]["record"] == events[-1]["record"]


def test_concurrent_identical_queries_share_one_simulation():
    """Acceptance: a thundering herd of one spec costs one simulation."""
    with running_server() as (server, client):
        results = []

        def ask():
            results.append(client.run(spec_payload(seed=21)))

        threads = [threading.Thread(target=ask) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(results) == 4
        records = [r["record"] for r in results]
        assert all(record == records[0] for record in records)
        assert server.broker.stats().executed == 1


# --------------------------------------------------------------- error paths
def test_malformed_spec_maps_to_400():
    with running_server() as (server, client):
        with pytest.raises(ServeError) as excinfo:
            client.run({"scheme": "SR"})
        assert excinfo.value.status == 400


def test_bad_priority_maps_to_400():
    with running_server() as (server, client):
        with pytest.raises(ServeError) as excinfo:
            client.run(spec_payload(), priority="urgent")
        assert excinfo.value.status == 400


def test_unknown_routes_map_to_404():
    with running_server() as (server, client):
        for path in ["/nope", "/scenario/not-a-scenario", "/figure/fig99"]:
            with pytest.raises(ServeError) as excinfo:
                client._call(path)
            assert excinfo.value.status == 404, path


def test_full_queue_maps_to_503():
    gate = threading.Event()

    def gated_run(spec):
        gate.wait(timeout=30)
        return execute_run(spec)

    def wait_until(predicate, timeout: float = 5.0) -> None:
        pause = threading.Event()
        for _ in range(int(timeout / 0.01)):
            if predicate():
                return
            pause.wait(0.01)
        pytest.fail("broker never reached the expected state")

    broker = ExperimentBroker(workers=1, queue_limit=1, run_fn=gated_run)
    with running_server(broker=broker) as (server, client):
        background = []

        def ask(seed):
            thread = threading.Thread(
                target=lambda: client.run(spec_payload(seed=seed))
            )
            thread.start()
            background.append(thread)

        ask(31)  # occupies the one worker (held at the gate)
        wait_until(lambda: broker.stats().pending == 0 and broker.stats().in_flight == 1)
        ask(32)  # fills the queue exactly to its bound
        wait_until(lambda: broker.stats().pending == 1)
        with pytest.raises(ServeError) as excinfo:
            client.run(spec_payload(seed=33))
        assert excinfo.value.status == 503
        gate.set()
        for thread in background:
            thread.join(timeout=30)
