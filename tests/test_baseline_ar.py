"""Unit tests for the AR baseline (localized, unsynchronised replacement)."""

import pytest

from repro.core.baseline_ar import LocalizedReplacementController
from repro.core.hamilton import build_hamilton_cycle
from repro.core.replacement import HamiltonReplacementController
from repro.grid.virtual_grid import GridCoord, VirtualGrid
from repro.network.deployment import deploy_per_cell
from repro.network.state import WsnState
from repro.sim.engine import run_recovery

from helpers import make_hole


class TestConstruction:
    def test_invalid_arguments(self, small_grid):
        with pytest.raises(ValueError):
            LocalizedReplacementController(small_grid, max_hops=0)
        with pytest.raises(ValueError):
            LocalizedReplacementController(small_grid, stall_limit=0)

    def test_default_hop_budget(self, small_grid):
        controller = LocalizedReplacementController(small_grid)
        assert controller.max_hops == small_grid.cell_count


class TestOverreaction:
    def test_every_occupied_neighbour_initiates(self, dense_state, rng):
        """The defining AR behaviour: one hole, several replacement processes."""
        controller = LocalizedReplacementController(dense_state.grid)
        hole = GridCoord(2, 2)  # interior cell: four occupied neighbours
        make_hole(dense_state, hole)
        controller.execute_round(dense_state, rng, 0)
        assert controller.total_processes == 4
        origins = {p.origin_cell for p in controller.processes()}
        assert origins == {hole}
        initiators = {p.initiator_cell for p in controller.processes()}
        assert initiators == set(dense_state.grid.neighbours(hole))

    def test_redundant_moves_into_same_hole(self, dense_state, rng):
        """Same-round processes cannot see each other, so the hole gets several nodes."""
        controller = LocalizedReplacementController(dense_state.grid)
        hole = GridCoord(1, 2)
        make_hole(dense_state, hole)
        outcome = controller.execute_round(dense_state, rng, 0)
        assert outcome.move_count >= 2
        assert dense_state.member_count(hole) >= 2
        dense_state.check_invariants()

    def test_corner_hole_has_fewer_processes(self, dense_state, rng):
        controller = LocalizedReplacementController(dense_state.grid)
        make_hole(dense_state, GridCoord(0, 0))
        controller.execute_round(dense_state, rng, 0)
        assert controller.total_processes == 2

    def test_sr_initiates_strictly_fewer_processes(self, dense_state, rng):
        """The paper's headline comparison on a single scenario."""
        ar_state = dense_state.clone()
        holes = [GridCoord(1, 1), GridCoord(2, 3), GridCoord(3, 0)]
        for hole in holes:
            make_hole(dense_state, hole)
            make_hole(ar_state, hole)
        sr = HamiltonReplacementController(build_hamilton_cycle(dense_state.grid))
        ar = LocalizedReplacementController(ar_state.grid)
        run_recovery(dense_state, sr, rng)
        run_recovery(ar_state, ar, rng)
        assert sr.total_processes == len(holes)
        assert ar.total_processes >= 2 * sr.total_processes


class TestCascadeAndFailure:
    def test_aborts_when_hole_already_filled_previous_round(self, dense_state, rng):
        controller = LocalizedReplacementController(dense_state.grid)
        hole = GridCoord(2, 2)
        make_hole(dense_state, hole)
        controller.execute_round(dense_state, rng, 0)
        # Round 1: the hole is covered, the remaining processes abort as redundant.
        controller.execute_round(dense_state, rng, 1)
        assert not controller.active_processes()
        assert controller.redundant_processes >= 0
        assert controller.converged_processes == controller.total_processes

    def test_cascading_without_spares_leaves_trail(self, sparse_state, rng):
        """Heads move into the hole, vacating their own cells (the 1-hop cascade)."""
        controller = LocalizedReplacementController(sparse_state.grid)
        hole = GridCoord(2, 2)
        make_hole(sparse_state, hole)
        outcome = controller.execute_round(sparse_state, rng, 0)
        assert outcome.move_count >= 2
        assert not sparse_state.is_vacant(hole)
        # The moved heads left their own cells vacant (new holes appear).
        assert sparse_state.hole_count >= 1

    def test_success_rate_below_one_without_spares(self, sparse_state, rng):
        controller = LocalizedReplacementController(sparse_state.grid)
        make_hole(sparse_state, GridCoord(1, 1))
        result = run_recovery(sparse_state, controller, rng)
        assert controller.failed_processes >= 1
        assert result.metrics.success_rate < 1.0

    def test_dense_network_single_hole_full_success(self, dense_state, rng):
        controller = LocalizedReplacementController(dense_state.grid)
        make_hole(dense_state, GridCoord(3, 3))
        result = run_recovery(dense_state, controller, rng)
        assert result.metrics.final_holes == 0
        assert result.metrics.success_rate == 1.0

    def test_hop_budget_limits_cascade(self, sparse_state, rng):
        controller = LocalizedReplacementController(sparse_state.grid, max_hops=2)
        make_hole(sparse_state, GridCoord(2, 2))
        run_recovery(sparse_state, controller, rng)
        for process in controller.processes():
            assert process.move_count <= 2 + 1  # budget plus the final marking move

    def test_finalize_marks_leftover_processes(self, sparse_state, rng):
        controller = LocalizedReplacementController(sparse_state.grid)
        make_hole(sparse_state, GridCoord(0, 0))
        controller.execute_round(sparse_state, rng, 0)
        controller.finalize(sparse_state, 1)
        assert not controller.active_processes()


class TestIsolatedHole:
    def test_hole_with_no_occupied_neighbours_waits(self, rng):
        """A hole surrounded by holes cannot be announced until a neighbour recovers."""
        grid = VirtualGrid(5, 4, cell_size=1.0)
        state = WsnState(grid, deploy_per_cell(grid, 1, rng))
        center = GridCoord(2, 2)
        for coord in [center] + grid.neighbours(center):
            make_hole(state, coord)
        controller = LocalizedReplacementController(grid)
        controller.execute_round(state, rng, 0)
        origins = {p.origin_cell for p in controller.processes()}
        assert center not in origins
