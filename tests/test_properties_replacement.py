"""Property-based tests for the SR replacement scheme.

The key end-to-end guarantees of the paper, checked over randomly generated
scenarios:

* Theorem 1 / Corollary 1: every hole is repaired whenever the network holds
  enough spare nodes, on both the serpentine and the dual-path constructions;
* exactly one replacement process is initiated per hole;
* the state invariants (one head per occupied cell, membership index
  consistent) survive arbitrary recoveries;
* nodes only ever move between neighbouring cells.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.hamilton import build_hamilton_cycle
from repro.core.replacement import HamiltonReplacementController
from repro.grid.virtual_grid import VirtualGrid
from repro.network.deployment import deploy_per_cell_counts
from repro.network.state import WsnState
from repro.sim.engine import run_recovery


@st.composite
def recovery_scenarios(draw):
    """A random grid, a random occupancy pattern, and a random set of holes."""
    columns = draw(st.integers(min_value=2, max_value=8))
    rows = draw(st.integers(min_value=2, max_value=8))
    grid = VirtualGrid(columns, rows, cell_size=2.0)
    cells = list(grid.all_coords())
    # Each cell gets 0-3 nodes; cells with 0 nodes start as holes.
    counts = {
        coord: draw(st.integers(min_value=0, max_value=3)) for coord in cells
    }
    seed = draw(st.integers(min_value=0, max_value=10_000))
    return grid, counts, seed


def build_state(grid, counts, seed):
    rng = random.Random(seed)
    nodes = deploy_per_cell_counts(grid, {c: n for c, n in counts.items() if n > 0}, rng)
    return WsnState(grid, nodes), rng


@given(recovery_scenarios())
@settings(max_examples=50, deadline=None)
def test_recovery_repairs_all_holes_when_spares_suffice(scenario):
    grid, counts, seed = scenario
    state, rng = build_state(grid, counts, seed)
    holes_before = state.hole_count
    spares_before = state.spare_count
    controller = HamiltonReplacementController(build_hamilton_cycle(grid))
    result = run_recovery(state, controller, rng)

    state.check_invariants()
    if spares_before >= holes_before:
        # Theorem 1 / Corollary 1: complete coverage is restored.
        assert result.metrics.final_holes == 0
        assert result.metrics.success_rate == 1.0
    else:
        # Not enough spares: at least the deficit remains uncovered, and the
        # scheme never makes the coverage worse than it started.
        assert result.metrics.final_holes >= holes_before - spares_before
        assert result.metrics.final_holes <= holes_before

    # One and only one process per detected hole (original holes only).
    assert result.metrics.processes_initiated <= holes_before
    # The number of enabled nodes never changes: SR only relocates nodes.
    assert state.enabled_count == sum(counts.values())


@given(recovery_scenarios())
@settings(max_examples=40, deadline=None)
def test_every_move_is_between_neighbouring_cells(scenario):
    grid, counts, seed = scenario
    state, rng = build_state(grid, counts, seed)
    controller = HamiltonReplacementController(build_hamilton_cycle(grid))
    run_recovery(state, controller, rng)
    for process in controller.processes():
        for move in process.moves:
            assert move.source_cell.is_neighbour_of(move.target_cell)
            assert grid.central_area(move.target_cell).contains(move.target_position)


@given(recovery_scenarios())
@settings(max_examples=40, deadline=None)
def test_process_accounting_is_consistent(scenario):
    grid, counts, seed = scenario
    state, rng = build_state(grid, counts, seed)
    holes_before = state.hole_count
    spares_before = state.spare_count
    controller = HamiltonReplacementController(build_hamilton_cycle(grid))
    result = run_recovery(state, controller, rng)

    assert controller.total_processes == (
        controller.converged_processes
        + controller.failed_processes
        + len(controller.active_processes())
    )
    assert result.metrics.total_moves == sum(
        p.move_count for p in controller.processes()
    )
    assert result.metrics.total_distance >= 0.0
    # Converged processes end with their origin hole covered — in the
    # Theorem-1 regime (enough spares) only: in a spare-starved network a
    # later cascade may legitimately re-vacate a repaired cell while chasing
    # a different hole, so the end-of-run check would be too strong there.
    if spares_before >= holes_before:
        for process in controller.processes():
            if process.converged:
                assert not state.is_vacant(process.origin_cell)
