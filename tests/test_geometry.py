"""Unit tests for the planar geometry primitives."""

import math

import pytest

from repro.grid.geometry import (
    BoundingBox,
    Point,
    bounding_box_of,
    centroid,
    total_path_length,
)


class TestPoint:
    def test_distance_is_euclidean(self):
        assert Point(0, 0).distance_to(Point(3, 4)) == pytest.approx(5.0)

    def test_distance_is_symmetric(self):
        a, b = Point(1.5, -2.0), Point(-4.0, 7.25)
        assert a.distance_to(b) == pytest.approx(b.distance_to(a))

    def test_distance_to_self_is_zero(self):
        p = Point(2.0, 3.0)
        assert p.distance_to(p) == 0.0

    def test_manhattan_distance(self):
        assert Point(0, 0).manhattan_distance_to(Point(3, -4)) == pytest.approx(7.0)

    def test_translated_returns_new_point(self):
        p = Point(1.0, 2.0)
        q = p.translated(0.5, -1.0)
        assert q == Point(1.5, 1.0)
        assert p == Point(1.0, 2.0), "original point must be unchanged (immutability)"

    def test_midpoint(self):
        assert Point(0, 0).midpoint(Point(4, 6)) == Point(2, 3)

    def test_points_are_hashable_and_comparable(self):
        assert len({Point(1, 2), Point(1, 2), Point(2, 1)}) == 2
        assert Point(1, 2) < Point(2, 1)

    def test_iteration_and_tuple(self):
        x, y = Point(3.5, 4.5)
        assert (x, y) == (3.5, 4.5)
        assert Point(3.5, 4.5).as_tuple() == (3.5, 4.5)


class TestBoundingBox:
    def test_dimensions_and_area(self):
        box = BoundingBox(0, 0, 4, 2)
        assert box.width == 4
        assert box.height == 2
        assert box.area == 8
        assert box.center == Point(2, 1)

    def test_rejects_inverted_bounds(self):
        with pytest.raises(ValueError):
            BoundingBox(1, 0, 0, 1)
        with pytest.raises(ValueError):
            BoundingBox(0, 5, 5, 4)

    def test_contains_is_closed(self):
        box = BoundingBox(0, 0, 1, 1)
        assert box.contains(Point(0, 0))
        assert box.contains(Point(1, 1))
        assert not box.contains(Point(1.0001, 0.5))
        assert box.contains(Point(1.0001, 0.5), tolerance=0.001)

    def test_clamp_projects_outside_points(self):
        box = BoundingBox(0, 0, 2, 2)
        assert box.clamp(Point(-1, 5)) == Point(0, 2)
        assert box.clamp(Point(1, 1)) == Point(1, 1)

    def test_shrunk(self):
        inner = BoundingBox(0, 0, 4, 4).shrunk(1)
        assert inner == BoundingBox(1, 1, 3, 3)

    def test_shrunk_too_far_raises(self):
        with pytest.raises(ValueError):
            BoundingBox(0, 0, 1, 1).shrunk(0.6)

    def test_corners_order(self):
        corners = BoundingBox(0, 0, 1, 2).corners()
        assert corners == (Point(0, 0), Point(1, 0), Point(1, 2), Point(0, 2))

    def test_intersects(self):
        a = BoundingBox(0, 0, 2, 2)
        assert a.intersects(BoundingBox(1, 1, 3, 3))
        assert a.intersects(BoundingBox(2, 2, 3, 3)), "touching boxes intersect"
        assert not a.intersects(BoundingBox(2.1, 0, 3, 1))


class TestHelpers:
    def test_centroid(self):
        points = [Point(0, 0), Point(2, 0), Point(2, 2), Point(0, 2)]
        assert centroid(points) == Point(1, 1)

    def test_centroid_empty_raises(self):
        with pytest.raises(ValueError):
            centroid([])

    def test_bounding_box_of(self):
        box = bounding_box_of([Point(1, 5), Point(-2, 3), Point(0, 0)])
        assert box == BoundingBox(-2, 0, 1, 5)

    def test_bounding_box_of_empty_raises(self):
        with pytest.raises(ValueError):
            bounding_box_of([])

    def test_total_path_length(self):
        path = [Point(0, 0), Point(3, 4), Point(3, 4)]
        assert total_path_length(path) == pytest.approx(5.0)
        assert total_path_length([Point(0, 0)]) == 0.0
