"""Unit tests for the struct-of-arrays node store and its bound handles.

:class:`NodeArrays` is the backing store behind every ``WsnState``;
:class:`SensorNode` handles bound to a row must behave exactly like the old
standalone dataclass while reading and writing the shared columns.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.grid.geometry import Point
from repro.network.node import (
    DEFAULT_BATTERY_CAPACITY,
    NodeRole,
    NodeState,
    SensorNode,
)
from repro.network.node_arrays import (
    ENABLED_CODE,
    HEAD_CODE,
    NodeArrays,
    SPARE_CODE,
)


def make_store(count: int = 5, start_id: int = 0) -> NodeArrays:
    ids = np.arange(start_id, start_id + count, dtype=np.int64)
    xs = np.linspace(0.5, 0.5 + count - 1, count)
    ys = np.full(count, 1.25)
    return NodeArrays.from_positions(ids, xs, ys)


class TestNodeArrays:
    def test_from_positions_defaults(self):
        store = make_store(4)
        assert len(store) == 4
        assert store.positions.shape == (4, 2)
        assert np.all(store.state == ENABLED_CODE)
        assert np.all(store.energy == DEFAULT_BATTERY_CAPACITY)
        assert np.all(store.initial_energy == DEFAULT_BATTERY_CAPACITY)
        assert np.all(store.cell == -1)
        assert np.all(store.move_count == 0)

    def test_row_of_contiguous_ids(self):
        store = make_store(4, start_id=10)
        assert [store.row_of(node_id) for node_id in (10, 11, 12, 13)] == [0, 1, 2, 3]
        with pytest.raises(KeyError):
            store.row_of(9)
        with pytest.raises(KeyError):
            store.row_of(14)

    def test_row_of_irregular_ids(self):
        ids = np.array([5, 2, 99], dtype=np.int64)
        store = NodeArrays.from_positions(ids, np.zeros(3), np.zeros(3))
        assert store.row_of(5) == 0
        assert store.row_of(99) == 2
        with pytest.raises(KeyError):
            store.row_of(3)
        assert store.has_id(2)
        assert not store.has_id(7)

    def test_rows_of_vectorized(self):
        store = make_store(6, start_id=3)
        rows = store.rows_of(np.array([5, 3, 8]))
        assert rows.tolist() == [2, 0, 5]

    def test_enabled_mask_tracks_state_column(self):
        store = make_store(3)
        store.state[1] = 2  # any non-enabled code
        assert store.enabled_mask().tolist() == [True, False, True]

    def test_copy_is_independent(self):
        store = make_store(3)
        twin = store.copy()
        twin.energy[0] = 1.0
        twin.positions[2, 0] = -7.0
        twin.state[1] = 3
        assert store.energy[0] == DEFAULT_BATTERY_CAPACITY
        assert store.positions[2, 0] != -7.0
        assert store.state[1] == ENABLED_CODE

    def test_from_nodes_round_trips_fields(self):
        nodes = [
            SensorNode(node_id=4, position=Point(1.0, 2.0)),
            SensorNode(
                node_id=7,
                position=Point(3.0, 4.0),
                state=NodeState.FAILED,
                role=NodeRole.SPARE,
                energy=12.5,
            ),
        ]
        store = NodeArrays.from_nodes(nodes)
        assert store.node_ids.tolist() == [4, 7]
        assert store.positions[1].tolist() == [3.0, 4.0]
        assert store.energy[1] == 12.5
        assert store.role[1] == SPARE_CODE
        assert store.enabled_mask().tolist() == [True, False]


class TestBoundHandles:
    def test_bound_handle_reads_arrays(self):
        store = make_store(3)
        store.role[1] = HEAD_CODE
        node = SensorNode._bound(store, 1)
        assert node.node_id == 1
        assert node.position == Point(1.5, 1.25)
        assert node.role is NodeRole.HEAD
        assert node.state is NodeState.ENABLED
        assert node.energy == DEFAULT_BATTERY_CAPACITY

    def test_handle_writes_flow_into_arrays(self):
        store = make_store(3)
        node = SensorNode._bound(store, 2)
        node.energy = 4.5
        node.state = NodeState.MISBEHAVING
        node.role = NodeRole.SPARE
        node.position = Point(0.25, 0.75)
        assert store.energy[2] == 4.5
        assert store.state[2] != ENABLED_CODE
        assert store.role[2] == SPARE_CODE
        assert store.positions[2].tolist() == [0.25, 0.75]

    def test_array_writes_visible_through_handle(self):
        store = make_store(3)
        node = SensorNode._bound(store, 0)
        store.energy[0] = 2.0
        store.state[0] = 3
        assert node.energy == 2.0
        assert node.state is NodeState.DEPLETED
        # Positions are the one dual-stored field: handles cache the Point
        # (reads stay allocation-free) and write through on assignment, so
        # direct column writes are not reflected by existing handles.
        node.position = Point(9.0, 8.0)
        assert store.positions[0].tolist() == [9.0, 8.0]

    def test_consume_energy_clamps_in_arrays(self):
        store = make_store(1)
        node = SensorNode._bound(store, 0)
        node.consume_energy(DEFAULT_BATTERY_CAPACITY + 5.0)
        assert node.energy == 0.0
        assert store.energy[0] == 0.0
        assert node.is_battery_depleted

    def test_relocate_updates_movement_columns(self):
        store = make_store(1)
        node = SensorNode._bound(store, 0)
        start = node.position
        node.relocate(Point(start.x + 3.0, start.y + 4.0))
        assert store.moved_distance[0] == pytest.approx(5.0)
        assert store.move_count[0] == 1
        assert node.moved_distance == pytest.approx(5.0)
        assert node.move_count == 1

    def test_copy_detaches_from_store(self):
        store = make_store(2)
        node = SensorNode._bound(store, 1)
        snapshot = node.copy()
        store.energy[1] = 0.5
        assert snapshot.energy == DEFAULT_BATTERY_CAPACITY
        snapshot.energy = 99.0
        assert store.energy[1] == 0.5

    def test_bound_and_unbound_compare_equal_on_same_values(self):
        store = make_store(1, start_id=42)
        bound = SensorNode._bound(store, 0)
        unbound = bound.copy()
        assert bound == unbound
