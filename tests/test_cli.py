"""Tests for the command-line interface (python -m repro)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_known_commands_parse(self):
        parser = build_parser()
        assert parser.parse_args(["figures", "fig3"]).command == "figures"
        assert parser.parse_args(["compare"]).command == "compare"
        assert parser.parse_args(["lifetime"]).command == "lifetime"
        assert parser.parse_args(["lifetime", "--smoke"]).smoke
        assert parser.parse_args(["analyze", "--spares", "5"]).command == "analyze"
        assert parser.parse_args(["layout"]).command == "layout"

    def test_lifetime_rejects_unknown_scheme(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["lifetime", "--schemes", "BOGUS"])

    def test_compare_rejects_unknown_scheme(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["compare", "--schemes", "BOGUS"])


class TestAnalyzeCommand:
    def test_prints_theorem2_values(self, capsys):
        assert main(["analyze", "--spares", "12", "--path-length", "19"]) == 0
        output = capsys.readouterr().out
        assert "2.0139" in output
        assert "per-hop distance" in output


class TestLayoutCommand:
    def test_even_grid_prints_cycle(self, capsys):
        assert main(["layout", "--columns", "4", "--rows", "4"]) == 0
        assert "Hamilton cycle" in capsys.readouterr().out

    def test_odd_grid_prints_dual_path(self, capsys):
        assert main(["layout", "--columns", "5", "--rows", "5"]) == 0
        output = capsys.readouterr().out
        assert "Dual-path" in output
        assert "path one" in output


class TestFiguresCommand:
    def test_analytical_figures_only(self, capsys, tmp_path):
        code = main(["figures", "fig3", "fig5", "--csv-dir", str(tmp_path)])
        assert code == 0
        output = capsys.readouterr().out
        assert "Figure 3" in output and "Figure 5" in output
        assert (tmp_path / "fig3_expected_movements.csv").exists()
        assert (tmp_path / "fig5_distance_estimates.csv").exists()

    def test_unknown_figure_is_an_error(self, capsys):
        assert main(["figures", "fig99"]) == 2
        assert "unknown figures" in capsys.readouterr().err

    def test_structural_figures(self, capsys):
        assert main(["figures", "fig1", "fig4"]) == 0
        output = capsys.readouterr().out
        assert "Hamilton cycle" in output and "Dual-path" in output


class TestCompareCommand:
    def test_small_comparison_runs(self, capsys):
        code = main(
            [
                "compare",
                "--columns", "6",
                "--rows", "6",
                "--deployed", "200",
                "--spare-surplus", "20",
                "--seed", "2",
                "--schemes", "SR", "AR",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "SR" in output and "AR" in output
        assert "holes_left" in output

    def test_energy_schemes_available(self, capsys):
        code = main(
            [
                "compare",
                "--columns", "6",
                "--rows", "6",
                "--deployed", "150",
                "--spare-surplus", "10",
                "--seed", "4",
                "--schemes", "SR-energy", "AR-energy",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "SR-energy" in output and "AR-energy" in output

    def test_sharded_comparison_prints_identical_table(self, capsys):
        workload = [
            "compare",
            "--columns", "8",
            "--rows", "8",
            "--deployed", "300",
            "--spare-surplus", "30",
            "--seed", "2",
            "--schemes", "SR",
        ]
        assert main(workload) == 0
        sequential = capsys.readouterr().out
        assert main(workload + ["--shards", "2"]) == 0
        assert capsys.readouterr().out == sequential

    def test_shortcut_scheme_available(self, capsys):
        code = main(
            [
                "compare",
                "--columns", "6",
                "--rows", "6",
                "--deployed", "150",
                "--spare-surplus", "10",
                "--seed", "4",
                "--schemes", "SR-shortcut",
            ]
        )
        assert code == 0
        assert "SR-shortcut" in capsys.readouterr().out


class TestLifetimeCommand:
    def test_small_lifetime_run(self, capsys, tmp_path):
        args = [
            "lifetime",
            "--columns", "6",
            "--rows", "6",
            "--nodes", "144",
            "--spare-surplus", "20",
            "--seed", "7",
            "--initial-energy", "30",
            "--idle-cost", "0.5",
            "--max-rounds", "400",
            "--schemes", "SR", "AR",
            "--csv-dir", str(tmp_path),
        ]
        assert main(args) == 0
        output = capsys.readouterr().out
        assert "lifetime comparison" in output
        assert "longest-lived scheme" in output
        assert (tmp_path / "lifetime_comparison.csv").exists()

    def test_invalid_physics_is_a_clean_error(self, capsys):
        assert main(["lifetime", "--idle-cost", "0"]) == 2
        assert "idle_cost_per_round" in capsys.readouterr().err

    def test_serial_and_parallel_output_identical(self, capsys):
        args = [
            "lifetime",
            "--columns", "6",
            "--rows", "6",
            "--nodes", "144",
            "--spare-surplus", "20",
            "--seed", "7",
            "--initial-energy", "30",
            "--idle-cost", "0.5",
            "--max-rounds", "400",
            "--schemes", "SR", "AR",
        ]
        assert main(args) == 0
        serial_output = capsys.readouterr().out
        assert main(args + ["--jobs", "2"]) == 0
        parallel_output = capsys.readouterr().out
        assert serial_output == parallel_output


class TestScenarioCommand:
    def test_scenario_subcommands_parse(self):
        parser = build_parser()
        assert parser.parse_args(["scenario", "list"]).scenario_command == "list"
        assert parser.parse_args(["scenario", "show", "paper-16x16"]).ref == "paper-16x16"
        args = parser.parse_args(["scenario", "run", "corner-holes", "--smoke"])
        assert args.scenario_command == "run" and args.smoke
        sweep = parser.parse_args(["scenario", "sweep", "edge-breach", "--spares", "5", "10"])
        assert sweep.spares == [5, 10]
        assert parser.parse_args(["scenario", "docs"]).scenario_command == "docs"

    def test_shards_flag_parses_on_every_runner(self):
        parser = build_parser()
        assert parser.parse_args(["compare", "--shards", "4"]).shards == 4
        assert parser.parse_args(["lifetime", "--shards", "2"]).shards == 2
        assert parser.parse_args(["scenario", "run", "paper-16x16", "--shards", "8"]).shards == 8
        sharded_sweep = parser.parse_args(
            ["scenario", "sweep", "edge-breach", "--spares", "5", "--shards", "2"]
        )
        assert sharded_sweep.shards == 2
        # Default is None: leave whatever the scenario file configured alone.
        assert parser.parse_args(["scenario", "run", "paper-16x16"]).shards is None

    def test_list_prints_every_catalog_entry(self, capsys):
        from repro.experiments.catalog import CATALOG_NAMES

        assert main(["scenario", "list"]) == 0
        output = capsys.readouterr().out
        for name in CATALOG_NAMES:
            assert name in output

    def test_show_round_trips_through_the_loader(self, capsys):
        from repro.experiments.catalog import load_catalog_scenario
        from repro.experiments.scenario_files import loads_scenario

        assert main(["scenario", "show", "corner-holes"]) == 0
        output = capsys.readouterr().out
        assert loads_scenario(output) == load_catalog_scenario("corner-holes")

    def test_run_smoke_executes_a_catalog_entry(self, capsys, tmp_path):
        code = main(
            ["scenario", "run", "corner-holes", "--smoke", "--csv-dir", str(tmp_path)]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "scenario smoke OK: corner-holes" in output
        assert "holes_left" in output
        assert (tmp_path / "scenario_corner-holes.csv").exists()

    def test_run_a_scenario_file_path_with_cache(self, capsys, tmp_path):
        from repro.experiments.catalog import load_catalog_scenario
        from repro.experiments.scenario_files import dump_scenario

        path = tmp_path / "mine.toml"
        dump_scenario(load_catalog_scenario("corner-holes").smoke_variant(), path)
        cache_dir = tmp_path / "cache"
        assert main(["scenario", "run", str(path), "--cache-dir", str(cache_dir)]) == 0
        capsys.readouterr()
        assert main(["scenario", "run", str(path), "--cache-dir", str(cache_dir)]) == 0
        assert "[cache: 3 runs reused" in capsys.readouterr().out

    def test_run_with_shards_override_matches_unsharded_output(self, capsys):
        assert main(["scenario", "run", "corner-holes", "--smoke"]) == 0
        sequential = capsys.readouterr().out
        assert main(["scenario", "run", "corner-holes", "--smoke", "--shards", "4"]) == 0
        assert capsys.readouterr().out == sequential

    def test_sweep_tabulates_per_spare_value(self, capsys):
        code = main(
            ["scenario", "sweep", "corner-holes", "--spares", "8", "16", "--trials", "1"]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "scenario sweep corner-holes" in output
        assert " 8 " in output and "16 " in output

    def test_docs_check_detects_sync_and_drift(self, capsys, tmp_path):
        from repro.experiments.catalog import render_catalog_docs

        good = tmp_path / "SCENARIOS.md"
        good.write_text(render_catalog_docs())
        assert main(["scenario", "docs", "--check", str(good)]) == 0
        good.write_text("stale")
        assert main(["scenario", "docs", "--check", str(good)]) == 1
        assert "out of date" in capsys.readouterr().err

    def test_docs_writes_output_file(self, capsys, tmp_path):
        target = tmp_path / "SCENARIOS.md"
        assert main(["scenario", "docs", "--output", str(target)]) == 0
        assert "# Scenario catalog" in target.read_text()

    def test_unknown_scenario_is_a_clean_error(self, capsys):
        assert main(["scenario", "run", "no-such"]) == 2
        err = capsys.readouterr().err
        assert "unknown catalog scenario" in err and "paper-16x16" in err

    def test_invalid_scenario_file_is_a_clean_error(self, capsys, tmp_path):
        bad = tmp_path / "bad.toml"
        bad.write_text('name = "x"\n[run]\nschemes = ["NOPE"]\n')
        assert main(["scenario", "run", str(bad)]) == 2
        assert "run.schemes" in capsys.readouterr().err

    def test_existing_file_without_suffix_is_a_clean_error(self, capsys, tmp_path):
        ambiguous = tmp_path / "myworkload"
        ambiguous.write_text('name = "x"\n')
        assert main(["scenario", "run", str(ambiguous)]) == 2
        assert "cannot infer scenario format" in capsys.readouterr().err


class TestScenarioFuzzCommand:
    def test_fuzz_and_replay_subcommands_parse(self):
        parser = build_parser()
        fuzz = parser.parse_args(["scenario", "fuzz", "--samples", "5", "--seed", "3"])
        assert fuzz.scenario_command == "fuzz"
        assert fuzz.samples == 5 and fuzz.seed == 3
        timed = parser.parse_args(["scenario", "fuzz", "--minutes", "1.5"])
        assert timed.minutes == 1.5
        replay = parser.parse_args(["scenario", "replay", "some-falsifier"])
        assert replay.scenario_command == "replay" and replay.ref == "some-falsifier"

    def test_fuzz_without_a_budget_is_a_clean_error(self, capsys):
        assert main(["scenario", "fuzz", "--no-archive"]) == 2
        assert "--samples" in capsys.readouterr().err

    def test_fuzz_smoke_session_archives_deterministically(self, capsys, tmp_path):
        # Seed 9 is the session's known discovery seed: sample 4 falsifies
        # the claim-severity sr-ar-moves oracle (exit stays 0 — only
        # bug-severity falsifiers fail the session).
        args = ["scenario", "fuzz", "--samples", "5", "--seed", "9"]
        first_dir = tmp_path / "first"
        assert main(args + ["--archive-dir", str(first_dir)]) == 0
        output = capsys.readouterr().out
        assert "scenario fuzz OK" in output
        assert "claim oracle sr-ar-moves violated" in output
        second_dir = tmp_path / "second"
        assert main(args + ["--archive-dir", str(second_dir)]) == 0
        capsys.readouterr()
        first_files = sorted(p.name for p in first_dir.iterdir())
        assert first_files == sorted(p.name for p in second_dir.iterdir())
        assert first_files == ["falsified-sr-ar-moves-s9-i4.toml"]
        for name in first_files:
            assert (first_dir / name).read_bytes() == (second_dir / name).read_bytes()

    def test_fuzz_no_archive_writes_nothing(self, capsys, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main(["scenario", "fuzz", "--samples", "2", "--seed", "1", "--no-archive"]) == 0
        assert "scenario fuzz" in capsys.readouterr().out
        assert list(tmp_path.iterdir()) == []

    def test_replay_prints_a_per_oracle_verdict_table(self, capsys, tmp_path):
        archive = tmp_path / "archive"
        assert main(
            ["scenario", "fuzz", "--samples", "5", "--seed", "9",
             "--archive-dir", str(archive)]
        ) == 0
        capsys.readouterr()
        falsifier = archive / "falsified-sr-ar-moves-s9-i4.toml"
        assert main(["scenario", "replay", str(falsifier)]) == 0
        output = capsys.readouterr().out
        assert "VIOLATED" in output and "PASS" in output
        for oracle in ("sr-ar-moves", "theorem2-bound", "message-conservation"):
            assert oracle in output
        assert "discovery, not a defect" in output

    def test_replay_resolves_shipped_falsified_names(self, capsys):
        from repro.experiments.catalog import falsified_names

        names = falsified_names()
        assert names, "the falsified catalog ships at least one falsifier"
        assert main(["scenario", "replay", names[0]]) == 0
        assert names[0] in capsys.readouterr().out

    def test_replay_of_a_clean_scenario_reports_all_pass(self, capsys):
        assert main(["scenario", "replay", "corner-holes"]) == 0
        output = capsys.readouterr().out
        assert "VIOLATED" not in output
        assert "replay: all oracles passed" in output

    def test_replay_unknown_ref_is_a_clean_error(self, capsys):
        assert main(["scenario", "replay", "no-such-falsifier"]) == 2
        assert "unknown catalog scenario" in capsys.readouterr().err
