"""Figure 1(b): construction of the directed Hamilton cycle.

Regenerates the cycle layout of the paper's 4x5 example and benchmarks the
serpentine construction on the evaluation-sized 16x16 grid (plus a larger
64x64 grid to show the construction scales linearly with the cell count).
"""

from __future__ import annotations

import pytest

from repro.core.hamilton import SerpentineHamiltonCycle, build_hamilton_cycle
from repro.experiments.figures import figure1_hamilton_layout
from repro.grid.virtual_grid import VirtualGrid


@pytest.mark.benchmark(group="fig1-hamilton-construction")
@pytest.mark.parametrize("columns,rows", [(4, 5), (16, 16), (64, 64)])
def test_fig1_serpentine_construction(benchmark, columns, rows):
    """Time the Hamilton-cycle construction and check it is a legal cycle."""
    grid = VirtualGrid(columns, rows, cell_size=4.4721)

    cycle = benchmark(build_hamilton_cycle, grid)

    cycle.validate()
    assert cycle.replacement_path_length in (columns * rows - 1, columns * rows - 2)


@pytest.mark.benchmark(group="fig1-hamilton-layout")
def test_fig1_layout_rendering(benchmark, results_dir):
    """Render the 4x5 cycle of Figure 1(b) and persist it next to the CSVs."""
    layout = benchmark(figure1_hamilton_layout, 4, 5)

    assert "Hamilton cycle" in layout
    # Every cell index 0..19 appears exactly once in the rendering.
    for index in range(20):
        assert str(index) in layout
    (results_dir / "fig1_hamilton_4x5.txt").write_text(layout + "\n")
    print()
    print(layout)


@pytest.mark.benchmark(group="fig1-hamilton-successor")
def test_fig1_successor_lookup(benchmark):
    """Successor/predecessor lookups are O(1); they run once per head per round."""
    grid = VirtualGrid(16, 16, cell_size=4.4721)
    cycle = SerpentineHamiltonCycle(grid)
    cells = list(grid.all_coords())

    def walk_all():
        total = 0
        for coord in cells:
            successor = cycle.successor(coord)
            total += successor.x + successor.y
        return total

    total = benchmark(walk_all)
    assert total > 0
