"""Scheme comparison sweeps over the paper's Section-5 workload.

The experimental figures (6, 7, 8) all come from the same sweep: for every
value of ``N`` (the spare surplus), build the scenario, run each scheme on an
identical scenario build, and record its
:class:`~repro.sim.metrics.RunMetrics`.  :func:`run_comparison` implements
that sweep once so the three figures (and the extension benchmarks) can share
the data.

The sweep is expressed as a batch of
:class:`~repro.experiments.orchestration.RunSpec` cells executed through a
pluggable :class:`~repro.experiments.orchestration.RunExecutor` — pass
``executor=ParallelExecutor(jobs)`` to spread the cells over worker processes
(results are identical to serial execution for the same seeds), and
``cache=RunCache(dir)`` to skip cells whose records were already persisted by
an earlier sweep.

Scheme names are resolved through :mod:`repro.experiments.registry`;
``SCHEME_FACTORIES`` remains as a backwards-compatible alias of the registry
dict.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence

from repro.experiments.orchestration import (
    RunExecutor,
    RunRecord,
    RunSpec,
    execute_many,
)
from repro.experiments.persistence import RunCache
from repro.experiments.registry import (
    SCHEME_REGISTRY as SCHEME_FACTORIES,
    available_schemes,
    make_controller,
)
from repro.experiments.results import ExperimentResult, average_dicts
from repro.network.state import WsnState
from repro.sim.engine import run_recovery
from repro.sim.metrics import RunMetrics
from repro.sim.rng import spawn_seeds
from repro.sim.scenario import ScenarioConfig

__all__ = [
    "SCHEME_FACTORIES",
    "make_controller",
    "run_single",
    "build_comparison_specs",
    "run_comparison",
]


def run_single(
    state: WsnState,
    scheme: str,
    rng: random.Random,
    max_rounds: Optional[int] = None,
) -> RunMetrics:
    """Run one scheme on (a clone of) an already-built ``state``.

    This is the in-place entry point for callers that hold a concrete
    network; sweeps go through :func:`repro.experiments.orchestration.execute_run`
    instead, which builds the network from a spec.
    """
    working_state = state.clone()
    controller = make_controller(scheme, working_state)
    result = run_recovery(working_state, controller, rng, max_rounds=max_rounds)
    return result.metrics


def build_comparison_specs(
    config: ScenarioConfig,
    spare_values: Sequence[int],
    schemes: Sequence[str] = ("SR", "AR"),
    trials: int = 1,
    max_rounds: Optional[int] = None,
) -> List[RunSpec]:
    """The sweep's run specs in deterministic (N, trial, scheme) order.

    For each ``N`` and each trial every scheme gets a spec with the *same*
    scenario config (same deployment and thinning seed), so all schemes
    repair exactly the same holes with exactly the same spare placement —
    the comparison the paper performs.

    Schemes are innermost, so specs sharing a scenario are consecutive: the
    executors' scenario grouping and the initial-state cache build each
    (N, trial) network exactly once for the whole scheme set.
    """
    if trials < 1:
        raise ValueError(f"trials must be >= 1, got {trials}")
    unknown = [scheme for scheme in schemes if scheme not in SCHEME_FACTORIES]
    if unknown:
        raise KeyError(
            f"unknown schemes {unknown}; available: {list(available_schemes())}"
        )
    specs: List[RunSpec] = []
    for spare_surplus in spare_values:
        for trial_seed in spawn_seeds(config.seed, trials, label=f"N={spare_surplus}"):
            scenario = config.with_spare_surplus(spare_surplus).with_seed(trial_seed)
            for scheme in schemes:
                specs.append(
                    RunSpec(
                        scenario=scenario,
                        scheme=scheme,
                        seed=trial_seed,
                        max_rounds=max_rounds,
                    )
                )
    return specs


def run_comparison(
    config: ScenarioConfig,
    spare_values: Sequence[int],
    schemes: Sequence[str] = ("SR", "AR"),
    trials: int = 1,
    max_rounds: Optional[int] = None,
    executor: Optional[RunExecutor] = None,
    cache: Optional[RunCache] = None,
    broker: Optional[object] = None,
) -> ExperimentResult:
    """Sweep ``N`` over ``spare_values`` and run every scheme on identical scenarios.

    Metrics are averaged over trials.  The resulting table has one row per
    ``N`` with the columns::

        N, holes, spares, enabled,
        <scheme>_processes, <scheme>_success_rate, <scheme>_moves,
        <scheme>_distance, <scheme>_failed, <scheme>_final_holes   (per scheme)

    ``executor`` selects the execution strategy (default: serial in-process);
    ``cache`` reuses persisted records for previously executed specs; pass
    ``broker`` instead to route the cells through a long-running
    :class:`~repro.experiments.broker.ExperimentBroker` (shared cache,
    cross-caller in-flight dedup).
    """
    specs = build_comparison_specs(
        config, spare_values, schemes=schemes, trials=trials, max_rounds=max_rounds
    )
    records = execute_many(specs, executor=executor, cache=cache, broker=broker)

    columns: List[str] = ["N", "holes", "spares", "enabled"]
    for scheme in schemes:
        columns.extend(
            [
                f"{scheme}_processes",
                f"{scheme}_success_rate",
                f"{scheme}_moves",
                f"{scheme}_distance",
                f"{scheme}_failed",
                f"{scheme}_final_holes",
            ]
        )
    result = ExperimentResult(
        name=f"scheme comparison on {config.columns}x{config.rows} grid",
        columns=columns,
        description=f"schemes={list(schemes)}, trials={trials}, deployed={config.deployed_count}",
    )

    # Records come back in spec order: trials nested inside each N, schemes
    # nested inside each trial.  Reassemble the per-(N, trial) rows and
    # average the trials, exactly as the sequential sweep used to.
    record_iter = iter(records)
    for spare_surplus in spare_values:
        trial_rows: List[Dict[str, float]] = []
        for _ in range(trials):
            row: Dict[str, float] = {"N": spare_surplus}
            for scheme in schemes:
                record: RunRecord = next(record_iter)
                metrics = record.metrics
                # Scenario-level statistics are identical for every scheme in
                # the trial (same scenario build), so take them from the
                # first record's pre-run snapshot.
                row.setdefault("holes", metrics.initial_holes)
                row.setdefault("spares", metrics.initial_spares)
                row.setdefault("enabled", metrics.initial_enabled)
                row[f"{scheme}_processes"] = metrics.processes_initiated
                row[f"{scheme}_success_rate"] = metrics.success_rate
                row[f"{scheme}_moves"] = metrics.total_moves
                row[f"{scheme}_distance"] = metrics.total_distance
                row[f"{scheme}_failed"] = metrics.processes_failed
                row[f"{scheme}_final_holes"] = metrics.final_holes
            trial_rows.append(row)
        result.add_row(**average_dicts(trial_rows))
    return result
