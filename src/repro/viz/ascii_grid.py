"""ASCII rendering of the virtual grid.

matplotlib is deliberately not a dependency of this reproduction (the target
environment is offline), so the structural figures of the paper — the virtual
grid with per-cell node counts (Figure 1(a)), the directed Hamilton cycle
(Figure 1(b)) and the dual-path construction (Figure 4) — are rendered as
text.  Rows are printed with the largest ``y`` on top so the output matches
the paper's orientation (the origin cell ``(0, 0)`` is bottom-left).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

from repro.grid.virtual_grid import GridCoord, VirtualGrid

#: Arrows used to draw the direction towards the successor cell.
_ARROWS = {
    (0, 1): "^",
    (0, -1): "v",
    (1, 0): ">",
    (-1, 0): "<",
}


def _render_cells(
    grid: VirtualGrid, cell_text: Callable[[GridCoord], str], cell_width: int
) -> str:
    """Shared layout: one bordered row of cells per grid row, top row first."""
    horizontal = "+" + ("-" * cell_width + "+") * grid.columns
    lines: List[str] = [horizontal]
    for y in range(grid.rows - 1, -1, -1):
        row_cells = []
        for x in range(grid.columns):
            text = cell_text(GridCoord(x, y))
            row_cells.append(text[:cell_width].center(cell_width))
        lines.append("|" + "|".join(row_cells) + "|")
        lines.append(horizontal)
    return "\n".join(lines)


def render_occupancy(state, cell_width: int = 5) -> str:
    """Per-cell enabled-node counts, holes marked with ``.`` (Figure 1(a) style)."""
    occupancy = state.occupancy()

    def text(coord: GridCoord) -> str:
        """The label rendered inside one cell."""
        count = occupancy[coord]
        return "." if count == 0 else str(count)

    return _render_cells(state.grid, text, cell_width)


def render_roles(state, cell_width: int = 5) -> str:
    """Heads (``H``), spare counts (``+k``) and holes (``.``) per cell."""

    def text(coord: GridCoord) -> str:
        """The label rendered inside one cell."""
        if state.is_vacant(coord):
            return "."
        spares = len(state.spares_of(coord))
        return "H" if spares == 0 else f"H+{spares}"

    return _render_cells(state.grid, text, cell_width)


def render_cycle(cycle, cell_width: int = 5) -> str:
    """Directed Hamilton cycle: each cell shows its order index and the out-arrow.

    Reproduces the information content of the paper's Figure 1(b): the cell
    visiting order and the direction of node movement along the cycle.
    """
    order = cycle.order()
    position: Dict[GridCoord, int] = {coord: i for i, coord in enumerate(order)}

    def text(coord: GridCoord) -> str:
        """The label rendered inside one cell."""
        index = position[coord]
        successor = order[(index + 1) % len(order)]
        delta = (successor.x - coord.x, successor.y - coord.y)
        arrow = _ARROWS.get(delta, "*")
        return f"{index}{arrow}"

    return _render_cells(cycle.grid, text, cell_width)


def render_dual_paths(cycle, cell_width: int = 7) -> str:
    """The dual-path construction: role letters A/B/C/D plus chain order (Figure 4)."""
    roles = {
        cycle.cell_a: "A",
        cycle.cell_b: "B",
        cycle.cell_c: "C",
        cycle.cell_d: "D",
    }
    chain = cycle.shared_chain()
    chain_index = {coord: i for i, coord in enumerate(chain)}

    def text(coord: GridCoord) -> str:
        """The label rendered inside one cell."""
        label = roles.get(coord, "")
        if coord in chain_index:
            suffix = str(chain_index[coord])
            return f"{label}{suffix}" if label else suffix
        return label

    return _render_cells(cycle.grid, text, cell_width)


def render_path_overlay(
    grid: VirtualGrid, path: Sequence[GridCoord], cell_width: int = 5
) -> str:
    """Render an arbitrary cell path (e.g. one cascade) as order indices over the grid."""
    position = {coord: i for i, coord in enumerate(path)}

    def text(coord: GridCoord) -> str:
        """The label rendered inside one cell."""
        index = position.get(coord)
        return "" if index is None else str(index)

    return _render_cells(grid, text, cell_width)
