"""Property tests for the seeded scenario fuzzer (:mod:`repro.experiments.fuzz`).

The sampler's contract is *constraint-aware validity*: every sampled document
must pass ``load_scenario`` validation, round-trip byte-stably, and compile
to cache-key-stable ``RunSpec`` cells.  The suite proves that over hundreds
of samples, pins the sampler's determinism (sample ``i`` is a pure function
of ``(seed, i)``), shows the sampled space actually covers the declarative
surface (all channel kinds, all failure kinds, both deployments, sharding
classes), and exercises the shrink/minimize machinery the falsifier archive
depends on.
"""

import dataclasses

import pytest

from repro.experiments.fuzz import (
    ScenarioSampler,
    minimize_scenario,
    shrink_candidates,
    validate_roundtrip,
)
from repro.experiments.persistence import run_key
from repro.experiments.scenario_files import dumps_scenario, load_scenario
from repro.network.channel import ChannelModel
from repro.network.energy import EnergyModel
from repro.network.failures import FailureEvent
from repro.network.partition import feasible_shards
from repro.sim.scenario import ScenarioConfig

PROPERTY_SEED = 2026
PROPERTY_SAMPLES = 500


@pytest.fixture(scope="module")
def property_samples():
    return ScenarioSampler(PROPERTY_SEED).samples(PROPERTY_SAMPLES)


class TestSampledValidity:
    def test_every_sample_passes_the_validity_gate(self, property_samples):
        # validate_roundtrip raises FuzzValidationError naming the broken
        # property (loads / dumps / run_key); surviving all samples proves
        # the sampler and the document validator agree on validity.
        for sample in property_samples:
            validate_roundtrip(sample.scenario)

    def test_dumps_are_byte_stable(self, property_samples):
        for sample in property_samples[:50]:
            first = dumps_scenario(sample.scenario, format="toml")
            second = dumps_scenario(sample.scenario, format="toml")
            assert first == second

    def test_compiled_specs_are_cache_key_stable(self, property_samples):
        for sample in property_samples[:50]:
            keys_a = [run_key(spec) for spec in sample.scenario.run_specs()]
            keys_b = [run_key(spec) for spec in sample.scenario.run_specs()]
            assert keys_a == keys_b
            assert len(set(keys_a)) == len(keys_a), "specs must not collide"


class TestSamplerDeterminism:
    def test_sample_is_pure_in_seed_and_index(self):
        a = ScenarioSampler(9).sample(7)
        b = ScenarioSampler(9).sample(7)
        assert a == b
        assert dumps_scenario(a.scenario, format="toml") == dumps_scenario(
            b.scenario, format="toml"
        )

    def test_samples_are_independent_across_indices(self):
        # sample(7) alone equals sample(7) reached through samples(8):
        # no hidden stream state leaks between indices.
        direct = ScenarioSampler(9).sample(7)
        sequential = ScenarioSampler(9).samples(8)[7]
        assert direct == sequential

    def test_different_seeds_give_different_documents(self):
        a = ScenarioSampler(1).sample(0).scenario
        b = ScenarioSampler(2).sample(0).scenario
        assert dumps_scenario(a, format="toml") != dumps_scenario(b, format="toml")


class TestSampledSpaceCoverage:
    def test_channel_kinds_all_appear(self, property_samples):
        kinds = {
            sample.scenario.channel.kind if sample.scenario.channel else "none"
            for sample in property_samples
        }
        assert {"none", "lossy", "delayed", "jammed"} <= kinds

    def test_failure_kinds_all_appear(self, property_samples):
        kinds = {
            event.kind
            for sample in property_samples
            for event in sample.scenario.failures
        }
        assert {
            "random",
            "thinning",
            "region_jamming",
            "targeted_cells",
            "battery_depletion",
        } <= kinds

    def test_deployments_energy_and_trials_vary(self, property_samples):
        scenarios = [sample.scenario for sample in property_samples]
        assert {s.scenario.deployment for s in scenarios} == {"uniform", "per_cell"}
        assert any(s.energy is not None for s in scenarios)
        assert any(s.energy is None for s in scenarios)
        assert any(s.run_to_exhaustion for s in scenarios)
        assert {s.trials for s in scenarios} == {1, 2}
        assert any(len(s.schemes) > 2 for s in scenarios)
        assert all({"SR", "AR"} <= set(s.schemes) for s in scenarios)

    def test_failure_rounds_stay_inside_the_round_bound(self, property_samples):
        for sample in property_samples:
            bound = sample.scenario.max_rounds
            assert all(event.round < bound for event in sample.scenario.failures)


class TestShardSampling:
    """The sampler consults ``feasible_shards`` (the satellite eligibility fix)."""

    def test_feasibility_is_computed_from_the_sampled_grid(self, property_samples):
        for sample in property_samples[:100]:
            grid = sample.scenario.scenario.make_grid()
            assert sample.feasible_shard_count == feasible_shards(grid, 16)

    def test_fallback_expectation_matches_the_feasibility_rule(self, property_samples):
        for sample in property_samples:
            if sample.requested_shards == 1:
                assert not sample.expects_shard_fallback
            else:
                expected = (
                    sample.requested_shards > sample.feasible_shard_count
                    or sample.feasible_shard_count < 2
                )
                assert sample.expects_shard_fallback == expected

    def test_both_sharded_classes_are_generated(self, property_samples):
        # The sampler deliberately emits infeasible shard requests so the
        # harness exercises the degrade path — both classes must occur.
        sharded = [s for s in property_samples if s.requested_shards > 1]
        assert any(s.expects_shard_fallback for s in sharded)
        assert any(not s.expects_shard_fallback for s in sharded)
        assert any(s.requested_shards == 1 for s in property_samples)


def loaded_scenario():
    """A fully-loaded scenario every shrink axis can act on."""
    return validate_roundtrip(
        dataclasses.replace(
            ScenarioSampler(0).sample(0).scenario,
            scenario=ScenarioConfig(
                columns=8, rows=8, deployed_count=256, spare_surplus=10, seed=3
            ),
            failures=(
                FailureEvent.with_params(round=5, kind="random", count=2),
                FailureEvent.with_params(
                    round=9, kind="targeted_cells", cells=[[0, 0]]
                ),
            ),
            energy=EnergyModel(idle_cost_per_round=0.5),
            channel=ChannelModel.with_params("delayed", latency=2),
            trials=2,
            max_rounds=80,
            run_to_exhaustion=True,
            shards=2,
            shard_mode="inline",
        )
    )


class TestShrinking:
    def test_candidates_are_ordered_cheapest_first(self):
        candidates = list(shrink_candidates(loaded_scenario()))
        assert candidates[0].max_rounds == 40  # halve the round bound first
        assert candidates[1].trials == 1  # then collapse the trials
        grids = {(c.scenario.columns, c.scenario.rows) for c in candidates}
        assert (4, 8) in grids and (8, 4) in grids  # then halve the grid

    def test_every_candidate_is_a_valid_document(self):
        scenario = loaded_scenario()
        candidates = list(shrink_candidates(scenario))
        assert candidates, "a loaded scenario must offer simplifications"
        for candidate in candidates:
            validate_roundtrip(candidate)
            assert candidate != scenario

    def test_structural_deletions_are_offered(self):
        scenario = loaded_scenario()
        candidates = list(shrink_candidates(scenario))
        assert any(len(c.failures) == 1 for c in candidates)
        assert any(c.channel is None for c in candidates)
        assert any(c.energy is None for c in candidates)
        assert any(c.shards == 1 for c in candidates)

    def test_minimize_shrinks_while_the_predicate_holds(self):
        scenario = loaded_scenario()
        minimized = minimize_scenario(
            scenario, lambda candidate: candidate.scenario.cell_count >= 8
        )
        assert minimized.scenario.cell_count >= 8
        assert minimized.scenario.cell_count < scenario.scenario.cell_count
        assert minimized.trials == 1
        assert minimized.max_rounds == 20

    def test_minimize_is_deterministic(self):
        predicate = lambda candidate: candidate.scenario.cell_count >= 8  # noqa: E731
        a = minimize_scenario(loaded_scenario(), predicate)
        b = minimize_scenario(loaded_scenario(), predicate)
        assert dumps_scenario(a, format="toml") == dumps_scenario(b, format="toml")

    def test_minimize_respects_the_evaluation_budget(self):
        calls = []

        def counting(candidate):
            calls.append(candidate)
            return True

        minimize_scenario(loaded_scenario(), counting, max_evaluations=3)
        assert len(calls) == 3

    def test_minimized_falsifier_survives_a_disk_round_trip(self, tmp_path):
        from repro.experiments.scenario_files import dump_scenario

        minimized = minimize_scenario(
            loaded_scenario(), lambda candidate: True
        )
        path = dump_scenario(
            dataclasses.replace(minimized, name="minimized"),
            tmp_path / "minimized.toml",
        )
        assert load_scenario(path).scenario == minimized.scenario
