"""Grid-size scaling benchmark for the incremental state indices.

The state/engine/controller stack is supposed to make per-round recovery
cost a function of the number of holes, not of the grid size (see DESIGN.md,
"The state-index contract").  This benchmark checks that claim empirically:
it times SR recovery rounds on 16x16 through 256x256 grids (3 nodes per
cell, so the largest default scenario deploys ~197k nodes) with the *same*
number of holes punched into each, and it micro-benchmarks the hot state
queries (``hole_count``, ``spare_count``, ``vacant_cells``) the engine and
the controllers issue every round.  Since the struct-of-arrays refactor the
run also times the vectorized deployment and batch-adjacency paths per tier
(``deploy_seconds``, ``adjacency_per_edge_seconds``) and the incremental
:class:`~repro.network.adjacency.NeighborIndex` against a full rebuild.

Usage::

    PYTHONPATH=src python benchmarks/bench_scale.py            # default run, writes BENCH_scale.json
    PYTHONPATH=src python benchmarks/bench_scale.py --full     # adds the 512x512 (~786k node) tier
    PYTHONPATH=src python benchmarks/bench_scale.py --smoke    # CI smoke: guards only

The full run writes ``BENCH_scale.json`` at the repository root, seeding the
repo's perf trajectory.  Since the sharded-execution PR it also benchmarks
:class:`~repro.sim.sharded.ShardedEngine` against the sequential engine on
the 128x128 tier (``shard_speedup``): every sharded run is checked
byte-identical to the sequential reference, and the speedup is reported both
as measured wall clock and as the modeled critical path
(``sequential wall / sum of per-round critical paths``) — the figure a host
with at least ``shards`` cores would realise, which a core-starved CI runner
cannot (``cores_available`` records what this host had).

The smoke run executes the smallest grid's round benchmark plus the
regression guards — query scaling (16x16 vs 64x64 at equal hole count),
batch adjacency wall-clock at 49k nodes, the per-edge adjacency ceiling on
the 256x256 tier, sharded/sequential byte-identity (unconditional), and the
4-way modeled-speedup floor (enforced only on hosts with >= 4 cores) — and
exits non-zero when any guard trips, so an accidental O(m*n) scan, a
de-vectorized hot loop, or a shard-protocol divergence fails CI long before
it would be felt on the 512x512 workload.
"""

from __future__ import annotations

import argparse
import gc
import json
import os
import random
import statistics
import sys
import time
from pathlib import Path

if __package__ in (None, ""):  # running as a script: make src/ importable
    sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

import numpy as np

from repro.experiments.registry import make_controller
from repro.network.adjacency import adjacency_lists, adjacency_offsets, build_edges
from repro.network.channel import DEFAULT_CHANNEL
from repro.network.deployment import deploy_per_cell
from repro.network.node_arrays import ENABLED_CODE
from repro.network.radio import UnitDiskRadio
from repro.network.state import WsnState
from repro.sim.engine import RoundBasedEngine
from repro.sim.rng import derive_rng
from repro.sim.sharded import ShardedEngine
from repro.grid.virtual_grid import VirtualGrid, cell_side_for_range

#: (columns, rows) of the benchmarked grids; 3 nodes per cell everywhere, so
#: the largest default grid deploys 256 * 256 * 3 = 196608 sensors.
GRID_SHAPES = ((16, 16), (64, 64), (128, 128), (256, 256))
#: The ``--full`` tier: 512 * 512 * 3 = 786432 sensors, local runs only.
LARGE_GRID_SHAPE = (512, 512)
NODES_PER_CELL = 3
COMMUNICATION_RANGE = 10.0
#: Holes punched into every grid — equal across sizes so per-round cost is
#: compared at equal workload.
DEFAULT_HOLES = 32
#: Fresh holes drip-fed per round by the steady-state round benchmark.
HOLES_PER_ROUND = 8
#: Smoke-mode guard: the per-query cost ratio between a 64x64 and a 16x16
#: grid at equal hole count.  The indexed queries are O(1)/O(holes), so the
#: true ratio is ~1; an O(m*n) regression measures ~16x and trips this.
SMOKE_QUERY_RATIO_LIMIT = 5.0
#: Smoke-mode guard: generous absolute per-round budget on the 16x16 grid.
SMOKE_ROUND_SECONDS_LIMIT = 0.05
#: Guard on the messaging subsystem: per-round cost of SR under the default
#: perfect channel must stay within this factor of the channel-less legacy
#: path (the PR-2 per-round cost), measured back to back on the same machine.
CHANNEL_OVERHEAD_LIMIT = 1.2
#: Guard on the vectorized batch-adjacency path: wall-clock ceiling for the
#: full adjacency build at 49k nodes (the 128x128 tier).  The pre-refactor
#: per-node implementation measured ~2.3 s here; the vectorized path is well
#: under 0.25 s, so tripping this means adjacency de-vectorized.
ADJACENCY_SECONDS_LIMIT_49K = 0.25
#: Guard on adjacency throughput: ceiling on seconds per produced edge,
#: checked on the 256x256 tier (~4.5M edges).  The vectorized path measures
#: well under 1e-7 s/edge; the old per-node code sat around 2e-6.
ADJACENCY_PER_EDGE_SECONDS_LIMIT = 5e-7
#: Guard on the batched deployment path: wall-clock ceiling for generating
#: the 512x512 deployment (~786k nodes) as arrays.
DEPLOY_SECONDS_LIMIT_786K = 2.0
#: Incremental-index microbenchmark: moves timed per tier.
INCREMENTAL_UPDATES = 200
#: Largest node count the incremental-index microbenchmark runs at; the
#: index materialises per-row neighbour arrays, which is not worth the build
#: time on the top tiers.
INCREMENTAL_MAX_NODES = 100_000
#: The sharded-execution benchmark tier: big enough that per-round tile work
#: dominates the driver's serial decide loop (49k nodes, ~6k holes).
SHARD_GRID_SHAPE = (128, 128)
#: Shard counts benchmarked by the full run (1 is the sequential baseline).
SHARD_COUNTS = (1, 2, 4, 8)
#: The shard workload drip-feeds this many rounds x holes-per-round of
#: scheduled cell kills — a sustained recovery load, not a one-shot burst.
SHARD_ROUNDS = 12
SHARD_HOLES_PER_ROUND = 512
#: Smoke-mode guard: floor on the 4-way modeled speedup.  Only enforced on
#: hosts with >= 4 cores — below that the per-phase timings that feed the
#: model share one oversubscribed core and the floor would guard noise.
SHARD_SPEEDUP_LIMIT_4WAY = 2.0


def build_base_state(columns: int, rows: int, seed: int) -> WsnState:
    grid = VirtualGrid(columns, rows, cell_side_for_range(COMMUNICATION_RANGE))
    arrays = deploy_per_cell(
        grid, NODES_PER_CELL, derive_rng(seed, "deployment"), as_arrays=True
    )
    return WsnState(grid, arrays)


def bench_deploy(columns: int, rows: int, seed: int) -> dict:
    """Time the batched array-backed deployment for one tier."""
    grid = VirtualGrid(columns, rows, cell_side_for_range(COMMUNICATION_RANGE))
    start = time.perf_counter()
    arrays = deploy_per_cell(
        grid, NODES_PER_CELL, derive_rng(seed, "deployment"), as_arrays=True
    )
    elapsed = time.perf_counter() - start
    return {"seconds": round(elapsed, 6), "nodes": len(arrays)}


def punch_holes(state: WsnState, hole_count: int, rng: random.Random) -> None:
    """Disable every node of ``hole_count`` randomly chosen cells."""
    cells = rng.sample(list(state.grid.all_coords()), hole_count)
    for coord in cells:
        for node in list(state.members_of(coord)):
            state.disable_node(node.node_id)


class ScheduledCellKill:
    """Failure model that disables a precomputed list of node ids.

    The victim cells are sampled *before* the engine is timed, so the drip
    feed itself adds no grid-size-dependent work to the measured rounds.
    Victim selection is a pure function of the state (no rng), so the model
    is shard-safe: every tile replica disables exactly the victims visible
    inside its coverage (masked rows are skipped).
    """

    shard_safe = True

    def __init__(self, node_ids):
        self.node_ids = list(node_ids)
        self._id_array = np.asarray(self.node_ids, dtype=np.int64)

    def apply(self, state, rng):
        arrays = getattr(state, "arrays", None)
        if arrays is not None:
            # One vectorized pass: keeps the ids that are still enabled in
            # this state (masked/disabled rows have a different state code).
            rows = arrays.rows_of(self._id_array)
            victims = self._id_array[
                arrays.state[rows] == ENABLED_CODE
            ].tolist()
        else:
            masked = getattr(state, "is_masked", None)
            victims = [
                node_id
                for node_id in self.node_ids
                if not (masked is not None and masked(node_id))
                and state.node(node_id).is_enabled
            ]
        for node_id in victims:
            state.disable_node(node_id)
        return victims


def build_failure_schedule(
    base: WsnState, rounds: int, holes_per_round: int, rng: random.Random
) -> dict:
    """One :class:`ScheduledCellKill` per round over disjoint random cells."""
    cells = rng.sample(list(base.grid.all_coords()), rounds * holes_per_round)
    schedule = {}
    for round_index in range(rounds):
        batch = cells[round_index * holes_per_round : (round_index + 1) * holes_per_round]
        node_ids = [
            node.node_id for coord in batch for node in base.members_of(coord)
        ]
        schedule[round_index] = ScheduledCellKill(node_ids)
    return schedule


def bench_recovery_rounds(
    base: WsnState, hole_count: int, seed: int, repeats: int, channel=DEFAULT_CHANNEL
) -> dict:
    """Steady-state per-round cost of SR recovery under a constant hole feed.

    Every round ``HOLES_PER_ROUND`` fresh holes are punched (scheduled
    failures), so every grid size executes the same number of rounds with the
    same per-round workload — the per-round figure is therefore directly
    comparable across grid sizes at equal hole count.  ``channel=None``
    measures the channel-less legacy path (the pre-channel engine), which is
    what the channel-overhead guard compares the default against.
    """
    rounds_scheduled = max(1, hole_count // HOLES_PER_ROUND)
    total_seconds = 0.0
    total_rounds = 0
    per_round_samples = []
    for repeat in range(repeats):
        state = base.clone()
        schedule = build_failure_schedule(
            base, rounds_scheduled, HOLES_PER_ROUND, derive_rng(seed + repeat, "holes")
        )
        controller = make_controller("SR", state)
        engine = RoundBasedEngine(
            state,
            controller,
            derive_rng(seed + repeat, "controller"),
            failure_schedule=schedule,
            channel=channel,
        )
        start = time.perf_counter()
        result = engine.run()
        elapsed = time.perf_counter() - start
        if result.metrics.final_holes:
            raise RuntimeError(
                f"benchmark run left {result.metrics.final_holes} holes unrepaired; "
                "the scenario is supposed to always recover"
            )
        total_seconds += elapsed
        total_rounds += result.rounds_executed
        per_round_samples.append(elapsed / result.rounds_executed)
    return {
        "repeats": repeats,
        "holes_per_round": HOLES_PER_ROUND,
        "rounds_total": total_rounds,
        "seconds_total": round(total_seconds, 6),
        "per_round_seconds": round(total_seconds / total_rounds, 8),
        "per_round_seconds_median": round(statistics.median(per_round_samples), 8),
        "per_round_seconds_min": round(min(per_round_samples), 8),
    }


def bench_channel_overhead(
    base: WsnState, hole_count: int, seed: int, repeats: int
) -> dict:
    """Per-round cost of the default perfect channel vs the channel-less path.

    Both configurations run the identical workload back to back on the same
    machine, so the ratio isolates the cost of the messaging subsystem
    (mailbox delivery, send bookkeeping, energy debits) from hardware noise.
    The two runs are also required to do identical physical work — the
    perfect channel is a semantic no-op — so the comparison is apples to
    apples by construction.  To keep the ratio robust against scheduler
    noise the two configurations are warmed up once and then measured as
    *adjacent pairs* (legacy immediately followed by perfect, per repeat);
    the reported overhead is the median of the per-pair ratios, so slow
    drift affects both sides of every pair equally and a single noisy
    sample cannot move the estimate.
    """
    configs = (("legacy", None), ("perfect", DEFAULT_CHANNEL))
    # A longer drip feed than the scaling benchmark uses: more rounds per
    # timed run amortises fixed noise into a stable per-round figure.
    overhead_holes = hole_count * 4
    for _, channel in configs:  # warm caches and code paths
        bench_recovery_rounds(base, overhead_holes, seed, 1, channel=channel)
    pair_ratios = []
    samples = {label: [] for label, _ in configs}
    # Garbage collection is disabled during the timed pairs (as
    # pytest-benchmark does): the channel side allocates more, so GC pauses
    # would otherwise land on one side of the comparison systematically.
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for repeat in range(max(repeats, 7)):
            gc.collect()
            pair = {}
            # Alternate which configuration runs first so cache/frequency
            # effects tied to position inside a pair cancel across repeats.
            ordered = configs if repeat % 2 == 0 else tuple(reversed(configs))
            for label, channel in ordered:
                result = bench_recovery_rounds(
                    base, overhead_holes, seed + repeat, 1, channel=channel
                )
                pair[label] = result["per_round_seconds_min"]
                samples[label].append(pair[label])
            if pair["legacy"] > 0:
                pair_ratios.append(pair["perfect"] / pair["legacy"])
    finally:
        if gc_was_enabled:
            gc.enable()
    ratio = statistics.median(pair_ratios) if pair_ratios else float("inf")
    # The published per-side figures are medians so the record is
    # self-consistent: their quotient tracks the guarded pair-median ratio,
    # which a single minimum on either side would not.
    return {
        "per_round_seconds_no_channel": statistics.median(samples["legacy"]),
        "per_round_seconds_perfect_channel": statistics.median(samples["perfect"]),
        "overhead_ratio": round(ratio, 3),
        "limit": CHANNEL_OVERHEAD_LIMIT,
    }


def bench_queries(state: WsnState, iterations: int = 2000) -> float:
    """Average seconds per (hole_count + spare_count + vacant_cells) round trip."""
    start = time.perf_counter()
    for _ in range(iterations):
        state.hole_count
        state.spare_count
        state.vacant_cells()
    return (time.perf_counter() - start) / iterations


def bench_adjacency(state: WsnState) -> dict:
    """Time the vectorized adjacency build over all enabled nodes.

    ``seconds`` times :func:`~repro.network.adjacency.build_edges` — the
    array edge list every at-scale consumer (the incremental index, the
    connectivity graph, this benchmark) works from.
    ``adjacency_offsets_seconds`` adds the vectorized CSR assembly
    (composite-key sort into per-node neighbour runs), and
    ``adjacency_lists_seconds`` the full id-keyed dict-of-lists view on top
    of it; the gap between the last two is pure Python int/list
    materialisation (two ints per link), inherent to the dict shape.  All
    three are best-of-two so none of them carries the one-off allocator
    costs the others shed.
    """
    arrays = state.arrays
    mask = arrays.enabled_mask()
    xs = arrays.positions[mask, 0]
    ys = arrays.positions[mask, 1]
    count = int(mask.sum())
    # Best of two: the first build pays one-off page-fault/allocator costs
    # that would otherwise dominate the per-edge figure on the big tiers.
    edge_seconds = float("inf")
    for _ in range(2):
        start = time.perf_counter()
        left, right = build_edges(xs, ys, COMMUNICATION_RANGE)
        edge_seconds = min(edge_seconds, time.perf_counter() - start)
    edges = len(left)
    ids = arrays.node_ids[mask]
    offsets_seconds = float("inf")
    lists_seconds = float("inf")
    for _ in range(2):
        start = time.perf_counter()
        adjacency_offsets(ids, left, right)
        offsets_seconds = min(offsets_seconds, time.perf_counter() - start)
        start = time.perf_counter()
        adjacency_lists(ids, left, right)
        lists_seconds = min(lists_seconds, time.perf_counter() - start)
    return {
        "seconds": round(edge_seconds, 6),
        "nodes": count,
        "edges": edges,
        "per_edge_seconds": round(edge_seconds / edges, 12) if edges else 0.0,
        "adjacency_offsets_seconds": round(offsets_seconds, 6),
        "adjacency_lists_seconds": round(lists_seconds, 6),
    }


def bench_incremental_adjacency(state: WsnState, updates: int = INCREMENTAL_UPDATES) -> dict:
    """Per-update cost of the incremental NeighborIndex vs a full rebuild.

    ``updates`` random enabled rows are re-linked in place (the exact work
    ``on_move`` performs: drop incident edges, rehash the bucket, re-scan the
    3x3 bucket neighbourhood); the speedup column is the number of such
    updates one full rebuild would have paid for.
    """
    radio = UnitDiskRadio(COMMUNICATION_RANGE)
    start = time.perf_counter()
    index = state.attach_neighbor_index(radio)
    full_build = time.perf_counter() - start
    rows = np.flatnonzero(state.arrays.enabled_mask())
    rng = random.Random(1234)
    picks = [int(rows[rng.randrange(len(rows))]) for _ in range(updates)]
    start = time.perf_counter()
    for row in picks:
        index.on_move(row)
    per_update = (time.perf_counter() - start) / updates
    state.detach_neighbor_index()
    return {
        "full_build_seconds": round(full_build, 6),
        "per_update_seconds": round(per_update, 9),
        "updates": updates,
        "updates_per_rebuild": round(full_build / per_update, 1) if per_update else 0.0,
    }


def _run_shard_workload(
    base: WsnState, schedule: dict, seed: int, shards: int
) -> tuple:
    """One timed recovery run of the shard workload; returns (result, wall, engine).

    ``shards == 1`` runs the plain sequential engine — the baseline the
    sharded runs are compared (and byte-checked) against.  Sharded runs use
    the inline backend so the timing telemetry measures tile busy-seconds
    without fork/pipe overhead; determinism is backend-independent.
    """
    state = base.clone()
    controller = make_controller("SR", state)
    rng = derive_rng(seed, "controller")
    if shards == 1:
        engine = RoundBasedEngine(
            state,
            controller,
            rng,
            failure_schedule=schedule,
            channel=DEFAULT_CHANNEL,
        )
    else:
        engine = ShardedEngine(
            state,
            controller,
            rng,
            shards=shards,
            mode="inline",
            failure_schedule=schedule,
            channel=DEFAULT_CHANNEL,
        )
    start = time.perf_counter()
    result = engine.run()
    return result, time.perf_counter() - start, engine


def bench_shard_speedup(seed: int, repeats: int, counts=SHARD_COUNTS) -> dict:
    """Sharded vs sequential execution on the 128x128 tier: identity + speedup.

    Every sharded run's :class:`~repro.sim.engine.SimulationResult` is
    compared ``==`` against the sequential reference (metrics, series, move
    records, message traffic — the byte-identity contract).  Speedup is
    reported two ways: measured wall clock, which on a host with fewer cores
    than shards mostly measures oversubscription, and the modeled critical
    path — sequential wall divided by the sum of per-round critical paths
    (``max tile scan + serial decide + max(bookkeeping, slowest tile
    apply+scan)``) that the engine's timing telemetry accumulates.  The
    sequential and sharded runs of each repeat execute back to back as a
    pair with GC disabled, and the published figures are per-pair medians,
    so machine drift cannot favour one side.
    """
    columns, rows = SHARD_GRID_SHAPE
    base = build_base_state(columns, rows, seed)
    schedule = build_failure_schedule(
        base, SHARD_ROUNDS, SHARD_HOLES_PER_ROUND, derive_rng(seed, "holes")
    )
    reference, _, _ = _run_shard_workload(base, schedule, seed, 1)
    sharded_counts = [count for count in counts if count > 1]
    walls = {count: [] for count in counts}
    walls.setdefault(1, [])
    modeled = {count: [] for count in sharded_counts}
    identical = {count: True for count in sharded_counts}
    effective = {1: 1}
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for repeat in range(max(repeats, 3)):
            gc.collect()
            _, seq_wall, _ = _run_shard_workload(base, schedule, seed, 1)
            walls[1].append(seq_wall)
            for count in sharded_counts:
                result, wall, engine = _run_shard_workload(
                    base, schedule, seed, count
                )
                identical[count] = identical[count] and result == reference
                effective[count] = engine.shards_effective
                walls[count].append(wall)
                critical = engine.timing["critical_seconds"]
                modeled[count].append(seq_wall / critical if critical > 0 else 0.0)
    finally:
        if gc_was_enabled:
            gc.enable()
    entries = []
    for count in counts:
        entry = {
            "shards": count,
            "shards_effective": effective[count],
            "wall_seconds_median": round(statistics.median(walls[count]), 6),
        }
        if count == 1:
            entry["identical"] = True
            entry["modeled_speedup_median"] = 1.0
            entry["modeled_speedup_max"] = 1.0
        else:
            entry["identical"] = identical[count]
            entry["modeled_speedup_median"] = round(
                statistics.median(modeled[count]), 3
            )
            entry["modeled_speedup_max"] = round(max(modeled[count]), 3)
        entries.append(entry)
        print(
            f"shards {count}  (effective {entry['shards_effective']})  "
            f"identical {entry['identical']!s:<5}  "
            f"wall {entry['wall_seconds_median']:7.3f} s  "
            f"modeled speedup {entry['modeled_speedup_median']:5.2f}x "
            f"(max {entry['modeled_speedup_max']:5.2f}x)"
        )
    return {
        "grid": f"{columns}x{rows}",
        "deployed_nodes": base.node_count,
        "failure_rounds": SHARD_ROUNDS,
        "holes_per_round": SHARD_HOLES_PER_ROUND,
        "rounds_executed": reference.rounds_executed,
        "total_moves": reference.metrics.total_moves,
        "mode": "inline",
        "cores_available": os.cpu_count(),
        "note": (
            "wall_seconds on a host with fewer cores than shards measures "
            "oversubscription, not the protocol; modeled_speedup is the "
            "critical-path figure a host with >= shards cores would realise"
        ),
        "counts": entries,
    }


def run_grid(columns: int, rows: int, holes: int, seed: int, repeats: int) -> dict:
    base = build_base_state(columns, rows, seed)
    rounds = bench_recovery_rounds(base, holes, seed, repeats)
    holed = base.clone()
    punch_holes(holed, holes, derive_rng(seed, "holes"))
    query_seconds = bench_queries(holed)
    entry = {
        "columns": columns,
        "rows": rows,
        "cells": columns * rows,
        "deployed_nodes": base.node_count,
        "holes": holes,
        "rounds": rounds,
        "query_seconds": round(query_seconds, 9),
        "deploy": bench_deploy(columns, rows, seed),
        "adjacency": bench_adjacency(base),
    }
    if base.node_count <= INCREMENTAL_MAX_NODES:
        entry["incremental_adjacency"] = bench_incremental_adjacency(base.clone())
    print(
        f"{columns:>4}x{rows:<4} {base.node_count:>6} nodes  "
        f"per-round {rounds['per_round_seconds'] * 1e3:8.3f} ms  "
        f"queries {query_seconds * 1e6:8.2f} us  "
        f"deploy {entry['deploy']['seconds']:6.3f} s  "
        f"adjacency {entry['adjacency']['seconds']:6.3f} s "
        f"({entry['adjacency']['per_edge_seconds'] * 1e9:6.1f} ns/edge)"
    )
    return entry


def smoke(holes: int, seed: int, repeats: int) -> int:
    """Smallest-grid benchmark + query-scaling regression guard for CI."""
    small = run_grid(16, 16, holes, seed, repeats)
    per_round = small["rounds"]["per_round_seconds"]
    failures = []
    if per_round > SMOKE_ROUND_SECONDS_LIMIT:
        failures.append(
            f"per-round cost on 16x16 is {per_round:.4f}s "
            f"(budget {SMOKE_ROUND_SECONDS_LIMIT}s)"
        )

    medium_state = build_base_state(64, 64, seed)
    punch_holes(medium_state, holes, derive_rng(seed, "holes"))
    small_state = build_base_state(16, 16, seed)
    punch_holes(small_state, holes, derive_rng(seed, "holes"))
    small_query = bench_queries(small_state)
    medium_query = bench_queries(medium_state)
    ratio = medium_query / small_query if small_query > 0 else float("inf")
    print(
        f"query scaling guard: 16x16 {small_query * 1e6:.2f} us vs "
        f"64x64 {medium_query * 1e6:.2f} us -> ratio {ratio:.2f} "
        f"(limit {SMOKE_QUERY_RATIO_LIMIT})"
    )
    if ratio > SMOKE_QUERY_RATIO_LIMIT:
        failures.append(
            f"per-round query cost grows {ratio:.2f}x from 16x16 to 64x64 at equal "
            f"hole count (limit {SMOKE_QUERY_RATIO_LIMIT}x) — an index regression "
            "re-introduced a grid-size-dependent scan"
        )

    adjacency_49k = bench_adjacency(build_base_state(128, 128, seed))
    print(
        f"adjacency guard: 128x128 ({adjacency_49k['nodes']} nodes, "
        f"{adjacency_49k['edges']} edges) built in "
        f"{adjacency_49k['seconds']:.3f} s (limit {ADJACENCY_SECONDS_LIMIT_49K})"
    )
    if adjacency_49k["seconds"] > ADJACENCY_SECONDS_LIMIT_49K:
        failures.append(
            f"batch adjacency at 49k nodes took {adjacency_49k['seconds']:.3f}s "
            f"(limit {ADJACENCY_SECONDS_LIMIT_49K}s) — the vectorized bucket path "
            "regressed toward the old per-node scan (~2.3s)"
        )

    tier_256 = bench_adjacency(build_base_state(256, 256, seed))
    print(
        f"per-edge guard: 256x256 ({tier_256['nodes']} nodes) "
        f"{tier_256['per_edge_seconds'] * 1e9:.1f} ns/edge "
        f"(limit {ADJACENCY_PER_EDGE_SECONDS_LIMIT * 1e9:.0f} ns)"
    )
    if tier_256["per_edge_seconds"] > ADJACENCY_PER_EDGE_SECONDS_LIMIT:
        failures.append(
            f"adjacency throughput on the 256x256 tier is "
            f"{tier_256['per_edge_seconds']:.2e} s/edge "
            f"(limit {ADJACENCY_PER_EDGE_SECONDS_LIMIT:.0e})"
        )

    base = build_base_state(16, 16, seed)
    channel = bench_channel_overhead(base, holes, seed, repeats)
    print(
        "channel overhead guard: no-channel "
        f"{channel['per_round_seconds_no_channel'] * 1e3:.3f} ms vs perfect "
        f"{channel['per_round_seconds_perfect_channel'] * 1e3:.3f} ms per round "
        f"-> ratio {channel['overhead_ratio']:.3f} (limit {CHANNEL_OVERHEAD_LIMIT})"
    )
    if channel["overhead_ratio"] > CHANNEL_OVERHEAD_LIMIT:
        failures.append(
            f"the perfect-channel per-round cost is {channel['overhead_ratio']:.2f}x "
            f"the channel-less legacy path (limit {CHANNEL_OVERHEAD_LIMIT}x) — the "
            "messaging subsystem grew a per-round cost not explained by traffic"
        )

    shard = bench_shard_speedup(seed, 3, counts=(1, 4))
    four_way = next(entry for entry in shard["counts"] if entry["shards"] == 4)
    if not four_way["identical"]:
        failures.append(
            "4-way sharded execution diverged from the sequential engine — the "
            "byte-identity contract of ShardedEngine is broken"
        )
    cores = os.cpu_count() or 1
    if cores >= 4:
        print(
            f"shard speedup guard: 4-way modeled "
            f"{four_way['modeled_speedup_median']:.2f}x "
            f"(limit {SHARD_SPEEDUP_LIMIT_4WAY}x, {cores} cores)"
        )
        if four_way["modeled_speedup_median"] < SHARD_SPEEDUP_LIMIT_4WAY:
            failures.append(
                f"4-way sharded modeled speedup is "
                f"{four_way['modeled_speedup_median']:.2f}x "
                f"(floor {SHARD_SPEEDUP_LIMIT_4WAY}x) — the critical path "
                "re-absorbed tile-side work"
            )
    else:
        print(
            f"shard speedup guard: SKIPPED — host has {cores} core(s), the "
            f"per-phase timings behind the model need >= 4 to be trustworthy "
            f"(measured 4-way modeled "
            f"{four_way['modeled_speedup_median']:.2f}x, identity still guarded)"
        )
    for failure in failures:
        print(f"SMOKE FAILURE: {failure}", file=sys.stderr)
    return 1 if failures else 0


def full(holes: int, seed: int, repeats: int, output: Path, include_large: bool) -> int:
    shapes = list(GRID_SHAPES)
    if include_large:
        shapes.append(LARGE_GRID_SHAPE)
    grids = []
    for columns, rows in shapes:
        # The top tiers run few rounds each; extra repeats only repeat the
        # (dominant, already-stable) setup cost.
        tier_repeats = repeats if columns * rows <= 128 * 128 else min(repeats, 3)
        grids.append(run_grid(columns, rows, holes, seed, tier_repeats))
    smallest, largest = grids[0], grids[-1]
    ratio = (
        largest["rounds"]["per_round_seconds"]
        / smallest["rounds"]["per_round_seconds"]
    )
    channel = bench_channel_overhead(
        build_base_state(*GRID_SHAPES[0], seed), holes, seed, repeats
    )
    print("\nshard speedup (sequential wall vs modeled critical path):")
    shard = bench_shard_speedup(seed, min(repeats, 5))
    failures = []
    if not all(entry["identical"] for entry in shard["counts"]):
        failures.append(
            "a sharded run diverged from the sequential engine — the "
            "byte-identity contract of ShardedEngine is broken"
        )
    if include_large:
        large = grids[-1]
        if large["deploy"]["seconds"] > DEPLOY_SECONDS_LIMIT_786K:
            failures.append(
                f"deploying the {LARGE_GRID_SHAPE[0]}x{LARGE_GRID_SHAPE[1]} tier "
                f"({large['deploy']['nodes']} nodes) took "
                f"{large['deploy']['seconds']:.2f}s (limit {DEPLOY_SECONDS_LIMIT_786K}s)"
            )
        if large["adjacency"]["per_edge_seconds"] > ADJACENCY_PER_EDGE_SECONDS_LIMIT:
            failures.append(
                f"adjacency throughput on the largest tier is "
                f"{large['adjacency']['per_edge_seconds']:.2e} s/edge "
                f"(limit {ADJACENCY_PER_EDGE_SECONDS_LIMIT:.0e})"
            )
    report = {
        "benchmark": "bench_scale",
        "description": (
            "SR recovery per-round cost and state-query cost at equal hole "
            "count across grid sizes; per_round_ratio_largest_vs_smallest ~2x "
            "or less means round cost is grid-size independent, "
            "channel_overhead.overhead_ratio <= 1.2 means the control-message "
            "channel adds no meaningful per-round cost on the default perfect "
            "model, the per-tier deploy/adjacency columns track the "
            "vectorized struct-of-arrays paths (per-edge seconds are the "
            "throughput of the batch adjacency build), and shard_speedup "
            "compares ShardedEngine against the sequential engine on the "
            "128x128 tier (byte-identity checked on every run)"
        ),
        "scheme": "SR",
        "nodes_per_cell": NODES_PER_CELL,
        "communication_range": COMMUNICATION_RANGE,
        "holes": holes,
        "seed": seed,
        "grids": grids,
        "per_round_ratio_largest_vs_smallest": round(ratio, 3),
        "query_ratio_largest_vs_smallest": round(
            largest["query_seconds"] / smallest["query_seconds"], 3
        ),
        "channel_overhead": channel,
        "shard_speedup": shard,
    }
    output.write_text(json.dumps(report, indent=2) + "\n")
    largest_label = f"{shapes[-1][0]}x{shapes[-1][1]}"
    print(f"\nper-round cost {largest_label} vs 16x16: {ratio:.2f}x")
    print(
        f"perfect-channel overhead vs channel-less rounds: "
        f"{channel['overhead_ratio']:.3f}x (limit {CHANNEL_OVERHEAD_LIMIT})"
    )
    print(f"[written to {output}]")
    for failure in failures:
        print(f"BENCH FAILURE: {failure}", file=sys.stderr)
    return 1 if failures else 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI mode: smallest grid only, plus the regression guards",
    )
    parser.add_argument(
        "--full",
        action="store_true",
        help=(
            "include the 512x512 (~786k node) tier in the report; local runs "
            "only — it needs a few GB of RAM and a couple of minutes"
        ),
    )
    parser.add_argument("--holes", type=int, default=DEFAULT_HOLES)
    parser.add_argument("--seed", type=int, default=2008)
    parser.add_argument(
        "--repeats", type=int, default=10, help="independent recovery runs per grid"
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=Path(__file__).resolve().parents[1] / "BENCH_scale.json",
        help="where the full run writes its JSON report",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        return smoke(args.holes, args.seed, args.repeats)
    return full(args.holes, args.seed, args.repeats, args.output, args.full)


if __name__ == "__main__":
    sys.exit(main())
