"""Tests for declarative scenario files (load/dump, validation, compilation).

Covers the three guarantees the scenario subsystem makes:

* **lossless, byte-stable round-tripping** — ``load -> dump -> load`` returns
  an equal scenario and re-dumping produces identical bytes, for TOML and
  JSON alike;
* **actionable validation** — every malformed document raises
  :class:`ScenarioValidationError` naming the offending key;
* **compilation into the ordinary pipeline** — :meth:`Scenario.run_specs`
  produces plain ``RunSpec`` cells byte-identical to hand-built ones, so
  scenario-file runs and programmatic runs share ``RunCache`` entries.
"""

import dataclasses

import pytest

from repro.experiments.orchestration import RunSpec, SerialExecutor, execute_many, execute_run
from repro.experiments.persistence import RunCache, run_key, spec_from_dict, spec_to_dict
from repro.experiments.scenario_files import (
    Scenario,
    ScenarioValidationError,
    dump_scenario,
    dumps_scenario,
    load_scenario,
    loads_scenario,
    scenario_from_dict,
    scenario_to_dict,
)
from repro.network.energy import EnergyModel
from repro.network.failures import (
    CompositeFailure,
    FailureEvent,
    TargetedCellFailure,
    build_failure_model,
    compile_failure_schedule,
    freeze_params,
)
from repro.sim.rng import spawn_seeds
from repro.sim.scenario import ScenarioConfig


def sample_scenario(**overrides) -> Scenario:
    defaults = dict(
        name="sample",
        scenario=ScenarioConfig(
            columns=6, rows=6, deployed_count=300, spare_surplus=20, seed=3
        ),
        schemes=("SR", "AR"),
        description="a sample workload",
        stresses="round-tripping",
        expected="equality",
        failures=(
            FailureEvent.with_params(0, "targeted_cells", cells=[[0, 0], [5, 5]]),
            FailureEvent.with_params(4, "region_jamming", center=[10.0, 10.0], radius=5.0),
        ),
        max_rounds=120,
    )
    defaults.update(overrides)
    return Scenario(**defaults)


class TestRoundTrip:
    @pytest.mark.parametrize("format", ["toml", "json"])
    def test_load_dump_load_is_lossless_and_byte_stable(self, format):
        scenario = sample_scenario()
        text = dumps_scenario(scenario, format=format)
        reloaded = loads_scenario(text, format=format)
        assert reloaded == scenario
        assert dumps_scenario(reloaded, format=format) == text

    @pytest.mark.parametrize("suffix", [".toml", ".json"])
    def test_file_round_trip_by_suffix(self, tmp_path, suffix):
        scenario = sample_scenario()
        path = tmp_path / f"sample{suffix}"
        dump_scenario(scenario, path)
        assert load_scenario(path) == scenario

    def test_energy_and_exhaustion_round_trip(self):
        scenario = sample_scenario(
            name="lifetime",
            scenario=ScenarioConfig(
                columns=4, rows=4, deployed_count=80, seed=1, initial_energy=30.0
            ),
            failures=(),
            energy=EnergyModel(idle_cost_per_round=0.5),
            run_to_exhaustion=True,
            max_rounds=50,
        )
        text = dumps_scenario(scenario)
        assert loads_scenario(text) == scenario
        assert "[energy]" in text and "run_to_exhaustion = true" in text

    def test_dict_form_round_trips(self):
        scenario = sample_scenario()
        assert scenario_from_dict(scenario_to_dict(scenario)) == scenario

    def test_unknown_suffix_is_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="toml or .json"):
            load_scenario(tmp_path / "sample.yaml")


class TestValidation:
    def check(self, payload, fragment):
        with pytest.raises(ScenarioValidationError) as excinfo:
            scenario_from_dict(payload)
        assert fragment in str(excinfo.value)

    def test_unknown_top_level_key(self):
        self.check({"name": "x", "bogus": 1}, "unknown key(s) ['bogus']")

    def test_unknown_scenario_key(self):
        self.check({"name": "x", "scenario": {"bogus": 1}}, "scenario: unknown key(s)")

    def test_unknown_run_key(self):
        self.check({"name": "x", "run": {"bogus": 1}}, "run: unknown key(s)")

    def test_unknown_scheme_lists_available(self):
        with pytest.raises(ScenarioValidationError) as excinfo:
            scenario_from_dict({"name": "x", "run": {"schemes": ["NOPE"]}})
        message = str(excinfo.value)
        assert "run.schemes" in message and "SR" in message

    def test_unknown_failure_kind_lists_available(self):
        with pytest.raises(ScenarioValidationError) as excinfo:
            scenario_from_dict(
                {"name": "x", "failures": [{"round": 0, "kind": "wat"}]}
            )
        message = str(excinfo.value)
        assert "failures[0]" in message and "region_jamming" in message

    def test_unknown_failure_parameter(self):
        self.check(
            {"name": "x", "failures": [{"round": 0, "kind": "random", "chance": 0.5}]},
            "unknown parameter(s) ['chance']",
        )

    def test_targeted_cells_outside_grid(self):
        self.check(
            {
                "name": "x",
                "scenario": {"columns": 4, "rows": 4, "deployed_count": 100},
                "failures": [{"round": 0, "kind": "targeted_cells", "cells": [[9, 9]]}],
            },
            "outside the 4x4 grid",
        )

    def test_failure_beyond_round_bound_never_fires(self):
        self.check(
            {
                "name": "x",
                "run": {"max_rounds": 10},
                "failures": [
                    {"round": 50, "kind": "targeted_cells", "cells": [[0, 0]]}
                ],
            },
            "never fires",
        )

    def test_failure_beyond_default_engine_bound_never_fires(self):
        # With max_rounds omitted the engine bounds the run at 4 * cell_count
        # rounds; an event past that would silently never fire either.
        self.check(
            {
                "name": "x",
                "scenario": {"columns": 4, "rows": 4, "deployed_count": 100},
                "failures": [
                    {"round": 64, "kind": "targeted_cells", "cells": [[0, 0]]}
                ],
            },
            "engine's default bound",
        )

    def test_boolean_numbers_are_rejected(self):
        self.check(
            {
                "name": "x",
                "failures": [
                    {
                        "round": 0,
                        "kind": "region_jamming",
                        "center": [1.0, 1.0],
                        "radius": True,
                    }
                ],
            },
            "'radius' must be a number",
        )
        self.check(
            {
                "name": "x",
                "failures": [
                    {"round": 0, "kind": "battery_depletion", "threshold": True}
                ],
            },
            "'threshold' must be a number",
        )

    def test_exhaustion_requires_idle_drain(self):
        self.check(
            {"name": "x", "run": {"run_to_exhaustion": True}},
            "positive idle_cost_per_round",
        )

    def test_bad_scenario_value_is_wrapped_with_context(self):
        self.check(
            {"name": "x", "scenario": {"columns": 0}},
            "scenario: grid dimensions must be positive",
        )

    def test_unsupported_format_version(self):
        self.check({"format": 99, "name": "x"}, "unsupported scenario format")

    def test_invalid_toml_text(self):
        with pytest.raises(ScenarioValidationError, match="invalid TOML"):
            loads_scenario("name = ", format="toml")

    def test_invalid_json_text(self):
        with pytest.raises(ScenarioValidationError, match="invalid JSON"):
            loads_scenario("{", format="json")

    def test_name_is_required(self):
        self.check({}, "name")


class TestEngineTable:
    """The optional ``[engine]`` table: execution options outside run identity."""

    def check(self, payload, fragment):
        with pytest.raises(ScenarioValidationError) as excinfo:
            scenario_from_dict(payload)
        assert fragment in str(excinfo.value)

    @pytest.mark.parametrize("format", ["toml", "json"])
    def test_engine_table_round_trips_byte_stable(self, format):
        scenario = sample_scenario(shards=4, shard_mode="inline")
        text = dumps_scenario(scenario, format=format)
        reloaded = loads_scenario(text, format=format)
        assert reloaded == scenario
        assert (reloaded.shards, reloaded.shard_mode) == (4, "inline")
        assert dumps_scenario(reloaded, format=format) == text

    def test_default_scenario_emits_no_engine_table(self):
        text = dumps_scenario(sample_scenario())
        assert "[engine]" not in text
        assert "engine" not in scenario_to_dict(sample_scenario())

    def test_non_default_scenario_emits_engine_table(self):
        assert "[engine]" in dumps_scenario(sample_scenario(shards=2))

    def test_engine_must_be_a_table(self):
        self.check({"name": "x", "engine": 4}, "engine")

    def test_unknown_engine_key(self):
        self.check({"name": "x", "engine": {"bogus": 1}}, "engine: unknown key(s)")

    def test_shards_type_and_range_checks(self):
        self.check({"name": "x", "engine": {"shards": "4"}}, "engine.shards")
        self.check({"name": "x", "engine": {"shards": True}}, "engine.shards")
        self.check({"name": "x", "engine": {"shards": 0}}, "engine.shards")

    def test_shard_mode_checks(self):
        self.check({"name": "x", "engine": {"shard_mode": 7}}, "engine.shard_mode")
        self.check({"name": "x", "engine": {"shard_mode": "threads"}}, "engine.shard_mode")

    def test_run_specs_carry_shards_without_changing_identity(self):
        sharded = sample_scenario(shards=4, shard_mode="inline")
        specs = sharded.run_specs()
        assert all(spec.shards == 4 and spec.shard_mode == "inline" for spec in specs)
        # Execution options never enter spec identity: the sharded scenario's
        # specs are equal to the unsharded ones and share cache keys.
        plain = sample_scenario().run_specs()
        assert specs == plain
        assert [run_key(s) for s in specs] == [run_key(s) for s in plain]


class TestCompilation:
    def test_run_specs_match_hand_built_specs(self):
        scenario = sample_scenario()
        expected = [
            RunSpec(
                scenario=scenario.scenario,
                scheme=scheme,
                seed=scenario.scenario.seed,
                max_rounds=scenario.max_rounds,
                failures=scenario.failures,
            )
            for scheme in scenario.schemes
        ]
        assert scenario.run_specs() == expected

    def test_trials_spawn_independent_seeds(self):
        scenario = sample_scenario(trials=3, failures=(), max_rounds=None)
        specs = scenario.run_specs()
        seeds = spawn_seeds(scenario.scenario.seed, 3, label="scenario")
        assert [spec.seed for spec in specs] == [
            seed for seed in seeds for _ in scenario.schemes
        ]
        assert all(spec.scenario.seed == spec.seed for spec in specs)

    def test_scenario_file_and_programmatic_runs_share_cache_entries(self, tmp_path):
        scenario = sample_scenario(max_rounds=60)
        cache = RunCache(tmp_path / "cache")
        first = execute_many(scenario.run_specs(), executor=SerialExecutor(), cache=cache)
        assert cache.misses == len(first) and cache.hits == 0

        programmatic = [
            RunSpec(
                scenario=scenario.scenario,
                scheme=scheme,
                seed=scenario.scenario.seed,
                max_rounds=60,
                failures=scenario.failures,
            )
            for scheme in scenario.schemes
        ]
        executor = SerialExecutor()
        second = execute_many(programmatic, executor=executor, cache=cache)
        assert executor.runs_executed == 0
        assert all(record.cached for record in second)

    def test_scheduled_failures_reach_the_engine(self):
        scenario = sample_scenario(max_rounds=80)
        [spec] = [s for s in scenario.run_specs() if s.scheme == "SR"]
        record = execute_run(spec)
        # The two scheduled events must have disabled nodes mid-run: the
        # run ends with more disabled nodes than the thinning left behind.
        assert record.metrics.total_moves > 0
        assert record.metrics.final_holes == 0

    def test_smoke_variant_caps_trials_and_rounds(self):
        scenario = sample_scenario(trials=5, max_rounds=5000)
        smoke = scenario.smoke_variant()
        assert smoke.trials == 1
        assert smoke.max_rounds <= 60
        # Smoke never caps below the last scheduled failure round.
        late = sample_scenario(
            max_rounds=5000,
            failures=(
                FailureEvent.with_params(100, "targeted_cells", cells=[[1, 1]]),
            ),
        )
        assert late.smoke_variant().max_rounds > 100


class TestFailureEvents:
    def test_params_freeze_and_event_hashability(self):
        event = FailureEvent.with_params(0, "targeted_cells", cells=[[1, 1], [0, 2]])
        assert isinstance(hash(event), int)
        assert event.params == freeze_params({"cells": [[1, 1], [0, 2]]})

    def test_eager_validation(self):
        with pytest.raises(ValueError, match="non-empty list"):
            FailureEvent.with_params(0, "targeted_cells", cells=[])
        with pytest.raises(ValueError, match="must be non-negative"):
            FailureEvent.with_params(-1, "targeted_cells", cells=[[0, 0]])

    def test_build_failure_model_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown failure kind"):
            build_failure_model("wat", {})

    def test_reason_parameter_resolves_node_state(self):
        model = build_failure_model(
            "targeted_cells", {"cells": ((0, 0),), "reason": "depleted"}
        )
        assert isinstance(model, TargetedCellFailure)
        assert model.reason.value == "depleted"

    def test_same_round_events_compose(self):
        schedule = compile_failure_schedule(
            [
                FailureEvent.with_params(2, "targeted_cells", cells=[[0, 0]]),
                FailureEvent.with_params(2, "random", count=1),
                FailureEvent.with_params(5, "battery_depletion"),
            ]
        )
        assert set(schedule) == {2, 5}
        assert isinstance(schedule[2], CompositeFailure)
        assert len(schedule[2].models) == 2


class TestSpecPersistence:
    def test_spec_with_failures_round_trips_through_json_form(self):
        scenario = sample_scenario()
        for spec in scenario.run_specs():
            assert spec_from_dict(spec_to_dict(spec)) == spec

    def test_failures_change_the_cache_key(self):
        scenario = sample_scenario()
        spec = scenario.run_specs()[0]
        bare = dataclasses.replace(spec, failures=())
        assert run_key(spec) != run_key(bare)
