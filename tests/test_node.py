"""Unit tests for the sensor node model."""

import pytest

from repro.grid.geometry import Point
from repro.network.node import (
    DEFAULT_BATTERY_CAPACITY,
    MESSAGE_COST,
    MOVE_COST_PER_METER,
    NodeRole,
    NodeState,
    SensorNode,
    enabled_only,
    find_node,
)


def make_node(node_id: int = 0, x: float = 0.0, y: float = 0.0) -> SensorNode:
    return SensorNode(node_id=node_id, position=Point(x, y))


class TestLifecycle:
    def test_new_node_is_enabled_and_unassigned(self):
        node = make_node()
        assert node.is_enabled
        assert node.role is NodeRole.UNASSIGNED
        assert not node.is_head
        assert not node.is_spare
        assert node.energy == DEFAULT_BATTERY_CAPACITY

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            SensorNode(node_id=-1, position=Point(0, 0))
        with pytest.raises(ValueError):
            SensorNode(node_id=0, position=Point(0, 0), energy=-5)

    def test_disable_removes_from_collaboration(self):
        node = make_node()
        node.role = NodeRole.HEAD
        node.disable(NodeState.MISBEHAVING)
        assert not node.is_enabled
        assert node.state is NodeState.MISBEHAVING
        assert node.role is NodeRole.UNASSIGNED

    def test_disable_requires_non_enabled_reason(self):
        with pytest.raises(ValueError):
            make_node().disable(NodeState.ENABLED)

    def test_enable_after_failure(self):
        node = make_node()
        node.disable()
        node.enable()
        assert node.is_enabled
        assert node.role is NodeRole.UNASSIGNED

    def test_role_predicates(self):
        node = make_node()
        node.role = NodeRole.HEAD
        assert node.is_head and not node.is_spare
        node.role = NodeRole.SPARE
        assert node.is_spare and not node.is_head
        node.disable()
        assert not node.is_head and not node.is_spare


class TestMovement:
    def test_relocate_updates_position_and_accounting(self):
        node = make_node()
        distance = node.relocate(Point(3, 4))
        assert distance == pytest.approx(5.0)
        assert node.position == Point(3, 4)
        assert node.moved_distance == pytest.approx(5.0)
        assert node.move_count == 1

    def test_relocate_accumulates(self):
        node = make_node()
        node.relocate(Point(1, 0))
        node.relocate(Point(1, 2))
        assert node.moved_distance == pytest.approx(3.0)
        assert node.move_count == 2

    def test_relocate_consumes_energy(self):
        node = make_node()
        node.relocate(Point(0, 10))
        assert node.energy == pytest.approx(
            DEFAULT_BATTERY_CAPACITY - 10 * MOVE_COST_PER_METER
        )

    def test_disabled_node_cannot_move(self):
        node = make_node()
        node.disable()
        with pytest.raises(RuntimeError):
            node.relocate(Point(1, 1))

    def test_depleted_node_cannot_move(self):
        # Regression: a node clamped to an empty battery used to keep moving
        # forever; depletion must refuse relocation like a disabled node does.
        node = make_node()
        node.consume_energy(node.energy)
        assert node.is_battery_depleted
        with pytest.raises(RuntimeError):
            node.relocate(Point(1, 1))
        assert node.move_count == 0

    def test_relocate_honours_custom_move_cost(self):
        node = make_node()
        node.relocate(Point(0, 10), cost_per_meter=2.5)
        assert node.energy == pytest.approx(DEFAULT_BATTERY_CAPACITY - 25.0)

    def test_position_history_optional(self):
        node = make_node()
        node.relocate(Point(1, 1))
        assert node.position_history == []
        node.relocate(Point(2, 2), record_history=True)
        assert node.position_history == [Point(1, 1)]


class TestEnergy:
    def test_consume_clamps_at_zero(self):
        node = make_node()
        node.consume_energy(DEFAULT_BATTERY_CAPACITY * 2)
        assert node.energy == 0.0
        assert node.is_battery_depleted

    def test_consume_rejects_negative(self):
        with pytest.raises(ValueError):
            make_node().consume_energy(-1)

    def test_message_cost(self):
        node = make_node()
        node.charge_message_cost(3)
        assert node.energy == pytest.approx(DEFAULT_BATTERY_CAPACITY - 3 * MESSAGE_COST)

    def test_initial_energy_defaults_to_starting_energy(self):
        node = make_node()
        assert node.initial_energy == pytest.approx(DEFAULT_BATTERY_CAPACITY)
        node.consume_energy(7.0)
        assert node.consumed_energy == pytest.approx(7.0)

    def test_reset_energy_installs_fresh_battery(self):
        node = make_node()
        node.consume_energy(30.0)
        node.reset_energy(12.0)
        assert node.energy == pytest.approx(12.0)
        assert node.initial_energy == pytest.approx(12.0)
        assert node.consumed_energy == pytest.approx(0.0)
        with pytest.raises(ValueError):
            node.reset_energy(-1.0)

    def test_copy_preserves_initial_energy(self):
        node = make_node()
        node.reset_energy(42.0)
        node.consume_energy(2.0)
        twin = node.copy()
        assert twin.initial_energy == pytest.approx(42.0)
        assert twin.consumed_energy == pytest.approx(2.0)


class TestHelpers:
    def test_enabled_only(self):
        nodes = [make_node(0), make_node(1), make_node(2)]
        nodes[1].disable()
        assert [n.node_id for n in enabled_only(nodes)] == [0, 2]

    def test_find_node(self):
        nodes = [make_node(3), make_node(7)]
        assert find_node(nodes, 7) is nodes[1]
        assert find_node(nodes, 99) is None
