"""Unit-disk radio model and neighbour discovery.

All nodes share the same communication range ``R`` (Section 2).  Two nodes
within range are neighbours and directly connected; the paper's overlay needs
``R = sqrt(5) * r`` so that a grid head can reach every node in the four
neighbouring cells.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

import numpy as np

from repro.grid.geometry import Point
from repro.grid.virtual_grid import GAF_RANGE_FACTOR, cell_side_for_range
from repro.network.node import SensorNode


@dataclass(frozen=True)
class UnitDiskRadio:
    """A symmetric unit-disk radio with communication range ``R`` (metres)."""

    communication_range: float

    def __post_init__(self) -> None:
        if self.communication_range <= 0:
            raise ValueError(
                f"communication_range must be positive, got {self.communication_range}"
            )

    @property
    def gaf_cell_size(self) -> float:
        """Cell side ``r = R / sqrt(5)`` that this radio supports."""
        return cell_side_for_range(self.communication_range)

    def supports_cell_size(self, cell_size: float) -> bool:
        """Whether ``R >= sqrt(5) * r`` holds for the given cell side."""
        return self.communication_range + 1e-12 >= GAF_RANGE_FACTOR * cell_size

    def in_range(self, a: Point, b: Point) -> bool:
        """Whether two positions can communicate directly."""
        return a.distance_to(b) <= self.communication_range + 1e-12

    def neighbours_of(
        self, node: SensorNode, nodes: Iterable[SensorNode]
    ) -> List[SensorNode]:
        """Enabled nodes within range of ``node`` (excluding itself)."""
        return [
            other
            for other in nodes
            if other.node_id != node.node_id
            and other.is_enabled
            and self.in_range(node.position, other.position)
        ]

    def adjacency(
        self, nodes: Sequence[SensorNode]
    ) -> Dict[int, List[int]]:
        """Adjacency lists (by node id, ascending) over the enabled nodes.

        Nodes are hashed into square buckets of side ``R``, so two nodes in
        range always fall into the same or an adjacent bucket.  Distances are
        then computed vectorised per bucket pair, which keeps both time and
        memory proportional to the number of *local* pairs instead of the
        dense ``N x N`` matrix — 50k-node deployments stay tractable.
        """
        enabled = [n for n in nodes if n.is_enabled]
        if not enabled:
            return {}
        ids = np.array([n.node_id for n in enabled])
        xs = np.array([n.position.x for n in enabled])
        ys = np.array([n.position.y for n in enabled])
        inverse = 1.0 / self.communication_range
        bucket_x = np.floor(xs * inverse).astype(np.int64)
        bucket_y = np.floor(ys * inverse).astype(np.int64)
        buckets: Dict[Tuple[int, int], List[int]] = {}
        for index, key in enumerate(zip(bucket_x.tolist(), bucket_y.tolist())):
            buckets.setdefault(key, []).append(index)

        limit_sq = self.communication_range * self.communication_range + 1e-9
        adjacency: Dict[int, List[int]] = {node_id: [] for node_id in ids.tolist()}

        def link(indices_a: np.ndarray, indices_b: np.ndarray) -> None:
            """Record the bidirectional link for each paired node index."""
            for i, j in zip(indices_a.tolist(), indices_b.tolist()):
                adjacency[ids[i]].append(int(ids[j]))
                adjacency[ids[j]].append(int(ids[i]))

        # Each unordered bucket pair is visited once: the bucket itself plus
        # four "forward" neighbours; the remaining four directions are covered
        # when the neighbouring bucket takes its turn.
        forward_offsets = ((1, 0), (0, 1), (1, 1), (1, -1))
        for (cell_x, cell_y), members in buckets.items():
            local = np.array(members)
            # Pairs within the bucket (i < j once; link() adds both directions).
            if len(members) > 1:
                diff_x = xs[local][:, None] - xs[local][None, :]
                diff_y = ys[local][:, None] - ys[local][None, :]
                close = diff_x * diff_x + diff_y * diff_y <= limit_sq
                rows, cols = np.nonzero(np.triu(close, k=1))
                link(local[rows], local[cols])
            for offset_x, offset_y in forward_offsets:
                other = buckets.get((cell_x + offset_x, cell_y + offset_y))
                if not other:
                    continue
                remote = np.array(other)
                diff_x = xs[local][:, None] - xs[remote][None, :]
                diff_y = ys[local][:, None] - ys[remote][None, :]
                close = diff_x * diff_x + diff_y * diff_y <= limit_sq
                rows, cols = np.nonzero(close)
                link(local[rows], remote[cols])
        for neighbours in adjacency.values():
            neighbours.sort()
        return adjacency

    def link_pairs(self, nodes: Sequence[SensorNode]) -> List[Tuple[int, int]]:
        """Undirected communication links among enabled nodes as ``(id_a, id_b)`` pairs."""
        adjacency = self.adjacency(nodes)
        pairs = []
        for a, neighbours in adjacency.items():
            for b in neighbours:
                if a < b:
                    pairs.append((a, b))
        return pairs
