"""Result persistence: content-addressed run caching over pluggable backends.

The figure scripts (6, 7, 8) and the extension benchmarks all consume the same
sweep; before this module existed each of them re-simulated every cell.  A
:class:`RunCache` stores one JSON document per executed
:class:`~repro.experiments.orchestration.RunSpec`, addressed by a SHA-256 over
the spec's canonical JSON form, so any script that asks for an already
executed spec gets the stored :class:`~repro.experiments.orchestration.RunRecord`
back instead of a re-simulation.

Cache-soundness rests on two properties:

* ``execute_run`` is a pure function of its spec (see the determinism
  contract in :mod:`repro.experiments.orchestration`), so a stored record is
  exactly what a re-run would produce;
* the key covers *every* field of the spec (scenario knobs included), so any
  change to the scenario, scheme, seed, or engine bounds produces a new key.

``CACHE_FORMAT_VERSION`` is folded into the key; bump it whenever the record
schema or the simulation semantics change, and every old entry silently
becomes a miss instead of serving stale physics.

Storage is a :class:`CacheBackend` behind the :class:`RunCache` facade:

* :class:`JsonDirBackend` — the original one-``<run_key>.json``-file-per-record
  directory.  Documents are byte-identical to what earlier revisions wrote,
  so caches populated before the backend split still hit.
* :class:`SqliteBackend` — a single WAL-mode sqlite database holding the same
  documents in one table keyed by ``run_key``; the right choice when many
  broker workers (or the ``repro serve`` service) hammer one shared store.

Both backends store the *same* canonical document text, so a record read
back from either is byte-identical; serialization, validation, and hit/miss
accounting (:class:`CacheStats`) live in the facade, never in a backend.
"""

from __future__ import annotations

import contextlib
import dataclasses
import hashlib
import json
import os
import sqlite3
import tempfile
import threading
from abc import ABC, abstractmethod
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Union

from repro.experiments.orchestration import RunRecord, RunSpec
from repro.experiments.registry import factory_identity
from repro.network.channel import channel_from_dict, channel_to_dict
from repro.network.energy import EnergyModel, EnergySummary
from repro.network.failures import FailureEvent, freeze_params, thaw_params
from repro.sim.metrics import RunMetrics
from repro.sim.scenario import ScenarioConfig

#: Bump on any change to the stored schema or to simulation semantics.
#: v2: energy-aware engine — specs carry an optional EnergyModel and the
#: run-to-exhaustion flag, records carry exhausted/energy_series, metrics
#: carry an EnergySummary, and bound-hit runs with holes now report stalled.
#: v3: declarative failure schedules — specs carry a tuple of FailureEvents
#: applied by the engine at the start of their round.
#: v4: pluggable control channels — specs carry an optional ChannelModel,
#: control messages are real channel traffic debited by the engine, and
#: metrics carry messages_dropped / mean_delivery_latency.
#: v5: auditable message ledger — metrics carry messages_delivered and
#: messages_in_flight so stored records satisfy the conservation invariant
#: sent == delivered + dropped + in_flight checked by the differential
#: harness's oracles.
CACHE_FORMAT_VERSION = 5


# ------------------------------------------------------------- serialization
def spec_to_dict(spec: RunSpec) -> Dict[str, object]:
    """Canonical JSON-compatible form of a spec (stable across processes)."""
    return {
        "format_version": CACHE_FORMAT_VERSION,
        "scenario": dataclasses.asdict(spec.scenario),
        "scheme": spec.scheme,
        "seed": spec.seed,
        "max_rounds": spec.max_rounds,
        "idle_round_limit": spec.idle_round_limit,
        "energy": dataclasses.asdict(spec.energy) if spec.energy is not None else None,
        "run_to_exhaustion": spec.run_to_exhaustion,
        "failures": [
            {
                "round": event.round,
                "kind": event.kind,
                "params": dict(thaw_params(event.params)),
            }
            for event in spec.failures
        ],
        "channel": channel_to_dict(spec.channel),
    }


def spec_from_dict(payload: Dict[str, object]) -> RunSpec:
    """Inverse of :func:`spec_to_dict`."""
    energy = payload["energy"]
    return RunSpec(
        scenario=ScenarioConfig(**payload["scenario"]),
        scheme=payload["scheme"],
        seed=payload["seed"],
        max_rounds=payload["max_rounds"],
        idle_round_limit=payload["idle_round_limit"],
        energy=EnergyModel(**energy) if energy is not None else None,
        run_to_exhaustion=payload["run_to_exhaustion"],
        failures=tuple(
            FailureEvent(
                round=entry["round"],
                kind=entry["kind"],
                params=freeze_params(entry["params"]),
            )
            for entry in payload.get("failures", ())
        ),
        channel=channel_from_dict(payload.get("channel")),
    )


def record_to_dict(record: RunRecord) -> Dict[str, object]:
    """JSON-compatible form of a record (``cached`` is execution metadata, not stored)."""
    return {
        "format_version": CACHE_FORMAT_VERSION,
        "spec": spec_to_dict(record.spec),
        "metrics": dataclasses.asdict(record.metrics),
        "rounds_executed": record.rounds_executed,
        "stalled": record.stalled,
        "exhausted": record.exhausted,
        "energy_series": list(record.energy_series),
    }


def record_from_dict(payload: Dict[str, object]) -> RunRecord:
    """Inverse of :func:`record_to_dict`."""
    metrics_payload = dict(payload["metrics"])
    energy = metrics_payload.get("energy")
    if energy is not None:
        metrics_payload["energy"] = EnergySummary(**energy)
    return RunRecord(
        spec=spec_from_dict(payload["spec"]),
        metrics=RunMetrics(**metrics_payload),
        rounds_executed=payload["rounds_executed"],
        stalled=payload["stalled"],
        exhausted=payload["exhausted"],
        energy_series=tuple(payload["energy_series"]),
    )


def run_key(spec: RunSpec) -> str:
    """Content hash of a spec — the cache address of its record.

    Besides the spec fields, the key covers the *identity* of the factory
    currently registered under the spec's scheme name: shadowing a scheme
    with ``register_scheme(..., replace=True)`` must not serve records that
    were simulated by the previous implementation.
    """
    payload = spec_to_dict(spec)
    try:
        payload["scheme_impl"] = factory_identity(spec.scheme)
    except KeyError:
        # Unregistered scheme: the key is still well-defined; execution will
        # fail later with the registry's own error.
        pass
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


# --------------------------------------------------------------------- stats
@dataclasses.dataclass(frozen=True)
class CacheStatsSnapshot:
    """Point-in-time view of a cache's hit/miss counters.

    Attributes
    ----------
    hits, misses:
        Lookups answered from the store / lookups that fell through to a
        (re-)simulation since the counters were created or reset.
    """

    hits: int
    misses: int

    @property
    def lookups(self) -> int:
        """Total lookups the snapshot covers."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups answered from the store (0.0 when none yet)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> Dict[str, object]:
        """JSON-compatible form (used by ``repro serve`` ``/stats``)."""
        return {"hits": self.hits, "misses": self.misses, "hit_rate": self.hit_rate}


class CacheStats:
    """Thread-safe hit/miss accounting shared by every consumer of one cache.

    The broker's worker threads, ``execute_many`` batches, and the serve
    handlers all record into the same instance; a lock (not bare mutable
    ints) keeps the totals exact under that concurrency, and
    :meth:`snapshot` hands out a consistent frozen view.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0

    def record_hit(self) -> None:
        """Count one lookup answered from the store."""
        with self._lock:
            self._hits += 1

    def record_miss(self) -> None:
        """Count one lookup that fell through to simulation."""
        with self._lock:
            self._misses += 1

    def snapshot(self) -> CacheStatsSnapshot:
        """A consistent frozen view of the counters (hits and misses paired)."""
        with self._lock:
            return CacheStatsSnapshot(hits=self._hits, misses=self._misses)


# ------------------------------------------------------------------ backends
class CacheBackend(ABC):
    """Storage strategy of a :class:`RunCache`: raw documents keyed by ``run_key``.

    A backend stores and retrieves opaque document *text*; serialization,
    schema validation, and hit/miss accounting belong to the facade.  All
    methods must be safe to call from multiple threads and processes at
    once: a concurrent reader sees either a complete document or nothing,
    never a torn write.
    """

    #: Short name used by ``--cache-backend`` and reporting.
    kind: str = "abstract"

    @abstractmethod
    def load(self, key: str) -> Optional[str]:
        """The stored document for ``key``, or ``None`` when absent."""

    @abstractmethod
    def store(self, key: str, document: str) -> Path:
        """Persist ``document`` under ``key`` (atomically); returns the storage path."""

    @abstractmethod
    def contains(self, key: str) -> bool:
        """Whether a document is stored under ``key``."""

    @abstractmethod
    def count(self) -> int:
        """Number of stored documents."""

    @abstractmethod
    def clear(self) -> int:
        """Delete every stored document; returns how many were removed."""

    @abstractmethod
    def iter_keys(self) -> Iterator[str]:
        """Iterate over the keys of every stored document."""

    # ------------------------------------------------------------ batch ops
    def get_many(self, keys: Sequence[str]) -> Dict[str, str]:
        """Documents for every stored key in ``keys`` (absent keys omitted).

        The base implementation loops over :meth:`load`; backends with a
        cheaper bulk path (one sqlite ``SELECT ... IN``) override it.
        """
        documents: Dict[str, str] = {}
        for key in keys:
            document = self.load(key)
            if document is not None:
                documents[key] = document
        return documents

    def put_many(self, items: Dict[str, str]) -> None:
        """Persist every ``key -> document`` pair.

        The base implementation loops over :meth:`store` (each write is
        individually atomic); backends with real transactions override it to
        commit the whole batch as one — a sweep's records then land in a
        single sqlite transaction instead of per-record commits.
        """
        for key, document in items.items():
            self.store(key, document)


class JsonDirBackend(CacheBackend):
    """One ``<run_key>.json`` file per record in a flat directory.

    This is the original :class:`RunCache` layout, extracted unchanged: the
    documents it writes are byte-identical to what earlier revisions of this
    module produced, so caches populated before the backend split still hit.
    """

    kind = "json"

    def __init__(self, cache_dir: Union[str, Path]) -> None:
        self.cache_dir = Path(cache_dir)

    def path_for(self, key: str) -> Path:
        """The file a document for ``key`` is (or would be) stored at."""
        return self.cache_dir / f"{key}.json"

    def load(self, key: str) -> Optional[str]:
        """Read the document text, or ``None`` when the file is absent."""
        try:
            return self.path_for(key).read_text()
        except OSError:
            return None

    def store(self, key: str, document: str) -> Path:
        """Write the document atomically (tempfile + rename) and return its path.

        The temp file gets a writer-unique name so concurrent processes
        racing to store the same spec each publish a complete document (last
        full write wins — both wrote the same deterministic record anyway).
        """
        self.cache_dir.mkdir(parents=True, exist_ok=True)
        path = self.path_for(key)
        fd, tmp_name = tempfile.mkstemp(
            dir=self.cache_dir, prefix=path.stem, suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(document)
            os.replace(tmp_name, path)
        except BaseException:
            with contextlib.suppress(OSError):
                os.unlink(tmp_name)
            raise
        return path

    def contains(self, key: str) -> bool:
        """Whether the record file exists."""
        return self.path_for(key).exists()

    def count(self) -> int:
        """Number of ``.json`` record files in the directory."""
        if not self.cache_dir.exists():
            return 0
        return sum(1 for _ in self.cache_dir.glob("*.json"))

    def clear(self) -> int:
        """Delete every record file; returns how many were removed."""
        removed = 0
        if self.cache_dir.exists():
            for path in self.cache_dir.glob("*.json"):
                path.unlink()
                removed += 1
        return removed

    def iter_keys(self) -> Iterator[str]:
        """Yield the run key of every stored record file."""
        if not self.cache_dir.exists():
            return
        for path in self.cache_dir.glob("*.json"):
            yield path.stem


#: Bump on any change to the sqlite table layout (independent of the record
#: schema, which CACHE_FORMAT_VERSION covers inside each document).
SQLITE_SCHEMA_VERSION = 1

#: Default database filename when ``--cache-dir`` points at a directory.
SQLITE_DEFAULT_FILENAME = "runs.sqlite3"


class SqliteBackend(CacheBackend):
    """All records in one WAL-mode sqlite database, keyed by ``run_key``.

    Designed for many concurrent readers and writers sharing one store (the
    broker's worker threads, several ``repro`` processes, or the serve
    service): WAL mode lets readers proceed during a write, a busy timeout
    absorbs write contention, and every operation runs on its own
    short-lived connection so the backend is safe to share across threads
    and to fork across processes.  The table schema is versioned through
    ``PRAGMA user_version``; a database created by an incompatible revision
    is rejected loudly instead of being misread.
    """

    kind = "sqlite"

    def __init__(self, path: Union[str, Path]) -> None:
        path = Path(path)
        if path.is_dir() or path.suffix == "":
            path = path / SQLITE_DEFAULT_FILENAME
        self.path = path
        self._initialised = False
        self._init_lock = threading.Lock()

    def _connect(self) -> sqlite3.Connection:
        """A fresh connection with WAL journaling and a generous busy timeout."""
        connection = sqlite3.connect(str(self.path), timeout=30.0)
        connection.execute("PRAGMA journal_mode=WAL")
        connection.execute("PRAGMA synchronous=NORMAL")
        connection.execute("PRAGMA busy_timeout=30000")
        return connection

    def _ensure_schema(self, connection: sqlite3.Connection) -> None:
        """Create (or validate) the table; reject incompatible schema versions."""
        version = connection.execute("PRAGMA user_version").fetchone()[0]
        if version == 0:
            connection.execute(
                "CREATE TABLE IF NOT EXISTS run_records ("
                "run_key TEXT PRIMARY KEY, document TEXT NOT NULL)"
            )
            connection.execute(f"PRAGMA user_version = {SQLITE_SCHEMA_VERSION}")
            connection.commit()
        elif version != SQLITE_SCHEMA_VERSION:
            raise ValueError(
                f"cache database {self.path} has schema version {version}, "
                f"this build expects {SQLITE_SCHEMA_VERSION}"
            )

    @contextlib.contextmanager
    def _session(self, write: bool = False) -> Iterator[sqlite3.Connection]:
        """Per-operation connection, creating the database on first write."""
        if write:
            self.path.parent.mkdir(parents=True, exist_ok=True)
        elif not self.path.exists():
            # No database yet: nothing to read and nothing to create.
            yield None
            return
        connection = self._connect()
        try:
            if not self._initialised:
                with self._init_lock:
                    self._ensure_schema(connection)
                    self._initialised = True
            yield connection
        finally:
            connection.close()

    def load(self, key: str) -> Optional[str]:
        """Read the stored document text, or ``None`` when absent."""
        with self._session() as connection:
            if connection is None:
                return None
            row = connection.execute(
                "SELECT document FROM run_records WHERE run_key = ?", (key,)
            ).fetchone()
        return row[0] if row is not None else None

    def store(self, key: str, document: str) -> Path:
        """Upsert the document in one transaction and return the database path."""
        with self._session(write=True) as connection:
            connection.execute(
                "INSERT INTO run_records (run_key, document) VALUES (?, ?) "
                "ON CONFLICT(run_key) DO UPDATE SET document = excluded.document",
                (key, document),
            )
            connection.commit()
        return self.path

    def contains(self, key: str) -> bool:
        """Whether a row is stored under ``key``."""
        with self._session() as connection:
            if connection is None:
                return False
            row = connection.execute(
                "SELECT 1 FROM run_records WHERE run_key = ?", (key,)
            ).fetchone()
        return row is not None

    def count(self) -> int:
        """Number of stored rows."""
        with self._session() as connection:
            if connection is None:
                return 0
            return connection.execute("SELECT COUNT(*) FROM run_records").fetchone()[0]

    def clear(self) -> int:
        """Delete every row; returns how many were removed."""
        with self._session() as connection:
            if connection is None:
                return 0
            removed = connection.execute(
                "SELECT COUNT(*) FROM run_records"
            ).fetchone()[0]
            connection.execute("DELETE FROM run_records")
            connection.commit()
        return removed

    def iter_keys(self) -> Iterator[str]:
        """Yield the run key of every stored row."""
        with self._session() as connection:
            if connection is None:
                return
            rows = connection.execute(
                "SELECT run_key FROM run_records ORDER BY run_key"
            ).fetchall()
        for (key,) in rows:
            yield key

    # ------------------------------------------------------------ batch ops
    #: Keys per ``IN (...)`` clause; comfortably below sqlite's historical
    #: 999-host-parameter limit.
    _SELECT_CHUNK = 500

    def get_many(self, keys: Sequence[str]) -> Dict[str, str]:
        """Bulk load on one connection: chunked ``SELECT ... WHERE key IN``."""
        keys = list(keys)
        documents: Dict[str, str] = {}
        if not keys:
            return documents
        with self._session() as connection:
            if connection is None:
                return documents
            for start in range(0, len(keys), self._SELECT_CHUNK):
                chunk = keys[start : start + self._SELECT_CHUNK]
                placeholders = ",".join("?" * len(chunk))
                rows = connection.execute(
                    "SELECT run_key, document FROM run_records "
                    f"WHERE run_key IN ({placeholders})",
                    chunk,
                ).fetchall()
                documents.update(rows)
        return documents

    def put_many(self, items: Dict[str, str]) -> None:
        """Upsert every pair in ONE transaction (all-or-nothing commit)."""
        if not items:
            return
        with self._session(write=True) as connection:
            connection.executemany(
                "INSERT INTO run_records (run_key, document) VALUES (?, ?) "
                "ON CONFLICT(run_key) DO UPDATE SET document = excluded.document",
                list(items.items()),
            )
            connection.commit()


#: Backend kinds accepted by ``--cache-backend`` / :func:`make_cache`.
CACHE_BACKENDS = ("json", "sqlite")


def make_cache(
    cache_dir: Union[str, Path], backend: str = "json"
) -> "RunCache":
    """A :class:`RunCache` rooted at ``cache_dir`` using the named backend.

    ``"json"`` stores one file per record directly in ``cache_dir`` (the
    historical layout); ``"sqlite"`` stores every record in
    ``cache_dir/runs.sqlite3``.  Both layouts can coexist in one directory —
    they never collide — but they do not share entries.
    """
    if backend == "json":
        return RunCache(cache_dir)
    if backend == "sqlite":
        return RunCache(cache_dir, backend=SqliteBackend(Path(cache_dir)))
    raise ValueError(
        f"unknown cache backend {backend!r}; choose from {list(CACHE_BACKENDS)}"
    )


# --------------------------------------------------------------------- cache
class RunCache:
    """Facade over a :class:`CacheBackend`: typed records in, typed records out.

    Lookups that fail for any reason (missing document, corrupt JSON, schema
    drift, or a stored spec that does not round-trip to the requested one)
    are treated as misses, so a damaged cache degrades to re-simulation
    rather than wrong results.

    ``RunCache(directory)`` keeps the historical behaviour (a
    :class:`JsonDirBackend` on that directory); pass ``backend=`` to use a
    different store.  ``hits``/``misses`` remain readable attributes but are
    now backed by a thread-safe :class:`CacheStats` shared with the broker.
    """

    def __init__(
        self,
        cache_dir: Optional[Union[str, Path]] = None,
        backend: Optional[CacheBackend] = None,
    ) -> None:
        if backend is None:
            if cache_dir is None:
                raise ValueError("RunCache needs a cache_dir or an explicit backend")
            backend = JsonDirBackend(cache_dir)
        self.backend = backend
        if cache_dir is not None:
            self.cache_dir = Path(cache_dir)
        elif isinstance(backend, JsonDirBackend):
            self.cache_dir = backend.cache_dir
        else:
            self.cache_dir = Path(getattr(backend, "path", ".")).parent
        self.stats = CacheStats()

    @property
    def hits(self) -> int:
        """Lookups answered from the store (see :attr:`stats` for a snapshot)."""
        return self.stats.snapshot().hits

    @property
    def misses(self) -> int:
        """Lookups that fell through to simulation."""
        return self.stats.snapshot().misses

    def path_for(self, spec: RunSpec) -> Path:
        """Where the record for ``spec`` is (or would be) stored.

        For the JSON backend this is the record's own file; for sqlite every
        record shares the database file.
        """
        key = run_key(spec)
        if isinstance(self.backend, JsonDirBackend):
            return self.backend.path_for(key)
        return getattr(self.backend, "path", self.cache_dir)

    def get(self, spec: RunSpec) -> Optional[RunRecord]:
        """The stored record for ``spec``, or ``None`` on any kind of miss."""
        return self._decode(spec, self.backend.load(run_key(spec)))

    def put(self, record: RunRecord) -> Path:
        """Persist ``record`` (atomically) and return its storage path."""
        document = json.dumps(record_to_dict(record), sort_keys=True, indent=1)
        return self.backend.store(run_key(record.spec), document)

    def _decode(self, spec: RunSpec, document: Optional[str]) -> Optional[RunRecord]:
        """Validate one stored document against ``spec`` (``None`` on any miss)."""
        try:
            if document is None:
                raise ValueError("no stored document")
            payload = json.loads(document)
            if not isinstance(payload, dict):
                raise ValueError("cache entry is not a JSON object")
            if payload.get("format_version") != CACHE_FORMAT_VERSION:
                raise ValueError("cache format version mismatch")
            record = record_from_dict(payload)
            if record.spec != spec:
                raise ValueError("stored spec does not match requested spec")
        except (OSError, ValueError, KeyError, TypeError):
            self.stats.record_miss()
            return None
        self.stats.record_hit()
        return record

    def get_many(self, specs: Sequence[RunSpec]) -> List[Optional[RunRecord]]:
        """Stored records for ``specs`` in order (``None`` per miss).

        One bulk backend read instead of a lookup per spec; validation and
        hit/miss accounting are identical to :meth:`get`, so a damaged
        document still degrades to a per-spec miss.
        """
        specs = list(specs)
        keys = [run_key(spec) for spec in specs]
        documents = self.backend.get_many(list(dict.fromkeys(keys)))
        return [
            self._decode(spec, documents.get(key)) for spec, key in zip(specs, keys)
        ]

    def put_many(self, records: Sequence[RunRecord]) -> None:
        """Persist a batch of records in one backend transaction.

        Later duplicates of one spec overwrite earlier ones within the batch
        (they are byte-identical anyway — ``execute_run`` is deterministic).
        """
        items = {
            run_key(record.spec): json.dumps(
                record_to_dict(record), sort_keys=True, indent=1
            )
            for record in records
        }
        self.backend.put_many(items)

    def iter_keys(self) -> Iterator[str]:
        """Iterate over the run keys of every stored record."""
        return self.backend.iter_keys()

    def __contains__(self, spec: RunSpec) -> bool:
        return self.backend.contains(run_key(spec))

    def __len__(self) -> int:
        return self.backend.count()

    def clear(self) -> int:
        """Delete every stored record; returns how many were removed."""
        return self.backend.clear()
