"""Virtual grid substrate (GAF-style partition of the surveillance area).

The paper partitions the surveillance area into an ``n x m`` grid of square
``r x r`` cells (the virtual grid model of Xu & Heidemann, MOBICOM'01).  This
subpackage provides the planar geometry primitives, the grid partition, head
election, and coverage/connectivity evaluation used by the mobility-control
algorithms in :mod:`repro.core`.
"""

from repro.grid.geometry import BoundingBox, Point
from repro.grid.virtual_grid import GridCoord, VirtualGrid
from repro.grid.head_election import (
    HeadElectionPolicy,
    elect_head,
    highest_energy_policy,
    lowest_id_policy,
    nearest_to_center_policy,
)
from repro.grid.coverage import (
    cell_coverage_fraction,
    coverage_report,
    sampled_area_coverage,
)
from repro.grid.connectivity import (
    head_connectivity_graph,
    is_head_network_connected,
    node_connectivity_graph,
)

__all__ = [
    "BoundingBox",
    "Point",
    "GridCoord",
    "VirtualGrid",
    "HeadElectionPolicy",
    "elect_head",
    "lowest_id_policy",
    "highest_energy_policy",
    "nearest_to_center_policy",
    "cell_coverage_fraction",
    "sampled_area_coverage",
    "coverage_report",
    "head_connectivity_graph",
    "node_connectivity_graph",
    "is_head_network_connected",
]
