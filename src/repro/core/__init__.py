"""The paper's contribution: Hamilton-cycle-synchronised mobility control.

* :mod:`repro.core.hamilton` — construction of the directed Hamilton cycle
  over the virtual grid (serpentine construction for grids with an even side,
  dual-path construction of Section 4 for odd-by-odd grids).
* :mod:`repro.core.replacement` — the SR scheme: the snake-like cascading
  replacement of Algorithms 1 and 2.
* :mod:`repro.core.baseline_ar` — the AR baseline of [Jiang et al., WSNS'07]:
  the same cascading idea but initiated independently by every neighbouring
  head, without Hamilton-cycle synchronisation.
* :mod:`repro.core.analysis` — the analytical model (Theorem 2, Corollary 2,
  and the moving-distance estimates behind Figures 3 and 5).
* :mod:`repro.core.protocol` — controller interface plus the bookkeeping of
  replacement processes shared by all schemes.
"""

from repro.core.hamilton import (
    DualPathHamiltonCycle,
    HamiltonCycle,
    SerpentineHamiltonCycle,
    build_hamilton_cycle,
)
from repro.core.protocol import (
    MobilityController,
    ReplacementProcess,
    ProcessStatus,
    RoundOutcome,
)
from repro.core.replacement import HamiltonReplacementController
from repro.core.shortcut import ShortcutReplacementController
from repro.core.baseline_ar import LocalizedReplacementController
from repro.core.analysis import (
    expected_movements,
    expected_total_distance,
    movement_distribution,
    movements_series,
)

__all__ = [
    "HamiltonCycle",
    "SerpentineHamiltonCycle",
    "DualPathHamiltonCycle",
    "build_hamilton_cycle",
    "MobilityController",
    "ReplacementProcess",
    "ProcessStatus",
    "RoundOutcome",
    "HamiltonReplacementController",
    "ShortcutReplacementController",
    "LocalizedReplacementController",
    "expected_movements",
    "expected_total_distance",
    "movement_distribution",
    "movements_series",
]
