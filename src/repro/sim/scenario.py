"""Scenario configuration for the paper's experimental workload.

Section 5 of the paper builds its scenarios as follows: deploy a large number
of sensors uniformly at random over the surveillance area (5000 sensors,
communication range ``R = 10 m``, so the virtual grid uses
``4.4721 m x 4.4721 m`` cells and a ``16 x 16`` grid system), then randomly
disable nodes "and create the holes"; the x-axis of every figure is ``N``,
the number of spare nodes left in the network beyond one head per cell, i.e.
``N = enabled - m*n``.  :class:`ScenarioConfig` captures exactly those knobs
plus the ones needed by the extension examples.
"""

from __future__ import annotations

import dataclasses
import random
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.grid.head_election import (
    HeadElectionPolicy,
    highest_energy_policy,
    lowest_id_policy,
    nearest_to_center_policy,
)
from repro.grid.virtual_grid import VirtualGrid, cell_side_for_range
from repro.network.deployment import deploy_per_cell, deploy_uniform
from repro.network.failures import ThinningToEnabledCount
from repro.network.state import WsnState
from repro.sim.rng import derive_rng

#: Named head-election policies selectable from a scenario config.
HEAD_POLICIES = {
    "lowest_id": lowest_id_policy,
    "highest_energy": highest_energy_policy,
    "nearest_to_center": nearest_to_center_policy,
}


@dataclass(frozen=True)
class ScenarioConfig:
    """Parameters of one simulated deployment.

    Attributes
    ----------
    columns, rows:
        Virtual-grid dimensions (``n x m``); the paper uses ``16 x 16``.
    communication_range:
        Radio range ``R`` in metres; the cell side is ``r = R / sqrt(5)``.
    deployed_count:
        Number of sensors deployed before any failures (paper: 5000).
    spare_surplus:
        The paper's ``N``: nodes are disabled at random until exactly
        ``columns * rows + N`` enabled nodes remain.  ``None`` disables the
        thinning step (all deployed nodes stay enabled).
    seed:
        Master seed; deployment, thinning, and controller randomness use
        independent streams derived from it.
    initial_energy:
        Battery capacity installed in every deployed node (joules).  ``None``
        keeps the node default
        (:data:`~repro.network.node.DEFAULT_BATTERY_CAPACITY`).
    initial_energy_jitter:
        Fraction in ``[0, 1)`` by which individual batteries fall below
        ``initial_energy`` (independent uniform draws from the scenario's
        ``"energy"`` stream).  Heterogeneous capacities stagger depletion,
        which is what makes lifetime workloads produce holes gradually
        instead of in one synchronized wave.
    head_policy:
        Name of the head-election policy (see :data:`HEAD_POLICIES`).
    deployment:
        ``"uniform"`` (the paper's workload) or ``"per_cell"`` (exactly
        ``deployed_count / cells`` nodes per cell; useful for tests).  A
        per-cell deployment requires ``deployed_count`` to be a positive
        multiple of the cell count — anything else cannot be honored exactly
        and is rejected instead of silently rounding.
    """

    columns: int = 16
    rows: int = 16
    communication_range: float = 10.0
    deployed_count: int = 5000
    spare_surplus: Optional[int] = None
    seed: int = 0
    initial_energy: Optional[float] = None
    initial_energy_jitter: float = 0.0
    head_policy: str = "lowest_id"
    deployment: str = "uniform"

    def __post_init__(self) -> None:
        if self.columns < 1 or self.rows < 1:
            raise ValueError("grid dimensions must be positive")
        if self.communication_range <= 0:
            raise ValueError("communication_range must be positive")
        if self.deployed_count < 0:
            raise ValueError("deployed_count must be non-negative")
        if self.spare_surplus is not None and self.spare_surplus < 0:
            raise ValueError("spare_surplus must be non-negative when given")
        if self.initial_energy is not None and self.initial_energy <= 0:
            raise ValueError("initial_energy must be positive when given")
        if not 0.0 <= self.initial_energy_jitter < 1.0:
            raise ValueError(
                f"initial_energy_jitter must be in [0, 1), got {self.initial_energy_jitter}"
            )
        if self.head_policy not in HEAD_POLICIES:
            raise ValueError(
                f"unknown head_policy {self.head_policy!r}; choose one of "
                f"{sorted(HEAD_POLICIES)}"
            )
        if self.deployment not in ("uniform", "per_cell"):
            raise ValueError(
                f"deployment must be 'uniform' or 'per_cell', got {self.deployment!r}"
            )
        if self.deployment == "per_cell":
            cells = self.columns * self.rows
            if self.deployed_count == 0 or self.deployed_count % cells != 0:
                raise ValueError(
                    "per_cell deployment requires deployed_count to be a "
                    f"positive multiple of the cell count ({cells}); got "
                    f"{self.deployed_count}.  Use deployed_count = "
                    f"{cells} * k for k nodes per cell, or deployment='uniform'."
                )

    # ----------------------------------------------------------- derived view
    @property
    def cell_size(self) -> float:
        """Cell side ``r = R / sqrt(5)`` in metres."""
        return cell_side_for_range(self.communication_range)

    @property
    def cell_count(self) -> int:
        """Total number of virtual-grid cells (``columns * rows``)."""
        return self.columns * self.rows

    @property
    def target_enabled(self) -> Optional[int]:
        """Number of enabled nodes after thinning (``m*n + N``), if thinning is on."""
        if self.spare_surplus is None:
            return None
        return self.cell_count + self.spare_surplus

    @property
    def head_policy_fn(self) -> HeadElectionPolicy:
        """The head-election policy callable named by :attr:`head_policy`."""
        return HEAD_POLICIES[self.head_policy]

    def make_grid(self) -> VirtualGrid:
        """Construct the virtual grid this scenario deploys onto."""
        return VirtualGrid(self.columns, self.rows, self.cell_size)

    def with_spare_surplus(self, spare_surplus: int) -> "ScenarioConfig":
        """Copy of the config with a different ``N`` (used by parameter sweeps)."""
        return dataclasses.replace(self, spare_surplus=spare_surplus)

    def with_seed(self, seed: int) -> "ScenarioConfig":
        """Copy of the config with a different master seed (used for repeated trials)."""
        return dataclasses.replace(self, seed=seed)


def build_scenario_state(config: ScenarioConfig) -> WsnState:
    """Deploy, thin, and index a network according to ``config``.

    The returned :class:`~repro.network.state.WsnState` is ready for a
    controller: nodes are deployed, the requested number of nodes has been
    disabled, and heads are elected in every non-vacant cell.
    """
    grid = config.make_grid()
    deploy_rng = derive_rng(config.seed, "deployment")
    if config.deployment == "uniform":
        arrays = deploy_uniform(grid, config.deployed_count, deploy_rng, as_arrays=True)
    else:
        # __post_init__ guarantees deployed_count is a positive multiple of
        # the cell count, so this deploys exactly deployed_count nodes.
        arrays = deploy_per_cell(
            grid, config.deployed_count // config.cell_count, deploy_rng, as_arrays=True
        )
    state = WsnState(grid, arrays, head_policy=config.head_policy_fn)
    if config.target_enabled is not None:
        thinning = ThinningToEnabledCount(target_enabled=config.target_enabled)
        thinning.apply(state, derive_rng(config.seed, "thinning"))
    if config.initial_energy is not None:
        # Batched battery install: the per-node jitter draws happen in the
        # historical node order, the affine transform is vectorized, and the
        # result is written straight into the energy columns (matching the
        # per-node ``reset_energy`` calls bit-for-bit).
        energy_rng = derive_rng(config.seed, "energy")
        arrays = state.arrays
        if config.initial_energy_jitter:
            draws = np.asarray(
                [energy_rng.random() for _ in range(len(arrays))], dtype=np.float64
            )
            capacities = config.initial_energy * (
                1.0 - config.initial_energy_jitter * draws
            )
        else:
            capacities = np.full(len(arrays), config.initial_energy, dtype=np.float64)
        arrays.energy[:] = capacities
        arrays.initial_energy[:] = capacities
    return state
