"""Connectivity evaluation of the head overlay and of the whole network.

The GAF argument the paper builds on: with ``R = sqrt(5) * r``, a head can
talk to any node in the four neighbouring cells, so if *every* cell has a
head the head overlay is connected and relays traffic for the whole network.
These helpers build the corresponding communication graphs with networkx so
tests and examples can verify the connectivity claim before and after hole
recovery.
"""

from __future__ import annotations

from typing import Optional

import networkx as nx

from repro.network.radio import UnitDiskRadio


def node_connectivity_graph(state, radio: Optional[UnitDiskRadio] = None) -> nx.Graph:
    """Unit-disk communication graph over all enabled nodes.

    When ``radio`` is omitted, the minimum GAF-compatible range
    ``R = sqrt(5) * r`` for the state's grid is used.
    """
    if radio is None:
        radio = UnitDiskRadio(state.grid.required_communication_range)
    graph = nx.Graph()
    enabled = state.enabled_nodes()
    graph.add_nodes_from(node.node_id for node in enabled)
    graph.add_edges_from(radio.link_pairs(enabled))
    return graph


def head_connectivity_graph(state, radio: Optional[UnitDiskRadio] = None) -> nx.Graph:
    """Unit-disk communication graph restricted to the current grid heads."""
    if radio is None:
        radio = UnitDiskRadio(state.grid.required_communication_range)
    heads = state.head_nodes()
    graph = nx.Graph()
    graph.add_nodes_from(node.node_id for node in heads)
    graph.add_edges_from(radio.link_pairs(heads))
    return graph


def is_head_network_connected(state, radio: Optional[UnitDiskRadio] = None) -> bool:
    """Whether the head overlay forms a single connected component.

    An overlay with no heads at all (fully failed network) is reported as not
    connected; a single head is trivially connected.
    """
    graph = head_connectivity_graph(state, radio)
    if graph.number_of_nodes() == 0:
        return False
    return nx.is_connected(graph)


def is_node_network_connected(state, radio: Optional[UnitDiskRadio] = None) -> bool:
    """Whether all enabled nodes form a single connected component."""
    graph = node_connectivity_graph(state, radio)
    if graph.number_of_nodes() == 0:
        return False
    return nx.is_connected(graph)


def connected_component_count(state, radio: Optional[UnitDiskRadio] = None) -> int:
    """Number of connected components among enabled nodes."""
    graph = node_connectivity_graph(state, radio)
    if graph.number_of_nodes() == 0:
        return 0
    return nx.number_connected_components(graph)
