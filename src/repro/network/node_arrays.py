"""Struct-of-arrays backing store for the deployed node population.

:class:`NodeArrays` holds the per-node fields of an entire deployment as
parallel numpy arrays — positions ``float64[N, 2]``, energy ``float64[N]``,
state/role ``int8[N]`` enum codes (see ``STATE_CODES`` / ``ROLE_CODES`` in
:mod:`repro.network.node`), the flat virtual-grid cell index ``int32[N]``,
and the move-accounting columns.  :class:`~repro.network.state.WsnState`
owns one instance per network and the vectorized hot paths (adjacency,
deployment, the per-round energy sweep, coverage) operate on these arrays
directly; :class:`~repro.network.node.SensorNode` handles bound to a row
provide the unchanged object API on top.

Row order is deployment order, so iterating rows reproduces the insertion
order the array-of-objects implementation used — a requirement for the
bit-for-bit seed-identity guarantee (sequential float summation and RNG
draws both depend on it).
"""

from __future__ import annotations

import struct
from typing import Dict, Iterator, Optional, Sequence, Tuple, Union

import numpy as np

from repro.network.node import (
    DEFAULT_BATTERY_CAPACITY,
    ROLE_CODES,
    STATE_CODES,
    NodeRole,
    NodeState,
    SensorNode,
)

#: int8 code of :attr:`NodeState.ENABLED` (the hot-path mask constant).
ENABLED_CODE = STATE_CODES[NodeState.ENABLED]
#: int8 code of :attr:`NodeRole.HEAD`.
HEAD_CODE = ROLE_CODES[NodeRole.HEAD]
#: int8 code of :attr:`NodeRole.SPARE`.
SPARE_CODE = ROLE_CODES[NodeRole.SPARE]
#: int8 code of :attr:`NodeRole.UNASSIGNED`.
UNASSIGNED_CODE = ROLE_CODES[NodeRole.UNASSIGNED]

#: Version of the :meth:`NodeArrays.to_bytes` buffer layout.  Bump whenever a
#: column is added, removed, or changes dtype — restore rejects foreign
#: versions loudly instead of misinterpreting raw buffers.
BUFFER_FORMAT_VERSION = 1

#: Column layout of a snapshot: name, dtype, and per-row element count, in
#: buffer order.  The layout is fully determined by the row count, so the
#: snapshot needs no per-column framing.
_COLUMN_LAYOUT: Tuple[Tuple[str, np.dtype, int], ...] = (
    ("node_ids", np.dtype(np.int64), 1),
    ("positions", np.dtype(np.float64), 2),
    ("energy", np.dtype(np.float64), 1),
    ("initial_energy", np.dtype(np.float64), 1),
    ("state", np.dtype(np.int8), 1),
    ("role", np.dtype(np.int8), 1),
    ("cell", np.dtype(np.int32), 1),
    ("moved_distance", np.dtype(np.float64), 1),
    ("move_count", np.dtype(np.int64), 1),
)

#: ``struct`` format of the snapshot header: layout version + row count.
_HEADER_FORMAT = "<II"
_HEADER_SIZE = struct.calcsize(_HEADER_FORMAT)


def snapshot_nbytes(count: int) -> int:
    """Exact byte size of a :meth:`NodeArrays.to_bytes` snapshot of ``count`` rows."""
    row_bytes = sum(dtype.itemsize * width for _, dtype, width in _COLUMN_LAYOUT)
    return _HEADER_SIZE + count * row_bytes


class NodeArrays:
    """Parallel per-node arrays (one row per deployed node).

    Attributes
    ----------
    node_ids:
        ``int64[N]`` unique node identifiers, in deployment order.
    positions:
        ``float64[N, 2]`` current (x, y) locations in metres.
    energy / initial_energy:
        ``float64[N]`` remaining and starting battery charge (joules).
    state / role:
        ``int8[N]`` enum codes (``STATE_CODES`` / ``ROLE_CODES``).
    cell:
        ``int32[N]`` flat virtual-grid cell index (``y * columns + x``);
        ``-1`` until a :class:`WsnState` assigns it.
    moved_distance / move_count:
        ``float64[N]`` / ``int64[N]`` movement accounting.
    """

    __slots__ = (
        "node_ids",
        "positions",
        "energy",
        "initial_energy",
        "state",
        "role",
        "cell",
        "moved_distance",
        "move_count",
        "_id_base",
        "_row_by_id",
    )

    def __init__(
        self,
        node_ids: np.ndarray,
        positions: np.ndarray,
        energy: np.ndarray,
        initial_energy: np.ndarray,
        state: np.ndarray,
        role: np.ndarray,
        cell: np.ndarray,
        moved_distance: np.ndarray,
        move_count: np.ndarray,
    ) -> None:
        self.node_ids = node_ids
        self.positions = positions
        self.energy = energy
        self.initial_energy = initial_energy
        self.state = state
        self.role = role
        self.cell = cell
        self.moved_distance = moved_distance
        self.move_count = move_count
        # Deployments produce consecutive ids, so id -> row is usually a
        # subtraction; the dict fallback is built lazily for irregular ids.
        if len(node_ids) and np.array_equal(
            node_ids, np.arange(node_ids[0], node_ids[0] + len(node_ids))
        ):
            self._id_base: Optional[int] = int(node_ids[0])
        else:
            self._id_base = None
        self._row_by_id: Optional[Dict[int, int]] = None

    # ------------------------------------------------------------ constructors
    @classmethod
    def from_positions(
        cls,
        node_ids: np.ndarray,
        xs: np.ndarray,
        ys: np.ndarray,
        energy: float = DEFAULT_BATTERY_CAPACITY,
    ) -> "NodeArrays":
        """Fresh (enabled, unassigned) nodes at the given positions."""
        count = len(xs)
        positions = np.empty((count, 2), dtype=np.float64)
        positions[:, 0] = xs
        positions[:, 1] = ys
        return cls(
            node_ids=np.asarray(node_ids, dtype=np.int64),
            positions=positions,
            energy=np.full(count, float(energy), dtype=np.float64),
            initial_energy=np.full(count, float(energy), dtype=np.float64),
            state=np.full(count, ENABLED_CODE, dtype=np.int8),
            role=np.full(count, UNASSIGNED_CODE, dtype=np.int8),
            cell=np.full(count, -1, dtype=np.int32),
            moved_distance=np.zeros(count, dtype=np.float64),
            move_count=np.zeros(count, dtype=np.int64),
        )

    @classmethod
    def from_nodes(cls, nodes: Sequence[SensorNode]) -> "NodeArrays":
        """Snapshot a sequence of (unbound) nodes into a fresh store."""
        count = len(nodes)
        positions = np.empty((count, 2), dtype=np.float64)
        node_ids = np.empty(count, dtype=np.int64)
        energy = np.empty(count, dtype=np.float64)
        initial_energy = np.empty(count, dtype=np.float64)
        state = np.empty(count, dtype=np.int8)
        role = np.empty(count, dtype=np.int8)
        moved_distance = np.empty(count, dtype=np.float64)
        move_count = np.empty(count, dtype=np.int64)
        for row, node in enumerate(nodes):
            node_ids[row] = node.node_id
            position = node.position
            positions[row, 0] = position.x
            positions[row, 1] = position.y
            energy[row] = node.energy
            initial_energy[row] = node.initial_energy
            state[row] = STATE_CODES[node.state]
            role[row] = ROLE_CODES[node.role]
            moved_distance[row] = node.moved_distance
            move_count[row] = node.move_count
        return cls(
            node_ids=node_ids,
            positions=positions,
            energy=energy,
            initial_energy=initial_energy,
            state=state,
            role=role,
            cell=np.full(count, -1, dtype=np.int32),
            moved_distance=moved_distance,
            move_count=move_count,
        )

    # ----------------------------------------------------------------- lookups
    def __len__(self) -> int:
        return len(self.node_ids)

    def row_of(self, node_id: int) -> int:
        """Row index of ``node_id`` (:class:`KeyError` if unknown)."""
        if self._id_base is not None:
            row = node_id - self._id_base
            if 0 <= row < len(self.node_ids):
                return row
            raise KeyError(node_id)
        if self._row_by_id is None:
            self._row_by_id = {
                int(node_id_): row for row, node_id_ in enumerate(self.node_ids.tolist())
            }
        return self._row_by_id[node_id]

    def rows_of(self, node_ids: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`row_of` for known-good ids (no validation)."""
        if self._id_base is not None:
            return np.asarray(node_ids, dtype=np.int64) - self._id_base
        return np.fromiter(
            (self.row_of(int(node_id)) for node_id in node_ids),
            dtype=np.int64,
            count=len(node_ids),
        )

    def has_id(self, node_id: int) -> bool:
        """Whether a node with this id exists in the store."""
        try:
            self.row_of(node_id)
        except KeyError:
            return False
        return True

    def enabled_mask(self) -> np.ndarray:
        """Boolean mask over rows: ``state == ENABLED`` (fresh array)."""
        return self.state == ENABLED_CODE

    def iter_rows(self) -> Iterator[int]:
        """Row indices in deployment order."""
        return iter(range(len(self.node_ids)))

    # -------------------------------------------------------------- snapshots
    def to_bytes(self) -> bytes:
        """Compact binary snapshot: a fixed header plus the raw column buffers.

        The layout (``_COLUMN_LAYOUT``) is versioned and fully determined by
        the row count, so a snapshot is just ``len(self)`` and the
        concatenated little-endian buffers — no pickle, no per-column
        framing.  ``from_bytes(to_bytes())`` round-trips every column
        bit-for-bit; this is the transport format of the initial-state cache
        and the shared-memory worker handoff.
        """
        parts = [struct.pack(_HEADER_FORMAT, BUFFER_FORMAT_VERSION, len(self))]
        for name, dtype, _ in _COLUMN_LAYOUT:
            parts.append(np.ascontiguousarray(getattr(self, name), dtype=dtype).tobytes())
        return b"".join(parts)

    @classmethod
    def from_bytes(cls, buffer: Union[bytes, memoryview]) -> "NodeArrays":
        """Rebuild a store from a :meth:`to_bytes` snapshot.

        ``buffer`` may be longer than the snapshot (shared-memory segments
        round up to a page size); trailing bytes are ignored.  Columns are
        copied out of the buffer, so the result owns writable arrays and the
        buffer may be released immediately.
        """
        if len(buffer) < _HEADER_SIZE:
            raise ValueError("snapshot buffer is too short for a header")
        version, count = struct.unpack_from(_HEADER_FORMAT, buffer, 0)
        if version != BUFFER_FORMAT_VERSION:
            raise ValueError(
                f"snapshot has buffer format version {version}, "
                f"this build expects {BUFFER_FORMAT_VERSION}"
            )
        if len(buffer) < snapshot_nbytes(count):
            raise ValueError(
                f"snapshot buffer holds {len(buffer)} bytes, a {count}-row "
                f"snapshot needs {snapshot_nbytes(count)}"
            )
        offset = _HEADER_SIZE
        columns: Dict[str, np.ndarray] = {}
        for name, dtype, width in _COLUMN_LAYOUT:
            flat = np.frombuffer(
                buffer, dtype=dtype, count=count * width, offset=offset
            ).copy()
            columns[name] = flat.reshape(count, width) if width > 1 else flat
            offset += count * width * dtype.itemsize
        return cls(**columns)

    # ------------------------------------------------------------------- copy
    def copy(self) -> "NodeArrays":
        """Independent deep copy of every column (used by ``WsnState.clone``)."""
        return NodeArrays(
            node_ids=self.node_ids.copy(),
            positions=self.positions.copy(),
            energy=self.energy.copy(),
            initial_energy=self.initial_energy.copy(),
            state=self.state.copy(),
            role=self.role.copy(),
            cell=self.cell.copy(),
            moved_distance=self.moved_distance.copy(),
            move_count=self.move_count.copy(),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"NodeArrays(n={len(self.node_ids)}, "
            f"enabled={int(self.enabled_mask().sum())})"
        )
