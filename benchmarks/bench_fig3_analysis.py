"""Figure 3: analytical expected node movements of a single replacement.

Regenerates both sub-figures — the 4x5 grid (L = 19) and the 16x16 grid
(L = 255) — and benchmarks the Theorem-2 evaluation.  The paper's reference
point (N = 12 spares in the 4x5 system -> 2.0139 movements on average) is
asserted exactly.
"""

from __future__ import annotations

import pytest

from repro.core import analysis
from repro.experiments.figures import figure3_expected_movements

from figutils import emit


@pytest.mark.benchmark(group="fig3-analysis")
def test_fig3_expected_movements_table(benchmark, results_dir):
    """Regenerate the Figure 3 data series for both grid systems."""
    result = benchmark(figure3_expected_movements)

    emit(result, results_dir, "fig3_expected_movements.csv")

    small = {int(row["N"]): row["expected_moves"] for row in result.rows if row["grid"] == "4x5"}
    large = {int(row["N"]): row["expected_moves"] for row in result.rows if row["grid"] == "16x16"}
    # Shape checks corresponding to the paper's curves: monotone decay from L
    # toward 1 as the number of spares grows.
    assert small[0] == pytest.approx(19.0)
    assert large[0] == pytest.approx(255.0)
    assert small[140] < 1.2
    assert large[1400] < 1.2
    assert all(small[n] >= small[n + 10] for n in range(0, 140, 10))


@pytest.mark.benchmark(group="fig3-analysis")
def test_fig3_paper_reference_point(benchmark):
    """The worked example of Section 3: N = 12 spares, 4x5 grid -> 2.0139 moves."""
    value = benchmark(analysis.expected_movements, 12, 19)
    assert value == pytest.approx(2.0139, abs=1e-4)


@pytest.mark.benchmark(group="fig3-analysis")
def test_fig3_density_claim(benchmark):
    """Section 3's density claim: >= 1.68 enabled nodes per cell keeps M <= 2 at 16x16."""
    density = benchmark(analysis.minimum_density_for_expected_movements, 16, 16, 2.0)
    assert 1.5 <= density <= 1.8


@pytest.mark.benchmark(group="fig3-analysis-distribution")
@pytest.mark.parametrize("path_length", [19, 255])
def test_fig3_distribution_evaluation(benchmark, path_length):
    """Time the full P(i) distribution evaluation used by the tail analyses."""
    distribution = benchmark(analysis.movement_distribution, 40, path_length)
    assert distribution.sum() == pytest.approx(1.0)
