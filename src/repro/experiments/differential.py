"""Differential scheme harness: run every scheme on a scenario, check oracles.

This is the correctness backstop the fuzzer (:mod:`repro.experiments.fuzz`)
feeds: every registered scheme runs on each sampled scenario through the
broker layer, and a fixed set of *oracles* — cross-scheme claims and physical
invariants — judges the resulting records.

Oracles come in two severities:

* ``bug`` — a physical invariant of the implementation.  A violation means
  the simulator is wrong: Theorem-2 movement bounds
  (:func:`repro.core.analysis.expected_movements` context, hard per-process
  bound), energy debit reconciliation, message-ledger conservation
  (``sent == delivered + dropped + in_flight``), sharded-vs-sequential
  byte-identity, the shard degrade-instead-of-error guarantee, and
  state-cached-vs-from-scratch byte-identity (the initial-state cache and
  its snapshot serialization must never change a record).  Bug violations
  fail the fuzzing session (exit 1).
* ``claim`` — a statistical claim of the paper checked on individual seeds:
  *SR moves no more than AR when both converge*.  The paper proves this in
  expectation, not per seed, so per-seed counterexamples are *discoveries*,
  not defects: they are minimized, archived under the falsified catalog, and
  the session still exits 0.

Falsifying scenarios are shrunk with
:func:`~repro.experiments.fuzz.minimize_scenario` (rounds and trials first,
then grid, then structure) and archived as replayable TOML documents under
``src/repro/scenarios/falsified/`` — the falsified catalog rendered into
``SCENARIOS.md`` and replayable with ``python -m repro scenario replay``.
"""

from __future__ import annotations

import dataclasses
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core import analysis
from repro.experiments.broker import execute_batch
from repro.experiments.fuzz import (
    FuzzSample,
    ScenarioSampler,
    minimize_scenario,
    validate_roundtrip,
)
from repro.experiments.orchestration import (
    RunExecutor,
    RunRecord,
    execute_run,
)
from repro.experiments.persistence import RunCache, record_to_dict
from repro.experiments.state_cache import StateCache
from repro.experiments.registry import available_schemes
from repro.experiments.scenario_files import Scenario, dump_scenario

__all__ = [
    "FalsifiedScenario",
    "FuzzSessionResult",
    "DifferentialContext",
    "DifferentialReport",
    "ORACLES",
    "Oracle",
    "OracleOutcome",
    "run_differential",
    "run_fuzz",
]

#: Tolerance for float comparisons in the energy oracles: the engine's
#: arithmetic is deterministic, but summaries re-sum per-node floats.
_ENERGY_TOLERANCE = 1e-6


# ------------------------------------------------------------------- context
@dataclass(frozen=True)
class DifferentialContext:
    """Everything the oracles may inspect about one differential run.

    Plain data so the oracle test-suite can hand-build doctored contexts
    (miscounted moves, a non-conserved ledger) and prove every oracle fires.

    Attributes
    ----------
    scenario:
        The scenario the harness ran (schemes replaced by the full registry).
    schemes:
        Scheme order of the records within each trial.
    records:
        One record per ``(trial, scheme)`` in
        :meth:`~repro.experiments.scenario_files.Scenario.run_specs` order
        (trials outermost, schemes innermost).
    sharded_pair:
        ``(sequential, sharded)`` executions of the first trial's SR spec,
        used by the byte-identity oracle; ``None`` when the sharded rerun
        raised (see ``shard_error``).
    shard_error:
        The error message of a failed sharded rerun.  The degrade guarantee
        says infeasible or ineligible shard requests must *fall back*, so any
        value here is a bug-severity violation.
    requested_shards:
        The shard count the sharded rerun asked for.
    state_cache_trio:
        ``(baseline, miss, hit)`` executions of the same spec: from scratch
        with state caching disabled, then twice through a fresh bytes-mode
        :class:`~repro.experiments.state_cache.StateCache` (the first run
        builds and stores the initial state, the second restores it via the
        ``WsnState.to_bytes``/``from_bytes`` round-trip).  Used by the
        ``state-cache-identity`` oracle.
    """

    scenario: Scenario
    schemes: Tuple[str, ...]
    records: Tuple[RunRecord, ...]
    sharded_pair: Optional[Tuple[RunRecord, RunRecord]] = None
    shard_error: Optional[str] = None
    requested_shards: int = 1
    state_cache_trio: Optional[Tuple[RunRecord, RunRecord, RunRecord]] = None

    def by_trial(self) -> List[Dict[str, RunRecord]]:
        """The records regrouped as one ``{scheme: record}`` map per trial."""
        per_trial: List[Dict[str, RunRecord]] = []
        width = len(self.schemes)
        for start in range(0, len(self.records), width):
            chunk = self.records[start : start + width]
            per_trial.append(dict(zip(self.schemes, chunk)))
        return per_trial


@dataclass(frozen=True)
class OracleOutcome:
    """Verdict of one oracle on one differential context."""

    name: str
    severity: str
    violations: Tuple[str, ...] = ()

    @property
    def passed(self) -> bool:
        """Whether the oracle found no violation."""
        return not self.violations


@dataclass(frozen=True)
class Oracle:
    """One named invariant checked against a :class:`DifferentialContext`.

    ``check`` returns a violation detail string per failure (empty list: the
    oracle passes).  ``severity`` is ``"bug"`` (implementation invariant —
    fails the session) or ``"claim"`` (per-seed check of a statistical paper
    claim — falsifiers are archived discoveries).
    """

    name: str
    severity: str
    check: Callable[[DifferentialContext], List[str]]

    def evaluate(self, context: DifferentialContext) -> OracleOutcome:
        """Run the oracle and wrap its violations in an outcome."""
        return OracleOutcome(
            name=self.name,
            severity=self.severity,
            violations=tuple(self.check(context)),
        )


# ------------------------------------------------------------------- oracles
def check_sr_ar_moves(context: DifferentialContext) -> List[str]:
    """Paper claim: SR moves no more nodes than AR when both converge.

    Theorem 2 proves this *in expectation* — on an individual seed a shallow
    AR repair can beat an unlucky SR cascade — so this oracle is
    claim-severity: its falsifiers quantify how often the per-seed claim
    breaks, they do not indicate a defect.
    """
    violations: List[str] = []
    for trial, records in enumerate(context.by_trial()):
        sr = records.get("SR")
        ar = records.get("AR")
        if sr is None or ar is None:
            continue
        if not (sr.converged and ar.converged):
            continue
        if sr.metrics.total_moves > ar.metrics.total_moves:
            violations.append(
                f"trial {trial}: SR moved {sr.metrics.total_moves} nodes but AR "
                f"moved {ar.metrics.total_moves} (both converged)"
            )
    return violations


def check_theorem2_bound(context: DifferentialContext) -> List[str]:
    """Hard Theorem-2 movement bound: moves <= processes * cycle length.

    One SR replacement process shifts at most one node per Hamilton-path
    cell, so ``total_moves <= processes_initiated * cell_count`` must hold
    for the SR family on every seed — it is the per-run hardening of the
    expectation :func:`repro.core.analysis.expected_movements` computes.
    The oracle is scoped to the Hamilton-cascade schemes (``SR*``): AR moves
    spares directly, and SMART/VF relocate nodes outside any replacement
    process, so the process-count bound says nothing about them.
    """
    violations: List[str] = []
    cells = context.scenario.scenario.cell_count
    for record in context.records:
        metrics = record.metrics
        if not metrics.scheme.startswith("SR"):
            continue
        bound = metrics.processes_initiated * cells
        if metrics.total_moves > bound:
            expected = analysis.expected_movements(
                max(1, metrics.initial_spares), max(1, cells)
            )
            violations.append(
                f"{metrics.scheme}: {metrics.total_moves} moves exceed the "
                f"hard bound {metrics.processes_initiated} processes x "
                f"{cells} cells = {bound} (Theorem-2 expectation per process "
                f"is {expected:.2f})"
            )
    return violations


def check_energy_reconciliation(context: DifferentialContext) -> List[str]:
    """Energy debits must reconcile: no free energy, no lost consumption.

    For every record with an energy summary: consumption stays within the
    installed capacity, the per-round remaining-energy series never
    increases (nodes only spend), and the series' last sample equals the
    summary's remaining total.
    """
    violations: List[str] = []
    for record in context.records:
        summary = record.metrics.energy
        if summary is None:
            continue
        scheme = record.metrics.scheme
        if summary.total_consumed < -_ENERGY_TOLERANCE:
            violations.append(
                f"{scheme}: negative total consumption {summary.total_consumed}"
            )
        if summary.total_consumed > summary.initial_energy_total + _ENERGY_TOLERANCE:
            violations.append(
                f"{scheme}: consumed {summary.total_consumed} J out of only "
                f"{summary.initial_energy_total} J installed"
            )
        series = record.energy_series
        for index in range(1, len(series)):
            if series[index] > series[index - 1] + _ENERGY_TOLERANCE:
                violations.append(
                    f"{scheme}: remaining energy rose from {series[index - 1]} "
                    f"to {series[index]} at round {index} (energy created)"
                )
                break
        if series and abs(series[-1] - summary.total_energy) > _ENERGY_TOLERANCE:
            violations.append(
                f"{scheme}: final series sample {series[-1]} J disagrees with "
                f"the summary's remaining total {summary.total_energy} J"
            )
    return violations


def check_message_conservation(context: DifferentialContext) -> List[str]:
    """Channel ledger conservation: sent == delivered + dropped + in-flight.

    Every run executes over a channel (the perfect default when the scenario
    declares none), so every record's ledger must balance exactly.
    """
    violations: List[str] = []
    for record in context.records:
        metrics = record.metrics
        accounted = (
            metrics.messages_delivered
            + metrics.messages_dropped
            + metrics.messages_in_flight
        )
        if metrics.messages_sent != accounted:
            violations.append(
                f"{metrics.scheme}: sent {metrics.messages_sent} but "
                f"delivered {metrics.messages_delivered} + dropped "
                f"{metrics.messages_dropped} + in-flight "
                f"{metrics.messages_in_flight} = {accounted}"
            )
    return violations


def check_sharded_identity(context: DifferentialContext) -> List[str]:
    """Sharded execution must be byte-identical to sequential execution.

    Compares the canonical persisted form
    (:func:`~repro.experiments.persistence.record_to_dict`) of the
    sequential and sharded executions of the same spec — covering metrics,
    rounds, stall/exhaustion flags, and the energy series.  Ineligible or
    infeasible shard requests fall back to the sequential engine, which
    satisfies identity by construction; a mismatch therefore always means
    the sharded fast path diverged.
    """
    if context.sharded_pair is None:
        return []
    sequential, sharded = context.sharded_pair
    left = record_to_dict(dataclasses.replace(sequential, cached=False))
    right = record_to_dict(dataclasses.replace(sharded, cached=False))
    if left == right:
        return []
    differing = sorted(
        key for key in left if left[key] != right.get(key)
    )
    metric_diff = ""
    if "metrics" in differing:
        fields = sorted(
            name
            for name in left["metrics"]
            if left["metrics"][name] != right["metrics"].get(name)
        )
        metric_diff = f" (metrics fields: {', '.join(fields)})"
    return [
        f"sharded run (shards={context.requested_shards}) diverged from "
        f"sequential in {', '.join(differing)}{metric_diff}"
    ]


def check_shard_fallback(context: DifferentialContext) -> List[str]:
    """Infeasible/ineligible shard requests must degrade, never error.

    ``feasible_shards`` clamps over-sharded grids and
    :attr:`~repro.sim.sharded.ShardedEngine.ineligible_reason` routes
    ineligible runs to the sequential loop — so a sharded rerun that raises
    instead of falling back is a bug regardless of the requested count.
    """
    if context.shard_error is None:
        return []
    return [
        f"sharded rerun (shards={context.requested_shards}) raised instead "
        f"of falling back: {context.shard_error}"
    ]


def check_state_cache_identity(context: DifferentialContext) -> List[str]:
    """State-cached runs must be byte-identical to from-scratch runs.

    Compares the canonical persisted form of the cache-off baseline against
    the cache-miss run (simulates from the state it just built and stored)
    and the cache-hit run (simulates from a ``from_bytes`` restore of the
    stored snapshot).  Any divergence means the initial-state cache — or the
    snapshot serialization underneath its bytes mode — changed the
    simulation, which the determinism contract forbids on every scenario the
    fuzzer can express.
    """
    if context.state_cache_trio is None:
        return []
    baseline, miss, hit = context.state_cache_trio
    base = record_to_dict(dataclasses.replace(baseline, cached=False))
    violations: List[str] = []
    for label, record in (("cache-miss", miss), ("cache-hit", hit)):
        candidate = record_to_dict(dataclasses.replace(record, cached=False))
        if candidate != base:
            differing = sorted(
                key for key in base if base[key] != candidate.get(key)
            )
            violations.append(
                f"{label} run diverged from the cache-off baseline in "
                f"{', '.join(differing)}"
            )
    return violations


#: The oracle registry, in report order.
ORACLES: Tuple[Oracle, ...] = (
    Oracle("sr-ar-moves", "claim", check_sr_ar_moves),
    Oracle("theorem2-bound", "bug", check_theorem2_bound),
    Oracle("energy-reconciliation", "bug", check_energy_reconciliation),
    Oracle("message-conservation", "bug", check_message_conservation),
    Oracle("sharded-identity", "bug", check_sharded_identity),
    Oracle("shard-fallback", "bug", check_shard_fallback),
    Oracle("state-cache-identity", "bug", check_state_cache_identity),
)


# ------------------------------------------------------------------- harness
@dataclass(frozen=True)
class DifferentialReport:
    """Outcome of one differential pass over one scenario."""

    scenario: Scenario
    context: DifferentialContext
    outcomes: Tuple[OracleOutcome, ...]

    @property
    def violated(self) -> Tuple[OracleOutcome, ...]:
        """Outcomes with at least one violation, in report order."""
        return tuple(outcome for outcome in self.outcomes if not outcome.passed)

    @property
    def bug_violations(self) -> Tuple[OracleOutcome, ...]:
        """Violated bug-severity outcomes (these fail the session)."""
        return tuple(o for o in self.violated if o.severity == "bug")

    @property
    def claim_violations(self) -> Tuple[OracleOutcome, ...]:
        """Violated claim-severity outcomes (archived discoveries)."""
        return tuple(o for o in self.violated if o.severity == "claim")

    @property
    def passed(self) -> bool:
        """Whether every oracle passed."""
        return not self.violated


def run_differential(
    scenario: Scenario,
    executor: Optional[RunExecutor] = None,
    cache: Optional[RunCache] = None,
    broker: Optional[object] = None,
    oracles: Sequence[Oracle] = ORACLES,
) -> DifferentialReport:
    """Run every registered scheme on ``scenario`` and evaluate the oracles.

    The scenario's scheme list is replaced by the full registry so every
    scheme sees the identical deployment; records flow through the broker
    layer (``broker`` when given, otherwise the one-shot
    :func:`~repro.experiments.broker.execute_batch` admission over
    ``executor``/``cache``).  The sharded-identity rerun deliberately
    bypasses broker and cache: specs are shard-agnostic by design, so a
    cache hit would silently replace the sharded execution under test with
    the sequential record.
    """
    schemes = available_schemes()
    harness_scenario = dataclasses.replace(scenario, schemes=schemes)
    specs = harness_scenario.run_specs()
    if broker is not None:
        records = broker.run(specs)
    else:
        records = execute_batch(specs, executor=executor, cache=cache)

    sharded_pair: Optional[Tuple[RunRecord, RunRecord]] = None
    shard_error: Optional[str] = None
    state_cache_trio: Optional[Tuple[RunRecord, RunRecord, RunRecord]] = None
    sr_spec = next((spec for spec in specs if spec.scheme == "SR"), None)
    requested = scenario.shards if scenario.shards > 1 else 2
    if sr_spec is not None:
        # From-scratch ground truth for both identity oracles: no state
        # cache, so nothing under test can leak into the reference.
        sequential = execute_run(
            dataclasses.replace(sr_spec, shards=1), state_cache=None
        )
        try:
            sharded = execute_run(
                dataclasses.replace(
                    sr_spec, shards=requested, shard_mode="inline"
                )
            )
            sharded_pair = (sequential, sharded)
        except Exception as error:  # noqa: BLE001 - the oracle reports it
            shard_error = f"{type(error).__name__}: {error}"
        # State-cache rerun: a private bytes-mode cache so the first run
        # exercises build+store and the second the from_bytes restore.
        trio_spec = dataclasses.replace(sr_spec, shards=1)
        private_cache = StateCache(capacity=1, mode="bytes")
        miss = execute_run(trio_spec, state_cache=private_cache)
        hit = execute_run(trio_spec, state_cache=private_cache)
        state_cache_trio = (sequential, miss, hit)

    context = DifferentialContext(
        scenario=harness_scenario,
        schemes=schemes,
        records=tuple(records),
        sharded_pair=sharded_pair,
        shard_error=shard_error,
        requested_shards=requested,
        state_cache_trio=state_cache_trio,
    )
    outcomes = tuple(oracle.evaluate(context) for oracle in oracles)
    return DifferentialReport(
        scenario=scenario, context=context, outcomes=outcomes
    )


# -------------------------------------------------------------- fuzz session
@dataclass(frozen=True)
class FalsifiedScenario:
    """One archived falsifier: the minimized scenario plus its verdict."""

    oracle: str
    severity: str
    sample_index: int
    scenario: Scenario
    violations: Tuple[str, ...]
    path: Optional[Path] = None


@dataclass
class FuzzSessionResult:
    """Tally of one fuzzing session (``scenario fuzz``)."""

    seed: int
    samples_run: int = 0
    reports: List[DifferentialReport] = field(default_factory=list)
    falsifiers: List[FalsifiedScenario] = field(default_factory=list)

    @property
    def bug_falsifiers(self) -> List[FalsifiedScenario]:
        """Falsifiers of bug-severity oracles (these fail the session)."""
        return [f for f in self.falsifiers if f.severity == "bug"]

    @property
    def claim_falsifiers(self) -> List[FalsifiedScenario]:
        """Falsifiers of claim-severity oracles (archived discoveries)."""
        return [f for f in self.falsifiers if f.severity == "claim"]


def _falsifier_name(oracle: str, seed: int, index: int) -> str:
    """Deterministic archive name of one falsifier (token, no whitespace)."""
    return f"falsified-{oracle}-s{seed}-i{index}"


def _archive_falsifier(
    falsifier: FalsifiedScenario, archive_dir: Path, seed: int
) -> FalsifiedScenario:
    """Write the minimized falsifier as a replayable TOML document."""
    name = _falsifier_name(falsifier.oracle, seed, falsifier.sample_index)
    detail = falsifier.violations[0] if falsifier.violations else ""
    document = dataclasses.replace(
        falsifier.scenario,
        name=name,
        description=(
            f"Minimized falsifier of the {falsifier.oracle} oracle "
            f"({falsifier.severity} severity), found by scenario fuzz "
            f"--seed {seed} at sample {falsifier.sample_index}."
        ),
        stresses=detail,
        expected=(
            f"scenario replay {name} reproduces the {falsifier.oracle} violation"
        ),
    )
    archive_dir.mkdir(parents=True, exist_ok=True)
    path = dump_scenario(document, archive_dir / f"{name}.toml")
    return dataclasses.replace(falsifier, scenario=document, path=path)


def run_fuzz(
    seed: int,
    samples: Optional[int] = None,
    minutes: Optional[float] = None,
    archive_dir: Optional[Path] = None,
    executor: Optional[RunExecutor] = None,
    cache: Optional[RunCache] = None,
    minimize_budget: int = 32,
    log: Callable[[str], None] = lambda message: None,
) -> FuzzSessionResult:
    """One fuzzing session: sample, validate, run differential, archive.

    Stops after ``samples`` documents (deterministic mode: equal seeds give
    equal falsifier sets, which is what CI pins) or when the ``minutes`` time
    budget runs out (exploratory mode; at least one sample always runs).
    Every violated oracle yields a falsifier: the sample is shrunk with
    :func:`~repro.experiments.fuzz.minimize_scenario` under the predicate
    "the same oracle still fires", then archived as TOML under
    ``archive_dir`` when one is given.
    """
    if samples is None and minutes is None:
        raise ValueError("run_fuzz needs a samples count or a minutes budget")
    sampler = ScenarioSampler(seed)
    result = FuzzSessionResult(seed=seed)
    deadline = (
        time.monotonic() + minutes * 60.0 if minutes is not None else None
    )
    index = 0
    while True:
        if samples is not None and index >= samples:
            break
        if samples is None and index > 0 and time.monotonic() >= deadline:
            break
        sample = sampler.sample(index)
        validate_roundtrip(sample.scenario)
        report = run_differential(
            sample.scenario, executor=executor, cache=cache
        )
        result.samples_run += 1
        result.reports.append(report)
        for outcome in report.violated:
            log(
                f"sample {index}: {outcome.severity} oracle {outcome.name} "
                f"violated — {outcome.violations[0]}"
            )
            falsifier = _minimize_falsifier(
                sample, outcome, executor=executor, cache=cache,
                budget=minimize_budget,
            )
            if archive_dir is not None:
                falsifier = _archive_falsifier(falsifier, archive_dir, seed)
                log(f"sample {index}: archived {falsifier.path}")
            result.falsifiers.append(falsifier)
        index += 1
    return result


def _minimize_falsifier(
    sample: FuzzSample,
    outcome: OracleOutcome,
    executor: Optional[RunExecutor],
    cache: Optional[RunCache],
    budget: int,
) -> FalsifiedScenario:
    """Shrink the sample under "the same oracle still fires" and wrap it."""
    oracle = next(o for o in ORACLES if o.name == outcome.name)

    def still_fails(candidate: Scenario) -> bool:
        """Whether the falsified oracle still fires on the shrunk candidate."""
        report = run_differential(
            candidate, executor=executor, cache=cache, oracles=(oracle,)
        )
        return not report.outcomes[0].passed

    minimized = minimize_scenario(
        sample.scenario, still_fails, max_evaluations=budget
    )
    final = run_differential(
        minimized, executor=executor, cache=cache, oracles=(oracle,)
    )
    return FalsifiedScenario(
        oracle=outcome.name,
        severity=outcome.severity,
        sample_index=sample.index,
        scenario=minimized,
        violations=final.outcomes[0].violations or outcome.violations,
    )
