"""Content-addressed cache of built initial scenario states.

The sweep layer intentionally gives every scheme and every trial at a sweep
point the *same* :class:`~repro.sim.scenario.ScenarioConfig`, yet cold
execution used to rebuild the identical initial
:class:`~repro.network.state.WsnState` — deployment, thinning, occupancy
indices, head election — once per spec.  This module is the simulation-stack
analog of prefix caching in an inference server: the built initial state is
the shared prefix of every run over one scenario, so it is built exactly
once, stored content-addressed by :func:`scenario_key`, and handed out as
private mutable copies.

Soundness rests on two established contracts:

* ``build_scenario_state`` is a pure function of its config (all randomness
  is derived from ``config.seed`` via :func:`repro.sim.rng.derive_rng`), so
  a cached build is exactly what a rebuild would produce;
* a :meth:`WsnState.clone` (and, for the ``bytes`` mode, a
  ``WsnState.from_bytes(state.to_bytes())`` round-trip) is interchangeable
  with a rebuild — the golden seed-identity suite and the ``state_cache``
  differential oracle hold cached runs to byte-identical records.

Two storage modes trade memory against copy cost:

* ``"clone"`` — the pristine built state is kept as a live object; a lookup
  returns ``pristine.clone()`` (column ``memcpy`` + index copies).
* ``"bytes"`` — only the compact :meth:`WsnState.to_bytes` snapshot is kept
  (roughly half the resident footprint of a live state, and the exact
  payload the parallel executor ships to workers over shared memory); a
  lookup restores via :meth:`WsnState.from_bytes`.

A process-wide default instance (capacity :data:`DEFAULT_CAPACITY`) is
consulted by ``execute_run`` and both executors unless a caller passes an
explicit cache or disables it; ``--state-cache off`` flips the default to
``None`` for the whole process.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import threading
from collections import OrderedDict
from typing import Dict, Optional, Tuple, Union

from repro.network.node_arrays import BUFFER_FORMAT_VERSION
from repro.network.state import WsnState
from repro.sim.scenario import ScenarioConfig, build_scenario_state

__all__ = [
    "STATE_CACHE_MODES",
    "DEFAULT_CAPACITY",
    "scenario_key",
    "StateCacheStats",
    "StateCache",
    "default_state_cache",
    "set_default_state_cache",
]

#: Storage modes accepted by :class:`StateCache` (and ``--state-cache``).
STATE_CACHE_MODES = ("clone", "bytes")

#: Default number of distinct scenarios the cache retains (LRU beyond that).
DEFAULT_CAPACITY = 8


def scenario_key(config: ScenarioConfig) -> str:
    """Content hash of a scenario config — the cache address of its built state.

    This is the scenario-defining subset of the run key: the canonical JSON
    of the config alone, without scheme/seed/engine knobs, so every spec
    sharing a scenario shares one key.  The snapshot layout version is folded
    in so persisted-snapshot consumers (the shared-memory handoff) never
    misread a foreign layout as a current one.
    """
    payload = {
        "snapshot_version": BUFFER_FORMAT_VERSION,
        "scenario": dataclasses.asdict(config),
    }
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


@dataclasses.dataclass(frozen=True)
class StateCacheStats:
    """Point-in-time view of a state cache's counters.

    Attributes
    ----------
    hits, misses:
        Lookups served from a stored build / lookups that built the scenario.
    evictions:
        Entries dropped by the LRU bound.
    entries, capacity:
        Current and maximum number of cached scenarios.
    """

    hits: int
    misses: int
    evictions: int
    entries: int
    capacity: int
    mode: str

    @property
    def builds_saved(self) -> int:
        """Scenario builds avoided so far (one per hit)."""
        return self.hits

    def as_dict(self) -> Dict[str, object]:
        """JSON-compatible form (used by ``repro serve`` ``/stats``)."""
        return dataclasses.asdict(self)


class StateCache:
    """In-process LRU of built initial states, keyed by :func:`scenario_key`.

    Thread-safe: broker worker threads share one instance.  Concurrent
    lookups of the same missing scenario are deduplicated through per-key
    build locks, so a thundering herd over one scenario performs exactly one
    build.  Lookups never hand out the stored entry itself — ``clone`` mode
    returns a private :meth:`WsnState.clone`, ``bytes`` mode a private
    :meth:`WsnState.from_bytes` restore — so callers may mutate the result
    freely.
    """

    def __init__(
        self, capacity: int = DEFAULT_CAPACITY, mode: str = "clone"
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if mode not in STATE_CACHE_MODES:
            raise ValueError(
                f"unknown state-cache mode {mode!r}; choose from {list(STATE_CACHE_MODES)}"
            )
        self.capacity = capacity
        self.mode = mode
        self._lock = threading.Lock()
        self._entries: "OrderedDict[str, Tuple[ScenarioConfig, Union[WsnState, bytes]]]" = (
            OrderedDict()
        )
        self._build_locks: Dict[str, threading.Lock] = {}
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    # ----------------------------------------------------------------- lookup
    def state_for(self, config: ScenarioConfig) -> WsnState:
        """A private, mutable built state for ``config`` (building on miss).

        The hot path: a hit costs one clone/restore; a miss builds the
        scenario once, stores the pristine build, and returns the build
        itself (so the first caller pays no extra copy).
        """
        key = scenario_key(config)
        state = self._materialize(key, config)
        if state is not None:
            self._count(hit=True)
            return state
        build_lock = self._build_lock_for(key)
        with build_lock:
            # Another thread may have finished the same build while this one
            # waited on the key lock; re-check before building.  Served from
            # the store either way, so it still counts as a single hit.
            state = self._materialize(key, config)
            if state is not None:
                self._count(hit=True)
                return state
            self._count(hit=False)
            built = build_scenario_state(config)
            self._insert(key, config, built)
            return built

    def get(self, config: ScenarioConfig) -> Optional[WsnState]:
        """A private copy of the stored build, or ``None`` on a miss (no build)."""
        state = self._materialize(scenario_key(config), config)
        self._count(hit=state is not None)
        return state

    def put(self, config: ScenarioConfig, state: WsnState) -> None:
        """Store ``state`` as the pristine build of ``config``.

        The entry is snapshotted (cloned or serialized) immediately, so the
        caller keeps exclusive ownership of ``state``.
        """
        self._insert(scenario_key(config), config, state, own=False)

    def contains(self, config: ScenarioConfig) -> bool:
        """Whether a build for ``config`` is currently stored."""
        with self._lock:
            return scenario_key(config) in self._entries

    def snapshot_bytes(self, config: ScenarioConfig) -> Optional[bytes]:
        """The stored build as a :meth:`WsnState.to_bytes` snapshot, if present.

        This is the zero-pickle payload the parallel executor places into
        shared memory; ``clone`` mode serializes on demand, ``bytes`` mode
        returns the stored snapshot as-is.
        """
        with self._lock:
            entry = self._entries.get(scenario_key(config))
            if entry is None:
                return None
            _, stored = entry
        return stored if isinstance(stored, bytes) else stored.to_bytes()

    # ------------------------------------------------------------- lifecycle
    def stats(self) -> StateCacheStats:
        """A consistent snapshot of the cache's counters."""
        with self._lock:
            return StateCacheStats(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                entries=len(self._entries),
                capacity=self.capacity,
                mode=self.mode,
            )

    def clear(self) -> int:
        """Drop every cached build; returns how many were removed."""
        with self._lock:
            removed = len(self._entries)
            self._entries.clear()
            return removed

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    # -------------------------------------------------------------- internals
    def _build_lock_for(self, key: str) -> threading.Lock:
        with self._lock:
            lock = self._build_locks.get(key)
            if lock is None:
                lock = self._build_locks[key] = threading.Lock()
            return lock

    def _count(self, hit: bool) -> None:
        """Tally one lookup (every public lookup counts exactly one)."""
        with self._lock:
            if hit:
                self._hits += 1
            else:
                self._misses += 1

    def _materialize(self, key: str, config: ScenarioConfig) -> Optional[WsnState]:
        """A private copy of the stored entry for ``key`` (no counting)."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                return None
            self._entries.move_to_end(key)
            stored_config, stored = entry
        if isinstance(stored, bytes):
            return WsnState.from_bytes(stored, head_policy=stored_config.head_policy_fn)
        return stored.clone()

    def _insert(
        self, key: str, config: ScenarioConfig, state: WsnState, own: bool = True
    ) -> None:
        """Store the pristine form of ``state`` under ``key`` (LRU-bounded).

        ``own=True`` means the caller will keep mutating ``state`` (the miss
        path of :meth:`state_for` returns it), so the stored pristine must be
        an independent copy either way; the flag only documents intent.
        """
        if self.mode == "bytes":
            stored: Union[WsnState, bytes] = state.to_bytes()
        else:
            stored = state.clone()
        with self._lock:
            self._entries[key] = (config, stored)
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                evicted_key, _ = self._entries.popitem(last=False)
                self._build_locks.pop(evicted_key, None)
                self._evictions += 1


# ------------------------------------------------------------ process default
_default_lock = threading.Lock()
_default_cache: Optional[StateCache] = StateCache()


def default_state_cache() -> Optional[StateCache]:
    """The process-wide default cache, or ``None`` when caching is disabled."""
    return _default_cache


def set_default_state_cache(cache: Optional[StateCache]) -> Optional[StateCache]:
    """Replace the process-wide default cache; returns the previous one.

    Pass ``None`` to disable implicit state caching for every consumer that
    did not receive an explicit cache (``--state-cache off``).
    """
    global _default_cache
    with _default_lock:
        previous = _default_cache
        _default_cache = cache
        return previous
