"""Unit tests for the virtual grid partition (Section 2 model)."""

import math
import random

import pytest

from repro.grid.geometry import BoundingBox, Point
from repro.grid.virtual_grid import (
    AVERAGE_MOVE_FACTOR,
    GAF_RANGE_FACTOR,
    GridCoord,
    VirtualGrid,
    cell_side_for_range,
    move_distance_bounds,
    random_point_in_box,
    required_range_for_cell,
)


class TestGridCoord:
    def test_neighbour_relation(self):
        assert GridCoord(1, 1).is_neighbour_of(GridCoord(1, 2))
        assert GridCoord(1, 1).is_neighbour_of(GridCoord(0, 1))
        assert not GridCoord(1, 1).is_neighbour_of(GridCoord(2, 2)), "diagonal is not a neighbour"
        assert not GridCoord(1, 1).is_neighbour_of(GridCoord(1, 1))

    def test_directional_helpers(self):
        c = GridCoord(2, 3)
        assert c.north() == GridCoord(2, 4)
        assert c.south() == GridCoord(2, 2)
        assert c.east() == GridCoord(3, 3)
        assert c.west() == GridCoord(1, 3)

    def test_ordering_and_hash(self):
        assert GridCoord(0, 1) < GridCoord(1, 0)
        assert len({GridCoord(1, 1), GridCoord(1, 1)}) == 1

    def test_manhattan_distance(self):
        assert GridCoord(0, 0).manhattan_distance_to(GridCoord(3, 4)) == 7


class TestRangeCellRelation:
    def test_paper_values(self):
        """R = 10 m gives the 4.4721 m cell used in Section 5."""
        assert cell_side_for_range(10.0) == pytest.approx(4.4721, abs=1e-4)
        assert required_range_for_cell(4.4721) == pytest.approx(10.0, abs=1e-3)

    def test_factors(self):
        assert GAF_RANGE_FACTOR == pytest.approx(math.sqrt(5))

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            cell_side_for_range(0)
        with pytest.raises(ValueError):
            required_range_for_cell(-1)


class TestVirtualGridShape:
    def test_basic_properties(self, small_grid):
        assert small_grid.columns == 4
        assert small_grid.rows == 5
        assert small_grid.cell_count == 20
        assert small_grid.bounds == BoundingBox(0, 0, 4, 5)
        assert small_grid.required_communication_range == pytest.approx(math.sqrt(5))

    def test_rejects_degenerate_grids(self):
        with pytest.raises(ValueError):
            VirtualGrid(0, 3, 1.0)
        with pytest.raises(ValueError):
            VirtualGrid(3, 3, 0.0)

    def test_equality_and_hash(self):
        a = VirtualGrid(3, 3, 1.0)
        b = VirtualGrid(3, 3, 1.0)
        c = VirtualGrid(3, 4, 1.0)
        assert a == b
        assert hash(a) == hash(b)
        assert a != c

    def test_for_area_covers_requested_area(self):
        grid = VirtualGrid.for_area(width=50.0, height=30.0, communication_range=10.0)
        assert grid.cell_size == pytest.approx(4.4721, abs=1e-4)
        assert grid.columns * grid.cell_size >= 50.0 - 1e-9
        assert grid.rows * grid.cell_size >= 30.0 - 1e-9

    def test_edge_and_corner_cells(self, small_grid):
        assert small_grid.is_corner_cell(GridCoord(0, 0))
        assert small_grid.is_corner_cell(GridCoord(3, 4))
        assert small_grid.is_edge_cell(GridCoord(0, 2))
        assert not small_grid.is_edge_cell(GridCoord(1, 1))
        assert not small_grid.is_corner_cell(GridCoord(0, 2))


class TestVirtualGridMembership:
    def test_contains_and_validate(self, small_grid):
        assert small_grid.contains_coord(GridCoord(3, 4))
        assert not small_grid.contains_coord(GridCoord(4, 0))
        assert not small_grid.contains_coord(GridCoord(0, -1))
        with pytest.raises(ValueError):
            small_grid.validate_coord(GridCoord(4, 4))

    def test_all_coords_enumeration(self, small_grid):
        coords = list(small_grid.all_coords())
        assert len(coords) == 20
        assert len(set(coords)) == 20
        assert coords[0] == GridCoord(0, 0)
        assert coords[-1] == GridCoord(3, 4)

    def test_neighbours_interior_cell(self, small_grid):
        neighbours = small_grid.neighbours(GridCoord(1, 1))
        assert set(neighbours) == {
            GridCoord(1, 2),
            GridCoord(1, 0),
            GridCoord(2, 1),
            GridCoord(0, 1),
        }

    def test_neighbours_corner_cell(self, small_grid):
        assert set(small_grid.neighbours(GridCoord(0, 0))) == {
            GridCoord(0, 1),
            GridCoord(1, 0),
        }

    def test_diagonal_neighbours(self, small_grid):
        assert set(small_grid.diagonal_neighbours(GridCoord(0, 0))) == {GridCoord(1, 1)}
        assert len(small_grid.diagonal_neighbours(GridCoord(1, 1))) == 4

    def test_row_and_column(self, small_grid):
        assert small_grid.row(0) == [GridCoord(x, 0) for x in range(4)]
        assert small_grid.column(3) == [GridCoord(3, y) for y in range(5)]
        with pytest.raises(ValueError):
            small_grid.row(5)
        with pytest.raises(ValueError):
            small_grid.column(4)


class TestCoordinateMapping:
    def test_cell_of_maps_points_to_cells(self, small_grid):
        assert small_grid.cell_of(Point(0.5, 0.5)) == GridCoord(0, 0)
        assert small_grid.cell_of(Point(3.99, 4.99)) == GridCoord(3, 4)

    def test_cell_of_boundary_points(self, small_grid):
        # Points on the outer boundary belong to the last row/column.
        assert small_grid.cell_of(Point(4.0, 5.0)) == GridCoord(3, 4)
        # Interior shared edges belong to the higher-indexed cell.
        assert small_grid.cell_of(Point(1.0, 0.5)) == GridCoord(1, 0)

    def test_cell_of_outside_raises(self, small_grid):
        with pytest.raises(ValueError):
            small_grid.cell_of(Point(4.5, 1.0))

    def test_cell_bounds_and_center(self, small_grid):
        bounds = small_grid.cell_bounds(GridCoord(2, 3))
        assert bounds == BoundingBox(2, 3, 3, 4)
        assert small_grid.cell_center(GridCoord(2, 3)) == Point(2.5, 3.5)

    def test_central_area_is_half_sized(self, small_grid):
        area = small_grid.central_area(GridCoord(1, 1))
        assert area.width == pytest.approx(0.5)
        assert area.height == pytest.approx(0.5)
        assert area.center == small_grid.cell_center(GridCoord(1, 1))

    def test_center_distance(self, small_grid):
        assert small_grid.center_distance(GridCoord(0, 0), GridCoord(1, 0)) == pytest.approx(1.0)
        assert small_grid.center_distance(GridCoord(0, 0), GridCoord(0, 3)) == pytest.approx(3.0)

    def test_cell_of_is_consistent_with_cell_bounds(self, paper_grid):
        rng = random.Random(3)
        for _ in range(200):
            point = random_point_in_box(paper_grid.bounds, rng)
            coord = paper_grid.cell_of(point)
            assert paper_grid.cell_bounds(coord).contains(point, tolerance=1e-9)

    def test_coords_in_box(self, small_grid):
        coords = small_grid.coords_in_box(BoundingBox(0.5, 0.5, 1.5, 1.5))
        assert set(coords) == {
            GridCoord(0, 0),
            GridCoord(1, 0),
            GridCoord(0, 1),
            GridCoord(1, 1),
        }


class TestMoveDistanceModel:
    def test_bounds_match_paper(self):
        low, high = move_distance_bounds(10.0)
        assert low == pytest.approx(2.5)
        assert high == pytest.approx(math.sqrt(58) / 4 * 10.0)

    def test_average_factor(self):
        assert AVERAGE_MOVE_FACTOR == pytest.approx(1.08)

    def test_random_point_in_box_stays_inside(self):
        rng = random.Random(0)
        box = BoundingBox(2, 3, 4, 8)
        for _ in range(100):
            assert box.contains(random_point_in_box(box, rng))
