"""Unit-disk radio model and neighbour discovery.

All nodes share the same communication range ``R`` (Section 2).  Two nodes
within range are neighbours and directly connected; the paper's overlay needs
``R = sqrt(5) * r`` so that a grid head can reach every node in the four
neighbouring cells.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

import numpy as np

from repro.grid.geometry import Point
from repro.grid.virtual_grid import GAF_RANGE_FACTOR, cell_side_for_range
from repro.network.adjacency import adjacency_lists, build_edges
from repro.network.node import SensorNode


@dataclass(frozen=True)
class UnitDiskRadio:
    """A symmetric unit-disk radio with communication range ``R`` (metres)."""

    communication_range: float

    def __post_init__(self) -> None:
        if self.communication_range <= 0:
            raise ValueError(
                f"communication_range must be positive, got {self.communication_range}"
            )

    @property
    def gaf_cell_size(self) -> float:
        """Cell side ``r = R / sqrt(5)`` that this radio supports."""
        return cell_side_for_range(self.communication_range)

    def supports_cell_size(self, cell_size: float) -> bool:
        """Whether ``R >= sqrt(5) * r`` holds for the given cell side."""
        return self.communication_range + 1e-12 >= GAF_RANGE_FACTOR * cell_size

    def in_range(self, a: Point, b: Point) -> bool:
        """Whether two positions can communicate directly."""
        return a.distance_to(b) <= self.communication_range + 1e-12

    def neighbours_of(
        self, node: SensorNode, nodes: Iterable[SensorNode]
    ) -> List[SensorNode]:
        """Enabled nodes within range of ``node`` (excluding itself)."""
        return [
            other
            for other in nodes
            if other.node_id != node.node_id
            and other.is_enabled
            and self.in_range(node.position, other.position)
        ]

    def adjacency(
        self, nodes: Sequence[SensorNode]
    ) -> Dict[int, List[int]]:
        """Adjacency lists (by node id, ascending) over the enabled nodes.

        Nodes are hashed into square buckets of side ``R``, so two nodes in
        range always fall into the same or an adjacent bucket; candidate
        pairs are generated and distance-filtered fully vectorised (see
        :func:`repro.network.adjacency.build_edges`), which keeps both time
        and memory proportional to the number of *local* pairs instead of
        the dense ``N x N`` matrix — million-node deployments stay tractable.
        """
        enabled = [n for n in nodes if n.is_enabled]
        if not enabled:
            return {}
        ids = np.array([n.node_id for n in enabled], dtype=np.int64)
        xs = np.array([n.position.x for n in enabled])
        ys = np.array([n.position.y for n in enabled])
        left, right = build_edges(xs, ys, self.communication_range)
        return adjacency_lists(ids, left, right)

    def adjacency_of_state(self, state) -> Dict[int, List[int]]:
        """:meth:`adjacency` over a ``WsnState``, straight from its arrays.

        Skips handle materialisation entirely, so this is the path to use on
        large states (the ``bench_scale`` adjacency tiers measure it).
        """
        arrays = state.arrays
        mask = arrays.enabled_mask()
        ids = arrays.node_ids[mask]
        if len(ids) == 0:
            return {}
        xs = arrays.positions[mask, 0]
        ys = arrays.positions[mask, 1]
        left, right = build_edges(xs, ys, self.communication_range)
        return adjacency_lists(ids, left, right)

    def link_pairs(self, nodes: Sequence[SensorNode]) -> List[Tuple[int, int]]:
        """Undirected communication links among enabled nodes as ``(id_a, id_b)`` pairs."""
        adjacency = self.adjacency(nodes)
        pairs = []
        for a, neighbours in adjacency.items():
            for b in neighbours:
                if a < b:
                    pairs.append((a, b))
        return pairs
