"""Tabular experiment results with CSV export.

All experiment drivers return an :class:`ExperimentResult`: an ordered list
of column names plus one dictionary per row.  That is enough to print the
series a paper figure plots, dump them to CSV for external plotting, or feed
them to the ASCII chart renderer.
"""

from __future__ import annotations

import csv
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union


@dataclass
class ExperimentResult:
    """A named table of experiment measurements."""

    name: str
    columns: List[str]
    rows: List[Dict[str, object]] = field(default_factory=list)
    description: str = ""

    def add_row(self, **values: object) -> None:
        """Append a row; values for unknown columns raise immediately."""
        unknown = set(values) - set(self.columns)
        if unknown:
            raise KeyError(f"unknown columns {sorted(unknown)}; declared {self.columns}")
        self.rows.append(dict(values))

    def __len__(self) -> int:
        return len(self.rows)

    def column(self, name: str) -> List[object]:
        """All values of one column, in row order (missing values become ``None``)."""
        if name not in self.columns:
            raise KeyError(f"unknown column {name!r}; declared {self.columns}")
        return [row.get(name) for row in self.rows]

    def series(self, x: str, y: str) -> List[Tuple[float, float]]:
        """``(x, y)`` pairs for plotting, skipping rows where either is missing."""
        pairs = []
        for row in self.rows:
            if row.get(x) is None or row.get(y) is None:
                continue
            pairs.append((float(row[x]), float(row[y])))
        return pairs

    def to_csv(self, path: Union[str, Path]) -> Path:
        """Write the table to ``path`` as CSV and return the path."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("w", newline="") as handle:
            writer = csv.DictWriter(handle, fieldnames=self.columns)
            writer.writeheader()
            for row in self.rows:
                writer.writerow({column: row.get(column, "") for column in self.columns})
        return path

    def format(self, float_digits: int = 2, max_rows: Optional[int] = None) -> str:
        """Fixed-width text rendering of the table (used by benches and examples)."""
        rows = self.rows if max_rows is None else self.rows[:max_rows]
        rendered: List[List[str]] = [list(self.columns)]
        for row in rows:
            rendered_row = []
            for column in self.columns:
                value = row.get(column, "")
                if isinstance(value, float):
                    rendered_row.append(f"{value:.{float_digits}f}")
                else:
                    rendered_row.append(str(value))
            rendered.append(rendered_row)
        widths = [
            max(len(rendered_row[i]) for rendered_row in rendered)
            for i in range(len(self.columns))
        ]
        lines = []
        header = "  ".join(cell.rjust(width) for cell, width in zip(rendered[0], widths))
        lines.append(header)
        lines.append("  ".join("-" * width for width in widths))
        for rendered_row in rendered[1:]:
            lines.append(
                "  ".join(cell.rjust(width) for cell, width in zip(rendered_row, widths))
            )
        if max_rows is not None and len(self.rows) > max_rows:
            lines.append(f"... ({len(self.rows) - max_rows} more rows)")
        title = f"== {self.name} =="
        if self.description:
            title += f"  ({self.description})"
        return title + "\n" + "\n".join(lines)


def average_dicts(dicts: Sequence[Dict[str, float]]) -> Dict[str, float]:
    """Element-wise mean of numeric dictionaries (used to average repeated trials).

    Non-numeric values are taken from the first dictionary unchanged.
    """
    if not dicts:
        raise ValueError("average_dicts() requires at least one dictionary")
    result: Dict[str, float] = {}
    keys = dicts[0].keys()
    for other in dicts[1:]:
        if other.keys() != keys:
            raise ValueError("all dictionaries must share the same keys")
    for key in keys:
        values = [d[key] for d in dicts]
        if all(isinstance(v, (int, float)) and not isinstance(v, bool) for v in values):
            result[key] = sum(values) / len(values)
        else:
            result[key] = values[0]
    return result
