"""Scheme comparison sweeps over the paper's Section-5 workload.

The experimental figures (6, 7, 8) all come from the same sweep: for every
value of ``N`` (the spare surplus), build the scenario, run each scheme on an
identical copy of the initial network, and record its
:class:`~repro.sim.metrics.RunMetrics`.  :func:`run_comparison` implements
that sweep once so the three figures (and the extension benchmarks) can share
the data.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, Iterable, List, Optional, Sequence

from repro.baselines.smart_scan import SmartScanController
from repro.baselines.virtual_force import VirtualForceController
from repro.core.baseline_ar import LocalizedReplacementController
from repro.core.hamilton import build_hamilton_cycle
from repro.core.protocol import MobilityController
from repro.core.replacement import HamiltonReplacementController
from repro.core.shortcut import ShortcutReplacementController
from repro.experiments.results import ExperimentResult, average_dicts
from repro.network.state import WsnState
from repro.sim.engine import run_recovery
from repro.sim.metrics import RunMetrics
from repro.sim.rng import derive_rng, spawn_seeds
from repro.sim.scenario import ScenarioConfig, build_scenario_state

#: Factories for the schemes known to the sweep runner.  Each factory takes
#: the network state and returns a fresh controller bound to its grid.
SCHEME_FACTORIES: Dict[str, Callable[[WsnState], MobilityController]] = {
    "SR": lambda state: HamiltonReplacementController(build_hamilton_cycle(state.grid)),
    "SR-shortcut": lambda state: ShortcutReplacementController(
        build_hamilton_cycle(state.grid)
    ),
    "AR": lambda state: LocalizedReplacementController(state.grid),
    "VF": lambda state: VirtualForceController(),
    "SMART": lambda state: SmartScanController(),
}


def make_controller(scheme: str, state: WsnState) -> MobilityController:
    """Instantiate a controller by scheme name for the given network."""
    try:
        factory = SCHEME_FACTORIES[scheme]
    except KeyError:
        raise KeyError(
            f"unknown scheme {scheme!r}; available: {sorted(SCHEME_FACTORIES)}"
        ) from None
    return factory(state)


def run_single(
    state: WsnState,
    scheme: str,
    rng: random.Random,
    max_rounds: Optional[int] = None,
) -> RunMetrics:
    """Run one scheme on (a clone of) ``state`` and return its metrics."""
    working_state = state.clone()
    controller = make_controller(scheme, working_state)
    result = run_recovery(working_state, controller, rng, max_rounds=max_rounds)
    return result.metrics


def run_comparison(
    config: ScenarioConfig,
    spare_values: Sequence[int],
    schemes: Sequence[str] = ("SR", "AR"),
    trials: int = 1,
    max_rounds: Optional[int] = None,
) -> ExperimentResult:
    """Sweep ``N`` over ``spare_values`` and run every scheme on identical scenarios.

    For each ``N`` and each trial, one scenario is built (deployment +
    thinning) and **cloned** for every scheme, so all schemes repair exactly
    the same holes with exactly the same spare placement — the comparison the
    paper performs.  Metrics are averaged over trials.

    The resulting table has one row per ``N`` with the columns::

        N, holes, spares, enabled,
        <scheme>_processes, <scheme>_success_rate, <scheme>_moves,
        <scheme>_distance, <scheme>_failed, <scheme>_final_holes   (per scheme)
    """
    if trials < 1:
        raise ValueError(f"trials must be >= 1, got {trials}")
    unknown = [scheme for scheme in schemes if scheme not in SCHEME_FACTORIES]
    if unknown:
        raise KeyError(f"unknown schemes {unknown}; available: {sorted(SCHEME_FACTORIES)}")

    columns: List[str] = ["N", "holes", "spares", "enabled"]
    for scheme in schemes:
        columns.extend(
            [
                f"{scheme}_processes",
                f"{scheme}_success_rate",
                f"{scheme}_moves",
                f"{scheme}_distance",
                f"{scheme}_failed",
                f"{scheme}_final_holes",
            ]
        )
    result = ExperimentResult(
        name=f"scheme comparison on {config.columns}x{config.rows} grid",
        columns=columns,
        description=f"schemes={list(schemes)}, trials={trials}, deployed={config.deployed_count}",
    )

    for spare_surplus in spare_values:
        trial_rows: List[Dict[str, float]] = []
        for trial_seed in spawn_seeds(config.seed, trials, label=f"N={spare_surplus}"):
            scenario = config.with_spare_surplus(spare_surplus).with_seed(trial_seed)
            state = build_scenario_state(scenario)
            row: Dict[str, float] = {
                "N": spare_surplus,
                "holes": state.hole_count,
                "spares": state.spare_count,
                "enabled": state.enabled_count,
            }
            for scheme in schemes:
                metrics = run_single(
                    state,
                    scheme,
                    derive_rng(trial_seed, f"{scheme}-controller"),
                    max_rounds=max_rounds,
                )
                row[f"{scheme}_processes"] = metrics.processes_initiated
                row[f"{scheme}_success_rate"] = metrics.success_rate
                row[f"{scheme}_moves"] = metrics.total_moves
                row[f"{scheme}_distance"] = metrics.total_distance
                row[f"{scheme}_failed"] = metrics.processes_failed
                row[f"{scheme}_final_holes"] = metrics.final_holes
            trial_rows.append(row)
        result.add_row(**average_dicts(trial_rows))
    return result
