"""Stdlib HTTP client for the ``repro serve`` experiment service.

:class:`ServeClient` wraps ``urllib`` (no new dependencies) and speaks the
JSON protocol of :mod:`repro.serve.server`: plain request/response for most
endpoints, and an iterator of newline-delimited JSON events for streamed
runs.  The ``repro query`` CLI subcommand is a thin shell over this class.
"""

from __future__ import annotations

import json
from typing import Dict, Iterator, List, Optional
from urllib.error import HTTPError, URLError
from urllib.parse import urlencode
from urllib.request import Request, urlopen

__all__ = ["ServeClient", "ServeError"]


class ServeError(RuntimeError):
    """An error response (or transport failure) from the experiment service."""

    def __init__(self, message: str, status: Optional[int] = None) -> None:
        super().__init__(message)
        self.status = status


class ServeClient:
    """Talk to a running ``repro serve`` instance.

    Parameters
    ----------
    base_url:
        Root of the service, e.g. ``http://127.0.0.1:8008``.
    timeout:
        Per-request socket timeout in seconds.  Streamed runs and figure
        queries simulate inside the request, so keep this generous.
    """

    def __init__(self, base_url: str, timeout: float = 300.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # ------------------------------------------------------------- plumbing
    def _request(
        self,
        path: str,
        query: Optional[Dict[str, object]] = None,
        body: Optional[object] = None,
        method: str = "GET",
    ) -> Request:
        """Build one :class:`urllib.request.Request` for a service endpoint."""
        url = f"{self.base_url}{path}"
        if query:
            url = f"{url}?{urlencode({k: str(v) for k, v in query.items()})}"
        data = None
        headers = {"Accept": "application/json"}
        if body is not None:
            data = json.dumps(body).encode("utf-8")
            headers["Content-Type"] = "application/json"
        return Request(url, data=data, headers=headers, method=method)

    def _call(
        self,
        path: str,
        query: Optional[Dict[str, object]] = None,
        body: Optional[object] = None,
        method: str = "GET",
    ) -> Dict[str, object]:
        """Issue one request and decode the JSON response (or raise ServeError)."""
        request = self._request(path, query=query, body=body, method=method)
        try:
            with urlopen(request, timeout=self.timeout) as response:
                return json.loads(response.read().decode("utf-8"))
        except HTTPError as error:
            detail = error.read().decode("utf-8", errors="replace")
            try:
                detail = json.loads(detail).get("error", detail)
            except json.JSONDecodeError:
                pass
            raise ServeError(
                f"HTTP {error.code} from {path}: {detail}", status=error.code
            ) from error
        except URLError as error:
            raise ServeError(f"cannot reach {self.base_url}: {error.reason}") from error

    # ------------------------------------------------------------- endpoints
    def health(self) -> Dict[str, object]:
        """``GET /health``."""
        return self._call("/health")

    def stats(self) -> Dict[str, object]:
        """``GET /stats``: cache and broker counters."""
        return self._call("/stats")

    def schemes(self) -> List[str]:
        """``GET /schemes``: the registered recovery scheme names."""
        return list(self._call("/schemes")["schemes"])

    def scenarios(self) -> List[Dict[str, object]]:
        """``GET /scenarios``: the curated catalog (name + description)."""
        return list(self._call("/scenarios")["scenarios"])

    def scenario(self, name: str, smoke: bool = False) -> Dict[str, object]:
        """``GET /scenario/<name>``: run a catalog scenario cache-first."""
        query = {"smoke": 1} if smoke else None
        return self._call(f"/scenario/{name}", query=query)

    def figure(
        self, name: str, quick: bool = False, trials: int = 1
    ) -> Dict[str, object]:
        """``GET /figure/<name>``: a Section-5 figure series, cache-first."""
        query: Dict[str, object] = {"trials": trials}
        if quick:
            query["quick"] = 1
        return self._call(f"/figure/{name}", query=query)

    def run(
        self, spec_payload: Dict[str, object], priority: str = "interactive"
    ) -> Dict[str, object]:
        """``POST /run``: execute (or look up) one spec and return its record."""
        return self._call(
            "/run", query={"priority": priority}, body=spec_payload, method="POST"
        )

    def run_stream(
        self, spec_payload: Dict[str, object], priority: str = "interactive"
    ) -> Iterator[Dict[str, object]]:
        """``POST /run?stream=1``: yield live NDJSON events as they arrive.

        Yields ``accepted`` / ``round`` / ``done`` events for a novel spec,
        or a single ``cached`` event carrying the stored record.
        """
        request = self._request(
            "/run",
            query={"priority": priority, "stream": 1},
            body=spec_payload,
            method="POST",
        )
        try:
            with urlopen(request, timeout=self.timeout) as response:
                for raw in response:
                    line = raw.decode("utf-8").strip()
                    if line:
                        yield json.loads(line)
        except HTTPError as error:
            detail = error.read().decode("utf-8", errors="replace")
            raise ServeError(
                f"HTTP {error.code} from /run: {detail}", status=error.code
            ) from error
        except URLError as error:
            raise ServeError(f"cannot reach {self.base_url}: {error.reason}") from error

    def shutdown(self) -> Dict[str, object]:
        """``POST /shutdown``: drain the broker and stop the service."""
        return self._call("/shutdown", method="POST")
