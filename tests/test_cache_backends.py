"""Tests for the pluggable cache backends (satellite: concurrent stress).

The contracts exercised here:

* both backends satisfy the :class:`CacheBackend` protocol (store/load/
  contains/count/clear/iter_keys);
* the two backends hold **byte-identical** documents for the same record,
  so switching backends never changes results;
* the :class:`RunCache` facade behaves identically over either backend
  (round-trip, hit/miss accounting, damage-as-miss);
* concurrent readers and writers — threads and forked worker processes —
  never observe a torn document: every read is a miss or a complete,
  valid record.
"""

import json
import sqlite3
import threading
from concurrent.futures import ProcessPoolExecutor

import pytest

from repro.experiments.orchestration import RunSpec, execute_run
from repro.experiments.persistence import (
    CACHE_BACKENDS,
    SQLITE_DEFAULT_FILENAME,
    SQLITE_SCHEMA_VERSION,
    CacheStats,
    JsonDirBackend,
    RunCache,
    SqliteBackend,
    make_cache,
    record_to_dict,
    run_key,
)
from repro.sim.scenario import ScenarioConfig

QUICK_CONFIG = ScenarioConfig(columns=5, rows=5, deployed_count=150, seed=7)


def quick_spec(scheme: str = "SR", seed: int = 7, spare_surplus: int = 10) -> RunSpec:
    return RunSpec(
        scenario=QUICK_CONFIG.with_spare_surplus(spare_surplus),
        scheme=scheme,
        seed=seed,
        max_rounds=40,
    )


def make_backend(kind: str, tmp_path):
    if kind == "json":
        return JsonDirBackend(tmp_path / "json-store")
    return SqliteBackend(tmp_path / "sqlite-store")


# ------------------------------------------------------------------ protocol
@pytest.mark.parametrize("kind", CACHE_BACKENDS)
def test_backend_protocol_round_trip(kind, tmp_path):
    backend = make_backend(kind, tmp_path)
    assert backend.kind == kind
    assert backend.count() == 0
    assert backend.load("missing") is None
    assert not backend.contains("missing")

    backend.store("k1", '{"v": 1}')
    backend.store("k2", '{"v": 2}')
    assert backend.count() == 2
    assert backend.contains("k1")
    assert backend.load("k1") == '{"v": 1}'
    assert sorted(backend.iter_keys()) == ["k1", "k2"]

    backend.store("k1", '{"v": 10}')  # overwrite, not duplicate
    assert backend.count() == 2
    assert backend.load("k1") == '{"v": 10}'

    backend.clear()
    assert backend.count() == 0
    assert backend.load("k1") is None


@pytest.mark.parametrize("kind", CACHE_BACKENDS)
def test_make_cache_selects_backend(kind, tmp_path):
    cache = make_cache(tmp_path, backend=kind)
    assert cache.backend.kind == kind


def test_make_cache_rejects_unknown_backend(tmp_path):
    with pytest.raises(ValueError, match="unknown cache backend"):
        make_cache(tmp_path, backend="parquet")


def test_backends_hold_byte_identical_documents(tmp_path):
    """Acceptance: the same record serializes byte-identically in both stores."""
    record = execute_run(quick_spec())
    key = run_key(record.spec)
    caches = {
        kind: make_cache(tmp_path / kind, backend=kind) for kind in CACHE_BACKENDS
    }
    for cache in caches.values():
        cache.put(record)
    documents = {kind: cache.backend.load(key) for kind, cache in caches.items()}
    assert documents["json"] == documents["sqlite"]
    assert json.loads(documents["json"])["format_version"] >= 4


# ------------------------------------------------------------------- facade
@pytest.mark.parametrize("kind", CACHE_BACKENDS)
def test_facade_round_trip_and_stats(kind, tmp_path):
    cache = make_cache(tmp_path, backend=kind)
    spec = quick_spec()
    assert cache.get(spec) is None  # miss
    record = execute_run(spec)
    cache.put(record)
    hit = cache.get(spec)
    assert hit is not None
    assert record_to_dict(hit) == record_to_dict(record)
    assert cache.hits == 1 and cache.misses == 1
    snapshot = cache.stats.snapshot()
    assert snapshot.hit_rate == 0.5
    assert run_key(spec) in list(cache.iter_keys())
    assert spec in cache and len(cache) == 1


def test_sqlite_corrupt_document_is_a_miss(tmp_path):
    cache = make_cache(tmp_path, backend="sqlite")
    spec = quick_spec()
    cache.put(execute_run(spec))
    cache.backend.store(run_key(spec), "{ not json")
    assert cache.get(spec) is None


def test_sqlite_rejects_foreign_schema_version(tmp_path):
    backend = SqliteBackend(tmp_path)
    backend.store("k", "{}")
    db_path = tmp_path / SQLITE_DEFAULT_FILENAME
    with sqlite3.connect(db_path) as conn:
        conn.execute(f"PRAGMA user_version = {SQLITE_SCHEMA_VERSION + 1}")
    with pytest.raises(ValueError, match="schema version"):
        SqliteBackend(tmp_path).store("k2", "{}")


def test_sqlite_default_filename_under_directory(tmp_path):
    backend = SqliteBackend(tmp_path)
    backend.store("k", "{}")
    assert (tmp_path / SQLITE_DEFAULT_FILENAME).exists()


# --------------------------------------------------------------- concurrency
def test_cache_stats_is_thread_safe():
    stats = CacheStats()

    def spin():
        for _ in range(2000):
            stats.record_hit()
            stats.record_miss()

    threads = [threading.Thread(target=spin) for _ in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    snapshot = stats.snapshot()
    assert snapshot.hits == snapshot.misses == 16000
    assert snapshot.lookups == 32000


@pytest.mark.parametrize("kind", CACHE_BACKENDS)
def test_concurrent_threads_never_see_torn_documents(kind, tmp_path):
    """Readers racing writers observe either a miss or a complete record."""
    cache = make_cache(tmp_path, backend=kind)
    specs = [quick_spec(scheme=s, seed=seed) for s in ("SR", "AR") for seed in (1, 2)]
    records = [execute_run(spec) for spec in specs]
    expected = {run_key(r.spec): record_to_dict(r) for r in records}
    errors = []
    stop = threading.Event()

    def writer():
        for _ in range(15):
            for record in records:
                cache.put(record)

    def reader():
        own = RunCache(cache.cache_dir, backend=cache.backend)
        while not stop.is_set():
            for spec in specs:
                hit = own.get(spec)
                if hit is not None and record_to_dict(hit) != expected[run_key(spec)]:
                    errors.append("torn or wrong record observed")
                    return

    readers = [threading.Thread(target=reader) for _ in range(4)]
    writers = [threading.Thread(target=writer) for _ in range(3)]
    for t in readers + writers:
        t.start()
    for t in writers:
        t.join()
    stop.set()
    for t in readers:
        t.join()
    assert not errors
    for spec in specs:
        hit = cache.get(spec)
        assert hit is not None
        assert record_to_dict(hit) == expected[run_key(spec)]


def _process_worker(args):
    """Top-level (picklable) worker: hammer one shared store from a process."""
    cache_dir, kind, scheme, seed = args
    cache = make_cache(cache_dir, backend=kind)
    spec = quick_spec(scheme=scheme, seed=seed)
    record = execute_run(spec)
    for _ in range(5):
        cache.put(record)
        hit = cache.get(spec)
        if hit is None:
            continue  # a racing writer is fine; torn data is not
        if record_to_dict(hit) != record_to_dict(record):
            return f"{scheme}/{seed}: torn record"
    return None


@pytest.mark.parametrize("kind", CACHE_BACKENDS)
def test_concurrent_processes_share_one_store(kind, tmp_path):
    jobs = [
        (tmp_path, kind, scheme, seed)
        for scheme in ("SR", "AR")
        for seed in (1, 2)
    ]
    with ProcessPoolExecutor(max_workers=4) as pool:
        failures = [f for f in pool.map(_process_worker, jobs) if f]
    assert not failures
    cache = make_cache(tmp_path, backend=kind)
    assert len(cache) == len(jobs)


# ------------------------------------------------------------ batch get/put
@pytest.mark.parametrize("kind", CACHE_BACKENDS)
def test_backend_get_many_put_many_round_trip(kind, tmp_path):
    """put_many stores every document; get_many returns exactly the present ones."""
    backend = make_backend(kind, tmp_path)
    documents = {f"key-{i}": json.dumps({"v": i}) for i in range(20)}
    backend.put_many(documents)
    assert backend.count() == len(documents)

    wanted = list(documents) + ["absent-a", "absent-b"]
    found = backend.get_many(wanted)
    assert found == documents  # absent keys omitted, not None-valued

    assert backend.get_many([]) == {}
    assert backend.get_many(["absent-a"]) == {}


@pytest.mark.parametrize("kind", CACHE_BACKENDS)
def test_backend_put_many_overwrites(kind, tmp_path):
    backend = make_backend(kind, tmp_path)
    backend.put_many({"k": '{"v": 1}', "other": '{"v": 2}'})
    backend.put_many({"k": '{"v": 10}'})
    assert backend.count() == 2
    assert backend.load("k") == '{"v": 10}'


def test_sqlite_get_many_crosses_select_chunks(tmp_path):
    """Key sets larger than the SELECT chunk are still answered completely."""
    backend = SqliteBackend(tmp_path / "store")
    documents = {f"key-{i:04d}": json.dumps({"v": i}) for i in range(1203)}
    backend.put_many(documents)
    assert backend.get_many(list(documents)) == documents


@pytest.mark.parametrize("kind", CACHE_BACKENDS)
def test_run_cache_get_many_matches_get(kind, tmp_path):
    """get_many agrees with per-spec get, including hit/miss accounting."""
    cache = RunCache(backend=make_backend(kind, tmp_path))
    stored_specs = [quick_spec(scheme="SR", seed=s) for s in (1, 2)]
    records = [execute_run(spec) for spec in stored_specs]
    cache.put_many(records)
    missing = quick_spec(scheme="AR", seed=3)

    hits = cache.get_many(stored_specs + [missing])
    assert hits[-1] is None
    for spec, hit, record in zip(stored_specs, hits[:-1], records):
        assert hit is not None
        assert record_to_dict(hit) == record_to_dict(cache.get(spec))
    snapshot = cache.stats.snapshot()
    # get_many: 2 hits + 1 miss; the per-spec get() calls above add 2 hits.
    assert snapshot.hits == 4
    assert snapshot.misses == 1


@pytest.mark.parametrize("kind", CACHE_BACKENDS)
def test_run_cache_get_many_treats_damage_as_miss(kind, tmp_path):
    cache = RunCache(backend=make_backend(kind, tmp_path))
    spec = quick_spec(seed=5)
    cache.put(execute_run(spec))
    cache.backend.store(run_key(spec), '{"not": "a record"}')
    assert cache.get_many([spec]) == [None]


@pytest.mark.parametrize("kind", CACHE_BACKENDS)
def test_run_cache_put_many_then_backend_documents_canonical(kind, tmp_path):
    """put_many writes the same canonical document as per-record put."""
    cache_a = RunCache(backend=make_backend(kind, tmp_path / "a"))
    cache_b = RunCache(backend=make_backend(kind, tmp_path / "b"))
    records = [execute_run(quick_spec(scheme=s, seed=9)) for s in ("SR", "AR")]
    cache_a.put_many(records)
    for record in records:
        cache_b.put(record)
    keys = [run_key(quick_spec(scheme=s, seed=9)) for s in ("SR", "AR")]
    for key in keys:
        assert cache_a.backend.load(key) == cache_b.backend.load(key)
